#include "clustering/silhouette.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::clustering {
namespace {

TEST(SilhouetteTest, PerfectClusteringScoresHigh) {
  auto data = testing::MakeClusteredPoints(2, 20, 4, 20.0, 0.3, 1);
  std::vector<size_t> assignments;
  for (int label : data.labels) {
    assignments.push_back(static_cast<size_t>(label));
  }
  auto score = SilhouetteScore(data.points, assignments);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.9);
}

TEST(SilhouetteTest, RandomClusteringScoresLow) {
  auto data = testing::MakeClusteredPoints(2, 20, 4, 20.0, 0.3, 2);
  std::vector<size_t> assignments(data.points.size());
  Rng rng(3);
  for (auto& a : assignments) a = rng.UniformUint64(2);
  auto score = SilhouetteScore(data.points, assignments);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(*score, 0.3);
}

TEST(SilhouetteTest, SingleClusterScoresZero) {
  auto data = testing::MakeClusteredPoints(2, 10, 4, 20.0, 0.3, 4);
  std::vector<size_t> assignments(data.points.size(), 0);
  auto score = SilhouetteScore(data.points, assignments);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, 0.0);
}

TEST(SilhouetteTest, RejectsMismatchedSizes) {
  std::vector<FeatureVector> pts = {FeatureVector({0.0f})};
  EXPECT_FALSE(SilhouetteScore(pts, {0, 1}).ok());
}

TEST(SilhouetteTest, ScoreBoundedByOne) {
  auto data = testing::MakeClusteredPoints(3, 15, 4, 10.0, 1.0, 5);
  std::vector<size_t> assignments;
  for (int label : data.labels) {
    assignments.push_back(static_cast<size_t>(label));
  }
  auto score = SilhouetteScore(data.points, assignments);
  ASSERT_TRUE(score.ok());
  EXPECT_LE(*score, 1.0);
  EXPECT_GE(*score, -1.0);
}

TEST(ChooseKTest, RecoversTrueClusterCount) {
  auto data = testing::MakeClusteredPoints(4, 20, 8, 25.0, 0.5, 6);
  Rng rng(7);
  auto sweep = ChooseKBySilhouette(data.points, 2, 8, &rng);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->best_k, 4u);
  EXPECT_GT(sweep->best_score, 0.8);
  EXPECT_EQ(sweep->scores.size(), 7u);
}

TEST(ChooseKTest, RejectsTinyInput) {
  Rng rng(8);
  std::vector<FeatureVector> one = {FeatureVector({0.0f})};
  EXPECT_FALSE(ChooseKBySilhouette(one, 2, 5, &rng).ok());
}

}  // namespace
}  // namespace vz::clustering
