#include "vector/feature_vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vz {
namespace {

TEST(FeatureVectorTest, ZeroConstruction) {
  FeatureVector v(4);
  EXPECT_EQ(v.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v[i], 0.0f);
  EXPECT_DOUBLE_EQ(v.Norm(), 0.0);
}

TEST(FeatureVectorTest, NormAndDistance) {
  FeatureVector a({3.0f, 4.0f});
  FeatureVector b({0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(FeatureVectorTest, AddAxpyScale) {
  FeatureVector a({1.0f, 2.0f});
  FeatureVector b({3.0f, -1.0f});
  a.Add(b);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  a.Axpy(2.0, b);
  EXPECT_FLOAT_EQ(a[0], 10.0f);
  EXPECT_FLOAT_EQ(a[1], -1.0f);
  a.Scale(0.5);
  EXPECT_FLOAT_EQ(a[0], 5.0f);
  EXPECT_FLOAT_EQ(a[1], -0.5f);
}

TEST(FeatureVectorTest, NormalizeUnitLength) {
  FeatureVector v({3.0f, 4.0f});
  v.Normalize();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-6);
  FeatureVector zero(3);
  zero.Normalize();  // must not divide by zero
  EXPECT_DOUBLE_EQ(zero.Norm(), 0.0);
}

TEST(FeatureVectorTest, DotAndCosine) {
  FeatureVector a({1.0f, 0.0f});
  FeatureVector b({0.0f, 1.0f});
  FeatureVector c({2.0f, 0.0f});
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), 1.0);
  EXPECT_NEAR(CosineDistance(a, c), 0.0, 1e-9);
  FeatureVector zero(2);
  EXPECT_DOUBLE_EQ(CosineDistance(a, zero), 1.0);
}

TEST(FeatureVectorTest, DistanceSymmetryAndIdentity) {
  FeatureVector a({1.5f, -2.0f, 0.25f});
  FeatureVector b({-1.0f, 0.5f, 2.0f});
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), EuclideanDistance(b, a));
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

}  // namespace
}  // namespace vz
