#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "solver/emd.h"

namespace vz::solver {
namespace {

TEST(EmdFlowTest, FlowMatchesDistance) {
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> b = {2.0, 3.0};
  std::vector<double> w = {1.0, 1.0};
  auto ground = [&](size_t i, size_t j) { return std::fabs(a[i] - b[j]); };
  auto with_flow = ExactEmdWithFlow(w, w, ground);
  auto plain = ExactEmd(w, w, ground);
  ASSERT_TRUE(with_flow.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(with_flow->distance, plain->distance, 1e-9);
  // Recompute the cost from the plan itself.
  double recomputed = 0.0;
  for (const EmdFlow& f : with_flow->flows) {
    recomputed += f.amount * ground(f.from, f.to);
  }
  EXPECT_NEAR(recomputed, with_flow->distance, 1e-9);
}

TEST(EmdFlowTest, MarginalsMatchEquationOne) {
  // Random instance: row sums must equal the supplies, column sums the
  // demands (Eq. 1's constraints), after normalization.
  Rng rng(11);
  const size_t n = 6;
  const size_t m = 4;
  std::vector<double> points_a(n);
  std::vector<double> points_b(m);
  for (auto& v : points_a) v = rng.UniformDouble(0.0, 10.0);
  for (auto& v : points_b) v = rng.UniformDouble(0.0, 10.0);
  std::vector<double> supplies(n);
  std::vector<double> demands(m);
  for (auto& v : supplies) v = rng.UniformDouble(0.5, 2.0);
  for (auto& v : demands) v = rng.UniformDouble(0.5, 2.0);
  auto ground = [&](size_t i, size_t j) {
    return std::fabs(points_a[i] - points_b[j]);
  };
  auto result = ExactEmdWithFlow(supplies, demands, ground);
  ASSERT_TRUE(result.ok());

  std::vector<double> row(n, 0.0);
  std::vector<double> col(m, 0.0);
  for (const EmdFlow& f : result->flows) {
    ASSERT_LT(f.from, n);
    ASSERT_LT(f.to, m);
    ASSERT_GT(f.amount, 0.0);
    row[f.from] += f.amount;
    col[f.to] += f.amount;
  }
  double supply_total = 0.0;
  double demand_total = 0.0;
  for (double v : supplies) supply_total += v;
  for (double v : demands) demand_total += v;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(row[i], supplies[i] / supply_total, 1e-9) << "row " << i;
  }
  for (size_t j = 0; j < m; ++j) {
    EXPECT_NEAR(col[j], demands[j] / demand_total, 1e-9) << "col " << j;
  }
}

TEST(EmdFlowTest, IdenticalPointsShipInPlace) {
  std::vector<double> pts = {1.0, 5.0, 9.0};
  std::vector<double> w = {1.0, 1.0, 1.0};
  auto result = ExactEmdWithFlow(w, w, [&](size_t i, size_t j) {
    return std::fabs(pts[i] - pts[j]);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 0.0, 1e-9);
  for (const EmdFlow& f : result->flows) {
    EXPECT_EQ(f.from, f.to);  // all mass stays put
  }
}

TEST(EmdFlowTest, RejectsBadInput) {
  EXPECT_FALSE(
      ExactEmdWithFlow({}, {1.0}, [](size_t, size_t) { return 0.0; }).ok());
  EXPECT_FALSE(
      ExactEmdWithFlow({1.0}, {1.0}, [](size_t, size_t) { return -1.0; })
          .ok());
}

}  // namespace
}  // namespace vz::solver
