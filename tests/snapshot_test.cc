#include "io/svs_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "io/binary_format.h"
#include "sim/fault_injector.h"
#include "test_util.h"

namespace vz::io {
namespace {

using ::vz::testing::MakeMap;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryFormatTest, RoundTripsScalars) {
  BinaryWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(1ULL << 60);
  writer.WriteI64(-42);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("video-zilla");
  writer.WriteFloats({1.0f, 2.0f, 3.0f});

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU8(), 7);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 1ULL << 60);
  EXPECT_EQ(*reader.ReadI64(), -42);
  EXPECT_FLOAT_EQ(*reader.ReadF32(), 1.5f);
  EXPECT_DOUBLE_EQ(*reader.ReadF64(), -2.25);
  EXPECT_EQ(*reader.ReadString(), "video-zilla");
  EXPECT_EQ(*reader.ReadFloats(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryFormatTest, TruncationIsAnError) {
  BinaryWriter writer;
  writer.WriteU64(5);  // claims a 5-byte string follows
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadString().ok());
  BinaryReader empty("");
  EXPECT_FALSE(empty.ReadU32().ok());
}

TEST(BinaryFormatTest, FileRoundTrip) {
  const std::string path = TempPath("fmt.bin");
  BinaryWriter writer;
  writer.WriteString("persisted");
  ASSERT_TRUE(writer.Flush(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "persisted");
  std::remove(path.c_str());
  EXPECT_FALSE(BinaryReader::FromFile(path).ok());
}

void FillStore(core::SvsStore* store_ptr) {
  core::SvsStore& store = *store_ptr;
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const core::SvsId id =
        store.Create("cam-" + std::to_string(i % 2), i * 100, i * 100 + 90,
                     MakeMap(10 + static_cast<size_t>(i), 6, i * 2.0, 0.4,
                             static_cast<uint64_t>(i + 1)));
    auto svs = store.GetMutable(id);
    EXPECT_TRUE(svs.ok());
    auto rep = core::BuildRepresentative((*svs)->features(),
                                         core::RepresentativeOptions{}, &rng);
    EXPECT_TRUE(rep.ok());
    (*svs)->set_representative(*rep);
    (*svs)->set_frame_ids({i * 10LL, i * 10LL + 1});
    (*svs)->set_encoded_bytes(static_cast<size_t>(1000 + i));
    (*svs)->RecordAccess(i * 100 + 95);
  }
}

TEST(SvsSnapshotTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("store.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, path).ok());

  core::SvsStore loaded;
  ASSERT_TRUE(LoadSvsStore(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (core::SvsId id : original.AllIds()) {
    auto a = original.Get(id);
    auto b = loaded.Get(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->camera(), (*b)->camera());
    EXPECT_EQ((*a)->start_ms(), (*b)->start_ms());
    EXPECT_EQ((*a)->end_ms(), (*b)->end_ms());
    EXPECT_EQ((*a)->frame_ids(), (*b)->frame_ids());
    EXPECT_EQ((*a)->encoded_bytes(), (*b)->encoded_bytes());
    EXPECT_EQ((*a)->access_count(), (*b)->access_count());
    EXPECT_EQ((*a)->last_access_ms(), (*b)->last_access_ms());
    ASSERT_EQ((*a)->features().size(), (*b)->features().size());
    for (size_t i = 0; i < (*a)->features().size(); ++i) {
      EXPECT_EQ((*a)->features().vector(i), (*b)->features().vector(i));
      EXPECT_DOUBLE_EQ((*a)->features().weight(i),
                       (*b)->features().weight(i));
    }
    ASSERT_EQ((*a)->representative().size(), (*b)->representative().size());
    for (size_t c = 0; c < (*a)->representative().size(); ++c) {
      const auto& ca = (*a)->representative().centers()[c];
      const auto& cb = (*b)->representative().centers()[c];
      EXPECT_EQ(ca.center, cb.center);
      EXPECT_DOUBLE_EQ(ca.weight, cb.weight);
      EXPECT_DOUBLE_EQ(ca.boundary, cb.boundary);
      EXPECT_DOUBLE_EQ(ca.mean_member_distance, cb.mean_member_distance);
      EXPECT_EQ(ca.last_hit_ms, cb.last_hit_ms);
    }
  }
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, RejectsGarbageAndWrongVersion) {
  const std::string path = TempPath("garbage.vzss");
  {
    BinaryWriter writer;
    writer.WriteU32(0x12345678);  // wrong magic
    ASSERT_TRUE(writer.Flush(path).ok());
  }
  core::SvsStore store;
  EXPECT_FALSE(LoadSvsStore(path, &store).ok());
  {
    BinaryWriter writer;
    writer.WriteU32(kSnapshotMagic);
    writer.WriteU32(kSnapshotVersion + 7);
    ASSERT_TRUE(writer.Flush(path).ok());
  }
  EXPECT_FALSE(LoadSvsStore(path, &store).ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(LoadSvsStore(path, nullptr).ok());
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, RejectsTruncatedSnapshot) {
  const std::string path = TempPath("trunc.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, path).ok());
  // Truncate the file in half.
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  {
    BinaryWriter writer;
    // Rewrite only the first half of the bytes.
    std::string data;
    {
      std::ifstream in(path, std::ios::binary);
      data.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  core::SvsStore store;
  EXPECT_FALSE(LoadSvsStore(path, &store).ok());
  std::remove(path.c_str());
}

void ExpectStoresEqual(const core::SvsStore& a, const core::SvsStore& b,
                       size_t limit) {
  size_t compared = 0;
  for (core::SvsId id : a.AllIds()) {
    if (compared++ == limit) break;
    auto sa = a.Get(id);
    auto sb = b.Get(id);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ((*sa)->camera(), (*sb)->camera());
    EXPECT_EQ((*sa)->start_ms(), (*sb)->start_ms());
    EXPECT_EQ((*sa)->end_ms(), (*sb)->end_ms());
    EXPECT_EQ((*sa)->frame_ids(), (*sb)->frame_ids());
    ASSERT_EQ((*sa)->features().size(), (*sb)->features().size());
    for (size_t i = 0; i < (*sa)->features().size(); ++i) {
      EXPECT_EQ((*sa)->features().vector(i), (*sb)->features().vector(i));
    }
  }
}

TEST(SvsSnapshotTest, LoadsLegacyVersion1Snapshots) {
  const std::string path = TempPath("legacy.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStoreV1(original, path).ok());

  core::SvsStore loaded;
  SnapshotLoadReport report;
  ASSERT_TRUE(LoadSvsStore(path, &loaded, SnapshotLoadOptions(), &report).ok());
  EXPECT_EQ(report.version, kSnapshotVersionV1);
  EXPECT_EQ(report.records_loaded, original.size());
  EXPECT_FALSE(report.salvaged);
  ASSERT_EQ(loaded.size(), original.size());
  ExpectStoresEqual(original, loaded, original.size());
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, DetectsSingleBitFlipAnywhere) {
  const std::string path = TempPath("flip.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, path).ok());
  ASSERT_TRUE(sim::FaultInjector::FlipBits(path, 1, /*seed=*/99).ok());

  core::SvsStore store;
  EXPECT_FALSE(LoadSvsStore(path, &store).ok());
  EXPECT_EQ(store.size(), 0u);  // all-or-nothing: nothing appended
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, SalvageRecoversValidPrefixOfTornSnapshot) {
  const std::string path = TempPath("torn.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, path).ok());
  size_t full_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full_size = static_cast<size_t>(in.tellg());
  }
  // Tear off the last ~40%: the footer, some records and likely part of one.
  ASSERT_TRUE(sim::FaultInjector::TruncateFile(path, full_size * 6 / 10).ok());

  // Default mode refuses the torn file outright.
  core::SvsStore strict;
  EXPECT_FALSE(LoadSvsStore(path, &strict).ok());
  EXPECT_EQ(strict.size(), 0u);

  // Salvage mode recovers the intact record prefix.
  core::SvsStore salvage;
  SnapshotLoadReport report;
  SnapshotLoadOptions options;
  options.salvage = true;
  ASSERT_TRUE(LoadSvsStore(path, &salvage, options, &report).ok());
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_expected, original.size());
  EXPECT_LT(report.records_loaded, original.size());
  EXPECT_GT(report.records_loaded, 0u);
  EXPECT_EQ(salvage.size(), report.records_loaded);
  // Whatever survived is bit-identical to the original prefix.
  ExpectStoresEqual(original, salvage, static_cast<size_t>(report.records_loaded));
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, FailedLoadLeavesExistingStoreUntouched) {
  const std::string good_path = TempPath("good.vzss");
  const std::string bad_path = TempPath("bad.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, good_path).ok());
  ASSERT_TRUE(SaveSvsStore(original, bad_path).ok());
  ASSERT_TRUE(sim::FaultInjector::FlipBits(bad_path, 3, /*seed=*/7).ok());

  core::SvsStore store;
  ASSERT_TRUE(LoadSvsStore(good_path, &store).ok());
  const size_t before = store.size();
  EXPECT_FALSE(LoadSvsStore(bad_path, &store).ok());
  EXPECT_EQ(store.size(), before);
  ExpectStoresEqual(original, store, before);
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST(SvsSnapshotTest, AtomicSaveFailureLeavesPreviousSnapshot) {
  const std::string path = TempPath("atomic.vzss");
  core::SvsStore original;
  FillStore(&original);
  ASSERT_TRUE(SaveSvsStore(original, path).ok());
  // A save to an unwritable location must fail without leaving debris.
  core::SvsStore other;
  FillStore(&other);
  EXPECT_FALSE(
      SaveSvsStore(other, "/nonexistent-vz-dir/snap.vzss").ok());
  // The original file still loads cleanly.
  core::SvsStore loaded;
  ASSERT_TRUE(LoadSvsStore(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(SvsSnapshotTest, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.vzss");
  core::SvsStore empty;
  ASSERT_TRUE(SaveSvsStore(empty, path).ok());
  core::SvsStore loaded;
  ASSERT_TRUE(LoadSvsStore(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vz::io
