// WAL unit coverage: framing round trips, dense-LSN enforcement, segment
// rotation, group-commit durability, checkpoint compaction — plus the
// salvage fuzzer: under seeded torn-tail, partial-fsync (zeroed tail) and
// bit-flip faults, `Wal::Open` must recover exactly a prefix of the
// committed records and stay appendable. Every acked-but-then-damaged
// suffix is bounded data loss; a phantom, reordered or corrupted record
// surviving salvage would be corruption, which is why this suite exists.
#include "io/wal.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/fault_injector.h"

namespace vz::io {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove(dir.c_str());
  return dir;
}

std::string SegmentName(uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%010" PRIu64 ".vzwal", seq);
  return name;
}

void RemoveDirRecursive(const std::string& dir) {
  for (uint64_t seq = 0; seq < 64; ++seq) {
    std::remove((dir + "/" + SegmentName(seq)).c_str());
  }
  ::rmdir(dir.c_str());
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WalRecord MakeRecord(uint64_t i) {
  WalRecord record;
  record.session_id = 100 + (i % 3);
  record.sequence = i;
  record.op = static_cast<uint32_t>(4 + (i % 2));
  record.payload = "op-payload-" + std::string(i % 37, 'x') +
                   std::to_string(i);
  return record;
}

void ExpectRecordsEqual(const WalRecord& got, const WalRecord& want,
                        uint64_t lsn) {
  EXPECT_EQ(got.lsn, lsn);
  EXPECT_EQ(got.session_id, want.session_id);
  EXPECT_EQ(got.sequence, want.sequence);
  EXPECT_EQ(got.op, want.op);
  EXPECT_EQ(got.payload, want.payload);
}

TEST(WalTest, AppendAssignsDenseLsnsAndSurvivesReopen) {
  const std::string dir = TempDir("wal_roundtrip");
  WalOptions options;
  options.dir = dir;
  options.fsync_interval_ms = 0;
  std::vector<WalRecord> committed;
  {
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 1; i <= 20; ++i) {
      WalRecord record = MakeRecord(i);
      auto lsn = (*wal)->Append(record);
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      EXPECT_EQ(*lsn, i);
      committed.push_back(record);
    }
    ASSERT_TRUE((*wal)->WaitDurable(20).ok());
    EXPECT_GE((*wal)->durable_lsn(), 20u);
    EXPECT_EQ((*wal)->stats().appends, 20u);
    EXPECT_GT((*wal)->stats().fsyncs, 0u);
  }
  // Reopen: the chain continues where it left off.
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->last_lsn(), 20u);
  EXPECT_EQ((*wal)->stats().salvaged_bytes, 0u);
  auto records = (*wal)->ReadFrom(0, 100);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 20u);
  for (size_t i = 0; i < records->size(); ++i) {
    ExpectRecordsEqual((*records)[i], committed[i], i + 1);
  }
  // Windowed read, as the shipping RPC uses it.
  auto window = (*wal)->ReadFrom(5, 3);
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->size(), 3u);
  EXPECT_EQ((*window)[0].lsn, 6u);
  EXPECT_EQ((*window)[2].lsn, 8u);
  auto next = (*wal)->Append(MakeRecord(21));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 21u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, ExplicitLsnMustContinueTheChain) {
  const std::string dir = TempDir("wal_chain");
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  WalRecord record = MakeRecord(1);
  record.lsn = 1;  // standby path: mirror the primary's numbering
  ASSERT_TRUE((*wal)->Append(record).ok());
  record.lsn = 5;  // a gap would silently lose 2..4 on replay
  auto gap = (*wal)->Append(record);
  EXPECT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kInvalidArgument);
  record.lsn = 2;
  EXPECT_TRUE((*wal)->Append(record).ok());
  RemoveDirRecursive(dir);
}

TEST(WalTest, StartLsnFloorSeedsNumberingAfterCompaction) {
  const std::string dir = TempDir("wal_floor");
  WalOptions options;
  options.dir = dir;
  options.start_lsn = 41;  // a checkpoint already covers 1..41
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->last_lsn(), 41u);
  EXPECT_EQ((*wal)->base_lsn(), 41u);
  auto lsn = (*wal)->Append(MakeRecord(42));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 42u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, RotationSpansSegmentsTransparently) {
  const std::string dir = TempDir("wal_rotate");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 256;  // force frequent rotation
  std::vector<WalRecord> committed;
  {
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 1; i <= 40; ++i) {
      WalRecord record = MakeRecord(i);
      ASSERT_TRUE((*wal)->Append(record).ok());
      committed.push_back(record);
    }
    EXPECT_GT((*wal)->stats().segments_created, 3u);
  }
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->last_lsn(), 40u);
  auto records = (*wal)->ReadFrom(0, 100);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 40u);
  for (size_t i = 0; i < records->size(); ++i) {
    ExpectRecordsEqual((*records)[i], committed[i], i + 1);
  }
  // Replay sees the same stream as ReadFrom.
  uint64_t replayed = 0;
  ASSERT_TRUE((*wal)
                  ->Replay(10,
                           [&](const WalRecord& record) {
                             EXPECT_EQ(record.lsn, 11 + replayed);
                             ++replayed;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(replayed, 30u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, CompactionDeletesCoveredSegmentsAndAdvancesBase) {
  const std::string dir = TempDir("wal_compact");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 256;
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok());
  for (uint64_t i = 1; i <= 30; ++i) {
    ASSERT_TRUE((*wal)->Append(MakeRecord(i)).ok());
  }
  const uint64_t bytes_before = (*wal)->live_bytes();
  ASSERT_TRUE((*wal)->Compact(30).ok());
  EXPECT_EQ((*wal)->base_lsn(), 30u);
  EXPECT_LT((*wal)->live_bytes(), bytes_before);
  EXPECT_GT((*wal)->stats().segments_deleted, 0u);
  // Compacted records are durable by definition (the checkpoint owns them).
  EXPECT_GE((*wal)->durable_lsn(), 30u);
  // Shipping from below the base must refuse, not return a gap.
  auto gone = (*wal)->ReadFrom(10, 100);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kOutOfRange);
  // The log keeps going, and a reopen continues from the compacted chain.
  ASSERT_TRUE((*wal)->Append(MakeRecord(31)).ok());
  wal->reset();
  options.start_lsn = 30;
  auto reopened = Wal::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->last_lsn(), 31u);
  auto tail = (*reopened)->ReadFrom(30, 10);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].lsn, 31u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, CheckpointMetaRoundTripAndCorruptionDetection) {
  const std::string dir = TempDir("wal_ckpt");
  ::mkdir(dir.c_str(), 0777);  // tolerate leftovers from a failed prior run
  WalCheckpoint checkpoint;
  checkpoint.lsn = 77;
  checkpoint.now_ms = 123456;
  checkpoint.ingest.frames_offered = 10;
  checkpoint.ingest.duplicates_dropped = 2;
  checkpoint.ingest.raw_feature_bytes = 4096;
  WalCheckpoint::Camera camera;
  camera.camera = "cam-a";
  camera.stats.frames_offered = 7;
  camera.stats.frames_accepted = 6;
  camera.stats.last_frame_ms = 900;
  camera.last_frame_id = 41;
  camera.expected_dim = 32;
  checkpoint.cameras.push_back(camera);
  WalCheckpoint::Session session;
  session.session_id = 4242;
  session.evicted_up_to = 3;
  session.responses.emplace_back(4, std::string("resp-4"));
  session.responses.emplace_back(5, std::string("resp-5"));
  checkpoint.sessions.push_back(session);

  const std::string path = WalCheckpointMetaPath(dir, checkpoint.lsn);
  ASSERT_TRUE(SaveWalCheckpointMeta(checkpoint, path).ok());
  auto loaded = LoadWalCheckpointMeta(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lsn, 77u);
  EXPECT_EQ(loaded->now_ms, 123456);
  EXPECT_EQ(loaded->ingest.frames_offered, 10u);
  EXPECT_EQ(loaded->ingest.duplicates_dropped, 2u);
  EXPECT_EQ(loaded->ingest.raw_feature_bytes, 4096u);
  ASSERT_EQ(loaded->cameras.size(), 1u);
  EXPECT_EQ(loaded->cameras[0].camera, "cam-a");
  EXPECT_EQ(loaded->cameras[0].stats.frames_accepted, 6u);
  EXPECT_EQ(loaded->cameras[0].last_frame_id, 41);
  EXPECT_EQ(loaded->cameras[0].expected_dim, 32u);
  ASSERT_EQ(loaded->sessions.size(), 1u);
  EXPECT_EQ(loaded->sessions[0].session_id, 4242u);
  EXPECT_EQ(loaded->sessions[0].evicted_up_to, 3u);
  ASSERT_EQ(loaded->sessions[0].responses.size(), 2u);
  EXPECT_EQ(loaded->sessions[0].responses[1].second, "resp-5");

  auto lsns = ListWalCheckpointLsns(dir);
  ASSERT_TRUE(lsns.ok());
  ASSERT_EQ(lsns->size(), 1u);
  EXPECT_EQ((*lsns)[0], 77u);

  // A flipped bit anywhere must fail the manifest CRC.
  ASSERT_TRUE(sim::FaultInjector::FlipBits(path, 1, 99).ok());
  auto corrupt = LoadWalCheckpointMeta(path);
  EXPECT_FALSE(corrupt.ok());

  RemoveWalCheckpointsBelow(dir, 100);
  auto removed = ListWalCheckpointLsns(dir);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed->empty());
  ::rmdir(dir.c_str());
}

TEST(WalTest, TornHeaderDropsTheSegmentButStaysAppendable) {
  const std::string dir = TempDir("wal_torn_header");
  WalOptions options;
  options.dir = dir;
  {
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(MakeRecord(1)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  const std::string segment = dir + "/" + SegmentName(1);
  ASSERT_TRUE(sim::FaultInjector::TruncateFile(segment, 7).ok());
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->last_lsn(), 0u);
  EXPECT_GT((*wal)->stats().salvaged_bytes, 0u);
  auto lsn = (*wal)->Append(MakeRecord(1));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, MidChainDamageStrandsLaterSegments) {
  const std::string dir = TempDir("wal_stranded");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 256;
  size_t segments = 0;
  {
    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE((*wal)->Append(MakeRecord(i)).ok());
    }
    segments = (*wal)->stats().segments_created;
    ASSERT_GE(segments, 3u);
  }
  // Tear the tail of a MIDDLE segment: its suffix and every later segment
  // are stranded — recovery must keep the strict prefix, never bridge the
  // hole.
  const std::string middle = dir + "/" + SegmentName(2);
  auto bytes = ReadFileBytes(middle);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(sim::FaultInjector::TruncateTail(middle, 5).ok());
  auto wal = Wal::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const uint64_t recovered = (*wal)->last_lsn();
  EXPECT_GT((*wal)->stats().salvaged_bytes, 0u);
  EXPECT_LT(recovered, 30u);
  auto records = (*wal)->ReadFrom(0, 100);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), recovered);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
  }
  // Later segment files are gone, not lurking with unreachable records.
  for (uint64_t seq = 3; seq <= segments; ++seq) {
    EXPECT_FALSE(ReadFileBytes(dir + "/" + SegmentName(seq)).ok())
        << "segment " << seq << " should have been dropped";
  }
  RemoveDirRecursive(dir);
}

// --- The salvage fuzzer (satellite: every prefix of committed records must
// --- be recoverable under torn-tail, partial-fsync and bit-flip faults).

struct CommittedLog {
  std::vector<WalRecord> records;
  /// Absolute end offset of each record in the (single) segment file.
  std::vector<size_t> end_offsets;
  std::string pristine_bytes;
  std::string segment_path;
};

CommittedLog BuildPristineLog(const std::string& dir, size_t count) {
  CommittedLog log;
  WalOptions options;
  options.dir = dir;
  options.fsync_interval_ms = 0;
  auto wal = Wal::Open(options);
  EXPECT_TRUE(wal.ok());
  const size_t header_bytes = 20;  // magic, version, start lsn, header crc
  for (uint64_t i = 1; i <= count; ++i) {
    WalRecord record = MakeRecord(i);
    // Vary sizes so faults land at every kind of intra-record offset.
    record.payload.append(i % 5 * 17, 'y');
    EXPECT_TRUE((*wal)->Append(record).ok());
    log.records.push_back(record);
    log.end_offsets.push_back(header_bytes +
                              (*wal)->stats().appended_bytes);
  }
  EXPECT_TRUE((*wal)->Sync().ok());
  wal->reset();
  log.segment_path = dir + "/" + SegmentName(1);
  auto bytes = ReadFileBytes(log.segment_path);
  EXPECT_TRUE(bytes.ok());
  log.pristine_bytes = *bytes;
  return log;
}

TEST(WalSalvageFuzzTest, EveryPrefixOfCommittedRecordsIsRecovered) {
  const std::string dir = TempDir("wal_fuzz");
  const CommittedLog log = BuildPristineLog(dir, 24);
  ASSERT_EQ(log.end_offsets.back(), log.pristine_bytes.size());

  WalOptions options;
  options.dir = dir;
  options.fsync_interval_ms = 0;

  const int seeds = 60;
  int torn = 0, zeroed = 0, flipped = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    WriteFileBytes(log.segment_path, log.pristine_bytes);
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 1);
    const size_t file_bytes = log.pristine_bytes.size();
    // Damage reaches anywhere from 1 byte into the tail to the whole file.
    const size_t damage =
        1 + static_cast<size_t>(rng.UniformUint64(file_bytes));
    size_t expected = log.records.size();  // prefix length (exact for
                                           // tail-shape faults)
    size_t post_fault_bytes = file_bytes;  // file length after the fault
    size_t kept_prefix = file_bytes;       // undamaged prefix length
    bool exact = true;
    switch (seed % 3) {
      case 0: {  // torn tail: crash mid-append
        ASSERT_TRUE(
            sim::FaultInjector::TruncateTail(log.segment_path, damage).ok());
        ++torn;
        const size_t kept = file_bytes - damage;
        post_fault_bytes = kept;
        kept_prefix = kept;
        expected = 0;
        for (size_t i = 0; i < log.end_offsets.size(); ++i) {
          if (log.end_offsets[i] <= kept) expected = i + 1;
        }
        break;
      }
      case 1: {  // partial fsync: full length, zeroed suffix
        ASSERT_TRUE(
            sim::FaultInjector::ShortWriteTail(log.segment_path, damage)
                .ok());
        ++zeroed;
        const size_t kept = file_bytes - damage;
        kept_prefix = kept;
        expected = 0;
        for (size_t i = 0; i < log.end_offsets.size(); ++i) {
          if (log.end_offsets[i] <= kept) expected = i + 1;
        }
        break;
      }
      default: {  // media corruption at arbitrary offsets
        ASSERT_TRUE(sim::FaultInjector::FlipBits(
                        log.segment_path, 1 + seed % 4,
                        static_cast<uint64_t>(seed) * 31 + 5)
                        .ok());
        ++flipped;
        exact = false;  // the flip offsets are the injector's business; the
                        // prefix property below still must hold
        break;
      }
    }

    auto wal = Wal::Open(options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    auto recovered = (*wal)->ReadFrom(0, log.records.size() + 1);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    if (exact) {
      ASSERT_EQ(recovered->size(), expected);
      // Salvage accounting is exact: every byte past the last valid record
      // is counted as discarded. (Zero when the tear landed precisely on a
      // record boundary — then the fault itself, not salvage, ate the tail.)
      // Damage that reaches into the 20-byte segment header drops the whole
      // file.
      const size_t header_extent = 20;
      size_t expected_salvaged;
      if (kept_prefix < header_extent) {
        expected_salvaged = post_fault_bytes;
      } else {
        const size_t boundary =
            expected > 0 ? log.end_offsets[expected - 1] : header_extent;
        expected_salvaged = post_fault_bytes - boundary;
      }
      EXPECT_EQ((*wal)->stats().salvaged_bytes, expected_salvaged);
    } else {
      ASSERT_LE(recovered->size(), log.records.size());
    }
    // The strict prefix property: record i of the salvage IS record i of
    // the commit order, byte for byte. No phantom, reordered, or mutated
    // record may survive.
    for (size_t i = 0; i < recovered->size(); ++i) {
      ExpectRecordsEqual((*recovered)[i], log.records[i], i + 1);
    }
    // Salvage leaves an appendable log: the next record continues the
    // chain right after the recovered prefix and survives a reopen.
    WalRecord next = MakeRecord(900 + static_cast<uint64_t>(seed));
    auto lsn = (*wal)->Append(next);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, recovered->size() + 1);
    ASSERT_TRUE((*wal)->Sync().ok());
    wal->reset();
    auto reopened = Wal::Open(options);
    ASSERT_TRUE(reopened.ok());
    auto all = (*reopened)->ReadFrom(0, log.records.size() + 2);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), recovered->size() + 1);
    ExpectRecordsEqual(all->back(), next, recovered->size() + 1);
    reopened->reset();
    // Reset the directory for the next seed (the fuzzed segment is
    // rewritten from the pristine image at the top of the loop; stray
    // rotations cannot happen at these sizes).
  }
  EXPECT_GT(torn, 0);
  EXPECT_GT(zeroed, 0);
  EXPECT_GT(flipped, 0);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace vz::io
