// Determinism contract of the parallel query path: for identical options and
// ingestion, a system running with a thread pool must return bit-identical
// query results to the serial (`num_threads = 1`) system — same SVS ids in
// the same order, same GPU accounting, same camera counts. Also the
// deadline/admission drills: timed-out queries return ranked partial results
// (bit-identical across thread counts under the simulated clock), and a
// saturated admission gate sheds with kResourceExhausted.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/sim_clock.h"
#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 2;
  options.highway_cameras = 2;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 5;
  return options;
}

VideoZillaOptions FastVzOptions(size_t num_threads) {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 30'000;
  options.segmenter.t_split_ms = 10'000;
  options.omd.max_vectors = 64;
  options.intra.recluster_interval = 2;
  options.boundary_scale = 1.3;
  options.enable_keyframe_selection = false;
  options.num_threads = num_threads;
  return options;
}

// One fully built system plus its verifier, at the given thread count.
struct Rig {
  explicit Rig(size_t num_threads)
      : deployment(SmallDeployment()),
        system(FastVzOptions(num_threads)),
        heavy(/*tpr=*/1.0, /*fpr=*/0.0, /*seed=*/3),
        verifier(&deployment.space(), &deployment.log(), &heavy) {
    EXPECT_TRUE(deployment.IngestAll(&system).ok());
    system.SetVerifier(&verifier);
  }

  sim::Deployment deployment;
  VideoZilla system;
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier;
};

void ExpectIdenticalDirectResults(const DirectQueryResult& serial,
                                  const DirectQueryResult& parallel) {
  EXPECT_EQ(serial.candidate_svss, parallel.candidate_svss);
  EXPECT_EQ(serial.matched_svss, parallel.matched_svss);
  // Bit-identical by design, hence exact equality (not near-equality).
  EXPECT_EQ(serial.total_gpu_ms, parallel.total_gpu_ms);
  EXPECT_EQ(serial.bottleneck_camera_gpu_ms,
            parallel.bottleneck_camera_gpu_ms);
  EXPECT_EQ(serial.frames_processed, parallel.frames_processed);
  EXPECT_EQ(serial.cameras_searched, parallel.cameras_searched);
  EXPECT_EQ(serial.per_camera_gpu_ms, parallel.per_camera_gpu_ms);
}

TEST(ParallelQueryTest, DirectQueryMatchesSerialBitIdentically) {
  Rig serial(1);
  Rig parallel(4);
  ASSERT_NE(parallel.system.thread_pool(), nullptr);
  ASSERT_EQ(serial.system.thread_pool(), nullptr);
  for (int object_class :
       {sim::kCar, sim::kBoat, sim::kTrain, sim::kFireHydrant}) {
    Rng serial_rng(7);
    Rng parallel_rng(7);
    const FeatureVector serial_query =
        serial.deployment.MakeQueryFeature(object_class, &serial_rng);
    const FeatureVector parallel_query =
        parallel.deployment.MakeQueryFeature(object_class, &parallel_rng);
    ASSERT_EQ(serial_query, parallel_query);
    auto serial_result = serial.system.DirectQuery(serial_query);
    auto parallel_result = parallel.system.DirectQuery(parallel_query);
    ASSERT_TRUE(serial_result.ok());
    ASSERT_TRUE(parallel_result.ok());
    ExpectIdenticalDirectResults(*serial_result, *parallel_result);
  }
}

TEST(ParallelQueryTest, DirectQueryMatchesSerialInEveryIndexMode) {
  Rig serial(1);
  Rig parallel(4);
  Rng rng(13);
  const FeatureVector query =
      serial.deployment.MakeQueryFeature(sim::kBoat, &rng);
  for (IndexMode mode : {IndexMode::kHierarchical, IndexMode::kIntraOnly,
                         IndexMode::kFlatSvs, IndexMode::kFlat}) {
    serial.system.SetIndexMode(mode);
    parallel.system.SetIndexMode(mode);
    auto serial_result = serial.system.DirectQuery(query);
    auto parallel_result = parallel.system.DirectQuery(query);
    ASSERT_TRUE(serial_result.ok());
    ASSERT_TRUE(parallel_result.ok());
    ExpectIdenticalDirectResults(*serial_result, *parallel_result);
  }
}

TEST(ParallelQueryTest, ClusteringQueryMatchesSerialBitIdentically) {
  Rig serial(1);
  Rig parallel(4);
  ASSERT_GT(serial.system.svs_store().size(), 0u);
  ASSERT_EQ(serial.system.svs_store().size(),
            parallel.system.svs_store().size());

  // Hierarchical path and — via kIntraOnly — the flat OMD-scan fallback,
  // which is the parallel + cached path.
  for (IndexMode mode : {IndexMode::kHierarchical, IndexMode::kIntraOnly}) {
    serial.system.SetIndexMode(mode);
    parallel.system.SetIndexMode(mode);
    for (SvsId target : {SvsId{0}, SvsId{1}}) {
      auto serial_result = serial.system.ClusteringQuery(target);
      auto parallel_result = parallel.system.ClusteringQuery(target);
      ASSERT_TRUE(serial_result.ok());
      ASSERT_TRUE(parallel_result.ok());
      EXPECT_EQ(serial_result->similar_svss, parallel_result->similar_svss);
      EXPECT_EQ(serial_result->cameras_contributing,
                parallel_result->cameras_contributing);
    }
  }
}

TEST(ParallelQueryTest, ClusteringQueryByMapMatchesSerial) {
  Rig serial(1);
  Rig parallel(4);
  serial.system.SetIndexMode(IndexMode::kIntraOnly);  // force flat fallback
  parallel.system.SetIndexMode(IndexMode::kIntraOnly);
  auto svs = serial.system.svs_store().Get(0);
  ASSERT_TRUE(svs.ok());
  const FeatureMap target = (*svs)->features();  // copy: not a stored id
  auto serial_result = serial.system.ClusteringQuery(target);
  auto parallel_result = parallel.system.ClusteringQuery(target);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(serial_result->similar_svss, parallel_result->similar_svss);
}

// The deadline/admission drills only need a corpus big enough to have
// multi-camera candidates — a quarter of SmallDeployment keeps the many
// rigs these tests build affordable under ThreadSanitizer on small CI
// machines.
sim::DeploymentOptions TinyDeployment() {
  sim::DeploymentOptions options = SmallDeployment();
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.feed_duration_ms = 45'000;
  return options;
}

// Rig whose deadlines run on a simulated clock: expiry is fully
// deterministic (a deadline is either expired before the query starts or
// never fires during it).
struct DeadlineRig {
  explicit DeadlineRig(size_t num_threads,
                       AdmissionOptions admission = AdmissionOptions())
      : source(&clock),
        deployment(TinyDeployment()),
        system(WithClock(FastVzOptions(num_threads), &source, admission)),
        heavy(/*tpr=*/1.0, /*fpr=*/0.0, /*seed=*/3),
        verifier(&deployment.space(), &deployment.log(), &heavy) {
    EXPECT_TRUE(deployment.IngestAll(&system).ok());
    system.SetVerifier(&verifier);
  }

  static VideoZillaOptions WithClock(VideoZillaOptions options,
                                     const TimeSource* source,
                                     const AdmissionOptions& admission) {
    options.time_source = source;
    options.admission = admission;
    return options;
  }

  SimClock clock;
  SimClockTimeSource source;
  sim::Deployment deployment;
  VideoZilla system;
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier;
};

TEST(DeadlineQueryTest, ExpiredDeadlineReturnsEmptyValidResultImmediately) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    DeadlineRig rig(threads);
    const uint64_t solves_before = rig.system.omd().num_computations();
    QueryConstraints constraints;
    constraints.deadline_ms = 0;  // already expired on entry
    auto result = rig.system.ClusteringQuery(SvsId{0}, constraints);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_TRUE(result->timed_out);
    EXPECT_DOUBLE_EQ(result->completed_fraction, 0.0);
    EXPECT_TRUE(result->similar_svss.empty());
    // Early return at the entry checkpoint: no OMD work was even attempted.
    EXPECT_EQ(rig.system.omd().num_computations(), solves_before);
    EXPECT_EQ(rig.system.query_load_stats().timed_out, 1u);
    // Under a SimClock the checkpoint can never overshoot the deadline.
    EXPECT_EQ(rig.system.query_load_stats().timeout_overshoot_ms_total, 0);
  }
}

TEST(DeadlineQueryTest, ExpiredDeadlineDirectQueryIsEmptyAndValid) {
  DeadlineRig rig(4);
  Rng rng(7);
  const FeatureVector query =
      rig.deployment.MakeQueryFeature(sim::kCar, &rng);
  QueryConstraints constraints;
  constraints.deadline_ms = -5;
  auto result = rig.system.DirectQuery(query, constraints);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_DOUBLE_EQ(result->completed_fraction, 0.0);
  EXPECT_TRUE(result->candidate_svss.empty());
  EXPECT_TRUE(result->matched_svss.empty());
  EXPECT_DOUBLE_EQ(result->total_gpu_ms, 0.0);
}

TEST(DeadlineQueryTest, TimedOutResultsAreIdenticalAcrossThreadCounts) {
  // The acceptance drill: a timed-out ClusteringQuery returns its ranked
  // partial results bit-identically for num_threads 1 vs N. Under the
  // simulated clock the expired-deadline partial is the deterministic empty
  // prefix for every thread count.
  DeadlineRig serial(1);
  DeadlineRig parallel(4);
  QueryConstraints constraints;
  constraints.deadline_ms = 0;
  auto serial_result = serial.system.ClusteringQuery(SvsId{0}, constraints);
  auto parallel_result = parallel.system.ClusteringQuery(SvsId{0}, constraints);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(serial_result->similar_svss, parallel_result->similar_svss);
  EXPECT_EQ(serial_result->timed_out, parallel_result->timed_out);
  EXPECT_EQ(serial_result->completed_fraction,
            parallel_result->completed_fraction);
  EXPECT_EQ(serial_result->cameras_contributing,
            parallel_result->cameras_contributing);
}

TEST(DeadlineQueryTest, GenerousDeadlineReproducesLegacyResultsBitIdentically) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    DeadlineRig rig(threads);
    rig.system.SetIndexMode(IndexMode::kIntraOnly);  // flat OMD fallback
    QueryConstraints generous;
    generous.deadline_ms = 1'000'000;  // never fires under a frozen SimClock
    auto with_deadline = rig.system.ClusteringQuery(SvsId{0}, generous);
    auto without = rig.system.ClusteringQuery(SvsId{0});
    ASSERT_TRUE(with_deadline.ok()) << "threads=" << threads;
    ASSERT_TRUE(without.ok());
    EXPECT_FALSE(with_deadline->timed_out);
    EXPECT_DOUBLE_EQ(with_deadline->completed_fraction, 1.0);
    EXPECT_EQ(with_deadline->similar_svss, without->similar_svss);

    Rng rng(7);
    const FeatureVector query =
        rig.deployment.MakeQueryFeature(sim::kBoat, &rng);
    auto direct_with = rig.system.DirectQuery(query, generous);
    auto direct_without = rig.system.DirectQuery(query);
    ASSERT_TRUE(direct_with.ok());
    ASSERT_TRUE(direct_without.ok());
    EXPECT_FALSE(direct_with->timed_out);
    EXPECT_DOUBLE_EQ(direct_with->completed_fraction, 1.0);
    ExpectIdenticalDirectResults(*direct_with, *direct_without);
  }
}

TEST(DeadlineQueryTest, ExternalCancelTokenStopsTheQuery) {
  DeadlineRig rig(1);
  CancelToken token;
  token.Cancel();  // fired before the query starts
  QueryConstraints constraints;
  constraints.cancel = &token;
  auto result = rig.system.ClusteringQuery(SvsId{0}, constraints);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_TRUE(result->similar_svss.empty());
}

// Verifier that parks the first Verify call until released — holds a query
// in flight so the admission gate can be observed saturated.
class BlockingVerifier : public ObjectVerifier {
 public:
  Verification Verify(const Svs&, const FeatureVector&) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [this] { return released_; });
    return Verification{};
  }

  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(AdmissionQueryTest, SaturatedGateShedsWithResourceExhausted) {
  AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.max_queue = 0;
  admission.retry_after_hint_ms = 25;
  DeadlineRig rig(1, admission);
  // Every SVS is a candidate under the frame-level scan, so the blocking
  // verifier is guaranteed to be entered.
  rig.system.SetIndexMode(IndexMode::kFlat);
  BlockingVerifier blocker;
  rig.system.SetVerifier(&blocker);
  Rng rng(7);
  const FeatureVector query = rig.deployment.MakeQueryFeature(sim::kCar, &rng);

  std::thread holder([&] {
    auto held = rig.system.DirectQuery(query);
    EXPECT_TRUE(held.ok());
  });
  blocker.WaitUntilEntered();  // the only slot is now held mid-verification

  auto shed = rig.system.ClusteringQuery(SvsId{0});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("retry after 25ms"),
            std::string::npos);

  blocker.Release();
  holder.join();
  const QueryLoadStats stats = rig.system.query_load_stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.max_in_flight, 1u);
}

TEST(AdmissionQueryTest, OversizedQueriesAreRoutedToFastOmd) {
  // An exact-mode system with a tiny cost threshold: every flat clustering
  // scan is rerouted to thresholded OMD, matching a natively thresholded
  // system's answers exactly.
  AdmissionOptions routing;
  routing.fast_omd_cost_threshold = 1;
  routing.fast_omd_alpha = 0.6;
  DeadlineRig routed(1, routing);
  routed.system.omd().set_mode(OmdMode::kExact);
  routed.system.SetIndexMode(IndexMode::kIntraOnly);
  DeadlineRig thresholded(1);  // FastVzOptions default mode is kThresholded
  thresholded.system.SetIndexMode(IndexMode::kIntraOnly);

  auto routed_result = routed.system.ClusteringQuery(SvsId{0});
  auto native_result = thresholded.system.ClusteringQuery(SvsId{0});
  ASSERT_TRUE(routed_result.ok());
  ASSERT_TRUE(native_result.ok());
  EXPECT_TRUE(routed_result->fast_omd_routed);
  EXPECT_FALSE(native_result->fast_omd_routed);
  EXPECT_EQ(routed_result->similar_svss, native_result->similar_svss);
  EXPECT_EQ(routed.system.query_load_stats().fast_omd_routed, 1u);
  // The global configuration was not perturbed by the per-query reroute.
  EXPECT_EQ(routed.system.omd().options().mode, OmdMode::kExact);
}

TEST(ParallelQueryTest, IngestionIsIdenticalAcrossThreadCounts) {
  // Ingestion itself stays serial, but the OMD pool is attached during it;
  // the derived state must not depend on the thread count.
  Rig serial(1);
  Rig parallel(4);
  EXPECT_EQ(serial.system.svs_store().size(),
            parallel.system.svs_store().size());
  EXPECT_EQ(serial.system.ingest_stats().svs_created,
            parallel.system.ingest_stats().svs_created);
  EXPECT_EQ(serial.system.cameras(), parallel.system.cameras());
  for (SvsId id : serial.system.svs_store().AllIds()) {
    auto a = serial.system.svs_store().Get(id);
    auto b = parallel.system.svs_store().Get(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->camera(), (*b)->camera());
    EXPECT_EQ((*a)->start_ms(), (*b)->start_ms());
    EXPECT_EQ((*a)->end_ms(), (*b)->end_ms());
    EXPECT_EQ((*a)->features().size(), (*b)->features().size());
  }
}

}  // namespace
}  // namespace vz::core
