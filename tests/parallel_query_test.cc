// Determinism contract of the parallel query path: for identical options and
// ingestion, a system running with a thread pool must return bit-identical
// query results to the serial (`num_threads = 1`) system — same SVS ids in
// the same order, same GPU accounting, same camera counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 2;
  options.highway_cameras = 2;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 5;
  return options;
}

VideoZillaOptions FastVzOptions(size_t num_threads) {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 30'000;
  options.segmenter.t_split_ms = 10'000;
  options.omd.max_vectors = 64;
  options.intra.recluster_interval = 2;
  options.boundary_scale = 1.3;
  options.enable_keyframe_selection = false;
  options.num_threads = num_threads;
  return options;
}

// One fully built system plus its verifier, at the given thread count.
struct Rig {
  explicit Rig(size_t num_threads)
      : deployment(SmallDeployment()),
        system(FastVzOptions(num_threads)),
        heavy(/*tpr=*/1.0, /*fpr=*/0.0, /*seed=*/3),
        verifier(&deployment.space(), &deployment.log(), &heavy) {
    EXPECT_TRUE(deployment.IngestAll(&system).ok());
    system.SetVerifier(&verifier);
  }

  sim::Deployment deployment;
  VideoZilla system;
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier;
};

void ExpectIdenticalDirectResults(const DirectQueryResult& serial,
                                  const DirectQueryResult& parallel) {
  EXPECT_EQ(serial.candidate_svss, parallel.candidate_svss);
  EXPECT_EQ(serial.matched_svss, parallel.matched_svss);
  // Bit-identical by design, hence exact equality (not near-equality).
  EXPECT_EQ(serial.total_gpu_ms, parallel.total_gpu_ms);
  EXPECT_EQ(serial.bottleneck_camera_gpu_ms,
            parallel.bottleneck_camera_gpu_ms);
  EXPECT_EQ(serial.frames_processed, parallel.frames_processed);
  EXPECT_EQ(serial.cameras_searched, parallel.cameras_searched);
  EXPECT_EQ(serial.per_camera_gpu_ms, parallel.per_camera_gpu_ms);
}

TEST(ParallelQueryTest, DirectQueryMatchesSerialBitIdentically) {
  Rig serial(1);
  Rig parallel(4);
  ASSERT_NE(parallel.system.thread_pool(), nullptr);
  ASSERT_EQ(serial.system.thread_pool(), nullptr);
  for (int object_class :
       {sim::kCar, sim::kBoat, sim::kTrain, sim::kFireHydrant}) {
    Rng serial_rng(7);
    Rng parallel_rng(7);
    const FeatureVector serial_query =
        serial.deployment.MakeQueryFeature(object_class, &serial_rng);
    const FeatureVector parallel_query =
        parallel.deployment.MakeQueryFeature(object_class, &parallel_rng);
    ASSERT_EQ(serial_query, parallel_query);
    auto serial_result = serial.system.DirectQuery(serial_query);
    auto parallel_result = parallel.system.DirectQuery(parallel_query);
    ASSERT_TRUE(serial_result.ok());
    ASSERT_TRUE(parallel_result.ok());
    ExpectIdenticalDirectResults(*serial_result, *parallel_result);
  }
}

TEST(ParallelQueryTest, DirectQueryMatchesSerialInEveryIndexMode) {
  Rig serial(1);
  Rig parallel(4);
  Rng rng(13);
  const FeatureVector query =
      serial.deployment.MakeQueryFeature(sim::kBoat, &rng);
  for (IndexMode mode : {IndexMode::kHierarchical, IndexMode::kIntraOnly,
                         IndexMode::kFlatSvs, IndexMode::kFlat}) {
    serial.system.SetIndexMode(mode);
    parallel.system.SetIndexMode(mode);
    auto serial_result = serial.system.DirectQuery(query);
    auto parallel_result = parallel.system.DirectQuery(query);
    ASSERT_TRUE(serial_result.ok());
    ASSERT_TRUE(parallel_result.ok());
    ExpectIdenticalDirectResults(*serial_result, *parallel_result);
  }
}

TEST(ParallelQueryTest, ClusteringQueryMatchesSerialBitIdentically) {
  Rig serial(1);
  Rig parallel(4);
  ASSERT_GT(serial.system.svs_store().size(), 0u);
  ASSERT_EQ(serial.system.svs_store().size(),
            parallel.system.svs_store().size());

  // Hierarchical path and — via kIntraOnly — the flat OMD-scan fallback,
  // which is the parallel + cached path.
  for (IndexMode mode : {IndexMode::kHierarchical, IndexMode::kIntraOnly}) {
    serial.system.SetIndexMode(mode);
    parallel.system.SetIndexMode(mode);
    for (SvsId target : {SvsId{0}, SvsId{1}}) {
      auto serial_result = serial.system.ClusteringQuery(target);
      auto parallel_result = parallel.system.ClusteringQuery(target);
      ASSERT_TRUE(serial_result.ok());
      ASSERT_TRUE(parallel_result.ok());
      EXPECT_EQ(serial_result->similar_svss, parallel_result->similar_svss);
      EXPECT_EQ(serial_result->cameras_contributing,
                parallel_result->cameras_contributing);
    }
  }
}

TEST(ParallelQueryTest, ClusteringQueryByMapMatchesSerial) {
  Rig serial(1);
  Rig parallel(4);
  serial.system.SetIndexMode(IndexMode::kIntraOnly);  // force flat fallback
  parallel.system.SetIndexMode(IndexMode::kIntraOnly);
  auto svs = serial.system.svs_store().Get(0);
  ASSERT_TRUE(svs.ok());
  const FeatureMap target = (*svs)->features();  // copy: not a stored id
  auto serial_result = serial.system.ClusteringQuery(target);
  auto parallel_result = parallel.system.ClusteringQuery(target);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(serial_result->similar_svss, parallel_result->similar_svss);
}

TEST(ParallelQueryTest, IngestionIsIdenticalAcrossThreadCounts) {
  // Ingestion itself stays serial, but the OMD pool is attached during it;
  // the derived state must not depend on the thread count.
  Rig serial(1);
  Rig parallel(4);
  EXPECT_EQ(serial.system.svs_store().size(),
            parallel.system.svs_store().size());
  EXPECT_EQ(serial.system.ingest_stats().svs_created,
            parallel.system.ingest_stats().svs_created);
  EXPECT_EQ(serial.system.cameras(), parallel.system.cameras());
  for (SvsId id : serial.system.svs_store().AllIds()) {
    auto a = serial.system.svs_store().Get(id);
    auto b = parallel.system.svs_store().Get(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->camera(), (*b)->camera());
    EXPECT_EQ((*a)->start_ms(), (*b)->start_ms());
    EXPECT_EQ((*a)->end_ms(), (*b)->end_ms());
    EXPECT_EQ((*a)->features().size(), (*b)->features().size());
  }
}

}  // namespace
}  // namespace vz::core
