#include "core/intra_camera_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

class IntraIndexTest : public ::testing::Test {
 protected:
  IntraIndexTest() : metric_(&store_, &calc_) {}

  // Creates an SVS around `center` and returns its id.
  SvsId AddSvs(double center, uint64_t seed) {
    return store_.Create("cam", next_time_, next_time_ += 10,
                         MakeMap(12, 4, center, 0.3, seed));
  }

  SvsStore store_;
  OmdCalculator calc_;
  SvsMetric metric_;
  int64_t next_time_ = 0;
};

TEST_F(IntraIndexTest, InsertRejectsWrongCamera) {
  const SvsId other = store_.Create("other-cam", 0, 10, MakeMap(4, 4, 0, 1, 1));
  IntraCameraIndex index("cam", &store_, &metric_, IntraIndexOptions{},
                         Rng(1));
  EXPECT_FALSE(index.Insert(other).ok());
}

TEST_F(IntraIndexTest, InsertBuildsSvsRepresentative) {
  const SvsId id = AddSvs(0.0, 2);
  IntraCameraIndex index("cam", &store_, &metric_, IntraIndexOptions{},
                         Rng(2));
  ASSERT_TRUE(index.Insert(id).ok());
  auto svs = store_.Get(id);
  ASSERT_TRUE(svs.ok());
  EXPECT_FALSE((*svs)->representative().empty());
}

TEST_F(IntraIndexTest, ClustersSeparateDistinctScenes) {
  IntraIndexOptions options;
  options.recluster_interval = 1;
  IntraCameraIndex index("cam", &store_, &metric_, options, Rng(3));
  std::vector<SvsId> low;
  std::vector<SvsId> high;
  for (int i = 0; i < 4; ++i) {
    low.push_back(AddSvs(0.0, 10 + i));
    high.push_back(AddSvs(10.0, 20 + i));
  }
  for (SvsId id : low) ASSERT_TRUE(index.Insert(id).ok());
  for (SvsId id : high) ASSERT_TRUE(index.Insert(id).ok());
  ASSERT_GE(index.clusters().size(), 2u);
  // Every cluster must be pure: all-low or all-high.
  for (const auto& cluster : index.clusters()) {
    bool has_low = false;
    bool has_high = false;
    for (SvsId id : cluster.members) {
      auto svs = store_.Get(id);
      ASSERT_TRUE(svs.ok());
      const double c = (*svs)->features().Centroid()[0];
      (c < 5.0 ? has_low : has_high) = true;
    }
    EXPECT_FALSE(has_low && has_high);
  }
}

TEST_F(IntraIndexTest, FeatureSearchFindsMatchingSvs) {
  IntraIndexOptions options;
  options.recluster_interval = 1;
  IntraCameraIndex index("cam", &store_, &metric_, options, Rng(4));
  const SvsId low = AddSvs(0.0, 30);
  const SvsId high = AddSvs(10.0, 31);
  ASSERT_TRUE(index.Insert(low).ok());
  ASSERT_TRUE(index.Insert(high).ok());
  Rng rng(5);
  FeatureVector near_low(4);
  for (size_t d = 0; d < 4; ++d) {
    near_low[d] = static_cast<float>(rng.Gaussian(0.0, 0.1));
  }
  const auto result = index.FeatureSearch(near_low, 1.5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], low);
}

TEST_F(IntraIndexTest, NearestSvsUnderOmd) {
  IntraCameraIndex index("cam", &store_, &metric_, IntraIndexOptions{},
                         Rng(6));
  const SvsId a = AddSvs(0.0, 40);
  const SvsId b = AddSvs(10.0, 41);
  ASSERT_TRUE(index.Insert(a).ok());
  ASSERT_TRUE(index.Insert(b).ok());
  const FeatureMap query = MakeMap(8, 4, 9.5, 0.3, 42);
  auto nearest = index.NearestSvs(query);
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(*nearest, b);
}

TEST_F(IntraIndexTest, ClusterRepresentativeForMember) {
  IntraIndexOptions options;
  options.recluster_interval = 1;
  IntraCameraIndex index("cam", &store_, &metric_, options, Rng(7));
  const SvsId id = AddSvs(0.0, 50);
  ASSERT_TRUE(index.Insert(id).ok());
  auto rep = index.ClusterRepresentativeFor(id);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE((*rep)->empty());
  EXPECT_FALSE(index.ClusterRepresentativeFor(999).ok());
}

TEST_F(IntraIndexTest, RepresentativeVersionBumpsOnRecluster) {
  IntraIndexOptions options;
  options.recluster_interval = 2;
  IntraCameraIndex index("cam", &store_, &metric_, options, Rng(8));
  const uint64_t v0 = index.representative_version();
  ASSERT_TRUE(index.Insert(AddSvs(0.0, 60)).ok());  // first insert reclusters
  const uint64_t v1 = index.representative_version();
  EXPECT_GT(v1, v0);
}

TEST_F(IntraIndexTest, ForcedClusterCountHonored) {
  IntraIndexOptions options;
  options.recluster_interval = 1;
  options.forced_num_clusters = 3;
  IntraCameraIndex index("cam", &store_, &metric_, options, Rng(9));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(index.Insert(AddSvs(static_cast<double>(i * 4), 70 + i)).ok());
  }
  EXPECT_EQ(index.clusters().size(), 3u);
  index.SetForcedClusterCount(2);
  ASSERT_TRUE(index.Recluster().ok());
  EXPECT_EQ(index.clusters().size(), 2u);
}

}  // namespace
}  // namespace vz::core
