#include "core/inter_camera_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

class InterIndexTest : public ::testing::Test {
 protected:
  InterIndexTest() : metric_(&store_, &calc_) {}

  // Builds an intra-camera index for `camera` with SVSs around the given
  // centers, one SVS per center, reclustered every insert.
  std::unique_ptr<IntraCameraIndex> MakeIntra(
      const CameraId& camera, const std::vector<double>& centers,
      uint64_t seed) {
    IntraIndexOptions options;
    options.recluster_interval = 1;
    auto intra = std::make_unique<IntraCameraIndex>(camera, &store_, &metric_,
                                                    options, Rng(seed));
    for (size_t i = 0; i < centers.size(); ++i) {
      const SvsId id = store_.Create(camera, next_time_, next_time_ += 10,
                                     MakeMap(10, 4, centers[i], 0.3,
                                             seed * 100 + i));
      EXPECT_TRUE(intra->Insert(id).ok());
    }
    return intra;
  }

  SvsStore store_;
  OmdCalculator calc_;
  SvsMetric metric_;
  int64_t next_time_ = 0;
};

TEST_F(InterIndexTest, UpdateCameraImportsRepresentatives) {
  InterCameraIndex inter(&calc_, InterIndexOptions{}, Rng(1));
  auto intra = MakeIntra("cam-a", {0.0, 0.0, 10.0, 10.0}, 2);
  ASSERT_TRUE(inter.UpdateCamera(*intra).ok());
  EXPECT_EQ(inter.size(), intra->clusters().size());
  EXPECT_GT(inter.representative_bytes_received(), 0u);
}

TEST_F(InterIndexTest, UpdateReplacesPreviousEntries) {
  InterCameraIndex inter(&calc_, InterIndexOptions{}, Rng(3));
  auto intra = MakeIntra("cam-a", {0.0, 10.0}, 4);
  ASSERT_TRUE(inter.UpdateCamera(*intra).ok());
  const size_t first = inter.size();
  ASSERT_TRUE(inter.UpdateCamera(*intra).ok());
  EXPECT_EQ(inter.size(), first);  // replaced, not duplicated
}

TEST_F(InterIndexTest, RemoveCameraDropsEntries) {
  InterCameraIndex inter(&calc_, InterIndexOptions{}, Rng(5));
  auto a = MakeIntra("cam-a", {0.0, 10.0}, 6);
  auto b = MakeIntra("cam-b", {0.0, 10.0}, 7);
  ASSERT_TRUE(inter.UpdateCamera(*a).ok());
  ASSERT_TRUE(inter.UpdateCamera(*b).ok());
  const size_t both = inter.size();
  ASSERT_TRUE(inter.RemoveCamera("cam-a").ok());
  EXPECT_LT(inter.size(), both);
  for (const auto& entry : inter.entries()) {
    EXPECT_EQ(entry.camera, "cam-b");
  }
}

TEST_F(InterIndexTest, GroupsClusterSimilarCamerasTogether) {
  InterIndexOptions options;
  options.forced_num_groups = 2;
  InterCameraIndex inter(&calc_, options, Rng(8));
  // Two "parking lot"-like cameras (around 0) and two "harbor"-like ones
  // (around 10): their representatives should group by content, not camera.
  auto a = MakeIntra("lot-a", {0.0, 0.2}, 9);
  auto b = MakeIntra("lot-b", {0.1, 0.3}, 10);
  auto c = MakeIntra("harbor-a", {10.0, 10.2}, 11);
  auto d = MakeIntra("harbor-b", {10.1, 10.3}, 12);
  for (auto* intra : {a.get(), b.get(), c.get(), d.get()}) {
    ASSERT_TRUE(inter.UpdateCamera(*intra).ok());
  }
  ASSERT_EQ(inter.groups().size(), 2u);
  for (const auto& group : inter.groups()) {
    bool has_lot = false;
    bool has_harbor = false;
    for (size_t idx : group.entry_indices) {
      const auto& camera = inter.entries()[idx].camera;
      (camera.rfind("lot", 0) == 0 ? has_lot : has_harbor) = true;
    }
    EXPECT_FALSE(has_lot && has_harbor);
  }
}

TEST_F(InterIndexTest, FeatureSearchPrunesByContent) {
  InterIndexOptions options;
  options.forced_num_groups = 2;
  InterCameraIndex inter(&calc_, options, Rng(13));
  auto a = MakeIntra("lot-a", {0.0}, 14);
  auto c = MakeIntra("harbor-a", {10.0}, 15);
  ASSERT_TRUE(inter.UpdateCamera(*a).ok());
  ASSERT_TRUE(inter.UpdateCamera(*c).ok());
  FeatureVector near_lot(4);
  for (size_t d = 0; d < 4; ++d) near_lot[d] = 0.05f;
  const auto hits = inter.FeatureSearch(near_lot, 1.5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->camera, "lot-a");
}

TEST_F(InterIndexTest, GroupOfNearestFindsRightGroup) {
  InterIndexOptions options;
  options.forced_num_groups = 2;
  InterCameraIndex inter(&calc_, options, Rng(16));
  auto a = MakeIntra("lot-a", {0.0}, 17);
  auto c = MakeIntra("harbor-a", {10.0}, 18);
  ASSERT_TRUE(inter.UpdateCamera(*a).ok());
  ASSERT_TRUE(inter.UpdateCamera(*c).ok());
  const FeatureMap query = MakeMap(8, 4, 9.8, 0.3, 19);
  auto group = inter.GroupOfNearest(query);
  ASSERT_TRUE(group.ok());
  bool found_harbor = false;
  for (size_t idx : (*group)->entry_indices) {
    found_harbor |= inter.entries()[idx].camera == "harbor-a";
  }
  EXPECT_TRUE(found_harbor);
}

TEST_F(InterIndexTest, EmptyIndexQueriesFail) {
  InterCameraIndex inter(&calc_, InterIndexOptions{}, Rng(20));
  const FeatureMap query = MakeMap(4, 4, 0.0, 0.3, 21);
  EXPECT_FALSE(inter.GroupOfNearest(query).ok());
  FeatureVector f(4);
  EXPECT_TRUE(inter.FeatureSearch(f).empty());
}

}  // namespace
}  // namespace vz::core
