#ifndef VZ_TESTS_TEST_UTIL_H_
#define VZ_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "index/item_metric.h"
#include "vector/feature_map.h"
#include "vector/feature_vector.h"

namespace vz::testing {

/// Euclidean metric over registered points — lets the index structures be
/// tested in a space where ground truth is trivial to brute-force.
class EuclideanPointMetric : public index::ItemMetric {
 public:
  explicit EuclideanPointMetric(std::vector<FeatureVector> points)
      : points_(std::move(points)) {}

  double Distance(int a, int b) override {
    ++num_evals_;
    return EuclideanDistance(points_[static_cast<size_t>(a)],
                             points_[static_cast<size_t>(b)]);
  }
  // Exact lower bound: the metric itself (pruning stays exact).
  double LowerBound(int a, int b) override {
    return EuclideanDistance(points_[static_cast<size_t>(a)],
                             points_[static_cast<size_t>(b)]);
  }
  uint64_t num_distance_evals() const override { return num_evals_; }
  void ResetCounters() { num_evals_ = 0; }

  const std::vector<FeatureVector>& points() const { return points_; }

 private:
  std::vector<FeatureVector> points_;
  uint64_t num_evals_ = 0;
};

/// `count` points per cluster around `num_clusters` well-separated centers
/// in `dim` dimensions; labels[i] = cluster of point i.
struct LabeledPoints {
  std::vector<FeatureVector> points;
  std::vector<int> labels;
};

inline LabeledPoints MakeClusteredPoints(size_t num_clusters, size_t count,
                                         size_t dim, double separation,
                                         double noise, uint64_t seed) {
  LabeledPoints out;
  Rng rng(seed);
  std::vector<FeatureVector> centers;
  for (size_t c = 0; c < num_clusters; ++c) {
    FeatureVector center(dim);
    for (size_t i = 0; i < dim; ++i) {
      center[i] = static_cast<float>(rng.Gaussian());
    }
    center.Normalize();
    center.Scale(separation);
    centers.push_back(std::move(center));
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    for (size_t k = 0; k < count; ++k) {
      FeatureVector p = centers[c];
      for (size_t i = 0; i < dim; ++i) {
        p[i] += static_cast<float>(rng.Gaussian(0.0, noise));
      }
      out.points.push_back(std::move(p));
      out.labels.push_back(static_cast<int>(c));
    }
  }
  return out;
}

/// A small feature map of `n` vectors near `center_value` in each dim.
inline FeatureMap MakeMap(size_t n, size_t dim, double center_value,
                          double noise, uint64_t seed) {
  FeatureMap map;
  Rng rng(seed);
  for (size_t k = 0; k < n; ++k) {
    FeatureVector v(dim);
    for (size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(center_value + rng.Gaussian(0.0, noise));
    }
    (void)map.Add(std::move(v), 1.0);
  }
  return map;
}

}  // namespace vz::testing

#endif  // VZ_TESTS_TEST_UTIL_H_
