#include "train/specialized_trainer.h"

#include <gtest/gtest.h>

#include "sim/object_class.h"
#include "test_util.h"

namespace vz::train {
namespace {

// Builds an SVS whose frames contain the given classes, with features near
// `center`.
core::SvsId MakeSvs(core::SvsStore* store, sim::GroundTruthLog* log,
                    const std::vector<int>& classes, double center,
                    int64_t* next_frame, uint64_t seed) {
  FeatureMap map = testing::MakeMap(12, 8, center, 0.3, seed);
  const core::SvsId id = store->Create("cam", 0, 1000, std::move(map));
  std::vector<int64_t> frames;
  for (int f = 0; f < 5; ++f) {
    const int64_t frame_id = (*next_frame)++;
    log->Record(frame_id, {"cam", f * 100, classes});
    frames.push_back(frame_id);
  }
  auto svs = store->GetMutable(id);
  EXPECT_TRUE(svs.ok());
  (*svs)->set_frame_ids(frames);
  return id;
}

class TrainerTest : public ::testing::Test {
 protected:
  std::vector<const core::Svs*> Resolve(const std::vector<core::SvsId>& ids) {
    std::vector<const core::Svs*> out;
    for (core::SvsId id : ids) {
      auto svs = store_.Get(id);
      EXPECT_TRUE(svs.ok());
      out.push_back(*svs);
    }
    return out;
  }

  core::SvsStore store_;
  sim::GroundTruthLog log_;
  int64_t next_frame_ = 0;
};

TEST_F(TrainerTest, MatchedTrainingSetScoresHigherThanMismatched) {
  // Target workload: cars and people.
  const auto target = Resolve({MakeSvs(&store_, &log_,
                                       {sim::kCar, sim::kPerson}, 0.0,
                                       &next_frame_, 1)});
  const auto matched = Resolve(
      {MakeSvs(&store_, &log_, {sim::kCar, sim::kPerson}, 0.1, &next_frame_, 2),
       MakeSvs(&store_, &log_, {sim::kCar}, 0.0, &next_frame_, 3)});
  const auto mismatched = Resolve(
      {MakeSvs(&store_, &log_, {sim::kBoat}, 5.0, &next_frame_, 4),
       MakeSvs(&store_, &log_, {sim::kBird}, 6.0, &next_frame_, 5)});

  SpecializedTrainer trainer(&log_);
  Rng rng(7);
  const auto good = trainer.Analyze(matched, target, &rng);
  const auto bad = trainer.Analyze(mismatched, target, &rng);
  EXPECT_GT(good.class_coverage, bad.class_coverage);

  const auto model = BaseModelProfile::ResNet50();
  EXPECT_GT(trainer.PredictTop2Accuracy(model, good),
            trainer.PredictTop2Accuracy(model, bad));
}

TEST_F(TrainerTest, CoherentFeaturesScoreHigherThanScattered) {
  const auto target = Resolve({MakeSvs(&store_, &log_, {sim::kCar}, 0.0,
                                       &next_frame_, 11)});
  // Same classes, but one training set's features are tightly clustered and
  // the other's are spread out.
  core::SvsId tight_id =
      MakeSvs(&store_, &log_, {sim::kCar}, 0.0, &next_frame_, 12);
  const core::SvsId scattered_id = store_.Create(
      "cam", 0, 1000, testing::MakeMap(12, 8, 0.0, 6.0, 13));
  {
    auto svs = store_.GetMutable(scattered_id);
    ASSERT_TRUE(svs.ok());
    std::vector<int64_t> frames;
    for (int f = 0; f < 5; ++f) {
      const int64_t frame_id = next_frame_++;
      log_.Record(frame_id, {"cam", f, {sim::kCar}});
      frames.push_back(frame_id);
    }
    (*svs)->set_frame_ids(frames);
  }
  SpecializedTrainer trainer(&log_);
  Rng rng(17);
  const auto tight = trainer.Analyze(Resolve({tight_id}), target, &rng);
  const auto scattered =
      trainer.Analyze(Resolve({scattered_id}), target, &rng);
  EXPECT_GT(tight.visual_coherence, scattered.visual_coherence);
}

TEST_F(TrainerTest, AccuracyBoundedAndOrderedByBaseModel) {
  SpecializedTrainer trainer(&log_);
  TrainingSetAnalysis perfect;
  perfect.class_coverage = 1.0;
  perfect.visual_coherence = 1.0;
  TrainingSetAnalysis useless;
  for (const auto& model :
       {BaseModelProfile::MobileNetV2(), BaseModelProfile::ResNet50(),
        BaseModelProfile::ResNet101(), BaseModelProfile::InceptionV3()}) {
    const double hi = trainer.PredictTop2Accuracy(model, perfect);
    const double lo = trainer.PredictTop2Accuracy(model, useless);
    EXPECT_GT(hi, lo);
    EXPECT_LE(hi, 0.995);
    EXPECT_DOUBLE_EQ(lo, model.base_top2_accuracy);
  }
  // Stronger base models stay stronger after specialization.
  EXPECT_GT(trainer.PredictTop2Accuracy(BaseModelProfile::ResNet101(),
                                        perfect),
            trainer.PredictTop2Accuracy(BaseModelProfile::MobileNetV2(),
                                        perfect));
}

TEST_F(TrainerTest, TrainedClassesCoverNinetyFivePercent) {
  // 19 car frames + 1 boat frame: cars alone cover 95%.
  std::vector<core::SvsId> ids;
  for (int i = 0; i < 19; ++i) {
    ids.push_back(
        MakeSvs(&store_, &log_, {sim::kCar}, 0.0, &next_frame_, 20 + i));
  }
  ids.push_back(MakeSvs(&store_, &log_, {sim::kBoat}, 0.0, &next_frame_, 50));
  SpecializedTrainer trainer(&log_);
  Rng rng(21);
  const auto analysis = trainer.Analyze(Resolve(ids), Resolve(ids), &rng);
  ASSERT_FALSE(analysis.trained_classes.empty());
  EXPECT_EQ(analysis.trained_classes.front(), sim::kCar);
}

}  // namespace
}  // namespace vz::train
