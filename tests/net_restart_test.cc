// End-to-end restart drill: a server dies mid-ingest, a fresh process
// restores the last v2 snapshot on the same port, and the surviving client
// reconnects and resumes — with no frame lost and none double-applied.
// This is the serving-layer complement to restore_test's in-process
// crash-recovery coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/videozilla.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/dataset.h"

namespace vz::net {
namespace {

using core::VideoZilla;
using core::VideoZillaOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

TEST(NetRestartTest, ServerRestartFromSnapshotLosesNoFrameAppliesNoneTwice) {
  const std::string snapshot_path = TempPath("net_restart.vzss");
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 8u);
  const size_t midpoint = observations.size() / 2;

  // The client outlives both server incarnations: pinned session, generous
  // reconnect budget, tight backoff so the drill stays fast.
  ClientOptions client_options;
  client_options.connect_timeout_ms = 1'000;
  client_options.io_timeout_ms = 2'000;
  client_options.max_reconnects = 100;
  client_options.backoff_floor_ms = 5;
  client_options.backoff_cap_ms = 50;
  client_options.session_id = 4242;
  client_options.backoff_seed = 7;

  uint16_t port = 0;
  std::unique_ptr<Client> client;
  {
    // --- Incarnation #1: ingest the first half, snapshot, die. ---
    VideoZilla system(SmallSystemOptions());
    Server server(&system, {});
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    auto connected = Client::Connect("127.0.0.1", port, client_options);
    ASSERT_TRUE(connected.ok());
    client = std::make_unique<Client>(std::move(*connected));
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(client->CameraStart(info.camera).ok());
    }
    for (size_t i = 0; i < midpoint; ++i) {
      ASSERT_TRUE(client->IngestFrame(observations[i]).ok());
    }
    ASSERT_TRUE(client->Flush().ok());
    ASSERT_TRUE(client->SaveSnapshot(snapshot_path).ok());
    server.Shutdown();  // the "crash": every connection drops
  }

  // --- Incarnation #2: fresh process, same port, restore over the wire. ---
  VideoZilla restored(SmallSystemOptions());
  Server server(&restored, [&] {
    ServerOptions options;
    options.port = port;
    return options;
  }());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.port(), port);

  // The old client auto-reconnects on its next call: LoadSnapshot restores
  // the pre-crash corpus and restarts its pipelines on demand.
  auto loaded = client->LoadSnapshot(snapshot_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(client->call_stats().reconnects, 0u);
  EXPECT_GT(client->call_stats().transport_failures, 0u);

  // Re-issuing CameraStart is the client's crash-agnostic resume protocol:
  // cameras the snapshot restored answer "already started", cameras that
  // never produced an SVS before the crash start fresh. Both are fine.
  for (const auto& info : deployment.cameras()) {
    Status status = client->CameraStart(info.camera);
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kFailedPrecondition)
        << status.ToString();
  }
  for (size_t i = midpoint; i < observations.size(); ++i) {
    Status status = client->IngestFrame(observations[i]);
    ASSERT_TRUE(status.ok()) << "frame " << i << ": " << status.ToString();
  }
  ASSERT_TRUE(client->Flush().ok());

  // Exactly-once across the restart: incarnation #2 saw the second half
  // only — no frame re-applied, none lost, none rejected as a duplicate.
  EXPECT_EQ(restored.ingest_stats().frames_offered,
            observations.size() - midpoint);
  EXPECT_EQ(restored.ingest_stats().duplicates_dropped, 0u);
  EXPECT_EQ(restored.ingest_stats().out_of_order_dropped, 0u);

  // Per-camera ledger: count the second-half frames each camera sent and
  // compare against the restored system's own accounting.
  for (const auto& info : deployment.cameras()) {
    uint64_t sent = 0;
    for (size_t i = midpoint; i < observations.size(); ++i) {
      if (observations[i].camera == info.camera) ++sent;
    }
    auto stats = restored.camera_ingest_stats(info.camera);
    ASSERT_TRUE(stats.ok()) << info.camera;
    EXPECT_EQ(stats->frames_offered, sent) << info.camera;
    EXPECT_EQ(stats->duplicates_dropped, 0u) << info.camera;
  }

  // Control: the same stream ingested into one uninterrupted system, with a
  // Flush at the same midpoint boundary, yields bit-identical query results.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < midpoint; ++i) {
    ASSERT_TRUE(control.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(control.Flush().ok());
  for (size_t i = midpoint; i < observations.size(); ++i) {
    ASSERT_TRUE(control.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(control.Flush().ok());

  EXPECT_EQ(restored.svs_store().size(), control.svs_store().size());
  Rng rng(11);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  auto remote = client->DirectQuery(query);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(remote->matched_svss, expected->matched_svss);
  EXPECT_EQ(remote->total_gpu_ms, expected->total_gpu_ms);

  client->Close();
  server.Shutdown();
  std::remove(snapshot_path.c_str());
}

}  // namespace
}  // namespace vz::net
