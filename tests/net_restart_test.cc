// End-to-end restart and failover drills:
//   1. a server dies mid-ingest and a fresh process restores the last v2
//      snapshot on the same port (the operator-driven recovery path);
//   2. a WAL-backed server is killed mid-ingest and recovers on its own —
//      checkpoint + log-tail replay, no operator snapshot needed;
//   3. a duplicate retry that straddles the restart is replayed from the
//      rebuilt dedup window, not re-applied (the exactly-once gap a
//      snapshot-only restart left open);
//   4. a seeded kill -9 of the primary mid-ingest fails over to a warm
//      standby promoted onto the same port — zero loss, no double-apply,
//      byte-identical state versus a fault-free control run, across many
//      kill points (VZ_FAILOVER_SEEDS, default 20).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.h"
#include "core/videozilla.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/dataset.h"

namespace vz::net {
namespace {

using core::VideoZilla;
using core::VideoZillaOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Deletes a WAL directory (segments + checkpoint pairs) and the directory
/// itself. Fresh ground per incarnation/seed.
void RemoveDirAll(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle != nullptr) {
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(handle);
  }
  ::rmdir(dir.c_str());
}

size_t EnvSeedCount(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

TEST(NetRestartTest, ServerRestartFromSnapshotLosesNoFrameAppliesNoneTwice) {
  const std::string snapshot_path = TempPath("net_restart.vzss");
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 8u);
  const size_t midpoint = observations.size() / 2;

  // The client outlives both server incarnations: pinned session, generous
  // reconnect budget, tight backoff so the drill stays fast.
  ClientOptions client_options;
  client_options.connect_timeout_ms = 1'000;
  client_options.io_timeout_ms = 2'000;
  client_options.max_reconnects = 100;
  client_options.backoff_floor_ms = 5;
  client_options.backoff_cap_ms = 50;
  client_options.session_id = 4242;
  client_options.backoff_seed = 7;

  uint16_t port = 0;
  std::unique_ptr<Client> client;
  {
    // --- Incarnation #1: ingest the first half, snapshot, die. ---
    VideoZilla system(SmallSystemOptions());
    Server server(&system, {});
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    auto connected = Client::Connect("127.0.0.1", port, client_options);
    ASSERT_TRUE(connected.ok());
    client = std::make_unique<Client>(std::move(*connected));
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(client->CameraStart(info.camera).ok());
    }
    for (size_t i = 0; i < midpoint; ++i) {
      ASSERT_TRUE(client->IngestFrame(observations[i]).ok());
    }
    ASSERT_TRUE(client->Flush().ok());
    ASSERT_TRUE(client->SaveSnapshot(snapshot_path).ok());
    server.Shutdown();  // the "crash": every connection drops
  }

  // --- Incarnation #2: fresh process, same port, restore over the wire. ---
  VideoZilla restored(SmallSystemOptions());
  Server server(&restored, [&] {
    ServerOptions options;
    options.port = port;
    return options;
  }());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.port(), port);

  // The old client auto-reconnects on its next call: LoadSnapshot restores
  // the pre-crash corpus and restarts its pipelines on demand.
  auto loaded = client->LoadSnapshot(snapshot_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(client->call_stats().reconnects, 0u);
  EXPECT_GT(client->call_stats().transport_failures, 0u);

  // Re-issuing CameraStart is the client's crash-agnostic resume protocol:
  // cameras the snapshot restored answer "already started", cameras that
  // never produced an SVS before the crash start fresh. Both are fine.
  for (const auto& info : deployment.cameras()) {
    Status status = client->CameraStart(info.camera);
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kFailedPrecondition)
        << status.ToString();
  }
  for (size_t i = midpoint; i < observations.size(); ++i) {
    Status status = client->IngestFrame(observations[i]);
    ASSERT_TRUE(status.ok()) << "frame " << i << ": " << status.ToString();
  }
  ASSERT_TRUE(client->Flush().ok());

  // Exactly-once across the restart: incarnation #2 saw the second half
  // only — no frame re-applied, none lost, none rejected as a duplicate.
  EXPECT_EQ(restored.ingest_stats().frames_offered,
            observations.size() - midpoint);
  EXPECT_EQ(restored.ingest_stats().duplicates_dropped, 0u);
  EXPECT_EQ(restored.ingest_stats().out_of_order_dropped, 0u);

  // Per-camera ledger: count the second-half frames each camera sent and
  // compare against the restored system's own accounting.
  for (const auto& info : deployment.cameras()) {
    uint64_t sent = 0;
    for (size_t i = midpoint; i < observations.size(); ++i) {
      if (observations[i].camera == info.camera) ++sent;
    }
    auto stats = restored.camera_ingest_stats(info.camera);
    ASSERT_TRUE(stats.ok()) << info.camera;
    EXPECT_EQ(stats->frames_offered, sent) << info.camera;
    EXPECT_EQ(stats->duplicates_dropped, 0u) << info.camera;
  }

  // Control: the same stream ingested into one uninterrupted system, with a
  // Flush at the same midpoint boundary, yields bit-identical query results.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < midpoint; ++i) {
    ASSERT_TRUE(control.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(control.Flush().ok());
  for (size_t i = midpoint; i < observations.size(); ++i) {
    ASSERT_TRUE(control.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(control.Flush().ok());

  EXPECT_EQ(restored.svs_store().size(), control.svs_store().size());
  Rng rng(11);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  auto remote = client->DirectQuery(query);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(remote->matched_svss, expected->matched_svss);
  EXPECT_EQ(remote->total_gpu_ms, expected->total_gpu_ms);

  client->Close();
  server.Shutdown();
  std::remove(snapshot_path.c_str());
}

// Drill 2: no operator snapshot at all — the WAL alone carries the state
// across a kill -9. The surviving client resumes mid-stream and the final
// store is bit-identical to an uninterrupted run.
TEST(NetRestartTest, WalRecoveryRestoresStateWithoutASnapshot) {
  const std::string wal_dir = TempPath("net_restart_wal");
  RemoveDirAll(wal_dir);
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 8u);
  const size_t midpoint = observations.size() / 2;

  ClientOptions client_options;
  client_options.connect_timeout_ms = 1'000;
  client_options.io_timeout_ms = 2'000;
  client_options.max_reconnects = 100;
  client_options.backoff_floor_ms = 5;
  client_options.backoff_cap_ms = 50;
  client_options.session_id = 4243;
  client_options.backoff_seed = 7;

  ServerOptions server_options;
  server_options.wal_dir = wal_dir;
  // Fsync on every append: every ack the client saw is durable, so the
  // kill below can lose nothing the test counts on.
  server_options.wal_fsync_interval_ms = 0;

  uint16_t port = 0;
  std::unique_ptr<Client> client;
  {
    // --- Incarnation #1: ingest the first half, then die abruptly. No
    // --- Flush, no snapshot — recovery has only the log to work with.
    VideoZilla system(SmallSystemOptions());
    Server server(&system, server_options);
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    auto connected = Client::Connect("127.0.0.1", port, client_options);
    ASSERT_TRUE(connected.ok());
    client = std::make_unique<Client>(std::move(*connected));
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(client->CameraStart(info.camera).ok());
    }
    for (size_t i = 0; i < midpoint; ++i) {
      ASSERT_TRUE(client->IngestFrame(observations[i]).ok());
    }
    server.Kill();  // kill -9: no drain, no checkpoint, connections torn
  }

  // --- Incarnation #2: same WAL dir, same port. Start() replays the log
  // --- before accepting connections; the client just keeps ingesting.
  const uint64_t logged_ops = deployment.cameras().size() + midpoint;
  VideoZilla restored(SmallSystemOptions());
  Server server(&restored, [&] {
    ServerOptions options = server_options;
    options.port = port;
    return options;
  }());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.stats().wal_replayed_records, logged_ops);

  for (size_t i = midpoint; i < observations.size(); ++i) {
    Status status = client->IngestFrame(observations[i]);
    ASSERT_TRUE(status.ok()) << "frame " << i << ": " << status.ToString();
  }
  ASSERT_TRUE(client->Flush().ok());
  EXPECT_GT(client->call_stats().reconnects, 0u);

  // Replay re-offered the first half, the client the second: every frame
  // exactly once, none dropped as a duplicate or out of order.
  EXPECT_EQ(restored.ingest_stats().frames_offered, observations.size());
  EXPECT_EQ(restored.ingest_stats().duplicates_dropped, 0u);
  EXPECT_EQ(restored.ingest_stats().out_of_order_dropped, 0u);

  // Control: one uninterrupted system fed the same op order.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (const auto& obs : observations) {
    ASSERT_TRUE(control.IngestFrame(obs).ok());
  }
  ASSERT_TRUE(control.Flush().ok());

  EXPECT_EQ(restored.svs_store().size(), control.svs_store().size());
  Rng rng(11);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  auto remote = client->DirectQuery(query);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(remote->matched_svss, expected->matched_svss);
  EXPECT_EQ(remote->total_gpu_ms, expected->total_gpu_ms);

  // Durability counters travel the wire too.
  auto monitor = client->MonitorStats();
  ASSERT_TRUE(monitor.ok());
  EXPECT_EQ(monitor->serving.role, ServerRole::kPrimary);
  EXPECT_EQ(monitor->serving.wal_replayed_records, logged_ops);
  EXPECT_GT(monitor->serving.wal_appends, 0u);
  EXPECT_GT(monitor->serving.wal_durable_lsn, logged_ops);

  client->Close();
  server.Shutdown();
  RemoveDirAll(wal_dir);
}

// Drill 3 (regression): a duplicate retry that straddles the restart. A
// fresh client process reuses the dead one's session id and re-issues the
// exact same calls — every one must be answered from the dedup window that
// recovery rebuilt from the log, not re-applied. Re-applying would turn the
// CameraStarts into kFailedPrecondition and the frames into duplicates.
TEST(NetRestartTest, DuplicateRetryAcrossRestartIsReplayedNotReapplied) {
  const std::string wal_dir = TempPath("net_restart_dedup_wal");
  RemoveDirAll(wal_dir);
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 16u);
  const size_t resend_frames = 8;

  ClientOptions client_options;
  client_options.connect_timeout_ms = 1'000;
  client_options.io_timeout_ms = 2'000;
  client_options.max_reconnects = 100;
  client_options.backoff_floor_ms = 5;
  client_options.backoff_cap_ms = 50;
  client_options.session_id = 777;  // both incarnations pin the same session
  client_options.backoff_seed = 3;

  ServerOptions server_options;
  server_options.wal_dir = wal_dir;
  server_options.wal_fsync_interval_ms = 0;

  {
    // --- Incarnation #1: client A issues 5 starts + 8 frames, server dies.
    VideoZilla system(SmallSystemOptions());
    Server server(&system, server_options);
    ASSERT_TRUE(server.Start().ok());
    auto connected =
        Client::Connect("127.0.0.1", server.port(), client_options);
    ASSERT_TRUE(connected.ok());
    Client client_a = std::move(*connected);
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(client_a.CameraStart(info.camera).ok());
    }
    for (size_t i = 0; i < resend_frames; ++i) {
      ASSERT_TRUE(client_a.IngestFrame(observations[i]).ok());
    }
    server.Kill();
  }

  const uint64_t logged_ops = deployment.cameras().size() + resend_frames;
  VideoZilla restored(SmallSystemOptions());
  Server server(&restored, server_options);
  ASSERT_TRUE(server.Start().ok());

  // --- Client B: same session id, fresh sequence counter starting at 1 —
  // --- so re-issuing the identical call order reproduces client A's
  // --- idempotency tokens exactly (the retry-straddles-restart shape).
  auto connected =
      Client::Connect("127.0.0.1", server.port(), client_options);
  ASSERT_TRUE(connected.ok());
  Client client_b = std::move(*connected);
  for (const auto& info : deployment.cameras()) {
    Status status = client_b.CameraStart(info.camera);
    EXPECT_TRUE(status.ok()) << info.camera << ": " << status.ToString();
  }
  for (size_t i = 0; i < resend_frames; ++i) {
    Status status = client_b.IngestFrame(observations[i]);
    ASSERT_TRUE(status.ok()) << "frame " << i << ": " << status.ToString();
  }

  // Every re-issued call hit the rebuilt window; nothing was re-executed.
  EXPECT_EQ(server.stats().duplicates_replayed, logged_ops);
  EXPECT_EQ(server.stats().wal_replayed_records, logged_ops);
  EXPECT_EQ(restored.ingest_stats().frames_offered, resend_frames);
  EXPECT_EQ(restored.ingest_stats().duplicates_dropped, 0u);

  // The session keeps working past the replayed prefix: new sequences are
  // applied fresh.
  for (size_t i = resend_frames; i < 2 * resend_frames; ++i) {
    ASSERT_TRUE(client_b.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(client_b.Flush().ok());
  EXPECT_EQ(restored.ingest_stats().frames_offered, 2 * resend_frames);
  EXPECT_EQ(restored.ingest_stats().duplicates_dropped, 0u);

  client_b.Close();
  server.Shutdown();
  RemoveDirAll(wal_dir);
}

// Drill 4: seeded kill -9 of the primary mid-ingest, warm standby promoted
// onto the same port. With synchronous replication every acked op is
// already on the standby, and the client's token-carrying retries cover the
// in-flight one — so across many kill points the surviving system must be
// byte-identical to a fault-free control run.
TEST(NetFailoverTest, SeededKillMidIngestFailsOverWithZeroLossNoDoubleApply) {
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  const size_t total_ops =
      deployment.cameras().size() + observations.size() + 1;
  ASSERT_GE(total_ops, 12u);

  // Fault-free control, computed once: every seed must converge to this.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (const auto& obs : observations) {
    ASSERT_TRUE(control.IngestFrame(obs).ok());
  }
  ASSERT_TRUE(control.Flush().ok());
  Rng query_rng(11);
  const FeatureVector query = deployment.MakeQueryFeature(0, &query_rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());

  const size_t seeds = EnvSeedCount("VZ_FAILOVER_SEEDS", 20);
  for (size_t seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string primary_dir =
        TempPath("failover_primary_" + std::to_string(seed));
    const std::string standby_dir =
        TempPath("failover_standby_" + std::to_string(seed));
    RemoveDirAll(primary_dir);
    RemoveDirAll(standby_dir);

    VideoZilla primary_system(SmallSystemOptions());
    ServerOptions primary_options;
    primary_options.wal_dir = primary_dir;
    primary_options.wal_fsync_interval_ms = 0;
    primary_options.sync_replication = true;
    Server primary(&primary_system, primary_options);
    ASSERT_TRUE(primary.Start().ok());

    VideoZilla standby_system(SmallSystemOptions());
    ServerOptions standby_options;
    standby_options.port = primary.port();  // promotion target: same endpoint
    standby_options.wal_dir = standby_dir;
    standby_options.wal_fsync_interval_ms = 0;
    standby_options.standby_of_host = "127.0.0.1";
    standby_options.standby_of_port = primary.port();
    standby_options.replication_poll_ms = 50;
    Server standby(&standby_system, standby_options);
    ASSERT_TRUE(standby.Start().ok());
    ASSERT_EQ(standby.role(), ServerRole::kStandby);

    ClientOptions client_options;
    client_options.connect_timeout_ms = 2'000;
    client_options.io_timeout_ms = 5'000;
    client_options.max_reconnects = 200;
    client_options.backoff_floor_ms = 2;
    client_options.backoff_cap_ms = 20;
    client_options.session_id = 9000 + seed;
    client_options.backoff_seed = 13 + seed;
    auto connected =
        Client::Connect("127.0.0.1", primary.port(), client_options);
    ASSERT_TRUE(connected.ok());
    Client client = std::move(*connected);

    // Kill point: seed-varied position within the op stream (served
    // requests include the handshake, so this is approximate by design).
    const uint64_t kill_after = 3 + (seed * 17) % (total_ops - 6);

    std::vector<Status> results;
    std::atomic<bool> ingest_done{false};
    std::thread ingest([&] {
      for (const auto& info : deployment.cameras()) {
        results.push_back(client.CameraStart(info.camera));
      }
      for (const auto& obs : observations) {
        results.push_back(client.IngestFrame(obs));
      }
      results.push_back(client.Flush());
      ingest_done.store(true);
    });

    while (!ingest_done.load() &&
           primary.stats().requests_served < kill_after) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    primary.Kill();
    Status promoted = standby.Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.ToString();
    ASSERT_EQ(standby.role(), ServerRole::kPromoted);
    ingest.join();

    // Zero loss: every op in the stream was eventually acked, riding the
    // client's reconnect-retry across the failover window.
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "op " << i << ": " << results[i].ToString();
    }

    // No double-apply: the standby saw every frame exactly once.
    EXPECT_EQ(standby_system.ingest_stats().frames_offered,
              observations.size());
    EXPECT_EQ(standby_system.ingest_stats().duplicates_dropped, 0u);
    EXPECT_EQ(standby_system.ingest_stats().out_of_order_dropped, 0u);
    for (const auto& info : deployment.cameras()) {
      uint64_t sent = 0;
      for (const auto& obs : observations) {
        if (obs.camera == info.camera) ++sent;
      }
      auto stats = standby_system.camera_ingest_stats(info.camera);
      ASSERT_TRUE(stats.ok()) << info.camera;
      EXPECT_EQ(stats->frames_offered, sent) << info.camera;
      EXPECT_EQ(stats->duplicates_dropped, 0u) << info.camera;
    }

    // Byte-identical to the fault-free control.
    EXPECT_EQ(standby_system.svs_store().size(), control.svs_store().size());
    auto remote = client.DirectQuery(query);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->candidate_svss, expected->candidate_svss);
    EXPECT_EQ(remote->matched_svss, expected->matched_svss);
    EXPECT_EQ(remote->total_gpu_ms, expected->total_gpu_ms);

    client.Close();
    standby.Shutdown();
    RemoveDirAll(primary_dir);
    RemoveDirAll(standby_dir);
  }
}

// Drill 5 (regression, fencing): after a failover the demoted primary may
// come back unaware it lost. Promotion bumped the epoch to 2; the moment
// anything at epoch 2 talks to the revived epoch-1 server over WalShip it
// must be refused with kFailedPrecondition — the zombie cannot serve a
// replication stream the cluster has moved past.
TEST(NetRestartTest, DemotedPrimaryIsFencedByPromotionEpoch) {
  const std::string primary_dir = TempPath("fencing_primary_wal");
  const std::string standby_dir = TempPath("fencing_standby_wal");
  RemoveDirAll(primary_dir);
  RemoveDirAll(standby_dir);
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 8u);

  VideoZilla primary_system(SmallSystemOptions());
  ServerOptions primary_options;
  primary_options.wal_dir = primary_dir;
  primary_options.wal_fsync_interval_ms = 0;
  Server primary(&primary_system, primary_options);
  ASSERT_TRUE(primary.Start().ok());
  EXPECT_EQ(primary.stats().wal_epoch, 1u);

  VideoZilla standby_system(SmallSystemOptions());
  ServerOptions standby_options;
  standby_options.wal_dir = standby_dir;
  standby_options.wal_fsync_interval_ms = 0;
  standby_options.standby_of_host = "127.0.0.1";
  standby_options.standby_of_port = primary.port();
  standby_options.replication_poll_ms = 25;
  Server standby(&standby_system, standby_options);
  ASSERT_TRUE(standby.Start().ok());

  ClientOptions client_options;
  client_options.connect_timeout_ms = 1'000;
  client_options.io_timeout_ms = 2'000;
  client_options.session_id = 5151;
  client_options.backoff_seed = 7;
  auto connected =
      Client::Connect("127.0.0.1", primary.port(), client_options);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client.CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  const uint64_t primary_last = primary.stats().wal_last_lsn;
  while (standby.stats().wal_last_lsn < primary_last) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // --- Failover: the primary dies, the standby takes over at epoch 2. ---
  primary.Kill();
  ASSERT_TRUE(standby.Promote().ok());
  EXPECT_EQ(standby.role(), ServerRole::kPromoted);
  EXPECT_EQ(standby.stats().wal_epoch, 2u);

  // --- The demoted primary restarts from its own WAL, still at epoch 1,
  // --- on a fresh port (its old one may be contested). ---
  VideoZilla revived_system(SmallSystemOptions());
  Server revived(&revived_system, primary_options);
  ASSERT_TRUE(revived.Start().ok());
  EXPECT_EQ(revived.stats().wal_epoch, 1u);

  auto fencing_connected =
      Client::Connect("127.0.0.1", revived.port(), client_options);
  ASSERT_TRUE(fencing_connected.ok());
  Client fencing_client = std::move(*fencing_connected);

  // Epoch 2 (what a post-failover standby would announce): fenced.
  auto fenced = fencing_client.WalShip(0, 16, 0, /*epoch=*/2);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), StatusCode::kFailedPrecondition);

  // At or below the server's own epoch (and the 0 = unknown wildcard):
  // the pre-failover flow still works.
  EXPECT_TRUE(fencing_client.WalShip(0, 16, 0, /*epoch=*/1).ok());
  EXPECT_TRUE(fencing_client.WalShip(0, 16, 0, /*epoch=*/0).ok());

  fencing_client.Close();
  client.Close();
  revived.Shutdown();
  standby.Shutdown();
  RemoveDirAll(primary_dir);
  RemoveDirAll(standby_dir);
}

// Drill 6 (regression, re-seed): a standby that starts tailing after the
// primary's compaction already discarded the log prefix gets kOutOfRange
// from WalShip. It must recover on its own — fetch the newest checkpoint
// pair over the snapshot RPC, restore it, resume tailing from its LSN —
// and still converge to the primary's exact state.
TEST(NetRestartTest, LateStandbyReseedsFromCheckpointAfterCompaction) {
  const std::string primary_dir = TempPath("reseed_primary_wal");
  const std::string standby_dir = TempPath("reseed_standby_wal");
  RemoveDirAll(primary_dir);
  RemoveDirAll(standby_dir);
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  ASSERT_GE(observations.size(), 16u);
  const size_t midpoint = observations.size() / 2;

  VideoZilla primary_system(SmallSystemOptions());
  ServerOptions primary_options;
  primary_options.wal_dir = primary_dir;
  primary_options.wal_fsync_interval_ms = 0;
  // Tiny thresholds: the first-half ingest triggers checkpoint + compaction,
  // so the log no longer reaches back to LSN 0 by the time the standby
  // appears.
  primary_options.wal_segment_bytes = 4'096;
  primary_options.wal_compact_bytes = 8'192;
  Server primary(&primary_system, primary_options);
  ASSERT_TRUE(primary.Start().ok());

  ClientOptions client_options;
  client_options.connect_timeout_ms = 2'000;
  client_options.io_timeout_ms = 5'000;
  client_options.max_reconnects = 100;
  client_options.backoff_floor_ms = 5;
  client_options.backoff_cap_ms = 50;
  client_options.session_id = 6161;
  client_options.backoff_seed = 9;
  auto connected =
      Client::Connect("127.0.0.1", primary.port(), client_options);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);

  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client.CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < midpoint; ++i) {
    ASSERT_TRUE(client.IngestFrame(observations[i]).ok());
    // Periodic flushes give the compaction trigger its chance to fire.
    if (i % 16 == 15) {
      ASSERT_TRUE(client.Flush().ok());
    }
  }
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_GE(primary.stats().wal_checkpoints, 1u)
      << "compaction never ran; thresholds too large for this deployment";

  // --- The standby starts late: its replication cursor (LSN 0) predates
  // --- the compaction horizon. ---
  VideoZilla standby_system(SmallSystemOptions());
  ServerOptions standby_options;
  standby_options.port = primary.port();  // promotion target: same endpoint
  standby_options.wal_dir = standby_dir;
  standby_options.wal_fsync_interval_ms = 0;
  standby_options.standby_of_host = "127.0.0.1";
  standby_options.standby_of_port = primary.port();
  standby_options.replication_poll_ms = 25;
  Server standby(&standby_system, standby_options);
  ASSERT_TRUE(standby.Start().ok());

  for (size_t i = midpoint; i < observations.size(); ++i) {
    ASSERT_TRUE(client.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(client.Flush().ok());

  Rng rng(11);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto expected = client.DirectQuery(query);
  ASSERT_TRUE(expected.ok());

  const uint64_t primary_last = primary.stats().wal_last_lsn;
  while (standby.stats().wal_last_lsn < primary_last) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(standby.stats().replication_reseeds, 1u);

  // The re-seeded standby is a faithful replica: promote it onto the
  // primary's endpoint and the same client sees the same answers.
  primary.Kill();
  ASSERT_TRUE(standby.Promote().ok());
  EXPECT_EQ(standby_system.ingest_stats().duplicates_dropped, 0u);
  EXPECT_EQ(standby_system.ingest_stats().out_of_order_dropped, 0u);
  EXPECT_EQ(standby_system.svs_store().size(),
            primary_system.svs_store().size());
  auto replica = client.DirectQuery(query);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_EQ(replica->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(replica->matched_svss, expected->matched_svss);
  EXPECT_EQ(replica->total_gpu_ms, expected->total_gpu_ms);

  client.Close();
  standby.Shutdown();
  RemoveDirAll(primary_dir);
  RemoveDirAll(standby_dir);
}

}  // namespace
}  // namespace vz::net
