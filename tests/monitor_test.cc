#include "core/monitor.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

TEST(MonitorF1Test, ComputesF1) {
  EXPECT_DOUBLE_EQ(PerformanceMonitor::F1({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(PerformanceMonitor::F1({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(PerformanceMonitor::F1({1}, {2}), 0.0);
  // predicted {1,2}, truth {2,3}: precision 0.5, recall 0.5 -> F1 0.5.
  EXPECT_DOUBLE_EQ(PerformanceMonitor::F1({1, 2}, {2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(PerformanceMonitor::F1({}, {1}), 0.0);
}

class MonitorTest : public ::testing::Test {
 protected:
  static sim::DeploymentOptions SmallDeployment() {
    sim::DeploymentOptions options;
    options.cities = 1;
    options.downtown_per_city = 1;
    options.highway_cameras = 1;
    options.train_stations = 1;
    options.harbors = 1;
    options.feed_duration_ms = 60'000;
    options.fps = 1.0;
    options.feature_dim = 32;
    return options;
  }

  static VideoZillaOptions VzOptions() {
    VideoZillaOptions options;
    options.segmenter.t_max_ms = 20'000;
    options.omd.max_vectors = 48;
    options.boundary_scale = 1.3;
    options.enable_keyframe_selection = false;
    return options;
  }

  MonitorTest()
      : deployment_(SmallDeployment()),
        system_(VzOptions()),
        heavy_(1.0, 0.0, 3),
        verifier_(&deployment_.space(), &deployment_.log(), &heavy_) {
    EXPECT_TRUE(deployment_.IngestAll(&system_).ok());
    system_.SetVerifier(&verifier_);
  }

  PerformanceMonitor::GroundTruthFn TruthFn() {
    return [this](const FeatureVector& feature) {
      const int object_class = deployment_.space().NearestPrototype(feature);
      return deployment_.log().TrueSvsSet(system_.svs_store(), object_class);
    };
  }

  sim::Deployment deployment_;
  VideoZilla system_;
  sim::HeavyModel heavy_;
  sim::SimObjectVerifier verifier_;
};

TEST_F(MonitorTest, StaysNormalWhenQualityIsGood) {
  MonitorOptions options;
  options.target_f1 = -0.1;  // trivially satisfied
  options.ground_truth_interval = 2;
  PerformanceMonitor monitor(&system_, options, TruthFn());
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const FeatureVector query =
        deployment_.MakeQueryFeature(sim::kBoat, &rng);
    ASSERT_TRUE(monitor.Query(query).ok());
  }
  EXPECT_EQ(monitor.state(), MonitorState::kNormal);
  EXPECT_GE(monitor.ground_truth_checks(), 5u);
  EXPECT_GE(monitor.last_f1(), 0.0);
}

TEST_F(MonitorTest, WalksAdjustmentLadderWhenTargetUnreachable) {
  MonitorOptions options;
  options.target_f1 = 1.01;  // unattainable -> must keep degrading
  options.ground_truth_interval = 1;
  PerformanceMonitor monitor(&system_, options, TruthFn());
  Rng rng(9);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kCar, &rng);
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kMoreClusters);
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kAccurateOmd);
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kFlatSvsIndex);
  EXPECT_EQ(system_.index_mode(), IndexMode::kFlatSvs);
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kBailout);
  EXPECT_EQ(system_.index_mode(), IndexMode::kFlat);
  // Further failures stay in bailout.
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kBailout);
}

TEST_F(MonitorTest, RecoversFromBailoutWhenProbeSucceeds) {
  MonitorOptions options;
  options.target_f1 = 1.01;
  options.ground_truth_interval = 1;
  options.bailout_probe_interval = 1;
  PerformanceMonitor monitor(&system_, options, TruthFn());
  Rng rng(11);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kBoat, &rng);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(monitor.Query(query).ok());
  ASSERT_EQ(monitor.state(), MonitorState::kBailout);
  ASSERT_EQ(system_.index_mode(), IndexMode::kFlat);
  // Once the user preference is attainable again, the next bailout probe
  // reinstates the hierarchical index (Sec. 5.3).
  monitor.set_target_f1(0.0);
  ASSERT_TRUE(monitor.Query(query).ok());
  EXPECT_EQ(monitor.state(), MonitorState::kNormal);
  EXPECT_EQ(system_.index_mode(), IndexMode::kHierarchical);
}

}  // namespace
}  // namespace vz::core
