#include "core/app_registry.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

VideoZillaOptions FastOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.omd.max_vectors = 48;
  options.boundary_scale = 1.6;
  options.enable_keyframe_selection = false;
  return options;
}

TEST(AppRegistryTest, RegisterAndRemoveApps) {
  AppRegistry registry(FastOptions());
  ASSERT_TRUE(registry.SetFeatureExtractor("app-a", "resnet50").ok());
  ASSERT_TRUE(registry.SetFeatureExtractor("app-b", "vgg16").ok());
  EXPECT_FALSE(registry.SetFeatureExtractor("app-a", "resnet50").ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Apps(), (std::vector<AppId>{"app-a", "app-b"}));
  EXPECT_EQ(*registry.ModelOf("app-b"), "vgg16");
  ASSERT_TRUE(registry.RemoveApp("app-b").ok());
  EXPECT_FALSE(registry.RemoveApp("app-b").ok());
  EXPECT_FALSE(registry.ModelOf("app-b").ok());
}

TEST(AppRegistryTest, UnknownAppIsRejectedEverywhere) {
  AppRegistry registry(FastOptions());
  EXPECT_FALSE(registry.CameraStart("cam", "ghost").ok());
  EXPECT_FALSE(registry.CameraTerminate("cam", "ghost").ok());
  EXPECT_FALSE(registry.Get("ghost").ok());
  FrameObservation frame;
  frame.camera = "cam";
  EXPECT_FALSE(registry.IngestFrame("ghost", frame).ok());
  FeatureVector q(4);
  EXPECT_FALSE(registry.DirectQuery(q, "ghost").ok());
  EXPECT_FALSE(registry.GetMetaData("ghost", 0).ok());
}

TEST(AppRegistryTest, PerModelIndicesAreIsolated) {
  // Two apps, two extractor models over the SAME ground-truth frames: each
  // app's index sees its own feature space (Sec. 5.4, per-model indexing).
  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = 1;
  dep_options.highway_cameras = 0;
  dep_options.train_stations = 0;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 60'000;
  dep_options.fps = 1.0;
  dep_options.feature_dim = 32;

  sim::DeploymentOptions resnet_options = dep_options;
  resnet_options.extractor = sim::ExtractorProfile::ResNet50();
  sim::DeploymentOptions vgg_options = dep_options;
  vgg_options.extractor = sim::ExtractorProfile::Vgg16();
  sim::Deployment resnet_world(resnet_options);
  sim::Deployment vgg_world(vgg_options);

  AppRegistry registry(FastOptions());
  ASSERT_TRUE(registry.SetFeatureExtractor("detector", "resnet50").ok());
  ASSERT_TRUE(registry.SetFeatureExtractor("reid", "vgg16").ok());
  for (const auto& cam : resnet_world.cameras()) {
    ASSERT_TRUE(registry.CameraStart(cam.camera, "detector").ok());
    ASSERT_TRUE(registry.CameraStart(cam.camera, "reid").ok());
  }
  for (const auto& obs : resnet_world.observations()) {
    ASSERT_TRUE(registry.IngestFrame("detector", obs).ok());
  }
  for (const auto& obs : vgg_world.observations()) {
    ASSERT_TRUE(registry.IngestFrame("reid", obs).ok());
  }
  ASSERT_TRUE(registry.FlushAll().ok());

  auto detector = registry.Get("detector");
  auto reid = registry.Get("reid");
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE(reid.ok());
  EXPECT_GT((*detector)->svs_store().size(), 0u);
  EXPECT_GT((*reid)->svs_store().size(), 0u);

  // Queries go to the right app and are answered from its own index.
  Rng rng(7);
  const FeatureVector query =
      resnet_world.MakeQueryFeature(sim::kBoat, &rng);
  auto result = registry.DirectQuery(query, "detector");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->candidate_svss.empty());
  auto meta =
      registry.GetMetaData("detector", result->candidate_svss.front());
  ASSERT_TRUE(meta.ok());

  // Terminating a camera in one app leaves the other untouched.
  ASSERT_TRUE(registry.CameraTerminate("harbor-0", "reid").ok());
  for (const auto& entry : (*detector)->inter_index().entries()) {
    (void)entry;  // detector still has its entries
  }
  EXPECT_GT((*detector)->inter_index().size(), 0u);
}

}  // namespace
}  // namespace vz::core
