#include "core/omd_cache.h"

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/omd.h"
#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"
#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

constexpr OmdMode kThr = OmdMode::kThresholded;
constexpr OmdMode kExact = OmdMode::kExact;

TEST(OmdDistanceCacheTest, MissThenInsertThenHit) {
  OmdDistanceCache cache(8);
  EXPECT_FALSE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  cache.Insert(1, 2, kThr, 0.6, 3.5);
  auto hit = cache.Lookup(1, 2, kThr, 0.6);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 3.5);
  const OmdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 8u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(OmdDistanceCacheTest, KeyIsSymmetricInIdOrder) {
  OmdDistanceCache cache(8);
  cache.Insert(7, 3, kThr, 0.6, 1.25);
  auto hit = cache.Lookup(3, 7, kThr, 0.6);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 1.25);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OmdDistanceCacheTest, KeyIncludesModeAndAlpha) {
  // A thresholded value must never answer an exact lookup (the monitor's
  // "accurate OMD" adjustment re-keys every pair), nor a different alpha.
  OmdDistanceCache cache(8);
  cache.Insert(1, 2, kThr, 0.6, 2.0);
  EXPECT_FALSE(cache.Lookup(1, 2, kExact, 0.6).has_value());
  EXPECT_FALSE(cache.Lookup(1, 2, kThr, 1.0).has_value());
  EXPECT_TRUE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  cache.Insert(1, 2, kExact, 1.0, 4.0);
  EXPECT_EQ(cache.size(), 2u);  // distinct entries for distinct configs
  EXPECT_DOUBLE_EQ(*cache.Lookup(1, 2, kExact, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(*cache.Lookup(1, 2, kThr, 0.6), 2.0);
}

TEST(OmdDistanceCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  OmdDistanceCache cache(2);
  cache.Insert(1, 2, kThr, 0.6, 1.0);
  cache.Insert(3, 4, kThr, 0.6, 2.0);
  // Touch (1, 2) so (3, 4) becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  cache.Insert(5, 6, kThr, 0.6, 3.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  EXPECT_FALSE(cache.Lookup(3, 4, kThr, 0.6).has_value());  // evicted
  EXPECT_TRUE(cache.Lookup(5, 6, kThr, 0.6).has_value());
}

TEST(OmdDistanceCacheTest, OverwriteUpdatesExistingEntry) {
  OmdDistanceCache cache(8);
  cache.Insert(1, 2, kThr, 0.6, 1.0);
  cache.Insert(1, 2, kThr, 0.6, 9.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.Lookup(1, 2, kThr, 0.6), 9.0);
}

TEST(OmdDistanceCacheTest, InvalidateSvsDropsEveryPairInvolvingIt) {
  OmdDistanceCache cache(16);
  cache.Insert(1, 2, kThr, 0.6, 1.0);
  cache.Insert(1, 3, kThr, 0.6, 2.0);
  cache.Insert(1, 3, kExact, 1.0, 2.5);  // second config, same pair
  cache.Insert(2, 3, kThr, 0.6, 3.0);
  cache.InvalidateSvs(1);
  EXPECT_FALSE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  EXPECT_FALSE(cache.Lookup(1, 3, kThr, 0.6).has_value());
  EXPECT_FALSE(cache.Lookup(1, 3, kExact, 1.0).has_value());
  // Pairs not involving id 1 survive.
  EXPECT_TRUE(cache.Lookup(2, 3, kThr, 0.6).has_value());
  EXPECT_EQ(cache.stats().invalidations, 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(OmdDistanceCacheTest, ClearAndResetStats) {
  OmdDistanceCache cache(8);
  cache.Insert(1, 2, kThr, 0.6, 1.0);
  cache.Insert(3, 4, kThr, 0.6, 2.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  cache.ResetStats();
  const OmdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(OmdDistanceCacheTest, TokenGuardedInsertRejectsFiredToken) {
  // Regression: a distance computed under an expired deadline may rest on a
  // partially filled ground matrix or an aborted solve. Memoizing it would
  // poison every later query for the pair, so the guarded insert must drop
  // it (and count the drop) instead.
  OmdDistanceCache cache(8);
  CancelToken fired;
  fired.Cancel();
  cache.Insert(1, 2, kThr, 0.6, 99.0, &fired);
  EXPECT_FALSE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  EXPECT_EQ(cache.size(), 0u);
  const OmdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.rejected_inserts, 1u);
}

TEST(OmdDistanceCacheTest, TokenGuardedInsertAcceptsLiveAndNullTokens) {
  OmdDistanceCache cache(8);
  CancelToken live;  // never fires
  cache.Insert(1, 2, kThr, 0.6, 3.0, &live);
  cache.Insert(3, 4, kThr, 0.6, 4.0, /*cancel=*/nullptr);
  EXPECT_DOUBLE_EQ(*cache.Lookup(1, 2, kThr, 0.6), 3.0);
  EXPECT_DOUBLE_EQ(*cache.Lookup(3, 4, kThr, 0.6), 4.0);
  const OmdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.rejected_inserts, 0u);
}

TEST(OmdDistanceCacheTest, TokenExpiringAfterComputeStillRejects) {
  // The race the guard exists for: the deadline fires between the solve and
  // the insert. The guard re-checks at insert time, so the late value is
  // still dropped.
  SimClock clock;
  SimClockTimeSource source(&clock);
  OmdDistanceCache cache(8);
  CancelToken token(Deadline::AfterMs(&source, 10));
  cache.Insert(1, 2, kThr, 0.6, 1.0, &token);  // live: accepted
  clock.AdvanceMs(10);                         // deadline passes
  cache.Insert(3, 4, kThr, 0.6, 2.0, &token);  // fired: rejected
  EXPECT_TRUE(cache.Lookup(1, 2, kThr, 0.6).has_value());
  EXPECT_FALSE(cache.Lookup(3, 4, kThr, 0.6).has_value());
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
}

TEST(OmdDistanceCacheTest, ResetStatsClearsRejectedInserts) {
  OmdDistanceCache cache(8);
  CancelToken fired;
  fired.Cancel();
  cache.Insert(1, 2, kThr, 0.6, 1.0, &fired);
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().rejected_inserts, 0u);
}

TEST(SvsMetricSharedCacheTest, SecondDistanceIsServedFromCache) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 21));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(8, 4, 4.0, 0.3, 22));
  OmdCalculator calc;
  OmdDistanceCache cache(16);
  SvsMetric metric(&store, &calc);
  metric.set_shared_cache(&cache);
  const double d1 = metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 1u);
  const double d2 = metric.Distance(static_cast<int>(b), static_cast<int>(a));
  EXPECT_EQ(metric.num_distance_evals(), 1u);  // symmetric cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(cache.stats().hits, 1u);
  // A mode switch on the calculator re-keys the pair: full recompute.
  calc.set_mode(OmdMode::kExact);
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

TEST(SvsMetricSharedCacheTest, InvalidateCacheClearsSharedCache) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(6, 4, 0.0, 0.3, 23));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(6, 4, 2.0, 0.3, 24));
  OmdCalculator calc;
  OmdDistanceCache cache(16);
  SvsMetric metric(&store, &calc);
  metric.set_shared_cache(&cache);
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(cache.size(), 1u);
  metric.InvalidateCache();
  EXPECT_EQ(cache.size(), 0u);
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

// --- System-level behaviour through VideoZilla / PerformanceMonitor. ---

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 60'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 5;
  return options;
}

VideoZillaOptions FastVzOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 30'000;
  options.segmenter.t_split_ms = 10'000;
  options.omd.max_vectors = 64;
  options.intra.recluster_interval = 2;
  options.boundary_scale = 1.3;
  options.enable_keyframe_selection = false;
  return options;
}

class OmdCacheSystemTest : public ::testing::Test {
 protected:
  OmdCacheSystemTest() : deployment_(SmallDeployment()), system_(FastVzOptions()) {
    EXPECT_TRUE(deployment_.IngestAll(&system_).ok());
  }

  sim::Deployment deployment_;
  VideoZilla system_;
};

TEST_F(OmdCacheSystemTest, RepeatedClusteringQueryHitsTheCache) {
  ASSERT_GT(system_.svs_store().size(), 1u);
  // kIntraOnly forces the flat OMD-scan fallback — the cached path.
  system_.SetIndexMode(IndexMode::kIntraOnly);
  system_.omd_cache().ResetStats();
  auto first = system_.ClusteringQuery(SvsId{0});
  ASSERT_TRUE(first.ok());
  const OmdCacheStats cold = system_.omd_cache().stats();
  EXPECT_GT(cold.insertions, 0u);
  auto second = system_.ClusteringQuery(SvsId{0});
  ASSERT_TRUE(second.ok());
  const OmdCacheStats warm = system_.omd_cache().stats();
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_GT(warm.hit_rate(), 0.0);
  // Cached answers change nothing about the result.
  EXPECT_EQ(first->similar_svss, second->similar_svss);
  EXPECT_EQ(first->cameras_contributing, second->cameras_contributing);
}

TEST_F(OmdCacheSystemTest, IngestingAnSvsInvalidatesItsCachedPairs) {
  // SVS ids are dense and monotonic, so the next ingested SVS gets id ==
  // store.size(). Poison the cache for that id; creation must drop it.
  const SvsId next_id = static_cast<SvsId>(system_.svs_store().size());
  const OmdOptions& omd = system_.omd().options();
  system_.omd_cache().Insert(next_id, 0, omd.mode, omd.threshold_alpha, 123.0);
  ASSERT_TRUE(system_.omd_cache()
                  .Lookup(next_id, 0, omd.mode, omd.threshold_alpha)
                  .has_value());
  // Feed fresh frames into an existing camera and flush out the segment.
  const int64_t base_ms = system_.now_ms() + 60'000;
  for (int i = 0; i < 4; ++i) {
    FrameObservation frame;
    frame.camera = "harbor-0";
    frame.timestamp_ms = base_ms + i * 1000;
    frame.frame_id = 1'000'000 + i;
    DetectedObject object;
    object.feature = FeatureVector(std::vector<float>(32, 0.5f));
    frame.objects.push_back(object);
    ASSERT_TRUE(system_.IngestFrame(frame).ok());
  }
  ASSERT_TRUE(system_.Flush().ok());
  ASSERT_GT(system_.svs_store().size(), static_cast<size_t>(next_id));
  EXPECT_FALSE(system_.omd_cache()
                   .Lookup(next_id, 0, omd.mode, omd.threshold_alpha)
                   .has_value())
      << "stale pair survived ingestion of SVS " << next_id;
}

TEST_F(OmdCacheSystemTest, MonitorExposesCacheCounters) {
  PerformanceMonitor monitor(&system_, MonitorOptions(),
                             [](const FeatureVector&) {
                               return std::vector<SvsId>();
                             });
  system_.SetIndexMode(IndexMode::kIntraOnly);
  system_.omd_cache().ResetStats();
  ASSERT_TRUE(system_.ClusteringQuery(SvsId{0}).ok());
  ASSERT_TRUE(system_.ClusteringQuery(SvsId{0}).ok());
  const OmdCacheStats via_monitor = monitor.omd_cache_stats();
  const OmdCacheStats via_system = system_.omd_cache().stats();
  EXPECT_EQ(via_monitor.hits, via_system.hits);
  EXPECT_EQ(via_monitor.misses, via_system.misses);
  EXPECT_GT(via_monitor.hits, 0u);
  EXPECT_EQ(via_monitor.capacity, OmdDistanceCache::kDefaultCapacity);
}

}  // namespace
}  // namespace vz::core
