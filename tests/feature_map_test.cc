#include "vector/feature_map.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace vz {
namespace {

TEST(FeatureMapTest, AddEnforcesDimension) {
  FeatureMap map;
  EXPECT_TRUE(map.Add(FeatureVector({1.0f, 2.0f})).ok());
  EXPECT_TRUE(map.Add(FeatureVector({3.0f, 4.0f})).ok());
  EXPECT_FALSE(map.Add(FeatureVector({1.0f})).ok());
  EXPECT_FALSE(map.Add(FeatureVector({1.0f, 1.0f}), -0.5).ok());
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.dim(), 2u);
}

TEST(FeatureMapTest, NormalizedWeightsSumToOne) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f}), 1.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({1.0f}), 3.0).ok());
  const auto w = map.NormalizedWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
  EXPECT_DOUBLE_EQ(map.TotalWeight(), 4.0);
}

TEST(FeatureMapTest, WeightedCentroid) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f, 0.0f}), 1.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({4.0f, 0.0f}), 3.0).ok());
  const FeatureVector c = map.Centroid();
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
}

TEST(FeatureMapTest, ZeroWeightsFallBackToUnweightedCentroid) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f}), 0.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({2.0f}), 0.0).ok());
  EXPECT_FLOAT_EQ(map.Centroid()[0], 1.0f);
  EXPECT_TRUE(map.NormalizedWeights().empty());
}

TEST(FeatureMapTest, EmptyMapCentroidAndOcd) {
  FeatureMap empty;
  EXPECT_TRUE(empty.Centroid().empty());
  FeatureMap other;
  ASSERT_TRUE(other.Add(FeatureVector({1.0f})).ok());
  EXPECT_DOUBLE_EQ(ObjectCentroidDistance(empty, other), 0.0);
}

TEST(FeatureMapTest, ObjectCentroidDistance) {
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f, 0.0f})).ok());
  ASSERT_TRUE(a.Add(FeatureVector({2.0f, 0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({5.0f, 0.0f})).ok());
  EXPECT_DOUBLE_EQ(ObjectCentroidDistance(a, b), 4.0);
}

TEST(FeatureMapTest, ClearResets) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({1.0f})).ok());
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.dim(), 0u);
  // After clearing, a different dimension is acceptable.
  EXPECT_TRUE(map.Add(FeatureVector({1.0f, 2.0f, 3.0f})).ok());
}

TEST(FeatureMapTest, SoAStorageIsContiguousAndAligned) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({1.0f, 2.0f, 3.0f})).ok());
  ASSERT_TRUE(map.Add(FeatureVector({4.0f, 5.0f, 6.0f})).ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(map.data()) % simd::kSoAAlignment, 0u);
  EXPECT_EQ(map.row(1), map.data() + map.dim());
  EXPECT_FLOAT_EQ(map.row(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(map.row(1)[0], 4.0f);
  const FeatureVector copy = map.vector(1);
  ASSERT_EQ(copy.dim(), 3u);
  EXPECT_FLOAT_EQ(copy[1], 5.0f);
}

TEST(FeatureMapTest, RawAddMatchesVectorAddAndEnforcesDimension) {
  const float values[] = {7.0f, 8.0f};
  FeatureMap map;
  ASSERT_TRUE(map.Add(values, 2, 2.0).ok());
  EXPECT_EQ(map.dim(), 2u);
  EXPECT_DOUBLE_EQ(map.weight(0), 2.0);
  EXPECT_FLOAT_EQ(map.row(0)[1], 8.0f);
  const float wrong[] = {1.0f};
  EXPECT_FALSE(map.Add(wrong, 1).ok());
  EXPECT_FALSE(map.Add(values, 2, -1.0).ok());
  EXPECT_EQ(map.size(), 1u);
}

TEST(FeatureMapQuantizedTest, ShadowRoundTripsWithinHalfScale) {
  Rng rng(91);
  FeatureMap map;
  const size_t dim = 17;
  for (size_t n = 0; n < 30; ++n) {
    std::vector<float> values(dim);
    for (float& v : values) {
      v = static_cast<float>(rng.Gaussian(0.0, std::pow(10.0, n % 4)));
    }
    ASSERT_TRUE(map.Add(values.data(), dim).ok());
  }
  auto shadow = map.quantized();
  ASSERT_TRUE(shadow.has_value());
  ASSERT_GT(shadow->scale, 0.0f);
  for (size_t i = 0; i < map.size(); ++i) {
    const float* row = map.row(i);
    const int8_t* codes = shadow->codes + i * dim;
    int32_t norm = 0;
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_GE(codes[j], -127);
      EXPECT_LE(codes[j], 127);
      EXPECT_LE(std::abs(static_cast<double>(row[j]) -
                         static_cast<double>(codes[j]) * shadow->scale),
                shadow->scale / 2.0 + 1e-6)
          << "row " << i << " component " << j;
      norm += static_cast<int32_t>(codes[j]) * static_cast<int32_t>(codes[j]);
    }
    EXPECT_EQ(shadow->norms[i], norm) << "row " << i;
  }
}

TEST(FeatureMapQuantizedTest, GrowingMagnitudesRescaleAllRows) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.5f, -0.5f})).ok());
  // A much larger row forces the cap (and scale) to grow; the earlier row
  // must be re-encoded under the new scale or its codes would overflow their
  // meaning.
  ASSERT_TRUE(map.Add(FeatureVector({100.0f, -50.0f})).ok());
  auto shadow = map.quantized();
  ASSERT_TRUE(shadow.has_value());
  EXPECT_GE(shadow->scale * 127.0f, 100.0f - 1e-3f);
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.dim(); ++j) {
      const float value = map.row(i)[j];
      const float decoded = shadow->codes[i * map.dim() + j] * shadow->scale;
      EXPECT_LE(std::abs(value - decoded), shadow->scale / 2.0f + 1e-6f);
    }
  }
}

TEST(FeatureMapQuantizedTest, NonFiniteInputDropsShadowUntilClear) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({1.0f, 2.0f})).ok());
  EXPECT_TRUE(map.quantized().has_value());
  ASSERT_TRUE(
      map.Add(FeatureVector({std::numeric_limits<float>::infinity(), 0.0f}))
          .ok());
  EXPECT_FALSE(map.quantized().has_value());
  // Later clean rows do not resurrect it — the poisoned row is still there.
  ASSERT_TRUE(map.Add(FeatureVector({3.0f, 4.0f})).ok());
  EXPECT_FALSE(map.quantized().has_value());
  map.Clear();
  ASSERT_TRUE(map.Add(FeatureVector({3.0f, 4.0f})).ok());
  EXPECT_TRUE(map.quantized().has_value());
}

TEST(FeatureMapQuantizedTest, EmptyAndAllZeroMaps) {
  FeatureMap empty;
  EXPECT_FALSE(empty.quantized().has_value());
  FeatureMap zeros;
  ASSERT_TRUE(zeros.Add(FeatureVector({0.0f, 0.0f})).ok());
  auto shadow = zeros.quantized();
  // An all-zero map either has no shadow or a degenerate exact one; if
  // present, codes and norms must be zero.
  if (shadow.has_value()) {
    EXPECT_EQ(shadow->codes[0], 0);
    EXPECT_EQ(shadow->codes[1], 0);
    EXPECT_EQ(shadow->norms[0], 0);
  }
}

}  // namespace
}  // namespace vz
