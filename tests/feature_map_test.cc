#include "vector/feature_map.h"

#include <gtest/gtest.h>

namespace vz {
namespace {

TEST(FeatureMapTest, AddEnforcesDimension) {
  FeatureMap map;
  EXPECT_TRUE(map.Add(FeatureVector({1.0f, 2.0f})).ok());
  EXPECT_TRUE(map.Add(FeatureVector({3.0f, 4.0f})).ok());
  EXPECT_FALSE(map.Add(FeatureVector({1.0f})).ok());
  EXPECT_FALSE(map.Add(FeatureVector({1.0f, 1.0f}), -0.5).ok());
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.dim(), 2u);
}

TEST(FeatureMapTest, NormalizedWeightsSumToOne) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f}), 1.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({1.0f}), 3.0).ok());
  const auto w = map.NormalizedWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
  EXPECT_DOUBLE_EQ(map.TotalWeight(), 4.0);
}

TEST(FeatureMapTest, WeightedCentroid) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f, 0.0f}), 1.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({4.0f, 0.0f}), 3.0).ok());
  const FeatureVector c = map.Centroid();
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
}

TEST(FeatureMapTest, ZeroWeightsFallBackToUnweightedCentroid) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({0.0f}), 0.0).ok());
  ASSERT_TRUE(map.Add(FeatureVector({2.0f}), 0.0).ok());
  EXPECT_FLOAT_EQ(map.Centroid()[0], 1.0f);
  EXPECT_TRUE(map.NormalizedWeights().empty());
}

TEST(FeatureMapTest, EmptyMapCentroidAndOcd) {
  FeatureMap empty;
  EXPECT_TRUE(empty.Centroid().empty());
  FeatureMap other;
  ASSERT_TRUE(other.Add(FeatureVector({1.0f})).ok());
  EXPECT_DOUBLE_EQ(ObjectCentroidDistance(empty, other), 0.0);
}

TEST(FeatureMapTest, ObjectCentroidDistance) {
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f, 0.0f})).ok());
  ASSERT_TRUE(a.Add(FeatureVector({2.0f, 0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({5.0f, 0.0f})).ok());
  EXPECT_DOUBLE_EQ(ObjectCentroidDistance(a, b), 4.0);
}

TEST(FeatureMapTest, ClearResets) {
  FeatureMap map;
  ASSERT_TRUE(map.Add(FeatureVector({1.0f})).ok());
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.dim(), 0u);
  // After clearing, a different dimension is acceptable.
  EXPECT_TRUE(map.Add(FeatureVector({1.0f, 2.0f, 3.0f})).ok());
}

}  // namespace
}  // namespace vz
