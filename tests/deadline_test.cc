// Deadline / CancelToken semantics under the simulated clock, cancellation
// of the long-running kernels (min-cost-flow pivots, OMD solves), and the
// admission controller's gate/shed behaviour.
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/sim_clock.h"
#include "core/admission.h"
#include "core/omd.h"
#include "solver/min_cost_flow.h"
#include "test_util.h"

namespace vz {
namespace {

using ::vz::testing::MakeMap;

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_ms(), int64_t{1} << 60);
  EXPECT_EQ(deadline.overshoot_ms(), 0);
}

TEST(DeadlineTest, ExpiresWhenSimClockAdvances) {
  SimClock clock;
  SimClockTimeSource source(&clock);
  const Deadline deadline = Deadline::AfterMs(&source, 100);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 100);
  clock.AdvanceMs(99);
  EXPECT_FALSE(deadline.expired());
  clock.AdvanceMs(1);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 0);
  clock.AdvanceMs(25);
  EXPECT_EQ(deadline.overshoot_ms(), 25);
}

TEST(DeadlineTest, ZeroOrNegativeBudgetIsAlreadyExpired) {
  SimClock clock;
  clock.AdvanceMs(500);
  SimClockTimeSource source(&clock);
  EXPECT_TRUE(Deadline::AfterMs(&source, 0).expired());
  EXPECT_TRUE(Deadline::AfterMs(&source, -10).expired());
  EXPECT_FALSE(Deadline::AfterMs(&source, 1).expired());
}

TEST(DeadlineTest, AtMsUsesAbsoluteTime) {
  SimClock clock;
  SimClockTimeSource source(&clock);
  const Deadline deadline = Deadline::AtMs(&source, 40);
  EXPECT_FALSE(deadline.expired());
  clock.AdvanceTo(40);
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, WallClockSourceIsMonotonic) {
  WallClockTimeSource source;
  const int64_t a = source.NowMs();
  const int64_t b = source.NowMs();
  EXPECT_LE(a, b);
  EXPECT_FALSE(Deadline::AfterMs(&source, 60'000).expired());
  EXPECT_TRUE(Deadline::AfterMs(&source, -1).expired());
}

TEST(CancelTokenTest, DefaultTokenOnlyFiresOnExplicitCancel) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // latched
}

TEST(CancelTokenTest, FiresWhenDeadlineExpires) {
  SimClock clock;
  SimClockTimeSource source(&clock);
  CancelToken token(Deadline::AfterMs(&source, 10));
  EXPECT_FALSE(token.cancelled());
  clock.AdvanceMs(10);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, ParentCancellationPropagates) {
  CancelToken parent;
  CancelToken child(Deadline(), &parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  // The child latched its own state; the parent link is no longer needed.
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelTokenTest, DeadlineAndParentCompose) {
  SimClock clock;
  SimClockTimeSource source(&clock);
  CancelToken external;
  CancelToken token(Deadline::AfterMs(&source, 100), &external);
  EXPECT_FALSE(token.cancelled());
  external.Cancel();  // fires long before the deadline would
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, CancelledHelperHandlesNull) {
  EXPECT_FALSE(Cancelled(nullptr));
  CancelToken token;
  EXPECT_FALSE(Cancelled(&token));
  token.Cancel();
  EXPECT_TRUE(Cancelled(&token));
}

TEST(CancelledSolveTest, MinCostFlowReturnsCancelled) {
  solver::MinCostFlow flow;
  const int source = flow.AddNode();
  const int sink = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(source, sink, 1.0, 1.0).ok());
  CancelToken token;
  token.Cancel();
  auto result = flow.Solve(source, sink, &token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancelledSolveTest, MinCostFlowNullTokenSolvesNormally) {
  solver::MinCostFlow flow;
  const int source = flow.AddNode();
  const int sink = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(source, sink, 2.0, 3.0).ok());
  auto result = flow.Solve(source, sink, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->max_flow, 2.0);
  EXPECT_DOUBLE_EQ(result->min_cost, 6.0);
}

TEST(CancelledSolveTest, OmdDistanceReturnsCancelledOnFiredToken) {
  core::OmdCalculator calc;
  const FeatureMap a = MakeMap(10, 8, 0.0, 1.0, 1);
  const FeatureMap b = MakeMap(10, 8, 2.0, 1.0, 2);
  CancelToken token;
  token.Cancel();
  auto d = calc.Distance(a, b, &token);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCancelled);
}

TEST(CancelledSolveTest, OmdDistanceWithLiveTokenMatchesPlainDistance) {
  core::OmdCalculator calc;
  const FeatureMap a = MakeMap(10, 8, 0.0, 1.0, 1);
  const FeatureMap b = MakeMap(10, 8, 2.0, 1.0, 2);
  CancelToken token;  // never fires
  auto with_token = calc.Distance(a, b, &token);
  auto plain = calc.Distance(a, b);
  ASSERT_TRUE(with_token.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(*with_token, *plain);
}

TEST(CancelledSolveTest, OmdDeadlineExpiryDuringSimTimeCancels) {
  SimClock clock;
  SimClockTimeSource source(&clock);
  core::OmdCalculator calc;
  const FeatureMap a = MakeMap(6, 4, 0.0, 1.0, 3);
  const FeatureMap b = MakeMap(6, 4, 1.0, 1.0, 4);
  CancelToken token(Deadline::AfterMs(&source, 5));
  // Not yet expired: the solve completes.
  ASSERT_TRUE(calc.Distance(a, b, &token).ok());
  clock.AdvanceMs(5);
  auto d = calc.Distance(a, b, &token);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCancelled);
}

TEST(AdmissionTest, UnlimitedGateAdmitsAndCounts) {
  core::AdmissionController gate(core::AdmissionOptions{});
  ASSERT_TRUE(gate.Admit().ok());
  ASSERT_TRUE(gate.Admit().ok());
  auto stats = gate.stats();
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 0u);
  gate.Release();
  gate.Release();
  EXPECT_EQ(gate.stats().in_flight, 0u);
}

TEST(AdmissionTest, ShedsWhenGateAndQueueAreFull) {
  core::AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue = 0;
  options.retry_after_hint_ms = 75;
  core::AdmissionController gate(options);
  ASSERT_TRUE(gate.Admit().ok());
  const Status shed = gate.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("retry after 75ms"), std::string::npos);
  auto stats = gate.stats();
  EXPECT_EQ(stats.in_flight, 1u);
  EXPECT_EQ(stats.shed, 1u);
  // Releasing the slot makes the gate admit again.
  gate.Release();
  EXPECT_TRUE(gate.Admit().ok());
  gate.Release();
}

TEST(AdmissionTest, QueuedCallerIsAdmittedAfterRelease) {
  core::AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue = 1;
  core::AdmissionController gate(options);
  ASSERT_TRUE(gate.Admit().ok());
  Status queued = Status::Internal("not run");
  std::thread waiter([&] { queued = gate.Admit(); });
  // Wait until the waiter is parked in the queue, then free the slot.
  while (gate.stats().waiting == 0) std::this_thread::yield();
  gate.Release();
  waiter.join();
  EXPECT_TRUE(queued.ok());
  auto stats = gate.stats();
  EXPECT_EQ(stats.in_flight, 1u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.admitted, 2u);
  gate.Release();
}

TEST(AdmissionTest, ScopedAdmissionReleasesOnDestruction) {
  core::AdmissionOptions options;
  options.max_in_flight = 1;
  options.max_queue = 0;
  core::AdmissionController gate(options);
  {
    ASSERT_TRUE(gate.Admit().ok());
    core::ScopedAdmission slot(&gate);
    EXPECT_EQ(gate.stats().in_flight, 1u);
  }
  EXPECT_EQ(gate.stats().in_flight, 0u);
  EXPECT_TRUE(gate.Admit().ok());
  gate.Release();
}

}  // namespace
}  // namespace vz
