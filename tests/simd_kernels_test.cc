#include "vector/simd_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace vz::simd {
namespace {

// Bitwise comparison (signed zeros and infinities must match exactly, which
// double== cannot express), except that two NaNs always compare equal: NaN
// *payload* bits depend on which operand of a commutative add the compiler
// put first, and are explicitly outside the kernel contract. NaN-ness
// itself must still agree — a NaN on one side and a number on the other
// fails.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits 0x" << std::hex << ba << " vs 0x"
         << bb << ")";
}

// Elementwise float-buffer comparison under the same NaN rule.
::testing::AssertionResult BuffersBitEqual(const float* a, const float* b,
                                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " != " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// The dimension sweep of the kernel contract: every width around the 4/8/32
// lane boundaries plus two deep-loop sizes.
std::vector<size_t> SweepDims() {
  std::vector<size_t> dims;
  for (size_t d = 1; d <= 67; ++d) dims.push_back(d);
  dims.push_back(512);
  dims.push_back(2048);
  return dims;
}

// Fills `n` floats with a mix of magnitudes; with `poison`, sprinkles NaN
// and +-Inf payloads in as well.
void FillFloats(Rng* rng, float* out, size_t n, bool poison) {
  for (size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng->UniformDouble(-6.0, 6.0));
    out[i] = static_cast<float>(rng->Gaussian(0.0, mag));
    if (poison && rng->Bernoulli(0.05)) {
      switch (rng->UniformInt(0, 2)) {
        case 0: out[i] = std::numeric_limits<float>::quiet_NaN(); break;
        case 1: out[i] = std::numeric_limits<float>::infinity(); break;
        default: out[i] = -std::numeric_limits<float>::infinity(); break;
      }
    }
  }
}

class SimdKernelsTest : public ::testing::TestWithParam<bool> {
 protected:
  // Parameter: whether the buffers carry NaN/Inf payloads.
  bool poison() const { return GetParam(); }
};

TEST_P(SimdKernelsTest, PairReductionsMatchScalarBitForBit) {
  const KernelTable& active = Active();
  const KernelTable& scalar = Scalar();
  Rng rng(poison() ? 77 : 42);
  // Slack so every dim can be tested at unaligned starting offsets.
  constexpr size_t kMaxOffset = 7;
  std::vector<float> a(2048 + kMaxOffset), b(2048 + kMaxOffset);
  for (size_t dim : SweepDims()) {
    for (size_t offset = 0; offset <= kMaxOffset; offset += 3) {
      FillFloats(&rng, a.data(), dim + offset, poison());
      FillFloats(&rng, b.data(), dim + offset, poison());
      const float* pa = a.data() + offset;
      const float* pb = b.data() + offset;
      EXPECT_TRUE(BitEqual(active.squared_distance(pa, pb, dim),
                           scalar.squared_distance(pa, pb, dim)))
          << "squared_distance dim=" << dim << " offset=" << offset;
      EXPECT_TRUE(BitEqual(active.dot(pa, pb, dim), scalar.dot(pa, pb, dim)))
          << "dot dim=" << dim << " offset=" << offset;
      EXPECT_TRUE(
          BitEqual(active.sum_squares(pa, dim), scalar.sum_squares(pa, dim)))
          << "sum_squares dim=" << dim << " offset=" << offset;
    }
  }
}

TEST_P(SimdKernelsTest, BatchedEuclideanMatchesScalarBitForBit) {
  const KernelTable& active = Active();
  const KernelTable& scalar = Scalar();
  Rng rng(poison() ? 177 : 142);
  const std::vector<size_t> counts = {1, 5, 8, 9, 16, 33};
  for (size_t dim : {1UL, 3UL, 17UL, 64UL, 512UL}) {
    for (size_t count : counts) {
      std::vector<float> query(dim);
      std::vector<float> targets(count * dim);
      FillFloats(&rng, query.data(), dim, poison());
      FillFloats(&rng, targets.data(), count * dim, poison());
      std::vector<const float*> rows(count);
      for (size_t j = 0; j < count; ++j) rows[j] = targets.data() + j * dim;

      std::vector<double> want(count), rows_out(count), cols_out(count);
      scalar.euclidean_rows(query.data(), rows.data(), count, dim,
                            want.data());
      active.euclidean_rows(query.data(), rows.data(), count, dim,
                            rows_out.data());
      // Column-major path: transpose once, then the tile kernel.
      std::vector<float> tile(count * dim);
      TransposeRows(rows.data(), count, dim, tile.data());
      active.euclidean_cols(query.data(), tile.data(), count, dim,
                            cols_out.data());
      std::vector<double> cols_scalar(count);
      scalar.euclidean_cols(query.data(), tile.data(), count, dim,
                            cols_scalar.data());
      for (size_t j = 0; j < count; ++j) {
        EXPECT_TRUE(BitEqual(rows_out[j], want[j]))
            << "rows dim=" << dim << " count=" << count << " j=" << j;
        EXPECT_TRUE(BitEqual(cols_out[j], want[j]))
            << "cols dim=" << dim << " count=" << count << " j=" << j;
        EXPECT_TRUE(BitEqual(cols_scalar[j], want[j]))
            << "cols-scalar dim=" << dim << " count=" << count << " j=" << j;
      }
    }
  }
}

TEST_P(SimdKernelsTest, ElementwiseUpdatesMatchScalarBitForBit) {
  const KernelTable& active = Active();
  const KernelTable& scalar = Scalar();
  Rng rng(poison() ? 277 : 242);
  for (size_t dim : SweepDims()) {
    std::vector<float> acc(dim), v(dim);
    FillFloats(&rng, acc.data(), dim, poison());
    FillFloats(&rng, v.data(), dim, poison());
    const float s = static_cast<float>(rng.Gaussian(0.0, 3.0));

    std::vector<float> acc_a = acc, acc_s = acc;
    active.axpy(acc_a.data(), s, v.data(), dim);
    scalar.axpy(acc_s.data(), s, v.data(), dim);
    EXPECT_TRUE(BuffersBitEqual(acc_a.data(), acc_s.data(), dim))
        << "axpy dim=" << dim;

    acc_a = acc;
    acc_s = acc;
    active.add_in_place(acc_a.data(), v.data(), dim);
    scalar.add_in_place(acc_s.data(), v.data(), dim);
    EXPECT_TRUE(BuffersBitEqual(acc_a.data(), acc_s.data(), dim))
        << "add_in_place dim=" << dim;

    acc_a = acc;
    acc_s = acc;
    active.scale_in_place(acc_a.data(), s, dim);
    scalar.scale_in_place(acc_s.data(), s, dim);
    EXPECT_TRUE(BuffersBitEqual(acc_a.data(), acc_s.data(), dim))
        << "scale_in_place dim=" << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(FiniteAndPoisoned, SimdKernelsTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "NanInfPayloads" : "Finite";
                         });

TEST(SimdKernelsInt8Test, DotI8MatchesScalarAndIsExact) {
  const KernelTable& active = Active();
  const KernelTable& scalar = Scalar();
  Rng rng(1234);
  for (size_t dim : SweepDims()) {
    for (size_t offset = 0; offset <= 5; offset += 5) {
      std::vector<int8_t> a(dim + offset), b(dim + offset);
      for (size_t i = 0; i < dim + offset; ++i) {
        a[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
        b[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
      }
      const int8_t* pa = a.data() + offset;
      const int8_t* pb = b.data() + offset;
      int64_t want = 0;
      for (size_t i = 0; i < dim; ++i) {
        want += static_cast<int32_t>(pa[i]) * static_cast<int32_t>(pb[i]);
      }
      EXPECT_EQ(scalar.dot_i8(pa, pb, dim), want) << "dim=" << dim;
      EXPECT_EQ(active.dot_i8(pa, pb, dim), want)
          << "dim=" << dim << " offset=" << offset;
    }
  }
  // Saturating corner: every pair at the magnitude cap.
  std::vector<int8_t> hi(2048, 127), lo(2048, -127);
  EXPECT_EQ(active.dot_i8(hi.data(), lo.data(), 2048),
            -127LL * 127LL * 2048LL);
  EXPECT_EQ(active.dot_i8(hi.data(), hi.data(), 2048),
            127LL * 127LL * 2048LL);
}

TEST(SimdKernelsDispatchTest, ForceScalarSwitchesTable) {
  const bool had_avx2 = Avx2Active();
  ForceScalar(true);
  EXPECT_FALSE(Avx2Active());
  EXPECT_STREQ(Active().name, "scalar");
  ForceScalar(false);
  EXPECT_EQ(Avx2Active(), had_avx2);
}

TEST(SimdKernelsDispatchTest, TransposeRoundTrip) {
  Rng rng(5);
  const size_t count = 9, dim = 13;
  std::vector<float> data(count * dim);
  FillFloats(&rng, data.data(), data.size(), false);
  std::vector<const float*> rows(count);
  for (size_t j = 0; j < count; ++j) rows[j] = data.data() + j * dim;
  std::vector<float> tile(count * dim);
  TransposeRows(rows.data(), count, dim, tile.data());
  for (size_t j = 0; j < count; ++j) {
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(tile[i * count + j], rows[j][i]);
    }
  }
}

TEST(SimdKernelsDispatchTest, AlignedAllocatorAligns) {
  std::vector<float, AlignedAllocator<float>> buf(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kSoAAlignment, 0u);
}

}  // namespace
}  // namespace vz::simd
