#ifndef VZ_TESTS_CLUSTER_TEST_UTIL_H_
#define VZ_TESTS_CLUSTER_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/videozilla.h"
#include "net/client.h"
#include "net/coordinator.h"
#include "net/server.h"
#include "sim/dataset.h"

namespace vz::net {

/// In-process sharded deployment for the cluster drills: N edge shards (one
/// `VideoZilla` + `Server` pair each, cameras split round-robin by
/// `Deployment::PartitionCameras`) plus one `Coordinator` fanning out over
/// them. Lives in tests/ because `vz_sim` cannot link `vz_net`.
///
/// Edges are fed in-process (`IngestShard`) before their servers start
/// serving, so booting a cluster is fast and identical across incarnations;
/// the coordinator runs with its background sync thread disabled — drills
/// drive `Coordinator::PollEdgesNow()` by hand so every health-ladder
/// transition happens at a deterministic point in the test.
class TestCluster {
 public:
  /// `deployment` is borrowed and must outlive the cluster; `num_edges`
  /// edges each own one round-robin camera shard.
  TestCluster(sim::Deployment* deployment, size_t num_edges,
              const core::VideoZillaOptions& system_options)
      : deployment_(deployment),
        system_options_(system_options),
        shards_(deployment->PartitionCameras(num_edges)) {}

  /// Boots every edge: builds its `VideoZilla`, ingests its camera shard,
  /// then starts its server on a kernel-picked port.
  Status StartEdges() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      systems_.push_back(
          std::make_unique<core::VideoZilla>(system_options_));
      VZ_RETURN_IF_ERROR(
          deployment_->IngestShard(systems_.back().get(), shards_[i]));
      servers_.push_back(
          std::make_unique<Server>(systems_.back().get(), ServerOptions{}));
      VZ_RETURN_IF_ERROR(servers_.back()->Start());
      edge_ports_.push_back(servers_.back()->port());
    }
    return Status::OK();
  }

  /// Boots the coordinator over `endpoints` (the edges' own listen ports
  /// when empty — pass proxy ports to interpose a chaos proxy per edge).
  /// Index options are copied from the edges' system options so coordinator
  /// hit tests agree with edge hit tests, and the background sync thread is
  /// disabled (see class comment).
  Status StartCoordinator(CoordinatorOptions options = {},
                          std::vector<EdgeEndpoint> endpoints = {}) {
    if (endpoints.empty()) {
      for (uint16_t port : edge_ports_) {
        endpoints.push_back({"127.0.0.1", port});
      }
    }
    options.edges = std::move(endpoints);
    options.omd = system_options_.omd;
    options.inter = system_options_.inter;
    options.boundary_scale = system_options_.boundary_scale;
    options.sync_interval_ms = 0;
    coordinator_ = std::make_unique<Coordinator>(options);
    return coordinator_->Start();
  }

  /// `kill -9` for edge `i`: no drain, connections torn mid-frame.
  void KillEdge(size_t i) { servers_[i]->Kill(); }

  /// A fresh `Server` incarnation over the same (unchanged) `VideoZilla`,
  /// re-bound to the same port — the restarted-edge half of the drill.
  Status RestartEdge(size_t i) {
    ServerOptions options;
    options.port = edge_ports_[i];
    servers_[i] = std::make_unique<Server>(systems_[i].get(), options);
    return servers_[i]->Start();
  }

  Coordinator& coordinator() { return *coordinator_; }
  core::VideoZilla& system(size_t i) { return *systems_[i]; }
  uint16_t edge_port(size_t i) const { return edge_ports_[i]; }
  size_t num_edges() const { return shards_.size(); }

  /// The cameras edge `i` owns, in round-robin assignment order.
  const std::vector<core::CameraId>& shard_cameras(size_t i) const {
    return shards_[i];
  }

  /// A client session against the coordinator. The generous I/O budget
  /// covers a fan-out answer waiting out a slow (proxied) edge leg.
  StatusOr<Client> Connect(uint64_t session_id = 0) const {
    ClientOptions options;
    options.connect_timeout_ms = 2'000;
    options.io_timeout_ms = 30'000;
    options.session_id = session_id;
    options.backoff_seed = 17;
    return Client::Connect("127.0.0.1", coordinator_->port(), options);
  }

 private:
  sim::Deployment* deployment_;
  core::VideoZillaOptions system_options_;
  std::vector<std::vector<core::CameraId>> shards_;
  std::vector<std::unique_ptr<core::VideoZilla>> systems_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<uint16_t> edge_ports_;
  // Declared last: destroyed first, so the coordinator shuts down while the
  // edges it holds connections to are still alive.
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace vz::net

#endif  // VZ_TESTS_CLUSTER_TEST_UTIL_H_
