// Additional end-to-end behaviors: determinism, key-frame-enabled ingestion,
// clustering-query constraints, per-query stats, and exact-stage toggling.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

sim::DeploymentOptions SmallDeployment(uint64_t seed = 5) {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 60'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = seed;
  return options;
}

VideoZillaOptions FastOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.omd.max_vectors = 48;
  options.boundary_scale = 1.6;
  options.enable_keyframe_selection = false;
  return options;
}

TEST(VideoZillaEdgeTest, IdenticalRunsAreBitForBitDeterministic) {
  auto run = [] {
    sim::Deployment deployment(SmallDeployment());
    VideoZilla system(FastOptions());
    EXPECT_TRUE(deployment.IngestAll(&system).ok());
    std::vector<std::tuple<CameraId, int64_t, int64_t, size_t>> fingerprint;
    for (SvsId id : system.svs_store().AllIds()) {
      auto svs = system.svs_store().Get(id);
      EXPECT_TRUE(svs.ok());
      fingerprint.emplace_back((*svs)->camera(), (*svs)->start_ms(),
                               (*svs)->end_ms(), (*svs)->features().size());
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(VideoZillaEdgeTest, KeyframeSelectionBoundsExtraction) {
  sim::DeploymentOptions dep_options = SmallDeployment();
  dep_options.fps = 4.0;  // offered well above the edge budget

  VideoZillaOptions unbounded = FastOptions();
  VideoZillaOptions bounded = FastOptions();
  bounded.enable_keyframe_selection = true;
  bounded.keyframe.processing_capacity_fps = 1.0;

  sim::Deployment world_a(dep_options);
  sim::Deployment world_b(dep_options);
  VideoZilla everything(unbounded);
  VideoZilla budgeted(bounded);
  ASSERT_TRUE(world_a.IngestAll(&everything).ok());
  ASSERT_TRUE(world_b.IngestAll(&budgeted).ok());

  EXPECT_LT(budgeted.ingest_stats().keyframes_selected,
            everything.ingest_stats().keyframes_selected / 2);
  EXPECT_GT(budgeted.svs_store().size(), 0u);
  // SVSs still cover all frames (key-framing bounds extraction, not the
  // archived video).
  size_t frames_covered = 0;
  for (SvsId id : budgeted.svs_store().AllIds()) {
    auto svs = budgeted.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    frames_covered += (*svs)->frame_ids().size();
  }
  EXPECT_GT(frames_covered,
            budgeted.ingest_stats().keyframes_selected);
}

TEST(VideoZillaEdgeTest, ClusteringQueryHonorsConstraints) {
  sim::Deployment deployment(SmallDeployment());
  VideoZilla system(FastOptions());
  ASSERT_TRUE(deployment.IngestAll(&system).ok());
  SvsId seed = -1;
  for (SvsId id : system.svs_store().IdsForCamera("harbor-0")) {
    seed = id;
    break;
  }
  ASSERT_GE(seed, 0);
  auto svs = system.svs_store().Get(seed);
  ASSERT_TRUE(svs.ok());

  QueryConstraints constraints;
  constraints.cameras = std::vector<CameraId>{"harbor-0"};
  auto result = system.ClusteringQuery((*svs)->features(), constraints);
  ASSERT_TRUE(result.ok());
  for (SvsId id : result->similar_svss) {
    auto peer = system.svs_store().Get(id);
    ASSERT_TRUE(peer.ok());
    EXPECT_EQ((*peer)->camera(), "harbor-0");
  }
  EXPECT_LE(result->cameras_contributing, 1u);
}

TEST(VideoZillaEdgeTest, PerCameraGpuAccountingSumsToTotal) {
  sim::Deployment deployment(SmallDeployment());
  VideoZilla system(FastOptions());
  ASSERT_TRUE(deployment.IngestAll(&system).ok());
  sim::HeavyModel heavy(1.0, 0.0, 3);
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  system.SetVerifier(&verifier);
  Rng rng(13);
  auto result =
      system.DirectQuery(deployment.MakeQueryFeature(sim::kCar, &rng));
  ASSERT_TRUE(result.ok());
  double per_camera = 0.0;
  for (const auto& [camera, ms] : result->per_camera_gpu_ms) per_camera += ms;
  EXPECT_NEAR(per_camera, result->total_gpu_ms, 1e-6);
  EXPECT_LE(result->bottleneck_camera_gpu_ms, result->total_gpu_ms + 1e-9);
  EXPECT_EQ(result->cameras_searched, result->per_camera_gpu_ms.size());
}

TEST(VideoZillaEdgeTest, ExactStageOnlyRemovesCandidates) {
  sim::Deployment world_a(SmallDeployment());
  sim::Deployment world_b(SmallDeployment());
  VideoZillaOptions with_stage = FastOptions();
  VideoZillaOptions without_stage = FastOptions();
  without_stage.enable_exact_stage = false;
  VideoZilla filtered(with_stage);
  VideoZilla unfiltered(without_stage);
  ASSERT_TRUE(world_a.IngestAll(&filtered).ok());
  ASSERT_TRUE(world_b.IngestAll(&unfiltered).ok());
  Rng rng_a(17);
  Rng rng_b(17);
  for (int cls : {sim::kBoat, sim::kTrain}) {
    auto a = filtered.DirectQuery(world_a.MakeQueryFeature(cls, &rng_a));
    auto b = unfiltered.DirectQuery(world_b.MakeQueryFeature(cls, &rng_b));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Both worlds are identical (same seeds); the confirmed set must be a
    // subset of the unfiltered candidates.
    std::unordered_set<SvsId> unfiltered_set(b->candidate_svss.begin(),
                                             b->candidate_svss.end());
    for (SvsId id : a->candidate_svss) {
      EXPECT_TRUE(unfiltered_set.count(id) > 0) << "class " << cls;
    }
    EXPECT_LE(a->candidate_svss.size(), b->candidate_svss.size());
  }
}

TEST(VideoZillaEdgeTest, FrameOrderViolationIsTolerated) {
  // Out-of-order timestamps within a camera should not crash the pipeline
  // (segmentation treats them as same-instant features).
  VideoZilla system(FastOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  sim::FeatureSpace space(sim::FeatureSpaceOptions{16, 10.0, 2.0, 1});
  sim::FeatureExtractor extractor(&space,
                                  sim::ExtractorProfile::ResNet50());
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    FrameObservation frame;
    frame.camera = "cam";
    frame.frame_id = i;
    frame.timestamp_ms = (i % 5 == 0) ? i * 1000 - 500 : i * 1000;
    DetectedObject object;
    object.feature = extractor.Extract(sim::kCar, "", &rng);
    frame.objects.push_back(std::move(object));
    EXPECT_TRUE(system.IngestFrame(frame).ok());
  }
  EXPECT_TRUE(system.Flush().ok());
  EXPECT_GT(system.svs_store().size(), 0u);
}

}  // namespace
}  // namespace vz::core
