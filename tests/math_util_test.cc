#include "common/math_util.h"

#include <gtest/gtest.h>

namespace vz {
namespace {

TEST(MathUtilTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2.0, 4.0, 6.0}), 8.0 / 3.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 6.0}), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(MathUtilTest, PercentileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(MathUtilTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 50), 2.5);
}

TEST(MathUtilTest, EmpiricalCdfMonotone) {
  auto cdf = EmpiricalCdf({1.0, 2.0, 2.0, 3.0, 10.0}, 6);
  ASSERT_EQ(cdf.size(), 6u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 10.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(MathUtilTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 + 1.0, 1e-8));
}

}  // namespace
}  // namespace vz
