// End-to-end persistence: ingest a deployment, snapshot the SVS store, load
// it into a fresh Video-zilla instance, and verify queries answer
// identically — the restart story of a production indexing layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/videozilla.h"
#include "io/svs_snapshot.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz {
namespace {

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 60'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  return options;
}

core::VideoZillaOptions VzOptions() {
  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.omd.max_vectors = 48;
  options.boundary_scale = 1.6;
  options.enable_keyframe_selection = false;
  return options;
}

TEST(RestoreTest, SnapshotRestoreAnswersQueriesIdentically) {
  sim::Deployment deployment(SmallDeployment());
  core::VideoZilla original(VzOptions());
  ASSERT_TRUE(deployment.IngestAll(&original).ok());
  sim::HeavyModel heavy(1.0, 0.0, 3);
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  original.SetVerifier(&verifier);

  const std::string path = ::testing::TempDir() + "/restore.vzss";
  ASSERT_TRUE(io::SaveSvsStore(original.svs_store(), path).ok());

  // Fresh instance, restored from the snapshot.
  core::VideoZilla restored(VzOptions());
  {
    core::SvsStore loaded;
    ASSERT_TRUE(io::LoadSvsStore(path, &loaded).ok());
    ASSERT_TRUE(restored.RestoreFromSvsStore(loaded).ok());
  }
  restored.SetVerifier(&verifier);
  ASSERT_EQ(restored.svs_store().size(), original.svs_store().size());
  ASSERT_EQ(restored.cameras(), original.cameras());

  // The restored instance must reach the same content. (Cluster derivation
  // is re-run, so candidate ordering may differ; the verified match set is
  // what a client observes.)
  Rng rng(9);
  for (int object_class : {sim::kBoat, sim::kTrain, sim::kCar}) {
    const FeatureVector query =
        deployment.MakeQueryFeature(object_class, &rng);
    auto a = original.DirectQuery(query);
    auto b = restored.DirectQuery(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::vector<core::SvsId> matched_a = a->matched_svss;
    std::vector<core::SvsId> matched_b = b->matched_svss;
    std::sort(matched_a.begin(), matched_a.end());
    std::sort(matched_b.begin(), matched_b.end());
    EXPECT_EQ(matched_a, matched_b)
        << "class " << sim::ObjectClassName(object_class);
  }

  // Metadata (including access stats accumulated before the snapshot)
  // survives.
  for (core::SvsId id : original.svs_store().AllIds()) {
    auto ma = original.GetMetaData(id);
    auto mb = restored.GetMetaData(id);
    ASSERT_TRUE(ma.ok());
    ASSERT_TRUE(mb.ok());
    EXPECT_EQ(ma->camera, mb->camera);
    EXPECT_EQ(ma->num_frames, mb->num_frames);
  }
  std::remove(path.c_str());
}

TEST(RestoreTest, RestoreRequiresEmptyInstance) {
  sim::Deployment deployment(SmallDeployment());
  core::VideoZilla system(VzOptions());
  ASSERT_TRUE(deployment.IngestAll(&system).ok());
  core::SvsStore other;
  EXPECT_FALSE(system.RestoreFromSvsStore(other).ok());
}

}  // namespace
}  // namespace vz
