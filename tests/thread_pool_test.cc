#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vz {
namespace {

TEST(ThreadPoolTest, ReportsLaneCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  ThreadPool single(1);
  EXPECT_EQ(single.num_threads(), 1u);
  ThreadPool automatic(0);
  EXPECT_GE(automatic.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleLanePoolRunsSubmitInline) {
  ThreadPool pool(1);
  bool ran = false;
  auto future = pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> counts(kN, 0);
  std::vector<size_t> values(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) {
    ++counts[i];
    values[i] = i * i;
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i], 1) << "index " << i;
    EXPECT_EQ(values[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForResultOrderingIsDeterministic) {
  // The per-slot write pattern gives identical aggregates for any thread
  // count — the determinism contract the query layer relies on.
  constexpr size_t kN = 257;
  auto run = [](ThreadPool* pool) {
    std::vector<double> out(kN, 0.0);
    ParallelFor(pool, kN, [&](size_t i) { out[i] = 1.0 / (1.0 + i); });
    return out;
  };
  ThreadPool parallel(4);
  const std::vector<double> serial = run(nullptr);
  const std::vector<double> pooled = run(&parallel);
  EXPECT_EQ(serial, pooled);
}

TEST(ThreadPoolTest, SerialFallbackRunsInIndexOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 7) {
                                    throw std::runtime_error("task failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A parallel query task evaluating a parallel OMD nests ParallelFor on
  // the same pool; the caller-participates design must drain both levels
  // even when every worker is occupied.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForInsideSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto future = pool.Submit([&] {
    pool.ParallelFor(32, [&](size_t) { ++total; });
  });
  future.get();
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace vz
