#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vz {
namespace {

TEST(ThreadPoolTest, ReportsLaneCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  ThreadPool single(1);
  EXPECT_EQ(single.num_threads(), 1u);
  ThreadPool automatic(0);
  EXPECT_GE(automatic.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleLanePoolRunsSubmitInline) {
  ThreadPool pool(1);
  bool ran = false;
  auto future = pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> counts(kN, 0);
  std::vector<size_t> values(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) {
    ++counts[i];
    values[i] = i * i;
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i], 1) << "index " << i;
    EXPECT_EQ(values[i], i * i);
  }
}

TEST(ThreadPoolTest, ParallelForResultOrderingIsDeterministic) {
  // The per-slot write pattern gives identical aggregates for any thread
  // count — the determinism contract the query layer relies on.
  constexpr size_t kN = 257;
  auto run = [](ThreadPool* pool) {
    std::vector<double> out(kN, 0.0);
    ParallelFor(pool, kN, [&](size_t i) { out[i] = 1.0 / (1.0 + i); });
    return out;
  };
  ThreadPool parallel(4);
  const std::vector<double> serial = run(nullptr);
  const std::vector<double> pooled = run(&parallel);
  EXPECT_EQ(serial, pooled);
}

TEST(ThreadPoolTest, SerialFallbackRunsInIndexOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 7) {
                                    throw std::runtime_error("task failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A parallel query task evaluating a parallel OMD nests ParallelFor on
  // the same pool; the caller-participates design must drain both levels
  // even when every worker is occupied.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForInsideSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto future = pool.Submit([&] {
    pool.ParallelFor(32, [&](size_t) { ++total; });
  });
  future.get();
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolCancelTest, PreCancelledTokenRunsNoIterations) {
  CancelToken token;
  token.Cancel();
  // Serial path.
  size_t serial_runs = 0;
  ParallelFor(nullptr, 100, [&](size_t) { ++serial_runs; }, &token);
  EXPECT_EQ(serial_runs, 0u);
  // Pooled path: the cursor check fires before any iteration is claimed.
  ThreadPool pool(4);
  std::atomic<size_t> pooled_runs{0};
  ParallelFor(&pool, 100, [&](size_t) { ++pooled_runs; }, &token);
  EXPECT_EQ(pooled_runs.load(), 0u);
}

TEST(ThreadPoolCancelTest, NullTokenIsLegacyBehaviour) {
  ThreadPool pool(4);
  std::atomic<size_t> runs{0};
  ParallelFor(&pool, 64, [&](size_t) { ++runs; }, nullptr);
  EXPECT_EQ(runs.load(), 64u);
}

TEST(ThreadPoolCancelTest, SerialLoopStopsAtTheCancellingIteration) {
  CancelToken token;
  std::vector<size_t> ran;
  ParallelFor(
      nullptr, 100,
      [&](size_t i) {
        ran.push_back(i);
        if (i == 6) token.Cancel();
      },
      &token);
  // Iteration 6 fires the token; the pre-iteration checkpoint stops 7..99.
  std::vector<size_t> expected = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ran, expected);
}

TEST(ThreadPoolCancelTest, PooledLoopDrainsPromptlyAfterCancel) {
  // Workers check the token at the iteration cursor, so after a mid-loop
  // cancel at most the in-flight iterations (bounded by the lane count)
  // complete; the bulk of the range is never claimed.
  ThreadPool pool(4);
  constexpr size_t kN = 100'000;
  CancelToken token;
  std::atomic<size_t> runs{0};
  ParallelFor(
      &pool, kN,
      [&](size_t) {
        if (runs.fetch_add(1) == 10) token.Cancel();
      },
      &token);
  EXPECT_GE(runs.load(), 11u);
  EXPECT_LT(runs.load(), kN);  // drained long before the end of the range
}

TEST(ThreadPoolCancelTest, CancelledSlotsAreUntouched) {
  // The contract the query layer relies on: a drained loop leaves
  // unattempted slots exactly as initialized, so aggregation can tell
  // attempted from skipped work.
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  CancelToken token;
  token.Cancel();
  std::vector<char> touched(kN, 0);
  ParallelFor(&pool, kN, [&](size_t i) { touched[i] = 1; }, &token);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(touched[i], 0) << "slot " << i;
}

}  // namespace
}  // namespace vz
