#include "core/segmenter.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::core {
namespace {

FeatureVector Around(double value, Rng* rng) {
  FeatureVector v(4);
  for (size_t i = 0; i < 4; ++i) {
    v[i] = static_cast<float>(value + rng->Gaussian(0.0, 0.2));
  }
  return v;
}

Representative RepAround(double value, uint64_t seed) {
  Rng rng(seed);
  FeatureMap map;
  for (int i = 0; i < 30; ++i) (void)map.Add(Around(value, &rng), 1.0);
  auto rep = BuildRepresentative(map, RepresentativeOptions{}, &rng);
  EXPECT_TRUE(rep.ok());
  return *rep;
}

SegmenterOptions FastOptions() {
  SegmenterOptions options;
  options.t_max_ms = 60'000;
  options.t_split_ms = 10'000;
  options.min_novel_features = 5;
  options.novelty_check_stride = 1;
  return options;
}

TEST(SegmenterTest, BootstrapCutsAtTmax) {
  VideoSegmenter segmenter(FastOptions(), Rng(1));
  Rng rng(2);
  std::optional<Segment> segment;
  int64_t ts = 0;
  while (!segment.has_value() && ts < 300'000) {
    segment = segmenter.AddFeature(ts, Around(0.0, &rng));
    ts += 1000;
  }
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->reason, Segment::Reason::kTimeout);
  EXPECT_LE(segment->end_ms - segment->start_ms, 60'000);
  EXPECT_GE(segment->features.size(), 50u);
}

TEST(SegmenterTest, NoveltyTriggersSplitOnSceneChange) {
  SegmenterOptions options = FastOptions();
  // Keep the stale-center rule out of this test's way: representatives may
  // legitimately have a rarely-hit center even on stationary content.
  options.t_split_ms = 600'000;
  VideoSegmenter segmenter(options, Rng(3));
  segmenter.SetReference(RepAround(0.0, 4));
  Rng rng(5);
  // Familiar features first: hits, no split.
  int64_t ts = 0;
  for (int i = 0; i < 20; ++i) {
    auto segment = segmenter.AddFeature(ts, Around(0.0, &rng));
    EXPECT_FALSE(segment.has_value());
    ts += 500;
  }
  // Scene change: far-away coherent features should trigger a novelty cut.
  std::optional<Segment> segment;
  for (int i = 0; i < 30 && !segment.has_value(); ++i) {
    segment = segmenter.AddFeature(ts, Around(10.0, &rng));
    ts += 500;
  }
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->reason, Segment::Reason::kNovelty);
  // The cut lands at the first novel feature: the emitted segment holds
  // (roughly) the familiar features only. An occasional familiar outlier may
  // shift the cut point by a little.
  EXPECT_GE(segment->features.size(), 10u);
  EXPECT_LE(segment->features.size(), 25u);
  // The novel features remain buffered for the next SVS.
  EXPECT_GT(segmenter.buffered_features(), 0u);
}

TEST(SegmenterTest, StaleCenterTriggersSplit) {
  SegmenterOptions options = FastOptions();
  // Isolate the stale-center rule: the novelty rule must not fire first.
  options.min_novel_features = 1000;
  VideoSegmenter segmenter(options, Rng(6));
  // A reference with two far-apart centers; we only feed one of them, so
  // the other goes stale.
  Rng rng(7);
  FeatureMap two_blobs;
  for (int i = 0; i < 20; ++i) (void)two_blobs.Add(Around(0.0, &rng), 1.0);
  for (int i = 0; i < 20; ++i) (void)two_blobs.Add(Around(10.0, &rng), 1.0);
  auto rep = BuildRepresentative(two_blobs, RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  // Prime both centers as hit at t = 0 (wide scale so the robust,
  // quantile-capped boundaries cannot miss the priming samples).
  ASSERT_GE(rep->RecordHit(Around(0.0, &rng), 0, /*boundary_scale=*/3.0), 0);
  ASSERT_GE(rep->RecordHit(Around(10.0, &rng), 0, /*boundary_scale=*/3.0), 0);
  segmenter.SetReference(*rep);

  std::optional<Segment> segment;
  int64_t ts = 1000;
  for (int i = 0; i < 60 && !segment.has_value(); ++i) {
    segment = segmenter.AddFeature(ts, Around(0.0, &rng));
    ts += 1000;
  }
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->reason, Segment::Reason::kStaleCenter);
}

TEST(SegmenterTest, AdvanceTimeAloneCanTimeout) {
  VideoSegmenter segmenter(FastOptions(), Rng(8));
  Rng rng(9);
  ASSERT_FALSE(segmenter.AddFeature(0, Around(0.0, &rng)).has_value());
  auto segment = segmenter.AdvanceTime(100'000);
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->reason, Segment::Reason::kTimeout);
}

TEST(SegmenterTest, FlushEmitsRemainder) {
  VideoSegmenter segmenter(FastOptions(), Rng(10));
  Rng rng(11);
  ASSERT_FALSE(segmenter.AddFeature(0, Around(0.0, &rng)).has_value());
  ASSERT_FALSE(segmenter.AddFeature(1000, Around(0.0, &rng)).has_value());
  auto segment = segmenter.Flush();
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->reason, Segment::Reason::kFlush);
  EXPECT_EQ(segment->features.size(), 2u);
  EXPECT_EQ(segmenter.buffered_features(), 0u);
  EXPECT_FALSE(segmenter.Flush().has_value());
}

TEST(SegmenterTest, SegmentTimestampsAreOrdered) {
  VideoSegmenter segmenter(FastOptions(), Rng(12));
  Rng rng(13);
  std::vector<Segment> segments;
  int64_t ts = 0;
  for (int i = 0; i < 400; ++i) {
    auto segment = segmenter.AddFeature(ts, Around(0.0, &rng));
    if (segment.has_value()) segments.push_back(std::move(*segment));
    ts += 500;
  }
  ASSERT_GE(segments.size(), 2u);
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_LE(segments[i].start_ms, segments[i].end_ms);
    if (i > 0) EXPECT_GE(segments[i].start_ms, segments[i - 1].end_ms);
  }
}

}  // namespace
}  // namespace vz::core
