// Standing-query subscription tests (protocol v5; see DESIGN.md, "Standing
// queries and multiplexing"): a subscriber registers a query once and the
// server pushes match notifications as ingestion finalizes segments — no
// polling anywhere. The contracts under test:
//
//   - push on ingest: every finalized segment matching the standing query
//     arrives as a `kPushEvent` with dense as-delivered sequences;
//   - backpressure: a subscriber that stops reading never impedes ingest —
//     its bounded queue drops oldest and the loss surfaces as an explicit
//     gap marker (seeded engine drill over VZ_SUB_SEEDS seeds);
//   - lifecycle: unsubscribe and disconnect both reclaim all subscription
//     state;
//   - batched ingest (`kIngestBatch`) is bit-identical to per-frame ingest;
//   - `kAdminTune` applies the monitor's adjustment ladder live and echoes
//     the post-apply settings;
//   - v4 interop: a client pinned to protocol v4 keeps working (legacy
//     framing, Subscribe refused with kFailedPrecondition);
//   - coordinator fan-out: a subscription against the coordinator spans
//     every shard, pushes arrive with global svs ids in dense coordinator
//     sequences, and an edge index push wakes rep-sync before its interval.
#include <gtest/gtest.h>

#include <chrono>
#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/videozilla.h"
#include "net/client.h"
#include "net/coordinator.h"
#include "net/server.h"
#include "net/subscription.h"
#include "net/wire.h"
#include "sim/dataset.h"
#include "cluster_test_util.h"

namespace vz::net {
namespace {

using core::VideoZilla;
using core::VideoZillaOptions;

size_t NumSubSeeds() {
  if (const char* env = std::getenv("VZ_SUB_SEEDS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 12;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

/// A standing query that matches every finalized segment: zero vector with
/// an effectively infinite threshold.
SubscribeRequest MatchAllQuery(size_t dim = 32) {
  SubscribeRequest request;
  request.query = FeatureVector(std::vector<float>(dim, 0.0f));
  request.threshold = 1e12;
  return request;
}

/// Thread-safe event sink for push callbacks: collects events and lets the
/// test block until a count is reached.
class EventSink {
 public:
  void Push(const PushEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
    cv_.notify_all();
  }

  /// Blocks until at least `n` events arrived or `timeout_ms` elapsed;
  /// returns true when the count was reached.
  bool WaitForCount(size_t n, int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return events_.size() >= n; });
  }

  std::vector<PushEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PushEvent> events_;
};

/// As-delivered sequences must be dense per subscription, starting at 0 —
/// the subscriber-side proof that it saw every frame the server sent.
void ExpectDenseSequences(const std::vector<PushEvent>& events,
                          uint64_t subscription_id) {
  uint64_t expected = 0;
  for (const PushEvent& event : events) {
    EXPECT_EQ(event.subscription_id, subscription_id);
    EXPECT_EQ(event.sequence, expected) << "sequence gap at " << expected;
    ++expected;
  }
}

void IngestOverWire(sim::Deployment* deployment, Client* client) {
  for (const auto& info : deployment->cameras()) {
    ASSERT_TRUE(client->CameraStart(info.camera).ok());
  }
  for (const auto& observation : deployment->observations()) {
    ASSERT_TRUE(client->IngestFrame(observation).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
}

// --- Push on ingest: the headline contract. ---

TEST(SubscribeTest, MatchesArePushedAsIngestFinalizesSegments) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok()) << subscriber.status().ToString();
  EXPECT_EQ(subscriber->server_protocol_version(), kProtocolVersion);

  EventSink sink;
  auto sub_id = subscriber->Subscribe(
      MatchAllQuery(), [&sink](const PushEvent& event) { sink.Push(event); });
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();
  EXPECT_EQ(server.stats().subscriptions_active, 1u);

  // Ingest on a separate connection: pushes must cross connections, from
  // the ingest plane to the subscriber's own socket.
  auto ingester = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ingester.ok());
  IngestOverWire(&deployment, &*ingester);

  // Every finalized segment matches the match-all query; no polling — the
  // sink only ever hears from the push path.
  const uint64_t segments = system.ingest_stats().svs_created;
  ASSERT_GT(segments, 0u);
  ASSERT_TRUE(sink.WaitForCount(segments, 30'000))
      << "got " << sink.count() << " of " << segments << " pushes";

  const std::vector<PushEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), segments);
  ExpectDenseSequences(events, *sub_id);
  for (const PushEvent& event : events) {
    EXPECT_EQ(event.kind, PushKind::kMatch);
    EXPECT_FALSE(event.camera.empty());
    EXPECT_GE(event.end_ms, event.start_ms);
    EXPECT_LE(event.distance, 1e12);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.subscriptions_total, 1u);
  EXPECT_GE(stats.pushes_sent, segments);
  EXPECT_EQ(stats.push_drops, 0u);
  EXPECT_EQ(stats.push_gaps_sent, 0u);

  subscriber->Close();
  ingester->Close();
  server.Shutdown();
}

TEST(SubscribeTest, CameraFilterRestrictsMatches) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  const std::string only_camera = deployment.cameras().front().camera;

  EventSink all_sink;
  auto all_id = subscriber->Subscribe(
      MatchAllQuery(), [&](const PushEvent& e) { all_sink.Push(e); });
  ASSERT_TRUE(all_id.ok());
  SubscribeRequest filtered = MatchAllQuery();
  filtered.has_camera_filter = true;
  filtered.cameras = {only_camera};
  EventSink filtered_sink;
  auto filtered_id = subscriber->Subscribe(
      filtered, [&](const PushEvent& e) { filtered_sink.Push(e); });
  ASSERT_TRUE(filtered_id.ok());
  EXPECT_NE(*all_id, *filtered_id);
  EXPECT_EQ(server.stats().subscriptions_active, 2u);

  auto ingester = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ingester.ok());
  IngestOverWire(&deployment, &*ingester);

  const uint64_t segments = system.ingest_stats().svs_created;
  ASSERT_TRUE(all_sink.WaitForCount(segments, 30'000));
  // The filtered subscription saw exactly the filtered camera's share of
  // the unfiltered stream — both on the same connection, multiplexed by
  // the owning Subscribe call's correlation.
  size_t expected_filtered = 0;
  for (const PushEvent& event : all_sink.Snapshot()) {
    if (event.camera == only_camera) ++expected_filtered;
  }
  ASSERT_GT(expected_filtered, 0u);
  ASSERT_TRUE(filtered_sink.WaitForCount(expected_filtered, 30'000));
  const std::vector<PushEvent> events = filtered_sink.Snapshot();
  ASSERT_EQ(events.size(), expected_filtered);
  ExpectDenseSequences(events, *filtered_id);
  for (const PushEvent& event : events) {
    EXPECT_EQ(event.camera, only_camera);
  }

  subscriber->Close();
  ingester->Close();
  server.Shutdown();
}

TEST(SubscribeTest, StatsSubscriptionPushesCoalescedIndexUpdates) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  SubscribeRequest request;
  request.want_matches = false;
  request.want_stats = true;
  EventSink sink;
  auto sub_id = subscriber->Subscribe(
      request, [&sink](const PushEvent& event) { sink.Push(event); });
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();

  auto ingester = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ingester.ok());
  IngestOverWire(&deployment, &*ingester);

  // The subscriber must eventually hear about the final index version; the
  // exact number of updates in between is coalescing-dependent.
  const uint64_t final_version = system.index_version();
  ASSERT_GT(final_version, 0u);
  bool saw_final = false;
  for (int waited = 0; waited < 2'000 && !saw_final; ++waited) {
    for (const PushEvent& event : sink.Snapshot()) {
      if (event.index_version == final_version) saw_final = true;
    }
    if (!saw_final) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_final);
  const std::vector<PushEvent> events = sink.Snapshot();
  ASSERT_FALSE(events.empty());
  ExpectDenseSequences(events, *sub_id);
  uint64_t previous = 0;
  for (const PushEvent& event : events) {
    EXPECT_EQ(event.kind, PushKind::kIndexUpdate);
    EXPECT_GT(event.index_version, previous);  // strictly advancing
    previous = event.index_version;
  }

  subscriber->Close();
  ingester->Close();
  server.Shutdown();
}

// --- Lifecycle: unsubscribe and disconnect both reclaim. ---

TEST(SubscribeTest, UnsubscribeStopsPushesAndReclaims) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  EventSink sink;
  auto sub_id = subscriber->Subscribe(
      MatchAllQuery(), [&sink](const PushEvent& event) { sink.Push(event); });
  ASSERT_TRUE(sub_id.ok());
  EXPECT_EQ(server.stats().subscriptions_active, 1u);

  ASSERT_TRUE(subscriber->Unsubscribe(*sub_id).ok());
  EXPECT_EQ(server.stats().subscriptions_active, 0u);
  // Cancelling twice — or cancelling somebody else's id — is kNotFound.
  EXPECT_EQ(subscriber->Unsubscribe(*sub_id).code(), StatusCode::kNotFound);

  // Ingest after the unsubscribe: nothing may arrive.
  auto ingester = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ingester.ok());
  IngestOverWire(&deployment, &*ingester);
  ASSERT_GT(system.ingest_stats().svs_created, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(server.stats().pushes_sent, 0u);

  subscriber->Close();
  ingester->Close();
  server.Shutdown();
}

TEST(SubscribeTest, DisconnectReclaimsSubscriptions) {
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  EventSink sink;
  ASSERT_TRUE(subscriber
                  ->Subscribe(MatchAllQuery(),
                              [&sink](const PushEvent& e) { sink.Push(e); })
                  .ok());
  ASSERT_TRUE(subscriber
                  ->Subscribe(MatchAllQuery(),
                              [&sink](const PushEvent& e) { sink.Push(e); })
                  .ok());
  EXPECT_EQ(server.stats().subscriptions_active, 2u);

  // An abrupt disconnect (no Unsubscribe) must reclaim everything the
  // connection registered once the handler notices the close.
  subscriber->Close();
  for (int waited = 0;
       server.stats().subscriptions_active > 0 && waited < 1'000; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().subscriptions_active, 0u);
  EXPECT_EQ(server.stats().subscriptions_total, 2u);
  server.Shutdown();
}

// --- Backpressure: a slow subscriber never impedes ingest. ---

TEST(SubscribeTest, SlowSubscriberDoesNotImpedeIngest) {
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();

  // Control: per-frame ingest latency with no subscriber at all.
  std::vector<double> control_ms;
  {
    VideoZilla system(SmallSystemOptions());
    Server server(&system, {});
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(client->CameraStart(info.camera).ok());
    }
    for (const auto& observation : observations) {
      const auto start = std::chrono::steady_clock::now();
      ASSERT_TRUE(client->IngestFrame(observation).ok());
      control_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    ASSERT_TRUE(client->Flush().ok());
    client->Close();
    server.Shutdown();
  }

  // Victim run: a subscriber whose callback wedges on the very first push,
  // stalling its reader thread for the whole ingest. Tiny queue so the
  // engine exercises drop-oldest while the victim sleeps.
  ServerOptions server_options;
  server_options.subscription_queue_capacity = 4;
  VideoZilla system(SmallSystemOptions());
  Server server(&system, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(subscriber.ok());
  std::mutex latch_mu;
  std::condition_variable latch_cv;
  bool released = false;
  auto sub_id = subscriber->Subscribe(
      MatchAllQuery(), [&](const PushEvent&) {
        std::unique_lock<std::mutex> lock(latch_mu);
        latch_cv.wait(lock, [&] { return released; });
      });
  ASSERT_TRUE(sub_id.ok());

  auto ingester = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ingester.ok());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(ingester->CameraStart(info.camera).ok());
  }
  std::vector<double> victim_ms;
  for (const auto& observation : observations) {
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(ingester->IngestFrame(observation).ok());
    victim_ms.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  ASSERT_TRUE(ingester->Flush().ok());

  // Ingest ran to completion at a p50 in the same ballpark as the control:
  // the wedged subscriber cost it nothing. The factor is deliberately
  // generous — this guards against ingest *blocking* on the subscriber, not
  // against scheduler noise.
  auto p50 = [](std::vector<double> samples) {
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    return samples[samples.size() / 2];
  };
  EXPECT_LT(p50(victim_ms), p50(control_ms) * 20.0 + 5.0)
      << "victim p50 " << p50(victim_ms) << "ms vs control "
      << p50(control_ms) << "ms";

  // The victim is still subscribed (never evicted for being slow at the
  // push plane) and ingest finalized every segment.
  EXPECT_EQ(server.stats().subscriptions_active, 1u);
  EXPECT_GT(system.ingest_stats().svs_created, 0u);

  // Release the wedge and disconnect: everything reclaims.
  {
    std::lock_guard<std::mutex> lock(latch_mu);
    released = true;
    latch_cv.notify_all();
  }
  subscriber->Close();
  ingester->Close();
  for (int waited = 0;
       server.stats().subscriptions_active > 0 && waited < 1'000; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().subscriptions_active, 0u);
  server.Shutdown();
}

// --- The engine's bounded-queue contract, deterministically. ---

core::Svs MakeSvs(core::SvsId id, const std::string& camera,
                  float value = 0.0f) {
  FeatureMap features;
  EXPECT_TRUE(
      features.Add(FeatureVector({value, value, value, value})).ok());
  return core::Svs(id, camera, id * 1'000, id * 1'000 + 500,
                   std::move(features));
}

TEST(SubscriptionEngineTest, GapMarkerAccountsExactDrops) {
  SubscriptionEngine::Options options;
  options.queue_capacity = 2;
  SubscriptionEngine engine(options);
  SubscribeRequest spec = MatchAllQuery(4);
  const uint64_t sub = engine.Subscribe(/*conn_id=*/1, /*correlation=*/7,
                                        spec);

  for (core::SvsId id = 0; id < 5; ++id) {
    engine.OnSegment(MakeSvs(id, "cam-a"));
  }
  // Capacity 2: ids 0..2 were dropped oldest-first; 3 and 4 survive.
  const auto deliveries = engine.Drain(1);
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].correlation, 7u);
  EXPECT_EQ(deliveries[0].event.kind, PushKind::kGap);
  EXPECT_EQ(deliveries[0].event.dropped, 3u);
  EXPECT_EQ(deliveries[0].event.sequence, 0u);
  EXPECT_EQ(deliveries[1].event.kind, PushKind::kMatch);
  EXPECT_EQ(deliveries[1].event.svs_id, 3);
  EXPECT_EQ(deliveries[1].event.sequence, 1u);
  EXPECT_EQ(deliveries[2].event.svs_id, 4);
  EXPECT_EQ(deliveries[2].event.sequence, 2u);
  EXPECT_EQ(deliveries[0].event.subscription_id, sub);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.events_enqueued, 5u);
  EXPECT_EQ(stats.events_dropped, 3u);
  EXPECT_EQ(stats.gaps_recorded, 1u);
}

TEST(SubscriptionEngineTest, IndexUpdatesCoalesceInPlace) {
  SubscriptionEngine engine;
  SubscribeRequest spec;
  spec.want_matches = false;
  spec.want_stats = true;
  (void)engine.Subscribe(1, 9, spec);
  for (uint64_t version = 1; version <= 10; ++version) {
    engine.OnIndexVersion(version);
  }
  // Ten undelivered updates collapsed into one carrying the newest version.
  const auto deliveries = engine.Drain(1);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].event.kind, PushKind::kIndexUpdate);
  EXPECT_EQ(deliveries[0].event.index_version, 10u);
  // A stale re-announcement is ignored; a newer one is not.
  engine.OnIndexVersion(10);
  EXPECT_TRUE(engine.Drain(1).empty());
  engine.OnIndexVersion(11);
  ASSERT_EQ(engine.Drain(1).size(), 1u);
}

// The seeded slow-subscriber drill: random interleavings of enqueue bursts
// and drains against a tiny queue. Whatever the schedule, the bounded-queue
// contract holds: drains respect the per-round budget, a gap marker leads
// its batch and accounts every drop exactly, drop-oldest preserves arrival
// order among survivors, and sequences stay dense as delivered.
TEST(SubscriptionEngineTest, SeededSlowSubscriberDrill) {
  const size_t seeds = NumSubSeeds();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 1'000 + 3);
    SubscriptionEngine::Options options;
    options.queue_capacity = 2 + rng.UniformUint64(8);
    options.max_drain_per_subscription = 1 + rng.UniformUint64(6);
    SubscriptionEngine engine(options);
    const uint64_t sub =
        engine.Subscribe(/*conn_id=*/1, /*correlation=*/seed,
                         MatchAllQuery(4));

    core::SvsId next_svs = 0;
    uint64_t next_sequence = 0;
    uint64_t delivered_matches = 0;
    uint64_t gap_dropped_total = 0;
    core::SvsId last_delivered_svs = -1;
    const size_t rounds = 60;
    for (size_t round = 0; round < rounds; ++round) {
      if (rng.Bernoulli(0.6)) {
        const size_t burst = 1 + rng.UniformUint64(6);
        for (size_t i = 0; i < burst; ++i) {
          engine.OnSegment(MakeSvs(next_svs++, "cam-a"));
        }
      } else {
        const auto batch = engine.Drain(1);
        ASSERT_LE(batch.size(), options.max_drain_per_subscription);
        for (size_t i = 0; i < batch.size(); ++i) {
          const PushEvent& event = batch[i].event;
          EXPECT_EQ(event.subscription_id, sub);
          EXPECT_EQ(event.sequence, next_sequence++);
          if (event.kind == PushKind::kGap) {
            EXPECT_EQ(i, 0u) << "gap marker must lead its batch";
            EXPECT_GT(event.dropped, 0u);
            gap_dropped_total += event.dropped;
          } else {
            ASSERT_EQ(event.kind, PushKind::kMatch);
            // Drop-oldest keeps survivors in arrival order.
            EXPECT_GT(event.svs_id, last_delivered_svs);
            last_delivered_svs = event.svs_id;
            ++delivered_matches;
          }
        }
      }
    }
    // Drain to empty: every enqueued event is now either delivered or
    // accounted for by a gap marker.
    for (;;) {
      const auto batch = engine.Drain(1);
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        const PushEvent& event = batch[i].event;
        EXPECT_EQ(event.sequence, next_sequence++);
        if (event.kind == PushKind::kGap) {
          EXPECT_EQ(i, 0u);
          gap_dropped_total += event.dropped;
        } else {
          EXPECT_GT(event.svs_id, last_delivered_svs);
          last_delivered_svs = event.svs_id;
          ++delivered_matches;
        }
      }
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.events_enqueued, static_cast<uint64_t>(next_svs));
    EXPECT_EQ(stats.events_dropped, gap_dropped_total);
    EXPECT_EQ(delivered_matches + gap_dropped_total,
              static_cast<uint64_t>(next_svs));
  }
}

// --- Batched ingest: kIngestBatch vs per-frame, bit for bit. ---

TEST(SubscribeTest, IngestBatchMatchesPerFrameBitForBit) {
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();

  VideoZilla per_frame_system(SmallSystemOptions());
  Server per_frame_server(&per_frame_system, {});
  ASSERT_TRUE(per_frame_server.Start().ok());
  auto per_frame = Client::Connect("127.0.0.1", per_frame_server.port());
  ASSERT_TRUE(per_frame.ok());
  IngestOverWire(&deployment, &*per_frame);

  VideoZilla batched_system(SmallSystemOptions());
  Server batched_server(&batched_system, {});
  ASSERT_TRUE(batched_server.Start().ok());
  auto batched = Client::Connect("127.0.0.1", batched_server.port());
  ASSERT_TRUE(batched.ok());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(batched->CameraStart(info.camera).ok());
  }
  uint64_t accepted_total = 0;
  const size_t kBatch = 16;
  for (size_t begin = 0; begin < observations.size(); begin += kBatch) {
    const size_t end = std::min(begin + kBatch, observations.size());
    std::vector<core::FrameObservation> batch(observations.begin() + begin,
                                              observations.begin() + end);
    auto reply = batched->IngestBatch(batch);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    accepted_total += reply->accepted;
    EXPECT_EQ(reply->rejected, 0u);
  }
  ASSERT_TRUE(batched->Flush().ok());

  EXPECT_EQ(accepted_total, observations.size());
  EXPECT_GT(batched_server.stats().ingest_batches, 0u);

  // Identical end state: the batch boundary is a transport detail.
  EXPECT_EQ(batched_system.ingest_stats().frames_offered,
            per_frame_system.ingest_stats().frames_offered);
  EXPECT_EQ(batched_system.ingest_stats().svs_created,
            per_frame_system.ingest_stats().svs_created);
  EXPECT_EQ(batched_system.svs_store().size(),
            per_frame_system.svs_store().size());
  Rng rng(7);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto from_batched = batched->DirectQuery(query);
  auto from_per_frame = per_frame->DirectQuery(query);
  ASSERT_TRUE(from_batched.ok());
  ASSERT_TRUE(from_per_frame.ok());
  EXPECT_EQ(from_batched->candidate_svss, from_per_frame->candidate_svss);
  EXPECT_EQ(from_batched->matched_svss, from_per_frame->matched_svss);
  EXPECT_EQ(from_batched->total_gpu_ms, from_per_frame->total_gpu_ms);

  per_frame->Close();
  batched->Close();
  per_frame_server.Shutdown();
  batched_server.Shutdown();
}

// --- AdminTune: the monitor's adjustment ladder over the wire. ---

TEST(SubscribeTest, AdminTuneAppliesAndEchoesSettings) {
  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // An empty request is a pure read: it echoes the current settings.
  auto before = client->AdminTune({});
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_DOUBLE_EQ(before->boundary_scale, 1.0);

  AdminTuneRequest tune;
  tune.boundary_scale = 1.5;
  tune.keyframe_selection = true;
  auto after = client->AdminTune(tune);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_DOUBLE_EQ(after->boundary_scale, 1.5);
  EXPECT_TRUE(after->keyframe_selection);
  EXPECT_DOUBLE_EQ(system.boundary_scale(), 1.5);
  EXPECT_TRUE(system.keyframe_selection());

  // Unset knobs are left alone by a later partial tune.
  AdminTuneRequest partial;
  partial.keyframe_selection = false;
  auto echoed = client->AdminTune(partial);
  ASSERT_TRUE(echoed.ok());
  EXPECT_DOUBLE_EQ(echoed->boundary_scale, 1.5);
  EXPECT_FALSE(echoed->keyframe_selection);

  // A non-positive boundary scale is refused before anything applies.
  AdminTuneRequest invalid;
  invalid.boundary_scale = 0.0;
  EXPECT_FALSE(client->AdminTune(invalid).ok());
  EXPECT_DOUBLE_EQ(system.boundary_scale(), 1.5);

  client->Close();
  server.Shutdown();
}

// --- v4 interop: old clients keep working, Subscribe is refused. ---

TEST(SubscribeTest, V4ClientInteroperatesAndSubscribeIsRefused) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();

  // Control: the same ingest in process.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (const auto& observation : deployment.observations()) {
    ASSERT_TRUE(control.IngestFrame(observation).ok());
  }
  ASSERT_TRUE(control.Flush().ok());

  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());

  ClientOptions v4_options;
  v4_options.protocol_version = 4;
  auto v4 = Client::Connect("127.0.0.1", server.port(), v4_options);
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  EXPECT_EQ(v4->server_protocol_version(), kProtocolVersion);

  // A v4 connection has no demux loop, so push delivery is impossible:
  // Subscribe is refused locally, before any bytes move.
  EventSink sink;
  auto refused = v4->Subscribe(MatchAllQuery(),
                               [&sink](const PushEvent& e) { sink.Push(e); });
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // Everything else works over legacy framing, bit-identical to in-process.
  IngestOverWire(&deployment, &*v4);
  EXPECT_EQ(system.ingest_stats().frames_offered,
            control.ingest_stats().frames_offered);
  EXPECT_EQ(system.svs_store().size(), control.svs_store().size());

  // And a v5 client against the same server sees the same corpus.
  auto v5 = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(v5.ok());
  Rng rng(13);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  auto from_v4 = v4->DirectQuery(query);
  auto from_v5 = v5->DirectQuery(query);
  ASSERT_TRUE(from_v4.ok());
  ASSERT_TRUE(from_v5.ok());
  EXPECT_EQ(from_v4->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(from_v5->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(from_v4->matched_svss, expected->matched_svss);
  EXPECT_EQ(from_v5->matched_svss, expected->matched_svss);

  v4->Close();
  v5->Close();
  server.Shutdown();
}

// --- Coordinator: subscriptions fan out over every shard. ---

/// Frames appended past the deployment's feed end for one camera — new
/// segments finalized *after* a subscription exists, so they must push.
void IngestLateSegment(core::VideoZilla* system, const core::CameraId& camera,
                       int64_t base_ms, int64_t base_frame_id) {
  for (int i = 0; i < 3; ++i) {
    core::FrameObservation frame;
    frame.camera = camera;
    frame.timestamp_ms = base_ms + i * 1'000;
    frame.frame_id = base_frame_id + i;
    core::DetectedObject object;
    object.feature = FeatureVector(std::vector<float>(32, 0.25f));
    frame.objects.push_back(object);
    ASSERT_TRUE(system->IngestFrame(frame).ok());
  }
  ASSERT_TRUE(system->Flush().ok());
}

TEST(CoordinatorSubscribeTest, FanOutPushesArriveWithGlobalIds) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  const size_t kEdges = 3;
  TestCluster cluster(&deployment, kEdges, SmallSystemOptions());
  ASSERT_TRUE(cluster.StartEdges().ok());
  ASSERT_TRUE(cluster.StartCoordinator().ok());

  auto connected = cluster.Connect(501);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(*connected);
  EventSink sink;
  auto sub_id = client.Subscribe(
      MatchAllQuery(), [&sink](const PushEvent& event) { sink.Push(event); });
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();
  EXPECT_EQ(cluster.coordinator().stats().subscriptions_active, 1u);

  // Late segments per shard, finalized after the subscription: the
  // coordinator must forward one push per finalized segment, remapped to
  // global ids. (The long silence before the late frames closes an extra
  // boundary segment per camera, so count what each edge actually created.)
  uint64_t expected_pushes = 0;
  for (size_t i = 0; i < kEdges; ++i) {
    ASSERT_FALSE(cluster.shard_cameras(i).empty());
    const uint64_t before = cluster.system(i).ingest_stats().svs_created;
    IngestLateSegment(&cluster.system(i), cluster.shard_cameras(i)[0],
                      /*base_ms=*/200'000, /*base_frame_id=*/1'000'000 + i);
    if (::testing::Test::HasFatalFailure()) return;
    const uint64_t created =
        cluster.system(i).ingest_stats().svs_created - before;
    ASSERT_GT(created, 0u) << "edge " << i;
    expected_pushes += created;
  }
  ASSERT_TRUE(sink.WaitForCount(expected_pushes, 30'000))
      << "got " << sink.count() << " of " << expected_pushes << " pushes";

  const std::vector<PushEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), expected_pushes);
  ExpectDenseSequences(events, *sub_id);
  std::vector<bool> shard_seen(kEdges, false);
  for (const PushEvent& event : events) {
    EXPECT_EQ(event.kind, PushKind::kMatch);
    const size_t shard = ShardOfSvsId(event.svs_id);
    ASSERT_LT(shard, kEdges);
    shard_seen[shard] = true;
    // The announced camera really lives on the announced shard.
    const auto& cameras = cluster.shard_cameras(shard);
    EXPECT_NE(std::find(cameras.begin(), cameras.end(), event.camera),
              cameras.end());
  }
  for (size_t i = 0; i < kEdges; ++i) {
    EXPECT_TRUE(shard_seen[i]) << "no push from shard " << i;
  }
  const CoordinatorStats stats = cluster.coordinator().stats();
  EXPECT_GE(stats.pushes_forwarded, expected_pushes);

  // Unsubscribe reclaims the fan-out: coordinator gauge drops, and the
  // dedicated per-edge subscriptions are torn down on the edges too.
  ASSERT_TRUE(client.Unsubscribe(*sub_id).ok());
  EXPECT_EQ(cluster.coordinator().stats().subscriptions_active, 0u);

  client.Close();
}

TEST(CoordinatorSubscribeTest, SubscribeRequiresV5AtTheCoordinatorToo) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  TestCluster cluster(&deployment, 2, SmallSystemOptions());
  ASSERT_TRUE(cluster.StartEdges().ok());
  ASSERT_TRUE(cluster.StartCoordinator().ok());

  ClientOptions options;
  options.protocol_version = 4;
  auto v4 = Client::Connect("127.0.0.1", cluster.coordinator().port(),
                            options);
  ASSERT_TRUE(v4.ok());
  auto refused =
      v4->Subscribe(MatchAllQuery(), [](const PushEvent&) {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  v4->Close();
}

TEST(CoordinatorSubscribeTest, AdminTuneFansOutToEveryEdge) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  const size_t kEdges = 3;
  TestCluster cluster(&deployment, kEdges, SmallSystemOptions());
  ASSERT_TRUE(cluster.StartEdges().ok());
  ASSERT_TRUE(cluster.StartCoordinator().ok());

  auto connected = cluster.Connect(601);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);
  AdminTuneRequest tune;
  tune.boundary_scale = 1.25;
  auto reply = client.AdminTune(tune);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_DOUBLE_EQ(reply->boundary_scale, 1.25);
  for (size_t i = 0; i < kEdges; ++i) {
    EXPECT_DOUBLE_EQ(cluster.system(i).boundary_scale(), 1.25)
        << "edge " << i;
  }
  client.Close();
}

// An edge index push must wake the coordinator's rep-sync long before its
// interval: with a 30 s interval, fresh representatives can only appear via
// the push path.
TEST(CoordinatorSubscribeTest, RepPushWakesSyncBeforeTheInterval) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();

  VideoZilla edge(SmallSystemOptions());
  Server edge_server(&edge, {});
  ASSERT_TRUE(edge_server.Start().ok());

  CoordinatorOptions options;
  options.edges = {{"127.0.0.1", edge_server.port()}};
  options.sync_interval_ms = 30'000;  // the interval alone would sleep past
                                      // the whole test
  options.rep_push = true;
  options.omd = SmallSystemOptions().omd;
  options.inter = SmallSystemOptions().inter;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Start().ok());
  // The startup pass (empty edge) established the stats watcher; the edge
  // has nothing to sync yet.
  EXPECT_EQ(coordinator.stats().rep_entries, 0u);

  // Ingest through the edge server: its index version advances, the watcher
  // pushes, and the coordinator's sync thread wakes off-interval.
  auto ingester = Client::Connect("127.0.0.1", edge_server.port());
  ASSERT_TRUE(ingester.ok());
  IngestOverWire(&deployment, &*ingester);

  bool woke = false;
  for (int waited = 0; waited < 1'000 && !woke; ++waited) {
    const CoordinatorStats stats = coordinator.stats();
    woke = stats.rep_push_wakeups > 0 && stats.rep_entries > 0;
    if (!woke) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const CoordinatorStats stats = coordinator.stats();
  EXPECT_GT(stats.rep_push_wakeups, 0u);
  EXPECT_GT(stats.rep_entries, 0u);
  EXPECT_GT(stats.rep_sync_updates, 0u);

  ingester->Close();
  coordinator.Shutdown();
  edge_server.Shutdown();
}

}  // namespace
}  // namespace vz::net
