#include "baseline/topk_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/feature_extractor.h"
#include "sim/feature_space.h"
#include "sim/object_class.h"

namespace vz::baseline {
namespace {

class TopKIndexTest : public ::testing::Test {
 protected:
  TopKIndexTest()
      : space_(sim::FeatureSpaceOptions{32, 10.0, 2.0, 99}),
        extractor_(&space_, sim::ExtractorProfile::ResNet50()),
        rng_(1) {}

  core::FrameObservation Frame(const core::CameraId& camera, int64_t id,
                               const std::vector<int>& classes) {
    core::FrameObservation frame;
    frame.camera = camera;
    frame.frame_id = id;
    frame.timestamp_ms = id * 1000;
    for (int object_class : classes) {
      core::DetectedObject object;
      object.feature = extractor_.Extract(object_class, "", &rng_);
      frame.objects.push_back(std::move(object));
    }
    return frame;
  }

  sim::FeatureSpace space_;
  sim::FeatureExtractor extractor_;
  Rng rng_;
};

TEST_F(TopKIndexTest, QueryRetrievesIndexedFrames) {
  TopKIndex index(&extractor_, TopKIndexOptions{});
  for (int64_t f = 0; f < 30; ++f) {
    index.IngestFrame(Frame("cam", f, {f % 2 == 0 ? sim::kCar : sim::kBoat}));
  }
  index.Finalize();
  const auto result = index.Query(sim::kCar);
  EXPECT_GT(result.frames.size(), 10u);
  // Most car frames (even ids) are retrieved.
  size_t even = 0;
  for (int64_t f : result.frames) even += (f % 2 == 0);
  EXPECT_GT(even, 12u);
}

TEST_F(TopKIndexTest, OtherBucketInflatesEveryQuery) {
  // A profile where many objects are unrecognizable creates a big "other"
  // bucket that every query must rescan (Fig. 18).
  sim::ExtractorProfile hard = sim::ExtractorProfile::ResNet50();
  hard.hard_example_prob = 0.5;
  sim::FeatureExtractor hard_extractor(&space_, hard);
  TopKIndex index(&hard_extractor, TopKIndexOptions{});
  Rng rng(3);
  for (int64_t f = 0; f < 60; ++f) {
    core::FrameObservation frame;
    frame.camera = "cam";
    frame.frame_id = f;
    core::DetectedObject object;
    object.feature = hard_extractor.Extract(sim::kCar, "", &rng);
    frame.objects.push_back(std::move(object));
    index.IngestFrame(frame);
  }
  index.Finalize();
  const auto classes = index.IndexedClasses("cam");
  EXPECT_TRUE(std::find(classes.begin(), classes.end(),
                        static_cast<int>(sim::kOtherClass)) != classes.end());
  // Even a query for a class never present retrieves the "other" frames.
  const auto boat = index.Query(sim::kBoat);
  EXPECT_GT(boat.frames.size(), 10u);
}

TEST_F(TopKIndexTest, RecognizedClassCapCreatesOther) {
  TopKIndexOptions options;
  options.recognized_classes = 1;  // only the most common class survives
  TopKIndex index(&extractor_, options);
  for (int64_t f = 0; f < 40; ++f) {
    index.IngestFrame(Frame("cam", f,
                            {f % 4 == 0 ? sim::kBoat : sim::kCar}));
  }
  index.Finalize();
  const auto classes = index.IndexedClasses("cam");
  // car (dominant) is recognized; boat frames fall into "other".
  EXPECT_TRUE(std::find(classes.begin(), classes.end(),
                        static_cast<int>(sim::kOtherClass)) != classes.end());
}

TEST_F(TopKIndexTest, LargerKRecognizesMore) {
  TopKIndexOptions small;
  small.recognized_classes = 1;
  TopKIndexOptions large;
  large.recognized_classes = 8;
  TopKIndex small_index(&extractor_, small);
  TopKIndex large_index(&extractor_, large);
  for (int64_t f = 0; f < 60; ++f) {
    const int cls = (f % 3 == 0) ? sim::kBoat : ((f % 3 == 1) ? sim::kCar
                                                              : sim::kTrain);
    small_index.IngestFrame(Frame("cam", f, {cls}));
    large_index.IngestFrame(Frame("cam", f, {cls}));
  }
  small_index.Finalize();
  large_index.Finalize();
  // With more recognized classes, a boat query rescans fewer frames:
  // the small-K index dumps everything unrecognized into "other".
  EXPECT_LE(large_index.Query(sim::kBoat).frames.size(),
            small_index.Query(sim::kBoat).frames.size());
  // ...but ingestion costs more (Fig. 15's trade-off).
  EXPECT_GT(large_index.ingest_gpu_ms(), small_index.ingest_gpu_ms());
}

TEST_F(TopKIndexTest, PerCameraScoping) {
  TopKIndex index(&extractor_, TopKIndexOptions{});
  for (int64_t f = 0; f < 10; ++f) {
    index.IngestFrame(Frame("cam-a", f, {sim::kCar}));
    index.IngestFrame(Frame("cam-b", 100 + f, {sim::kCar}));
  }
  index.Finalize();
  const auto scoped = index.Query(sim::kCar, {"cam-a"});
  for (int64_t f : scoped.frames) EXPECT_LT(f, 100);
  EXPECT_EQ(scoped.per_camera_frames.size(), 1u);
  EXPECT_EQ(index.num_frames(), 20u);
}

}  // namespace
}  // namespace vz::baseline
