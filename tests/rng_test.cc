#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vz {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(weights)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    equal += (parent.NextUint64() == child.NextUint64());
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace vz
