#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::clustering {
namespace {

TEST(KMeansTest, RejectsBadInput) {
  Rng rng(1);
  KMeansOptions options;
  EXPECT_FALSE(KMeans({}, options, &rng).ok());
  std::vector<FeatureVector> pts = {FeatureVector({1.0f})};
  EXPECT_FALSE(KMeans(pts, options, nullptr).ok());
  EXPECT_FALSE(KMeans(pts, {-1.0}, options, &rng).ok());
  EXPECT_FALSE(KMeans(pts, {1.0, 2.0}, options, &rng).ok());
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(2);
  std::vector<FeatureVector> pts = {FeatureVector({0.0f}),
                                    FeatureVector({1.0f})};
  KMeansOptions options;
  options.k = 10;
  auto result = KMeans(pts, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  auto data = testing::MakeClusteredPoints(3, 30, 8, 20.0, 0.5, 42);
  Rng rng(3);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options, &rng);
  ASSERT_TRUE(result.ok());
  // All points sharing a ground-truth label must share a k-means cluster.
  for (size_t i = 0; i < data.points.size(); ++i) {
    for (size_t j = i + 1; j < data.points.size(); ++j) {
      if (data.labels[i] == data.labels[j]) {
        EXPECT_EQ(result->assignments[i], result->assignments[j])
            << "points " << i << " and " << j;
      } else {
        EXPECT_NE(result->assignments[i], result->assignments[j]);
      }
    }
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  auto data = testing::MakeClusteredPoints(4, 25, 6, 15.0, 1.0, 7);
  Rng rng1(4);
  Rng rng2(4);
  KMeansOptions k2;
  k2.k = 2;
  KMeansOptions k4;
  k4.k = 4;
  auto r2 = KMeans(data.points, k2, &rng1);
  auto r4 = KMeans(data.points, k4, &rng2);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_LT(r4->inertia, r2->inertia);
}

TEST(KMeansTest, WeightsPullCentroids) {
  // Two points; weight dominates the single centroid's position.
  std::vector<FeatureVector> pts = {FeatureVector({0.0f}),
                                    FeatureVector({10.0f})};
  Rng rng(5);
  KMeansOptions options;
  options.k = 1;
  auto result = KMeans(pts, {1.0, 9.0}, options, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 1u);
  EXPECT_NEAR(result->centroids[0][0], 9.0, 1e-4);
}

TEST(KMeansTest, ClusterSizesSumToPointCount) {
  auto data = testing::MakeClusteredPoints(3, 20, 4, 10.0, 1.0, 9);
  Rng rng(6);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options, &rng);
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (size_t s : result->cluster_sizes) total += s;
  EXPECT_EQ(total, data.points.size());
}

TEST(KMeansTest, DeterministicGivenSeed) {
  auto data = testing::MakeClusteredPoints(3, 20, 4, 10.0, 1.0, 11);
  KMeansOptions options;
  options.k = 3;
  Rng rng1(77);
  Rng rng2(77);
  auto r1 = KMeans(data.points, options, &rng1);
  auto r2 = KMeans(data.points, options, &rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->assignments, r2->assignments);
  EXPECT_DOUBLE_EQ(r1->inertia, r2->inertia);
}

}  // namespace
}  // namespace vz::clustering
