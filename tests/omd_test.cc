#include "core/omd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

TEST(OmdCalculatorTest, IdenticalMapsHaveZeroDistance) {
  OmdCalculator calc;
  const FeatureMap map = MakeMap(10, 8, 1.0, 0.5, 1);
  auto d = calc.Distance(map, map);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-9);
  EXPECT_EQ(calc.num_computations(), 1u);
}

TEST(OmdCalculatorTest, SingletonMapsReduceToEuclidean) {
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f, 0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({3.0f, 4.0f})).ok());
  auto d = calc.Distance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 5.0, 1e-9);
}

TEST(OmdCalculatorTest, EmptyMapsAreHandled) {
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  FeatureMap empty;
  FeatureMap one;
  ASSERT_TRUE(one.Add(FeatureVector({3.0f, 4.0f})).ok());
  auto both = calc.Distance(empty, empty);
  ASSERT_TRUE(both.ok());
  EXPECT_DOUBLE_EQ(*both, 0.0);
  // One empty side acts as a zero vector.
  auto single = calc.Distance(empty, one);
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(*single, 5.0, 1e-9);
}

TEST(OmdCalculatorTest, DimensionMismatchRejected) {
  OmdCalculator calc;
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({0.0f, 0.0f})).ok());
  EXPECT_FALSE(calc.Distance(a, b).ok());
}

TEST(OmdCalculatorTest, ThresholdedLowerBoundsExact) {
  const FeatureMap a = MakeMap(15, 6, 0.0, 1.0, 2);
  const FeatureMap b = MakeMap(15, 6, 3.0, 1.0, 3);
  OmdOptions exact_options;
  exact_options.mode = OmdMode::kExact;
  OmdCalculator exact(exact_options);
  for (double alpha : {0.3, 0.6, 0.9}) {
    OmdOptions approx_options;
    approx_options.mode = OmdMode::kThresholded;
    approx_options.threshold_alpha = alpha;
    OmdCalculator approx(approx_options);
    auto de = exact.Distance(a, b);
    auto da = approx.Distance(a, b);
    ASSERT_TRUE(de.ok());
    ASSERT_TRUE(da.ok());
    EXPECT_LE(*da, *de + 1e-9) << "alpha " << alpha;
  }
}

TEST(OmdCalculatorTest, AlphaOneMatchesExact) {
  const FeatureMap a = MakeMap(12, 5, 0.0, 1.0, 4);
  const FeatureMap b = MakeMap(12, 5, 2.0, 1.0, 5);
  OmdOptions exact_options;
  exact_options.mode = OmdMode::kExact;
  OmdOptions one_options;
  one_options.mode = OmdMode::kThresholded;
  one_options.threshold_alpha = 1.0;
  OmdCalculator exact(exact_options);
  OmdCalculator one(one_options);
  auto de = exact.Distance(a, b);
  auto d1 = one.Distance(a, b);
  ASSERT_TRUE(de.ok());
  ASSERT_TRUE(d1.ok());
  // At alpha = 1 only the strictly-max-distance pairs route through the
  // transshipment vertex at exactly the max cost, so values coincide.
  EXPECT_NEAR(*de, *d1, 1e-6);
}

TEST(OmdCalculatorTest, SubsamplingKeepsDistanceClose) {
  const FeatureMap a = MakeMap(100, 4, 0.0, 0.5, 6);
  const FeatureMap b = MakeMap(100, 4, 5.0, 0.5, 7);
  OmdOptions full_options;
  full_options.mode = OmdMode::kExact;
  full_options.max_vectors = 100;
  OmdOptions sub_options;
  sub_options.mode = OmdMode::kExact;
  sub_options.max_vectors = 20;
  OmdCalculator full(full_options);
  OmdCalculator sub(sub_options);
  auto df = full.Distance(a, b);
  auto ds = sub.Distance(a, b);
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(ds.ok());
  // Two tight blobs 5*sqrt(4)=10 apart: subsampling barely moves the value.
  EXPECT_NEAR(*df, *ds, 0.5);
}

// Property sweep: OCD is a lower bound of OMD (Sec. 4.3) on random pairs.
class OcdLowerBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OcdLowerBoundTest, OcdNeverExceedsExactOmd) {
  Rng rng(GetParam());
  const FeatureMap a =
      MakeMap(12, 6, rng.UniformDouble(-3.0, 3.0), 1.5, GetParam() * 2 + 1);
  const FeatureMap b =
      MakeMap(9, 6, rng.UniformDouble(-3.0, 3.0), 1.5, GetParam() * 2 + 2);
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  auto omd = calc.Distance(a, b);
  ASSERT_TRUE(omd.ok());
  EXPECT_LE(ObjectCentroidDistance(a, b), *omd + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OcdLowerBoundTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SvsMetricTest, DistanceAndLowerBoundOverStore) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 11));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(8, 4, 4.0, 0.3, 12));
  // OCD lower-bounds the *exact* OMD; with the thresholded approximation
  // (which under-estimates) it is only a heuristic (see Sec. 4.3 note in
  // DESIGN.md), so this invariant is asserted in exact mode.
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  SvsMetric metric(&store, &calc);
  const double d = metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_GT(d, 0.0);
  EXPECT_LE(metric.LowerBound(static_cast<int>(a), static_cast<int>(b)),
            d + 1e-6);
  EXPECT_DOUBLE_EQ(metric.Distance(static_cast<int>(a), static_cast<int>(a)),
                   0.0);
}

TEST(SvsMetricTest, MemoizationAvoidsRecomputation) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 13));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(8, 4, 4.0, 0.3, 14));
  OmdCalculator calc;
  SvsMetric metric(&store, &calc);
  const double d1 = metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 1u);
  const double d2 = metric.Distance(static_cast<int>(b), static_cast<int>(a));
  EXPECT_EQ(metric.num_distance_evals(), 1u);  // symmetric cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  metric.InvalidateCache();
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

TEST(SvsMetricTest, TemporariesSupportQueryMaps) {
  SvsStore store;
  store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 15));
  OmdCalculator calc;
  SvsMetric metric(&store, &calc);
  const FeatureMap query = MakeMap(5, 4, 0.1, 0.3, 16);
  const int temp = metric.RegisterTemporary(&query);
  EXPECT_LT(temp, 0);
  const double d = metric.Distance(temp, 0);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 2.0);  // both maps sit near the origin
  metric.UnregisterTemporary(temp);
}

TEST(SvsMetricTest, MemoizationCanBeDisabled) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(6, 4, 0.0, 0.3, 17));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(6, 4, 2.0, 0.3, 18));
  OmdCalculator calc;
  SvsMetricOptions options;
  options.memoize = false;
  SvsMetric metric(&store, &calc, options);
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

// Property sweep: the quantized shadow tier is a certified lower bound on
// the solver's distance in *both* modes, across random geometry.
class QuantizedBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantizedBoundTest, QuantizedBoundNeverExceedsSolvedOmd) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t dim = 3 + seed % 9;
  const size_t na = 3 + seed % 7;
  const size_t nb = 2 + seed % 11;
  const FeatureMap a =
      MakeMap(na, dim, rng.UniformDouble(-4.0, 4.0), 1.0, seed * 3 + 1);
  const FeatureMap b =
      MakeMap(nb, dim, rng.UniformDouble(-4.0, 4.0), 1.0, seed * 3 + 2);
  for (OmdMode mode : {OmdMode::kExact, OmdMode::kThresholded}) {
    OmdOptions options;
    options.mode = mode;
    options.threshold_alpha = mode == OmdMode::kThresholded ? 0.6 : 1.0;
    OmdCalculator calc(options);
    auto omd = calc.Distance(a, b);
    ASSERT_TRUE(omd.ok());
    const double bound = QuantizedOmdLowerBound(a, b, options);
    EXPECT_GE(bound, 0.0);
    EXPECT_LE(bound, *omd + 1e-9)
        << "seed=" << seed << " mode=" << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizedBoundTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(QuantizedBoundTest, WellSeparatedMapsGetPositiveBound) {
  // Two tight blobs far apart: the int8 shadow resolves the gap easily, so
  // the tier must certify a non-trivial bound (otherwise it never prunes).
  const FeatureMap a = MakeMap(8, 6, 0.0, 0.2, 31);
  const FeatureMap b = MakeMap(8, 6, 10.0, 0.2, 32);
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  auto omd = calc.Distance(a, b);
  ASSERT_TRUE(omd.ok());
  const double bound = QuantizedOmdLowerBound(a, b, options);
  EXPECT_GT(bound, 0.5 * *omd);
  EXPECT_LE(bound, *omd + 1e-9);
}

TEST(QuantizedBoundTest, DeclinesWhenItCannotCertify) {
  OmdOptions options;
  options.mode = OmdMode::kExact;
  // Oversized map: the solver would subsample, so no bound.
  options.max_vectors = 4;
  const FeatureMap big_a = MakeMap(8, 4, 0.0, 0.3, 41);
  const FeatureMap big_b = MakeMap(8, 4, 6.0, 0.3, 42);
  EXPECT_DOUBLE_EQ(QuantizedOmdLowerBound(big_a, big_b, options), 0.0);
  options.max_vectors = 256;
  // Missing shadow (non-finite input invalidates it).
  FeatureMap poisoned;
  ASSERT_TRUE(poisoned
                  .Add(FeatureVector(
                      {1.0f, std::numeric_limits<float>::quiet_NaN()}))
                  .ok());
  EXPECT_FALSE(poisoned.quantized().has_value());
  FeatureMap clean;
  ASSERT_TRUE(clean.Add(FeatureVector({5.0f, 5.0f})).ok());
  EXPECT_DOUBLE_EQ(QuantizedOmdLowerBound(poisoned, clean, options), 0.0);
  // Empty and dimension-mismatched pairs.
  FeatureMap empty;
  EXPECT_DOUBLE_EQ(QuantizedOmdLowerBound(empty, clean, options), 0.0);
  FeatureMap other_dim;
  ASSERT_TRUE(other_dim.Add(FeatureVector({1.0f, 2.0f, 3.0f})).ok());
  EXPECT_DOUBLE_EQ(QuantizedOmdLowerBound(other_dim, clean, options), 0.0);
}

TEST(SvsMetricTest, FailedDistanceReturnsInfinityPoison) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(6, 4, 0.0, 0.3, 51));
  OmdCalculator calc;
  SvsMetric metric(&store, &calc);
  // Unknown id: must read as maximally far, never as "identical".
  const double unknown = metric.Distance(static_cast<int>(a), 9999);
  EXPECT_TRUE(std::isinf(unknown));
  EXPECT_GT(unknown, 0.0);
  EXPECT_EQ(metric.failed_distances(), 1u);
  // Dimension-mismatched stored maps: the solve fails, same poison.
  const SvsId b = store.Create("cam", 10, 20, MakeMap(6, 7, 0.0, 0.3, 52));
  const double mismatched =
      metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_TRUE(std::isinf(mismatched));
  EXPECT_EQ(metric.failed_distances(), 2u);
}

TEST(SvsMetricTest, QuantizedPruneTightensButNeverExceedsDistance) {
  SvsStore store;
  std::vector<SvsId> ids;
  for (uint64_t s = 0; s < 6; ++s) {
    ids.push_back(store.Create("cam", static_cast<int64_t>(s) * 10,
                               static_cast<int64_t>(s) * 10 + 10,
                               MakeMap(6 + s, 5, s * 2.5, 0.8, 60 + s)));
  }
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  SvsMetricOptions on_options;
  on_options.quantized_prune = true;
  SvsMetricOptions off_options;
  off_options.quantized_prune = false;
  SvsMetric on(&store, &calc, on_options);
  SvsMetric off(&store, &calc, off_options);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      const int a = static_cast<int>(ids[i]);
      const int b = static_cast<int>(ids[j]);
      const double d = on.Distance(a, b);
      const double with_prune = on.LowerBound(a, b);
      const double ocd_only = off.LowerBound(a, b);
      EXPECT_LE(with_prune, d + 1e-6) << "pair " << i << "," << j;
      EXPECT_GE(with_prune, ocd_only) << "pair " << i << "," << j;
    }
  }
}

// The ISSUE-level invariant: the quantized tier is pruning-only. Two systems
// differing only in `quantized_prune` must answer DirectQuery and
// ClusteringQuery identically on identical corpora, across seeds.
class QuantizedPruneInvarianceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(QuantizedPruneInvarianceTest, QueriesIdenticalWithPruneOnAndOff) {
  const uint64_t seed = GetParam();
  sim::DeploymentOptions dep;
  dep.cities = 1;
  dep.downtown_per_city = 1;
  dep.highway_cameras = 1;
  dep.train_stations = 0;
  dep.harbors = 0;
  dep.feed_duration_ms = 30'000;
  dep.fps = 1.0;
  dep.feature_dim = 16;
  dep.seed = seed;
  sim::Deployment deployment(dep);

  VideoZillaOptions base;
  base.segmenter.t_max_ms = 15'000;
  base.segmenter.t_split_ms = 5'000;
  base.omd.max_vectors = 64;
  base.intra.recluster_interval = 2;
  base.enable_keyframe_selection = false;

  VideoZillaOptions on_options = base;
  on_options.quantized_prune = true;
  VideoZillaOptions off_options = base;
  off_options.quantized_prune = false;
  VideoZilla on(on_options);
  VideoZilla off(off_options);
  ASSERT_TRUE(deployment.IngestAll(&on).ok());
  ASSERT_TRUE(deployment.IngestAll(&off).ok());
  ASSERT_EQ(on.svs_store().size(), off.svs_store().size());
  ASSERT_GT(on.svs_store().size(), 0u);

  Rng rng(seed + 1);
  const FeatureVector query = deployment.MakeQueryFeature(sim::kCar, &rng);
  auto direct_on = on.DirectQuery(query);
  auto direct_off = off.DirectQuery(query);
  ASSERT_TRUE(direct_on.ok());
  ASSERT_TRUE(direct_off.ok());
  EXPECT_EQ(direct_on->candidate_svss, direct_off->candidate_svss)
      << "seed=" << seed;
  EXPECT_EQ(direct_on->matched_svss, direct_off->matched_svss)
      << "seed=" << seed;

  const SvsId target = on.svs_store().AllIds().front();
  auto cluster_on = on.ClusteringQuery(target);
  auto cluster_off = off.ClusteringQuery(target);
  ASSERT_TRUE(cluster_on.ok());
  ASSERT_TRUE(cluster_off.ok());
  EXPECT_EQ(cluster_on->similar_svss, cluster_off->similar_svss)
      << "seed=" << seed;
  EXPECT_EQ(cluster_on->cameras_contributing, cluster_off->cameras_contributing)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizedPruneInvarianceTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace vz::core
