#include "core/omd.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

TEST(OmdCalculatorTest, IdenticalMapsHaveZeroDistance) {
  OmdCalculator calc;
  const FeatureMap map = MakeMap(10, 8, 1.0, 0.5, 1);
  auto d = calc.Distance(map, map);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-9);
  EXPECT_EQ(calc.num_computations(), 1u);
}

TEST(OmdCalculatorTest, SingletonMapsReduceToEuclidean) {
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f, 0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({3.0f, 4.0f})).ok());
  auto d = calc.Distance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 5.0, 1e-9);
}

TEST(OmdCalculatorTest, EmptyMapsAreHandled) {
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  FeatureMap empty;
  FeatureMap one;
  ASSERT_TRUE(one.Add(FeatureVector({3.0f, 4.0f})).ok());
  auto both = calc.Distance(empty, empty);
  ASSERT_TRUE(both.ok());
  EXPECT_DOUBLE_EQ(*both, 0.0);
  // One empty side acts as a zero vector.
  auto single = calc.Distance(empty, one);
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(*single, 5.0, 1e-9);
}

TEST(OmdCalculatorTest, DimensionMismatchRejected) {
  OmdCalculator calc;
  FeatureMap a;
  ASSERT_TRUE(a.Add(FeatureVector({0.0f})).ok());
  FeatureMap b;
  ASSERT_TRUE(b.Add(FeatureVector({0.0f, 0.0f})).ok());
  EXPECT_FALSE(calc.Distance(a, b).ok());
}

TEST(OmdCalculatorTest, ThresholdedLowerBoundsExact) {
  const FeatureMap a = MakeMap(15, 6, 0.0, 1.0, 2);
  const FeatureMap b = MakeMap(15, 6, 3.0, 1.0, 3);
  OmdOptions exact_options;
  exact_options.mode = OmdMode::kExact;
  OmdCalculator exact(exact_options);
  for (double alpha : {0.3, 0.6, 0.9}) {
    OmdOptions approx_options;
    approx_options.mode = OmdMode::kThresholded;
    approx_options.threshold_alpha = alpha;
    OmdCalculator approx(approx_options);
    auto de = exact.Distance(a, b);
    auto da = approx.Distance(a, b);
    ASSERT_TRUE(de.ok());
    ASSERT_TRUE(da.ok());
    EXPECT_LE(*da, *de + 1e-9) << "alpha " << alpha;
  }
}

TEST(OmdCalculatorTest, AlphaOneMatchesExact) {
  const FeatureMap a = MakeMap(12, 5, 0.0, 1.0, 4);
  const FeatureMap b = MakeMap(12, 5, 2.0, 1.0, 5);
  OmdOptions exact_options;
  exact_options.mode = OmdMode::kExact;
  OmdOptions one_options;
  one_options.mode = OmdMode::kThresholded;
  one_options.threshold_alpha = 1.0;
  OmdCalculator exact(exact_options);
  OmdCalculator one(one_options);
  auto de = exact.Distance(a, b);
  auto d1 = one.Distance(a, b);
  ASSERT_TRUE(de.ok());
  ASSERT_TRUE(d1.ok());
  // At alpha = 1 only the strictly-max-distance pairs route through the
  // transshipment vertex at exactly the max cost, so values coincide.
  EXPECT_NEAR(*de, *d1, 1e-6);
}

TEST(OmdCalculatorTest, SubsamplingKeepsDistanceClose) {
  const FeatureMap a = MakeMap(100, 4, 0.0, 0.5, 6);
  const FeatureMap b = MakeMap(100, 4, 5.0, 0.5, 7);
  OmdOptions full_options;
  full_options.mode = OmdMode::kExact;
  full_options.max_vectors = 100;
  OmdOptions sub_options;
  sub_options.mode = OmdMode::kExact;
  sub_options.max_vectors = 20;
  OmdCalculator full(full_options);
  OmdCalculator sub(sub_options);
  auto df = full.Distance(a, b);
  auto ds = sub.Distance(a, b);
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(ds.ok());
  // Two tight blobs 5*sqrt(4)=10 apart: subsampling barely moves the value.
  EXPECT_NEAR(*df, *ds, 0.5);
}

// Property sweep: OCD is a lower bound of OMD (Sec. 4.3) on random pairs.
class OcdLowerBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OcdLowerBoundTest, OcdNeverExceedsExactOmd) {
  Rng rng(GetParam());
  const FeatureMap a =
      MakeMap(12, 6, rng.UniformDouble(-3.0, 3.0), 1.5, GetParam() * 2 + 1);
  const FeatureMap b =
      MakeMap(9, 6, rng.UniformDouble(-3.0, 3.0), 1.5, GetParam() * 2 + 2);
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  auto omd = calc.Distance(a, b);
  ASSERT_TRUE(omd.ok());
  EXPECT_LE(ObjectCentroidDistance(a, b), *omd + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OcdLowerBoundTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SvsMetricTest, DistanceAndLowerBoundOverStore) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 11));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(8, 4, 4.0, 0.3, 12));
  // OCD lower-bounds the *exact* OMD; with the thresholded approximation
  // (which under-estimates) it is only a heuristic (see Sec. 4.3 note in
  // DESIGN.md), so this invariant is asserted in exact mode.
  OmdOptions options;
  options.mode = OmdMode::kExact;
  OmdCalculator calc(options);
  SvsMetric metric(&store, &calc);
  const double d = metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_GT(d, 0.0);
  EXPECT_LE(metric.LowerBound(static_cast<int>(a), static_cast<int>(b)),
            d + 1e-6);
  EXPECT_DOUBLE_EQ(metric.Distance(static_cast<int>(a), static_cast<int>(a)),
                   0.0);
}

TEST(SvsMetricTest, MemoizationAvoidsRecomputation) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 13));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(8, 4, 4.0, 0.3, 14));
  OmdCalculator calc;
  SvsMetric metric(&store, &calc);
  const double d1 = metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 1u);
  const double d2 = metric.Distance(static_cast<int>(b), static_cast<int>(a));
  EXPECT_EQ(metric.num_distance_evals(), 1u);  // symmetric cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  metric.InvalidateCache();
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

TEST(SvsMetricTest, TemporariesSupportQueryMaps) {
  SvsStore store;
  store.Create("cam", 0, 10, MakeMap(8, 4, 0.0, 0.3, 15));
  OmdCalculator calc;
  SvsMetric metric(&store, &calc);
  const FeatureMap query = MakeMap(5, 4, 0.1, 0.3, 16);
  const int temp = metric.RegisterTemporary(&query);
  EXPECT_LT(temp, 0);
  const double d = metric.Distance(temp, 0);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 2.0);  // both maps sit near the origin
  metric.UnregisterTemporary(temp);
}

TEST(SvsMetricTest, MemoizationCanBeDisabled) {
  SvsStore store;
  const SvsId a = store.Create("cam", 0, 10, MakeMap(6, 4, 0.0, 0.3, 17));
  const SvsId b = store.Create("cam", 10, 20, MakeMap(6, 4, 2.0, 0.3, 18));
  OmdCalculator calc;
  SvsMetricOptions options;
  options.memoize = false;
  SvsMetric metric(&store, &calc, options);
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  metric.Distance(static_cast<int>(a), static_cast<int>(b));
  EXPECT_EQ(metric.num_distance_evals(), 2u);
}

}  // namespace
}  // namespace vz::core
