// Chaos drills of the serving layer: a seeded TCP fault proxy
// (net::ChaosProxy driven by sim::WireFaultInjector) sits between client and
// server and delays, splits, truncates, bit-flips, blackholes and resets the
// byte stream. The contracts under test are the PR's headline guarantees:
//
//   - exactly-once: despite reconnect-retries, every frame is applied on the
//     server exactly once (no loss, no double-apply);
//   - transparency: query results through the proxy are bit-identical to
//     results over a direct connection;
//   - liveness: no call and no connection ever hangs — deadlines, eviction
//     and reconnects always converge.
//
// The sweep runs `VZ_CHAOS_SEEDS` seeds (default 50; sanitizer presets size
// it down to stay within the ctest timeout).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/videozilla.h"
#include "net/chaos_proxy.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "sim/dataset.h"
#include "sim/wire_fault_injector.h"

namespace vz::net {
namespace {

using core::VideoZilla;
using core::VideoZillaOptions;

size_t NumChaosSeeds() {
  if (const char* env = std::getenv("VZ_CHAOS_SEEDS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 50;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

// The fault mix of the drill: modest per-chunk probabilities of every fault
// the injector knows, summing well below 1 so most chunks pass clean.
sim::WireFaultInjectorOptions DrillFaults(uint64_t seed) {
  sim::WireFaultInjectorOptions faults;
  faults.seed = seed;
  faults.delay_probability = 0.05;
  faults.delay_ms = 2;
  faults.split_probability = 0.10;
  faults.truncate_probability = 0.04;
  faults.bitflip_probability = 0.05;
  faults.bitflip_count = 1;
  faults.blackhole_probability = 0.02;
  faults.reset_probability = 0.04;
  return faults;
}

// Client tuned for chaos: short I/O deadline (blackholes must not stall the
// run), tiny backoff, and a reconnect budget that rides out consecutive
// faults.
ClientOptions ChaosClientOptions(uint64_t seed) {
  ClientOptions options;
  options.connect_timeout_ms = 1'000;
  options.io_timeout_ms = 250;
  options.max_reconnects = 50;
  options.backoff_floor_ms = 1;
  options.backoff_cap_ms = 20;
  options.backoff_seed = seed + 101;
  options.session_id = seed * 1'000 + 1;
  return options;
}

// One full drill at one seed: ingest through the chaos proxy, then assert
// exactly-once application, proxied-vs-direct query transparency, and a
// fully drained server.
void RunChaosDrill(uint64_t seed, sim::Deployment& deployment,
                   size_t num_frames) {
  VideoZilla system(SmallSystemOptions());
  ServerOptions server_options;
  server_options.idle_poll_ms = 5;
  server_options.read_timeout_ms = 500;
  server_options.write_timeout_ms = 500;
  Server server(&system, server_options);
  ASSERT_TRUE(server.Start().ok());

  ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  proxy_options.chunk_bytes = 512;  // several fault rolls per RPC
  proxy_options.idle_poll_ms = 5;
  proxy_options.faults = DrillFaults(seed);
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  auto client_or =
      Client::Connect("127.0.0.1", proxy.port(), ChaosClientOptions(seed));
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  Client client = std::move(*client_or);

  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client.CameraStart(info.camera).ok());
  }
  const auto& observations = deployment.observations();
  const size_t count = std::min(num_frames, observations.size());
  for (size_t i = 0; i < count; ++i) {
    Status status = client.IngestFrame(observations[i]);
    ASSERT_TRUE(status.ok()) << "frame " << i << ": " << status.ToString();
  }
  ASSERT_TRUE(client.Flush().ok());

  // Exactly-once at the application layer: every frame applied once, none
  // lost, none double-applied — the wire-level dedup absorbed every
  // retried duplicate before the ingestion guard could see it.
  const core::IngestStats& ingest = system.ingest_stats();
  EXPECT_EQ(ingest.frames_offered, count) << "seed " << seed;
  EXPECT_EQ(ingest.duplicates_dropped, 0u) << "seed " << seed;
  EXPECT_EQ(ingest.out_of_order_dropped, 0u) << "seed " << seed;

  // Transparency: a query through the chaos proxy returns bit-identical
  // results to the same query over a clean direct connection.
  auto direct_or = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(direct_or.ok());
  Client direct = std::move(*direct_or);
  Rng rng(seed + 7);
  const FeatureVector query = deployment.MakeQueryFeature(0, &rng);
  auto proxied_result = client.DirectQuery(query);
  ASSERT_TRUE(proxied_result.ok()) << proxied_result.status().ToString();
  auto direct_result = direct.DirectQuery(query);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(proxied_result->candidate_svss, direct_result->candidate_svss);
  EXPECT_EQ(proxied_result->matched_svss, direct_result->matched_svss);
  EXPECT_EQ(proxied_result->total_gpu_ms, direct_result->total_gpu_ms);
  EXPECT_EQ(proxied_result->frames_processed,
            direct_result->frames_processed);
  EXPECT_EQ(proxied_result->cameras_searched,
            direct_result->cameras_searched);

  // Liveness: once the clients leave, every server-side connection drains —
  // nothing is wedged in a read or write.
  client.Close();
  direct.Close();
  for (int waited = 0;
       server.stats().connections_active > 0 && waited < 400; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().connections_active, 0u) << "seed " << seed;

  const ChaosProxy::Stats chaos = proxy.stats();
  EXPECT_GT(chaos.ledger.chunks_seen, 0u);
  proxy.Shutdown();
  server.Shutdown();
}

TEST(NetChaosTest, MultiSeedChaosSweepIsExactlyOnceAndTransparent) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  const size_t seeds = NumChaosSeeds();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    RunChaosDrill(seed, deployment, /*num_frames=*/40);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(NetChaosTest, FaultFreeProxyIsFullyTransparent) {
  sim::Deployment deployment(SmallDeployment());
  const auto& observations = deployment.observations();
  const size_t count = std::min<size_t>(80, observations.size());

  // Control: the same prefix ingested in process.
  VideoZilla control(SmallSystemOptions());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(control.CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(control.IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(control.Flush().ok());

  VideoZilla system(SmallSystemOptions());
  Server server(&system, {});
  ASSERT_TRUE(server.Start().ok());
  ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  // All fault probabilities zero: the proxy must be invisible.
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());
  auto client = Client::Connect("127.0.0.1", proxy.port());
  ASSERT_TRUE(client.ok());
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client->CameraStart(info.camera).ok());
  }
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(client->IngestFrame(observations[i]).ok());
  }
  ASSERT_TRUE(client->Flush().ok());

  EXPECT_EQ(system.ingest_stats().frames_offered,
            control.ingest_stats().frames_offered);
  EXPECT_EQ(system.ingest_stats().svs_created,
            control.ingest_stats().svs_created);
  EXPECT_EQ(system.svs_store().size(), control.svs_store().size());

  Rng rng(5);
  const FeatureVector query = deployment.MakeQueryFeature(1, &rng);
  auto expected = control.DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  auto proxied = client->DirectQuery(query);
  ASSERT_TRUE(proxied.ok());
  EXPECT_EQ(proxied->candidate_svss, expected->candidate_svss);
  EXPECT_EQ(proxied->matched_svss, expected->matched_svss);
  EXPECT_EQ(proxied->total_gpu_ms, expected->total_gpu_ms);

  // Not a single retry or reconnect was needed, and the ledger confirms a
  // fault-free run.
  EXPECT_EQ(client->call_stats().transport_failures, 0u);
  EXPECT_EQ(client->call_stats().reconnects, 0u);
  const ChaosProxy::Stats stats = proxy.stats();
  EXPECT_EQ(stats.ledger.chunks_clean, stats.ledger.chunks_seen);
  EXPECT_GE(stats.connections_relayed, 1u);
  client->Close();
  proxy.Shutdown();
  server.Shutdown();
}

// --- Protocol-v5 multiplexed framing under chaos. ---

// The batched-ingest drill: the same chaos mix, but frames travel in
// kIngestBatch RPCs. A retried batch after a reconnect must be answered
// from the dedup window with the identical accept/reject counts, never
// re-applied — exactly-once holds at batch granularity too.
void RunBatchedChaosDrill(uint64_t seed, sim::Deployment& deployment,
                          size_t num_frames) {
  VideoZilla system(SmallSystemOptions());
  ServerOptions server_options;
  server_options.idle_poll_ms = 5;
  server_options.read_timeout_ms = 500;
  server_options.write_timeout_ms = 500;
  Server server(&system, server_options);
  ASSERT_TRUE(server.Start().ok());

  ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  proxy_options.chunk_bytes = 512;
  proxy_options.idle_poll_ms = 5;
  proxy_options.faults = DrillFaults(seed);
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  // A batch request spans several proxy chunks (a 4-frame batch with busy
  // frames is ~4KB, i.e. ~8 fault rolls per attempt versus ~1 for a
  // per-frame RPC), so per-attempt survival is far lower than in the
  // per-frame drill. The retry budget scales up to match; exactly-once must
  // still hold however many retries the mix forces.
  ClientOptions client_options = ChaosClientOptions(seed);
  client_options.max_reconnects = 400;
  auto client_or =
      Client::Connect("127.0.0.1", proxy.port(), client_options);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  Client client = std::move(*client_or);

  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client.CameraStart(info.camera).ok());
  }
  const auto& observations = deployment.observations();
  const size_t count = std::min(num_frames, observations.size());
  uint64_t accepted_total = 0;
  const size_t kBatch = 4;
  for (size_t begin = 0; begin < count; begin += kBatch) {
    const size_t end = std::min(begin + kBatch, count);
    std::vector<core::FrameObservation> batch(observations.begin() + begin,
                                              observations.begin() + end);
    auto reply = client.IngestBatch(batch);
    ASSERT_TRUE(reply.ok())
        << "batch at " << begin << ": " << reply.status().ToString();
    accepted_total += reply->accepted;
    EXPECT_EQ(reply->rejected, 0u) << "batch at " << begin;
  }
  ASSERT_TRUE(client.Flush().ok());

  // Exactly-once despite chaos-retried batches: every frame applied once.
  EXPECT_EQ(accepted_total, count) << "seed " << seed;
  const core::IngestStats& ingest = system.ingest_stats();
  EXPECT_EQ(ingest.frames_offered, count) << "seed " << seed;
  EXPECT_EQ(ingest.duplicates_dropped, 0u) << "seed " << seed;
  EXPECT_EQ(ingest.out_of_order_dropped, 0u) << "seed " << seed;

  client.Close();
  proxy.Shutdown();
  server.Shutdown();
}

TEST(NetChaosTest, BatchedIngestChaosSweepIsExactlyOnce) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  const size_t seeds = NumChaosSeeds();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    RunBatchedChaosDrill(seed, deployment, /*num_frames=*/40);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A subscriber on a clean connection while chaos-retried ingest runs
// through the proxy: double-applied ingest would finalize extra segments
// and surface as extra pushes, and any demux slip would break the dense
// as-delivered sequence. The subscriber is the exactly-once witness.
TEST(NetChaosTest, SubscriberSeesEachSegmentOnceThroughChaoticIngest) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  const size_t seeds = std::min<size_t>(NumChaosSeeds(), 8);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    VideoZilla system(SmallSystemOptions());
    ServerOptions server_options;
    server_options.idle_poll_ms = 5;
    server_options.read_timeout_ms = 500;
    server_options.write_timeout_ms = 500;
    Server server(&system, server_options);
    ASSERT_TRUE(server.Start().ok());
    ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    proxy_options.chunk_bytes = 512;
    proxy_options.idle_poll_ms = 5;
    proxy_options.faults = DrillFaults(seed + 500);
    ChaosProxy proxy(proxy_options);
    ASSERT_TRUE(proxy.Start().ok());

    // Subscriber on a direct connection (its standing query must survive
    // the whole drill; a connection-scoped subscription through the proxy
    // would die at the first reset).
    auto subscriber = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(subscriber.ok());
    SubscribeRequest match_all;
    match_all.query = FeatureVector(std::vector<float>(32, 0.0f));
    match_all.threshold = 1e12;
    std::mutex mu;
    std::vector<PushEvent> events;
    auto sub_id = subscriber->Subscribe(
        match_all, [&](const PushEvent& event) {
          std::lock_guard<std::mutex> lock(mu);
          events.push_back(event);
        });
    ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();

    auto ingester =
        Client::Connect("127.0.0.1", proxy.port(), ChaosClientOptions(seed));
    ASSERT_TRUE(ingester.ok());
    for (const auto& info : deployment.cameras()) {
      ASSERT_TRUE(ingester->CameraStart(info.camera).ok());
    }
    const auto& observations = deployment.observations();
    const size_t count = std::min<size_t>(40, observations.size());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(ingester->IngestFrame(observations[i]).ok()) << i;
    }
    ASSERT_TRUE(ingester->Flush().ok());

    const uint64_t segments = system.ingest_stats().svs_created;
    EXPECT_EQ(system.ingest_stats().frames_offered, count);
    for (int waited = 0; waited < 2'000; ++waited) {
      std::lock_guard<std::mutex> lock(mu);
      if (events.size() >= segments) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::lock_guard<std::mutex> lock(mu);
    // One push per finalized segment — a duplicate would mean a retried
    // frame was double-applied somewhere behind the dedup window.
    ASSERT_EQ(events.size(), segments) << "seed " << seed;
    uint64_t expected_sequence = 0;
    for (const PushEvent& event : events) {
      EXPECT_EQ(event.subscription_id, *sub_id);
      EXPECT_EQ(event.sequence, expected_sequence++);
      EXPECT_EQ(event.kind, PushKind::kMatch);
    }

    subscriber->Close();
    ingester->Close();
    proxy.Shutdown();
    server.Shutdown();
  }
}

// A subscription through the chaos proxy is connection-scoped: a reset
// kills it silently (at-most-once, no resurrections). The client's contract
// is that a re-subscribe on the healed connection gets a *fresh* id with a
// fresh dense sequence — (subscription id, sequence) pairs never repeat, so
// nothing can be double-applied downstream.
TEST(NetChaosTest, ResubscribeAfterResetNeverRepeatsAnIdSequencePair) {
  sim::Deployment deployment(SmallDeployment());
  (void)deployment.observations();
  VideoZilla system(SmallSystemOptions());
  ServerOptions server_options;
  server_options.idle_poll_ms = 5;
  Server server(&system, server_options);
  ASSERT_TRUE(server.Start().ok());
  ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  proxy_options.idle_poll_ms = 5;
  proxy_options.faults.seed = 77;
  proxy_options.faults.reset_probability = 0.08;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  auto client_or =
      Client::Connect("127.0.0.1", proxy.port(), ChaosClientOptions(77));
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(*client_or);
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(client.CameraStart(info.camera).ok());
  }

  std::mutex mu;
  std::set<std::pair<uint64_t, uint64_t>> seen;  // (subscription id, seq)
  bool duplicate = false;
  SubscribeRequest match_all;
  match_all.query = FeatureVector(std::vector<float>(32, 0.0f));
  match_all.threshold = 1e12;
  auto record = [&](const PushEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen.insert({event.subscription_id, event.sequence}).second) {
      duplicate = true;
    }
  };

  std::set<uint64_t> subscription_ids;
  const auto& observations = deployment.observations();
  const size_t count = std::min<size_t>(60, observations.size());
  size_t next_frame = 0;
  // Interleave ingest with subscribe attempts; resets will kill some
  // subscriptions mid-stream and the re-subscribes must mint fresh ids.
  for (int round = 0; round < 6; ++round) {
    auto sub_id = client.Subscribe(match_all, record);
    if (sub_id.ok()) {
      EXPECT_TRUE(subscription_ids.insert(*sub_id).second)
          << "subscription id " << *sub_id << " reused";
    }
    const size_t until = std::min(count, next_frame + count / 6 + 1);
    for (; next_frame < until; ++next_frame) {
      ASSERT_TRUE(client.IngestFrame(observations[next_frame]).ok())
          << next_frame;
    }
  }
  ASSERT_TRUE(client.Flush().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(duplicate) << "a (subscription, sequence) pair repeated";
  }
  // Exactly-once ingest held throughout the reset storm.
  EXPECT_EQ(system.ingest_stats().frames_offered, count);
  EXPECT_EQ(system.ingest_stats().duplicates_dropped, 0u);

  client.Close();
  proxy.Shutdown();
  server.Shutdown();
}

// --- The wire fault injector itself (pure, no sockets). ---

TEST(WireFaultInjectorTest, SameSeedSameChunksSameFaults) {
  sim::WireFaultInjectorOptions options = DrillFaults(33);
  sim::WireFaultInjector a(options);
  sim::WireFaultInjector b(options);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    std::string chunk_a(1 + rng.UniformUint64(64), '\x5a');
    std::string chunk_b = chunk_a;
    const auto action_a = a.Apply(&chunk_a);
    const auto action_b = b.Apply(&chunk_b);
    ASSERT_EQ(chunk_a, chunk_b);
    ASSERT_EQ(action_a.delay_ms, action_b.delay_ms);
    ASSERT_EQ(action_a.split_at, action_b.split_at);
    ASSERT_EQ(action_a.blackhole, action_b.blackhole);
    ASSERT_EQ(action_a.reset, action_b.reset);
  }
  const auto& la = a.ledger();
  const auto& lb = b.ledger();
  EXPECT_EQ(la.chunks_clean, lb.chunks_clean);
  EXPECT_EQ(la.delays, lb.delays);
  EXPECT_EQ(la.splits, lb.splits);
  EXPECT_EQ(la.truncations, lb.truncations);
  EXPECT_EQ(la.bitflips, lb.bitflips);
  EXPECT_EQ(la.blackholes, lb.blackholes);
  EXPECT_EQ(la.resets, lb.resets);
}

TEST(WireFaultInjectorTest, FaultsAreMutuallyExclusiveAndLedgerIsExact) {
  sim::WireFaultInjectorOptions options = DrillFaults(12);
  options.blackhole_probability = 0;  // keep the stream rolling
  sim::WireFaultInjector injector(options);
  uint64_t seen = 0;
  for (int i = 0; i < 1'000; ++i) {
    std::string chunk(48, '\x11');
    (void)injector.Apply(&chunk);
    ++seen;
  }
  const auto& ledger = injector.ledger();
  EXPECT_EQ(ledger.chunks_seen, seen);
  // One roll, at most one fault: the categories partition the chunks.
  EXPECT_EQ(ledger.chunks_clean + ledger.delays + ledger.splits +
                ledger.truncations + ledger.bitflips + ledger.blackholes +
                ledger.resets,
            seen);
  EXPECT_GT(ledger.chunks_clean, 0u);
  EXPECT_GT(ledger.splits, 0u);  // 10% over 1000 chunks
}

TEST(WireFaultInjectorTest, BlackholeIsStickyPerDirection) {
  sim::WireFaultInjectorOptions options;
  options.seed = 4;
  options.blackhole_probability = 1.0;
  sim::WireFaultInjector injector(options);
  std::string chunk = "payload";
  EXPECT_TRUE(injector.Apply(&chunk).blackhole);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(injector.Apply(&chunk).blackhole);
  }
  EXPECT_EQ(injector.ledger().blackholes, 1u);  // one fault, then sticky
  EXPECT_EQ(injector.ledger().blackholed_chunks, 5u);

  // A forked child has its own independent state and stream.
  sim::WireFaultInjector child = injector.Fork();
  std::string other = "payload";
  EXPECT_TRUE(child.Apply(&other).blackhole);
  EXPECT_EQ(child.ledger().blackholes, 1u);
}

TEST(WireFaultInjectorTest, TruncationShortensAndResets) {
  sim::WireFaultInjectorOptions options;
  options.seed = 9;
  options.truncate_probability = 1.0;
  sim::WireFaultInjector injector(options);
  bool saw_shorter = false;
  for (int i = 0; i < 50; ++i) {
    std::string chunk(32, '\xab');
    const auto action = injector.Apply(&chunk);
    EXPECT_TRUE(action.reset);
    EXPECT_LT(chunk.size(), 32u);
    if (chunk.size() < 32) saw_shorter = true;
  }
  EXPECT_TRUE(saw_shorter);
  EXPECT_EQ(injector.ledger().truncations, 50u);
}

}  // namespace
}  // namespace vz::net
