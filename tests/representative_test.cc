#include "core/representative.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

FeatureMap TwoBlobMap(uint64_t seed) {
  // 20 vectors near +5 and 10 vectors near -5 (dim 4).
  FeatureMap map;
  Rng rng(seed);
  for (int i = 0; i < 20; ++i) {
    FeatureVector v(4);
    for (size_t d = 0; d < 4; ++d) {
      v[d] = static_cast<float>(5.0 + rng.Gaussian(0.0, 0.3));
    }
    (void)map.Add(std::move(v), 1.0);
  }
  for (int i = 0; i < 10; ++i) {
    FeatureVector v(4);
    for (size_t d = 0; d < 4; ++d) {
      v[d] = static_cast<float>(-5.0 + rng.Gaussian(0.0, 0.3));
    }
    (void)map.Add(std::move(v), 1.0);
  }
  return map;
}

TEST(RepresentativeTest, BuildsWeightedCenters) {
  Rng rng(1);
  auto rep = BuildRepresentative(TwoBlobMap(2), RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ(rep->size(), 2u);
  // Weights reflect the 20/10 split and sum to 1.
  double total = 0.0;
  for (const WeightedCenter& c : rep->centers()) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const double w0 = rep->centers()[0].weight;
  const double w1 = rep->centers()[1].weight;
  EXPECT_NEAR(std::max(w0, w1), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(std::min(w0, w1), 1.0 / 3.0, 1e-9);
}

TEST(RepresentativeTest, HitInsideBoundaryMissOutside) {
  Rng rng(3);
  auto rep = BuildRepresentative(TwoBlobMap(4), RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  FeatureVector near_blob(4);
  for (size_t d = 0; d < 4; ++d) near_blob[d] = 5.0f;
  FeatureVector far_away(4);
  for (size_t d = 0; d < 4; ++d) far_away[d] = 100.0f;
  EXPECT_TRUE(rep->Hit(near_blob));
  EXPECT_FALSE(rep->Hit(far_away));
  // A wider boundary scale can only add hits.
  EXPECT_TRUE(rep->Hit(near_blob, 3.0));
}

TEST(RepresentativeTest, BoundaryCoversAllMembers) {
  Rng rng(5);
  const FeatureMap map = TwoBlobMap(6);
  // quantile 1.0 = the paper's "farthest data point" boundary.
  RepresentativeOptions options;
  options.boundary_quantile = 1.0;
  auto rep = BuildRepresentative(map, options, &rng);
  ASSERT_TRUE(rep.ok());
  // Every member vector must hit (boundary = farthest member, Sec. 3.3).
  for (size_t i = 0; i < map.size(); ++i) {
    EXPECT_TRUE(rep->Hit(map.vector(i))) << "member " << i;
  }
}

TEST(RepresentativeTest, RecordHitTracksTime) {
  Rng rng(7);
  auto rep = BuildRepresentative(TwoBlobMap(8), RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->MaxTimeSinceHitMs(1000), 0);  // never hit yet
  FeatureVector near_blob(4);
  for (size_t d = 0; d < 4; ++d) near_blob[d] = 5.0f;
  EXPECT_GE(rep->RecordHit(near_blob, 500), 0);
  EXPECT_EQ(rep->MaxTimeSinceHitMs(1500), 1000);
  // A miss does not update timestamps.
  FeatureVector far_away(4);
  for (size_t d = 0; d < 4; ++d) far_away[d] = 100.0f;
  EXPECT_EQ(rep->RecordHit(far_away, 2000), -1);
  EXPECT_EQ(rep->MaxTimeSinceHitMs(2000), 1500);
}

TEST(RepresentativeTest, AsFeatureMapRoundTrips) {
  Rng rng(9);
  auto rep = BuildRepresentative(TwoBlobMap(10), RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  const FeatureMap map = rep->AsFeatureMap();
  EXPECT_EQ(map.size(), rep->size());
  EXPECT_NEAR(map.TotalWeight(), 1.0, 1e-9);
}

TEST(RepresentativeTest, MultiMapPooling) {
  Rng rng(11);
  const FeatureMap a = MakeMap(10, 4, 0.0, 0.3, 12);
  const FeatureMap b = MakeMap(10, 4, 8.0, 0.3, 13);
  auto rep =
      BuildRepresentative({&a, &b}, RepresentativeOptions{}, &rng);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->size(), 2u);
}

TEST(RepresentativeTest, RejectsEmptyInput) {
  Rng rng(13);
  FeatureMap empty;
  EXPECT_FALSE(BuildRepresentative(empty, RepresentativeOptions{}, &rng).ok());
  EXPECT_FALSE(
      BuildRepresentative(std::vector<const FeatureMap*>{},
                          RepresentativeOptions{}, &rng)
          .ok());
}

TEST(RepresentativeTest, SubsamplingCapRespectsBudget) {
  Rng rng(15);
  RepresentativeOptions options;
  options.max_vectors = 16;
  const FeatureMap big = MakeMap(500, 4, 1.0, 0.5, 16);
  auto rep = BuildRepresentative(big, options, &rng);
  ASSERT_TRUE(rep.ok());
  EXPECT_GE(rep->size(), 1u);
  EXPECT_LE(rep->size(), 8u);
}

TEST(RepresentativeTest, AverageMemberDistanceTracksSpread) {
  Rng rng(17);
  auto tight =
      BuildRepresentative(MakeMap(30, 4, 0.0, 0.1, 18),
                          RepresentativeOptions{}, &rng);
  auto loose =
      BuildRepresentative(MakeMap(30, 4, 0.0, 2.0, 19),
                          RepresentativeOptions{}, &rng);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(tight->AverageMemberDistance(), loose->AverageMemberDistance());
}

}  // namespace
}  // namespace vz::core
