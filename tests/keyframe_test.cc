#include "core/keyframe_selector.h"

#include <gtest/gtest.h>

namespace vz::core {
namespace {

FrameObservation Frame(int64_t ts_ms, double deviation) {
  FrameObservation frame;
  frame.camera = "cam";
  frame.timestamp_ms = ts_ms;
  frame.deviation_from_previous = deviation;
  return frame;
}

TEST(KeyframeSelectorTest, HeaviestConfigKeepsEverything) {
  KeyframeOptions options;
  options.ladder = {{1, 0.0}};
  options.processing_capacity_fps = 1000.0;
  KeyframeSelector selector(options);
  int kept = 0;
  for (int i = 0; i < 100; ++i) {
    kept += selector.ShouldProcess(Frame(i * 100, 0.5));
  }
  EXPECT_EQ(kept, 100);
  EXPECT_EQ(selector.stats().frames_seen, 100u);
}

TEST(KeyframeSelectorTest, StrideDropsFrames) {
  KeyframeOptions options;
  options.ladder = {{4, 0.0}};
  options.processing_capacity_fps = 1000.0;
  KeyframeSelector selector(options);
  int kept = 0;
  for (int i = 0; i < 100; ++i) {
    kept += selector.ShouldProcess(Frame(i * 100, 0.5));
  }
  EXPECT_EQ(kept, 25);
}

TEST(KeyframeSelectorTest, DeviationThresholdFilters) {
  KeyframeOptions options;
  options.ladder = {{1, 0.3}};
  options.processing_capacity_fps = 1000.0;
  KeyframeSelector selector(options);
  EXPECT_FALSE(selector.ShouldProcess(Frame(0, 0.1)));
  EXPECT_TRUE(selector.ShouldProcess(Frame(100, 0.5)));
}

TEST(KeyframeSelectorTest, DowngradesUnderLoadThenRecovers) {
  KeyframeOptions options;
  options.ladder = {{1, 0.0}, {8, 0.0}};
  options.processing_capacity_fps = 2.0;  // far below the offered 10 fps
  options.queue_high_watermark = 8;
  options.queue_low_watermark = 2;
  KeyframeSelector selector(options);
  // Offered load of 10 fps overwhelms a 2 fps extractor: must downgrade.
  int64_t ts = 0;
  for (int i = 0; i < 200; ++i) {
    selector.ShouldProcess(Frame(ts, 1.0));
    ts += 100;
  }
  EXPECT_GT(selector.stats().downgrades, 0u);
  EXPECT_EQ(selector.current_level(), 1u);
  // A long quiet gap drains the queue; the selector must upgrade again.
  ts += 60'000;
  selector.ShouldProcess(Frame(ts, 1.0));
  EXPECT_GT(selector.stats().upgrades, 0u);
  EXPECT_EQ(selector.current_level(), 0u);
}

TEST(KeyframeSelectorTest, SelectionRateBoundedByCapacity) {
  KeyframeOptions options;  // default ladder
  options.processing_capacity_fps = 2.0;
  KeyframeSelector selector(options);
  int kept = 0;
  int64_t ts = 0;
  const int frames = 1000;
  for (int i = 0; i < frames; ++i) {
    kept += selector.ShouldProcess(Frame(ts, 0.6));
    ts += 100;  // 10 fps offered
  }
  const double offered_seconds = frames * 0.1;
  const double kept_fps = kept / offered_seconds;
  // The adaptive ladder keeps the sustained rate near the capacity.
  EXPECT_LT(kept_fps, 2.0 * 2.5);
  EXPECT_GT(kept_fps, 0.5);
}

TEST(KeyframeSelectorTest, EmptyLadderGetsDefault) {
  KeyframeOptions options;
  options.ladder.clear();
  KeyframeSelector selector(options);
  EXPECT_TRUE(selector.ShouldProcess(Frame(0, 0.9)));
}

}  // namespace
}  // namespace vz::core
