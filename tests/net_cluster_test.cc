// Sharded-deployment drills for the coordinator (see DESIGN.md, "Sharded
// deployment"):
//   1. a seeded kill -9 of one edge mid-query: answers during the outage are
//      best-effort partials (degraded + excluded cameras + lowered completed
//      fraction), never errors; the health ladder evicts the dead edge; a
//      restarted edge re-syncs its representatives and rejoins with answers
//      bit-identical to a fault-free control — across VZ_CLUSTER_SEEDS
//      (default 10) kill/victim combinations;
//   2. representative-index fan-out pruning never changes an answer (a
//      pruned shard could not have contributed anything);
//   3. scatter-gather merge determinism: with edge clocks on a SimClock and
//      delay-only chaos proxies reordering which edge answers first, the
//      merged answer is bit-identical across response orders and edge
//      thread counts;
//   4. the coordinator is a read-only query plane: mutating and replication
//      RPCs are refused with kFailedPrecondition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/videozilla.h"
#include "net/chaos_proxy.h"
#include "net/client.h"
#include "net/coordinator.h"
#include "sim/dataset.h"
#include "cluster_test_util.h"

namespace vz::net {
namespace {

using core::VideoZillaOptions;

size_t EnvSeedCount(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 2;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

/// The kill drill consults every shard unconditionally: pruning would let a
/// victim whose representatives miss the query escape being fanned out to,
/// and the drill's assertions need the dead shard in the consult set.
CoordinatorOptions DrillCoordinatorOptions() {
  CoordinatorOptions options;
  options.prune_direct_fanout = false;
  return options;
}

/// Field-by-field equality of two merged direct answers — "bit-identical"
/// in the drills' sense (exact doubles included: both sides must have
/// summed the same per-shard values in the same shard order).
void ExpectDirectEq(const core::DirectQueryResult& got,
                    const core::DirectQueryResult& want) {
  EXPECT_EQ(got.candidate_svss, want.candidate_svss);
  EXPECT_EQ(got.matched_svss, want.matched_svss);
  EXPECT_EQ(got.total_gpu_ms, want.total_gpu_ms);
  EXPECT_EQ(got.bottleneck_camera_gpu_ms, want.bottleneck_camera_gpu_ms);
  EXPECT_EQ(got.per_camera_gpu_ms, want.per_camera_gpu_ms);
  EXPECT_EQ(got.frames_processed, want.frames_processed);
  EXPECT_EQ(got.cameras_searched, want.cameras_searched);
  EXPECT_EQ(got.degraded, want.degraded);
  EXPECT_EQ(got.excluded_cameras, want.excluded_cameras);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.completed_fraction, want.completed_fraction);
}

void ExpectClusteringEq(const core::ClusteringQueryResult& got,
                        const core::ClusteringQueryResult& want) {
  EXPECT_EQ(got.similar_svss, want.similar_svss);
  EXPECT_EQ(got.cameras_contributing, want.cameras_contributing);
  EXPECT_EQ(got.degraded, want.degraded);
  EXPECT_EQ(got.excluded_cameras, want.excluded_cameras);
  EXPECT_EQ(got.timed_out, want.timed_out);
  EXPECT_EQ(got.completed_fraction, want.completed_fraction);
  EXPECT_EQ(got.fast_omd_routed, want.fast_omd_routed);
}

/// `ids` minus everything owned by `shard` (global ids keep their relative
/// order — exactly what a merge without that shard's leg produces).
std::vector<core::SvsId> WithoutShard(const std::vector<core::SvsId>& ids,
                                      size_t shard) {
  std::vector<core::SvsId> kept;
  for (core::SvsId id : ids) {
    if (ShardOfSvsId(id) != shard) kept.push_back(id);
  }
  return kept;
}

/// First id in `ids` owned by `shard`, if any.
std::optional<core::SvsId> FirstOwnedBy(const std::vector<core::SvsId>& ids,
                                        size_t shard) {
  for (core::SvsId id : ids) {
    if (ShardOfSvsId(id) == shard) return id;
  }
  return std::nullopt;
}

// Drill 1: kill an edge mid-query, answer from the survivors, evict, then
// restart and rejoin. The coordinator must behave exactly like a single
// node with one stalled camera: degrade the answer, never error, and
// converge back to the fault-free answer once the shard is whole again.
TEST(NetClusterTest, SeededEdgeKillDegradesThenRecoversBitIdentical) {
  sim::Deployment deployment(SmallDeployment());
  deployment.observations();  // materialize once, shared by every cluster
  const size_t kEdges = 3;

  // Fault-free control cluster, booted once: every seed must converge to
  // its answer.
  TestCluster control(&deployment, kEdges, SmallSystemOptions());
  ASSERT_TRUE(control.StartEdges().ok());
  ASSERT_TRUE(control.StartCoordinator(DrillCoordinatorOptions()).ok());
  // The initial sync pass fed the coordinator-local representative index.
  EXPECT_GT(control.coordinator().stats().rep_entries, 0u);
  auto control_connected = control.Connect(100);
  ASSERT_TRUE(control_connected.ok());
  Client control_client = std::move(*control_connected);

  // The drill's filtered-id assertions need a query with candidates; which
  // object class produces them depends on the deployment, so scan.
  Rng query_rng(11);
  FeatureVector query;
  StatusOr<core::DirectQueryResult> expected =
      Status::NotFound("no matching object class");
  for (int object_class = 0; object_class < 8; ++object_class) {
    query = deployment.MakeQueryFeature(object_class, &query_rng);
    expected = control_client.DirectQuery(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    if (!expected->candidate_svss.empty()) break;
  }
  EXPECT_FALSE(expected->degraded);
  EXPECT_EQ(expected->completed_fraction, 1.0);
  ASSERT_FALSE(expected->candidate_svss.empty());

  const size_t seeds = EnvSeedCount("VZ_CLUSTER_SEEDS", 10);
  for (size_t seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const size_t victim = seed % kEdges;

    TestCluster cluster(&deployment, kEdges, SmallSystemOptions());
    ASSERT_TRUE(cluster.StartEdges().ok());
    ASSERT_TRUE(cluster.StartCoordinator(DrillCoordinatorOptions()).ok());
    auto connected = cluster.Connect(200 + seed);
    ASSERT_TRUE(connected.ok());
    Client client = std::move(*connected);

    // Sanity: the fault-free answer matches the control bit for bit.
    auto before = client.DirectQuery(query);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ExpectDirectEq(*before, *expected);

    // --- Kill the victim abruptly. ---
    cluster.KillEdge(victim);

    std::vector<core::CameraId> victim_cameras =
        cluster.shard_cameras(victim);
    std::sort(victim_cameras.begin(), victim_cameras.end());

    // A query during the outage: still consulted (not yet evicted), so the
    // dead leg fails inside the query — the answer is a best-effort partial
    // from the survivors, never an error.
    auto during = client.DirectQuery(query);
    ASSERT_TRUE(during.ok()) << during.status().ToString();
    EXPECT_TRUE(during->degraded);
    EXPECT_DOUBLE_EQ(during->completed_fraction,
                     static_cast<double>(kEdges - 1) / kEdges);
    EXPECT_EQ(during->excluded_cameras, victim_cameras);
    EXPECT_EQ(during->candidate_svss,
              WithoutShard(expected->candidate_svss, victim));
    EXPECT_EQ(during->matched_svss,
              WithoutShard(expected->matched_svss, victim));

    // The failed leg demoted the victim; one sync pass (another failure)
    // crosses unreachable_after = 2 and evicts it.
    EXPECT_EQ(cluster.coordinator().shard_health()[victim].state,
              ShardState::kDegraded);
    EXPECT_EQ(cluster.coordinator().PollEdgesNow(), kEdges - 1);
    EXPECT_EQ(cluster.coordinator().shard_health()[victim].state,
              ShardState::kUnreachable);

    // The ladder travels the wire: MonitorStats carries the shard table.
    auto monitor = client.MonitorStats();
    ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
    ASSERT_EQ(monitor->serving.shards.size(), kEdges);
    EXPECT_EQ(monitor->serving.shards[victim].state,
              ShardState::kUnreachable);

    // Post-eviction: the dead shard is no longer consulted, so the legs
    // that do run all complete — but the answer still declares what is
    // missing.
    auto evicted = client.DirectQuery(query);
    ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
    EXPECT_TRUE(evicted->degraded);
    EXPECT_EQ(evicted->completed_fraction, 1.0);
    EXPECT_EQ(evicted->excluded_cameras, victim_cameras);
    EXPECT_EQ(evicted->candidate_svss,
              WithoutShard(expected->candidate_svss, victim));

    // A by-id clustering query whose target lives on the dead shard: an
    // empty, fully degraded partial — still OK, not an error. Metadata, by
    // contrast, is not a query and errs.
    const std::optional<core::SvsId> victim_id =
        FirstOwnedBy(expected->candidate_svss, victim);
    if (victim_id.has_value()) {
      auto orphaned = client.ClusteringQuery(*victim_id);
      ASSERT_TRUE(orphaned.ok()) << orphaned.status().ToString();
      EXPECT_TRUE(orphaned->degraded);
      EXPECT_TRUE(orphaned->similar_svss.empty());
      EXPECT_EQ(orphaned->completed_fraction, 0.0);
      EXPECT_EQ(orphaned->excluded_cameras, victim_cameras);

      auto meta = client.GetMetaData(*victim_id);
      ASSERT_FALSE(meta.ok());
      EXPECT_EQ(meta.status().code(), StatusCode::kUnavailable);
    }

    // --- Restart the edge on its old port: the same (unchanged) system
    // --- behind a fresh server incarnation. ---
    ASSERT_TRUE(cluster.RestartEdge(victim).ok());

    // The next pass probes it (PollEdgesNow ignores backoff), re-syncs its
    // representatives and re-admits it.
    EXPECT_EQ(cluster.coordinator().PollEdgesNow(), kEdges);
    EXPECT_EQ(cluster.coordinator().shard_health()[victim].state,
              ShardState::kHealthy);

    // Rejoined: bit-identical to the fault-free control again.
    auto after = client.DirectQuery(query);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ExpectDirectEq(*after, *expected);

    const core::SvsId target = expected->candidate_svss.front();
    auto expected_similar = control_client.ClusteringQuery(target);
    ASSERT_TRUE(expected_similar.ok());
    auto similar = client.ClusteringQuery(target);
    ASSERT_TRUE(similar.ok()) << similar.status().ToString();
    ExpectClusteringEq(*similar, *expected_similar);

    client.Close();
  }
}

// Drill 2: fan-out pruning through the coordinator-local representative
// index must never change an answer — a pruned shard is one none of whose
// representatives pass the hit test, and such a shard's own edge query
// would have returned nothing either.
TEST(NetClusterTest, RepresentativePruningNeverChangesAnswers) {
  sim::Deployment deployment(SmallDeployment());
  deployment.observations();
  const size_t kEdges = 3;

  TestCluster cluster(&deployment, kEdges, SmallSystemOptions());
  ASSERT_TRUE(cluster.StartEdges().ok());
  // Pruning coordinator over the edges directly...
  CoordinatorOptions pruning;
  pruning.prune_direct_fanout = true;
  ASSERT_TRUE(cluster.StartCoordinator(pruning).ok());
  auto connected = cluster.Connect(400);
  ASSERT_TRUE(connected.ok());
  Client pruned_client = std::move(*connected);

  // ...and an unpruned control coordinator over the very same edges.
  std::vector<EdgeEndpoint> endpoints;
  for (size_t i = 0; i < kEdges; ++i) {
    endpoints.push_back({"127.0.0.1", cluster.edge_port(i)});
  }
  CoordinatorOptions unpruned = DrillCoordinatorOptions();
  unpruned.omd = SmallSystemOptions().omd;
  unpruned.inter = SmallSystemOptions().inter;
  unpruned.boundary_scale = SmallSystemOptions().boundary_scale;
  unpruned.edges = endpoints;
  unpruned.sync_interval_ms = 0;
  Coordinator control(unpruned);
  ASSERT_TRUE(control.Start().ok());
  auto control_connected = Client::Connect("127.0.0.1", control.port());
  ASSERT_TRUE(control_connected.ok());
  Client control_client = std::move(*control_connected);

  Rng rng(23);
  for (int object_class = 0; object_class < 6; ++object_class) {
    SCOPED_TRACE("object class " + std::to_string(object_class));
    const FeatureVector query =
        deployment.MakeQueryFeature(object_class, &rng);
    auto got = pruned_client.DirectQuery(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = control_client.DirectQuery(query);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(got->candidate_svss, want->candidate_svss);
    EXPECT_EQ(got->matched_svss, want->matched_svss);
    EXPECT_EQ(got->total_gpu_ms, want->total_gpu_ms);
    EXPECT_EQ(got->frames_processed, want->frames_processed);
    EXPECT_EQ(got->degraded, want->degraded);
    EXPECT_EQ(got->completed_fraction, want->completed_fraction);
  }

  control_client.Close();
  pruned_client.Close();
  control.Shutdown();
}

// Drill 3 (merge determinism): with every edge behind a delay-only chaos
// proxy, which shard answers first varies per proxy seed — and with edge
// clocks pinned to a SimClock, the travelling deadline budgets can never
// fire. Across response orders and edge thread counts the merged answer
// must be bit-identical: merging is by shard index, never completion order.
TEST(NetClusterTest, MergeIsBitIdenticalAcrossArrivalOrderAndThreadCounts) {
  sim::Deployment deployment(SmallDeployment());
  deployment.observations();
  const size_t kEdges = 3;
  const size_t kReorderSeeds = 3;

  Rng query_rng(13);
  const FeatureVector query = deployment.MakeQueryFeature(1, &query_rng);

  std::optional<core::DirectQueryResult> baseline_direct;
  std::optional<core::ClusteringQueryResult> baseline_similar;

  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    for (size_t seed = 0; seed < kReorderSeeds; ++seed) {
      SCOPED_TRACE("threads " + std::to_string(num_threads) + " seed " +
                   std::to_string(seed));

      SimClock clock;  // never advanced: deadlines travel but cannot fire
      SimClockTimeSource time_source(&clock);
      VideoZillaOptions system_options = SmallSystemOptions();
      system_options.num_threads = num_threads;
      system_options.time_source = &time_source;

      TestCluster cluster(&deployment, kEdges, system_options);
      ASSERT_TRUE(cluster.StartEdges().ok());

      // One delay-only proxy per edge: frames arrive intact but late, per
      // a seed that changes which leg completes first.
      std::vector<std::unique_ptr<ChaosProxy>> proxies;
      std::vector<EdgeEndpoint> endpoints;
      for (size_t i = 0; i < kEdges; ++i) {
        ChaosProxyOptions proxy_options;
        proxy_options.upstream_port = cluster.edge_port(i);
        proxy_options.chunk_bytes = 512;
        proxy_options.faults.seed = 1'000 * (seed + 1) + i;
        proxy_options.faults.delay_probability = 0.6;
        proxy_options.faults.delay_ms = 3;
        proxies.push_back(std::make_unique<ChaosProxy>(proxy_options));
        ASSERT_TRUE(proxies.back()->Start().ok());
        endpoints.push_back({"127.0.0.1", proxies.back()->port()});
      }
      ASSERT_TRUE(cluster.StartCoordinator({}, endpoints).ok());
      auto connected = cluster.Connect(500 + seed);
      ASSERT_TRUE(connected.ok());
      Client client = std::move(*connected);

      core::QueryConstraints constraints;
      constraints.deadline_ms = 60'000;
      auto direct = client.DirectQuery(query, constraints);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_FALSE(direct->degraded);
      EXPECT_FALSE(direct->timed_out);
      EXPECT_EQ(direct->completed_fraction, 1.0);

      if (!baseline_direct.has_value()) {
        baseline_direct = *direct;
        ASSERT_FALSE(baseline_direct->candidate_svss.empty());
      } else {
        ExpectDirectEq(*direct, *baseline_direct);
      }

      auto similar = client.ClusteringQuery(
          baseline_direct->candidate_svss.front(), constraints);
      ASSERT_TRUE(similar.ok()) << similar.status().ToString();
      if (!baseline_similar.has_value()) {
        baseline_similar = *similar;
      } else {
        ExpectClusteringEq(*similar, *baseline_similar);
      }

      client.Close();
      for (auto& proxy : proxies) proxy->Shutdown();
    }
  }
}

// Drill 4: the coordinator is a read-only query plane — ingest, camera
// lifecycle, snapshots and the edge-to-edge replication RPCs are all
// refused with kFailedPrecondition (and the connection survives the
// refusal: it is an RPC error, not a protocol violation).
TEST(NetClusterTest, CoordinatorRefusesMutatingAndReplicationRpcs) {
  sim::Deployment deployment(SmallDeployment());
  deployment.observations();

  TestCluster cluster(&deployment, 2, SmallSystemOptions());
  ASSERT_TRUE(cluster.StartEdges().ok());
  ASSERT_TRUE(cluster.StartCoordinator().ok());
  auto connected = cluster.Connect(600);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(*connected);

  EXPECT_EQ(client.CameraStart("rogue").code(),
            StatusCode::kFailedPrecondition);
  core::FrameObservation obs = deployment.observations().front();
  EXPECT_EQ(client.IngestFrame(obs).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.SaveSnapshot("/tmp/never-written.vzss").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.WalShip(0, 1, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.RepSync(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.CheckpointFetch().status().code(),
            StatusCode::kFailedPrecondition);

  // The connection is still good: reads keep working after every refusal.
  auto monitor = client.MonitorStats();
  ASSERT_TRUE(monitor.ok()) << monitor.status().ToString();
  EXPECT_EQ(monitor->serving.shards.size(), 2u);

  client.Close();
}

}  // namespace
}  // namespace vz::net
