#include "index/perch_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "clustering/dendrogram_purity.h"
#include "test_util.h"

namespace vz::index {
namespace {

using ::vz::testing::EuclideanPointMetric;
using ::vz::testing::MakeClusteredPoints;

// Euclidean metric whose lower bound is deliberately loose (half the true
// distance) — pruning must still return exact nearest neighbors.
class LooseBoundMetric : public EuclideanPointMetric {
 public:
  using EuclideanPointMetric::EuclideanPointMetric;
  double LowerBound(int a, int b) override {
    return 0.5 * EuclideanPointMetric::LowerBound(a, b);
  }
};

int BruteForceNn(const std::vector<FeatureVector>& points,
                 const std::vector<int>& stored, int target) {
  int best = stored.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (int s : stored) {
    const double d = EuclideanDistance(points[static_cast<size_t>(s)],
                                       points[static_cast<size_t>(target)]);
    if (d < best_dist) {
      best_dist = d;
      best = s;
    }
  }
  return best;
}

TEST(PerchTreeTest, EmptyTreeNearestNeighborFails) {
  EuclideanPointMetric metric({FeatureVector({0.0f})});
  PerchTree tree(&metric, PerchOptions{});
  EXPECT_FALSE(tree.NearestNeighbor(0).ok());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(PerchTreeTest, SingleInsert) {
  EuclideanPointMetric metric({FeatureVector({0.0f}), FeatureVector({1.0f})});
  PerchTree tree(&metric, PerchOptions{});
  ASSERT_TRUE(tree.Insert(0).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate().ok());
  auto nn = tree.NearestNeighbor(1);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(*nn, 0);
}

class PerchRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PerchRandomTest, InvariantsHoldAndNnMatchesBruteForce) {
  auto data = MakeClusteredPoints(4, 15, 6, 12.0, 1.5, GetParam());
  LooseBoundMetric metric(data.points);
  PerchTree tree(&metric, PerchOptions{});
  std::vector<int> stored;
  Rng rng(GetParam() ^ 0xABC);
  std::vector<int> order(data.points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(&order);
  // Hold out the last 10 points as queries.
  const size_t held_out = 10;
  for (size_t i = 0; i + held_out < order.size(); ++i) {
    ASSERT_TRUE(tree.Insert(order[i]).ok());
    stored.push_back(order[i]);
  }
  ASSERT_TRUE(tree.Validate().ok());
  for (size_t i = order.size() - held_out; i < order.size(); ++i) {
    auto nn = tree.NearestNeighbor(order[i]);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(*nn, BruteForceNn(data.points, stored, order[i]));
  }
}

TEST_P(PerchRandomTest, KnnMatchesBruteForce) {
  auto data = MakeClusteredPoints(3, 12, 5, 10.0, 2.0, GetParam());
  LooseBoundMetric metric(data.points);
  PerchTree tree(&metric, PerchOptions{});
  for (size_t i = 1; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  auto knn = tree.KNearestNeighbors(0, 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  // Brute-force ranking.
  std::vector<std::pair<double, int>> ranked;
  for (size_t i = 1; i < data.points.size(); ++i) {
    ranked.emplace_back(EuclideanDistance(data.points[0], data.points[i]),
                        static_cast<int>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*knn)[i], ranked[i].second) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerchRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PerchTreeTest, PrunedSearchSavesDistanceEvals) {
  auto data = MakeClusteredPoints(5, 30, 8, 20.0, 0.5, 99);
  PerchOptions pruned_options;
  pruned_options.enable_pruned_nn = true;
  PerchOptions unpruned_options;
  unpruned_options.enable_pruned_nn = false;

  EuclideanPointMetric pruned_metric(data.points);
  EuclideanPointMetric unpruned_metric(data.points);
  PerchTree pruned(&pruned_metric, pruned_options);
  PerchTree unpruned(&unpruned_metric, unpruned_options);
  for (size_t i = 0; i + 1 < data.points.size(); ++i) {
    ASSERT_TRUE(pruned.Insert(static_cast<int>(i)).ok());
    ASSERT_TRUE(unpruned.Insert(static_cast<int>(i)).ok());
  }
  const int query = static_cast<int>(data.points.size()) - 1;
  pruned_metric.ResetCounters();
  unpruned_metric.ResetCounters();
  auto a = pruned.NearestNeighbor(query);
  auto b = unpruned.NearestNeighbor(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_LT(pruned_metric.num_distance_evals(),
            unpruned_metric.num_distance_evals());
}

TEST(PerchTreeTest, MaskingRotationsImprovePurity) {
  // Adversarial order: interleave clusters so greedy insertion masks.
  auto data = MakeClusteredPoints(4, 12, 6, 18.0, 1.0, 123);
  std::vector<int> order;
  for (size_t k = 0; k < 12; ++k) {
    for (size_t c = 0; c < 4; ++c) {
      order.push_back(static_cast<int>(c * 12 + k));
    }
  }
  auto run = [&data, &order](bool rotations) {
    EuclideanPointMetric metric(data.points);
    PerchOptions options;
    options.enable_masking_rotations = rotations;
    options.enable_balance_rotations = false;
    options.exact_masking_check = true;
    PerchTree tree(&metric, options);
    for (int i : order) EXPECT_TRUE(tree.Insert(i).ok());
    EXPECT_TRUE(tree.Validate().ok());
    auto purity =
        clustering::DendrogramPurity(tree.ToClusterTree(), data.labels);
    EXPECT_TRUE(purity.ok());
    return *purity;
  };
  const double with_rotations = run(true);
  const double without_rotations = run(false);
  EXPECT_GE(with_rotations, without_rotations);
  EXPECT_GT(with_rotations, 0.95);
}

TEST(PerchTreeTest, BalanceRotationsImproveBalance) {
  // Points on a line inserted in order create a caterpillar without balance
  // rotations.
  std::vector<FeatureVector> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back(FeatureVector({static_cast<float>(i)}));
  }
  auto run = [&points](bool balance) {
    EuclideanPointMetric metric(points);
    PerchOptions options;
    options.enable_masking_rotations = false;
    options.enable_balance_rotations = balance;
    PerchTree tree(&metric, options);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_TRUE(tree.Insert(static_cast<int>(i)).ok());
    }
    EXPECT_TRUE(tree.Validate().ok());
    return std::make_pair(tree.Depth(), tree.AverageBalance());
  };
  const auto [depth_plain, balance_plain] = run(false);
  const auto [depth_rotated, balance_rotated] = run(true);
  EXPECT_LE(depth_rotated, depth_plain);
  EXPECT_GE(balance_rotated, balance_plain);
}

TEST(PerchTreeTest, ExtractClustersRecoversLabels) {
  auto data = MakeClusteredPoints(3, 10, 6, 25.0, 0.4, 321);
  EuclideanPointMetric metric(data.points);
  PerchOptions options;
  options.exact_masking_check = true;
  PerchTree tree(&metric, options);
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  const auto clusters = tree.ExtractClusters(3);
  ASSERT_EQ(clusters.size(), 3u);
  for (const auto& cluster : clusters) {
    ASSERT_FALSE(cluster.empty());
    const int label = data.labels[static_cast<size_t>(cluster.front())];
    for (int item : cluster) {
      EXPECT_EQ(data.labels[static_cast<size_t>(item)], label);
    }
  }
}

TEST(PerchTreeTest, ExtractClustersClampsToLeafCount) {
  EuclideanPointMetric metric(
      {FeatureVector({0.0f}), FeatureVector({1.0f}), FeatureVector({2.0f})});
  PerchTree tree(&metric, PerchOptions{});
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tree.Insert(i).ok());
  EXPECT_EQ(tree.ExtractClusters(10).size(), 3u);
  EXPECT_EQ(tree.ExtractClusters(1).size(), 1u);
}

TEST(PerchTreeTest, ToClusterTreeIsValidAndComplete) {
  auto data = MakeClusteredPoints(2, 10, 4, 10.0, 1.0, 555);
  EuclideanPointMetric metric(data.points);
  PerchTree tree(&metric, PerchOptions{});
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  auto exported = tree.ToClusterTree();
  EXPECT_TRUE(exported.Validate().ok());
  EXPECT_EQ(exported.num_leaves(), data.points.size());
  auto items = exported.LeafItemsUnder(exported.root());
  std::sort(items.begin(), items.end());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i], static_cast<int>(i));
  }
}

TEST(PerchTreeTest, StatsAreTracked) {
  auto data = MakeClusteredPoints(2, 8, 4, 10.0, 1.0, 777);
  EuclideanPointMetric metric(data.points);
  PerchTree tree(&metric, PerchOptions{});
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  EXPECT_EQ(tree.stats().insertions, data.points.size());
  EXPECT_EQ(tree.stats().nn_searches, data.points.size() - 1);
}

}  // namespace
}  // namespace vz::index
