// Deterministic fault injection end to end: the injector's ledger must
// explain the system's ingestion counters exactly — drops, duplicates,
// reorders, corrupted features, stalls, restarts — and the full drill
// (faulty ingest -> degraded queries -> torn snapshot -> salvage ->
// restore) must come out bit-accounted.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/videozilla.h"
#include "io/svs_snapshot.h"
#include "sim/dataset.h"
#include "sim/fault_injector.h"

namespace vz {
namespace {

using core::CameraHealth;
using core::CameraId;
using core::FrameObservation;
using core::VideoZilla;
using core::VideoZillaOptions;
using sim::FaultInjector;
using sim::FaultInjectorOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

FrameObservation SimpleFrame(const CameraId& camera, int64_t ts_ms,
                             int64_t frame_id) {
  FrameObservation frame;
  frame.camera = camera;
  frame.timestamp_ms = ts_ms;
  frame.frame_id = frame_id;
  core::DetectedObject object;
  object.feature = FeatureVector({1.0f, 2.0f, 3.0f});
  frame.objects.push_back(object);
  return frame;
}

std::vector<FrameObservation> SimpleStream(size_t n) {
  std::vector<FrameObservation> frames;
  for (size_t i = 0; i < n; ++i) {
    frames.push_back(
        SimpleFrame("cam", 1'000 * static_cast<int64_t>(i + 1),
                    static_cast<int64_t>(i)));
  }
  return frames;
}

TEST(FaultInjectorTest, SameSeedSameFaults) {
  FaultInjectorOptions options;
  options.seed = 77;
  options.drop_probability = 0.2;
  options.duplicate_probability = 0.1;
  options.reorder_probability = 0.1;
  options.nan_probability = 0.1;

  auto run = [&options] {
    FaultInjector injector(options);
    std::vector<std::pair<int64_t, int64_t>> delivered;  // (ts, id)
    for (const FrameObservation& frame : SimpleStream(200)) {
      for (const FrameObservation& out : injector.Transform(frame)) {
        delivered.emplace_back(out.timestamp_ms, out.frame_id);
      }
    }
    for (const FrameObservation& out : injector.Drain()) {
      delivered.emplace_back(out.timestamp_ms, out.frame_id);
    }
    return std::make_pair(delivered, injector.ledger().frames_dropped);
  };
  EXPECT_EQ(run(), run());

  options.seed = 78;  // a different seed produces a different fault pattern
  FaultInjector other(options);
  uint64_t delivered = 0;
  for (const FrameObservation& frame : SimpleStream(200)) {
    delivered += other.Transform(frame).size();
  }
  EXPECT_NE(delivered + other.ledger().frames_dropped, 0u);
}

TEST(FaultInjectorTest, DropEverything) {
  FaultInjectorOptions options;
  options.drop_probability = 1.0;
  FaultInjector injector(options);
  for (const FrameObservation& frame : SimpleStream(50)) {
    EXPECT_TRUE(injector.Transform(frame).empty());
  }
  EXPECT_TRUE(injector.Drain().empty());
  EXPECT_EQ(injector.ledger().frames_seen, 50u);
  EXPECT_EQ(injector.ledger().frames_dropped, 50u);
  EXPECT_EQ(injector.ledger().frames_delivered, 0u);
}

TEST(FaultInjectorTest, ConservationLawHolds) {
  FaultInjectorOptions options;
  options.seed = 11;
  options.drop_probability = 0.15;
  options.duplicate_probability = 0.15;
  options.reorder_probability = 0.15;
  options.detector_dropout_probability = 0.1;
  options.stalls.push_back({"cam", 30'000, 60'000});
  FaultInjector injector(options);
  uint64_t emitted = 0;
  for (const FrameObservation& frame : SimpleStream(300)) {
    emitted += injector.Transform(frame).size();
  }
  emitted += injector.Drain().size();
  const FaultInjector::Ledger& ledger = injector.ledger();
  EXPECT_EQ(ledger.frames_seen, 300u);
  EXPECT_EQ(ledger.frames_delivered, emitted);
  // Every frame is delivered, dropped or stalled; duplicates and replays
  // add extra deliveries on top.
  EXPECT_EQ(ledger.frames_delivered,
            ledger.frames_seen - ledger.frames_dropped -
                ledger.frames_stalled + ledger.frames_duplicated +
                ledger.restart_replays);
  EXPECT_GT(ledger.frames_stalled, 0u);
}

TEST(FaultInjectorTest, DuplicatesMatchReceiverCounter) {
  FaultInjectorOptions options;
  options.duplicate_probability = 1.0;
  FaultInjector injector(options);
  VideoZillaOptions vz_options;
  vz_options.enable_keyframe_selection = false;
  VideoZilla system(vz_options);
  ASSERT_TRUE(system.CameraStart("cam").ok());
  for (const FrameObservation& frame : SimpleStream(40)) {
    for (const FrameObservation& out : injector.Transform(frame)) {
      ASSERT_TRUE(system.IngestFrame(out).ok());
    }
  }
  EXPECT_EQ(injector.ledger().frames_duplicated, 40u);
  EXPECT_EQ(system.ingest_stats().duplicates_dropped, 40u);
  EXPECT_EQ(system.ingest_stats().out_of_order_dropped, 0u);
}

TEST(FaultInjectorTest, ReordersMatchReceiverCounter) {
  FaultInjectorOptions options;
  options.reorder_probability = 1.0;
  FaultInjector injector(options);
  VideoZillaOptions vz_options;
  vz_options.enable_keyframe_selection = false;
  vz_options.ingest.reorder_tolerance_ms = 5'000;
  VideoZilla system(vz_options);
  ASSERT_TRUE(system.CameraStart("cam").ok());
  for (const FrameObservation& frame : SimpleStream(41)) {
    for (const FrameObservation& out : injector.Transform(frame)) {
      ASSERT_TRUE(system.IngestFrame(out).ok());
    }
  }
  for (const FrameObservation& out : injector.Drain()) {
    ASSERT_TRUE(system.IngestFrame(out).ok());
  }
  // With every frame rolling "reorder", frames alternate held/released:
  // 20 late releases plus one drained leftover.
  EXPECT_EQ(injector.ledger().frames_reordered, 20u);
  EXPECT_EQ(system.ingest_stats().out_of_order_dropped,
            injector.ledger().frames_reordered);
  EXPECT_EQ(system.ingest_stats().frames_offered,
            injector.ledger().frames_delivered);
}

TEST(FaultInjectorTest, DetectorDropoutDeliversObjectlessFrames) {
  FaultInjectorOptions options;
  options.detector_dropout_probability = 1.0;
  FaultInjector injector(options);
  VideoZillaOptions vz_options;
  vz_options.enable_keyframe_selection = false;
  VideoZilla system(vz_options);
  ASSERT_TRUE(system.CameraStart("cam").ok());
  for (const FrameObservation& frame : SimpleStream(30)) {
    for (const FrameObservation& out : injector.Transform(frame)) {
      EXPECT_TRUE(out.objects.empty());
      ASSERT_TRUE(system.IngestFrame(out).ok());
    }
  }
  EXPECT_EQ(injector.ledger().detector_dropouts, 30u);
  EXPECT_EQ(system.ingest_stats().features_extracted, 0u);
  EXPECT_EQ(system.ingest_stats().objects_quarantined, 0u);
  EXPECT_EQ(system.camera_ingest_stats("cam")->frames_accepted, 30u);
}

TEST(FaultInjectorTest, RestartReplaysLandInDuplicateCounter) {
  FaultInjectorOptions options;
  options.restarts.push_back({"cam", 10'500});
  options.restarts.push_back({"cam", 20'500});
  FaultInjector injector(options);
  VideoZillaOptions vz_options;
  vz_options.enable_keyframe_selection = false;
  VideoZilla system(vz_options);
  ASSERT_TRUE(system.CameraStart("cam").ok());
  for (const FrameObservation& frame : SimpleStream(30)) {
    for (const FrameObservation& out : injector.Transform(frame)) {
      ASSERT_TRUE(system.IngestFrame(out).ok());
    }
  }
  EXPECT_EQ(injector.ledger().restart_replays, 2u);
  EXPECT_EQ(system.ingest_stats().duplicates_dropped, 2u);
}

TEST(FaultInjectorTest, FileFaultHelpersValidateInput) {
  const std::string path = TempPath("filefault.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("0123456789", f);
    std::fclose(f);
  }
  EXPECT_FALSE(FaultInjector::TruncateFile(path, 11).ok());
  ASSERT_TRUE(FaultInjector::TruncateFile(path, 4).ok());
  ASSERT_TRUE(FaultInjector::FlipBits(path, 2, 5).ok());
  EXPECT_FALSE(FaultInjector::TruncateFile("/no/such/file", 0).ok());
  EXPECT_FALSE(FaultInjector::FlipBits("/no/such/file", 1, 5).ok());
  ASSERT_TRUE(FaultInjector::TruncateFile(path, 0).ok());
  EXPECT_FALSE(FaultInjector::FlipBits(path, 1, 5).ok());  // now empty
  std::remove(path.c_str());
}

// The acceptance drill: a seeded multi-fault run over a simulated
// deployment. Every counter must match the injector's ledger exactly, the
// stalled camera must be excluded from queries (and only it), a torn
// snapshot must salvage to a valid prefix, and a clean snapshot must
// restore into a fresh healthy instance.
TEST(FaultInjectionDrillTest, SeededEndToEndDrillIsExactlyAccounted) {
  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = 1;
  dep_options.highway_cameras = 1;
  dep_options.train_stations = 1;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 60'000;
  dep_options.fps = 1.0;
  dep_options.feature_dim = 32;
  dep_options.seed = 13;
  sim::Deployment deployment(dep_options);
  ASSERT_GE(deployment.cameras().size(), 2u);
  const CameraId stalled_camera = deployment.cameras()[0].camera;
  const CameraId restarted_camera = deployment.cameras()[1].camera;

  FaultInjectorOptions fault_options;
  fault_options.seed = 2026;
  fault_options.drop_probability = 0.05;
  fault_options.duplicate_probability = 0.03;
  fault_options.reorder_probability = 0.03;
  fault_options.nan_probability = 0.02;
  fault_options.inf_probability = 0.01;
  fault_options.dim_mismatch_probability = 0.01;
  fault_options.detector_dropout_probability = 0.02;
  // One camera dies at 20 s and never comes back; another restarts mid-run.
  fault_options.stalls.push_back({stalled_camera, 20'000, 1'000'000});
  fault_options.restarts.push_back({restarted_camera, 30'000});
  FaultInjector injector(fault_options);

  VideoZillaOptions options;
  options.segmenter.t_max_ms = 15'000;
  options.enable_keyframe_selection = false;
  options.ingest.reorder_tolerance_ms = 10'000;
  options.ingest.stall_threshold_ms = 30'000;
  options.ingest.expected_feature_dim = dep_options.feature_dim;
  VideoZilla system(options);
  for (const auto& info : deployment.cameras()) {
    ASSERT_TRUE(system.CameraStart(info.camera).ok());
  }
  for (const FrameObservation& frame : deployment.observations()) {
    for (const FrameObservation& out : injector.Transform(frame)) {
      ASSERT_TRUE(system.IngestFrame(out).ok());
    }
  }
  for (const FrameObservation& out : injector.Drain()) {
    ASSERT_TRUE(system.IngestFrame(out).ok());
  }
  ASSERT_TRUE(system.Flush().ok());

  // --- Ledger-exact accounting. ---
  const FaultInjector::Ledger& ledger = injector.ledger();
  const core::IngestStats& stats = system.ingest_stats();
  EXPECT_EQ(ledger.frames_seen, deployment.observations().size());
  EXPECT_GT(ledger.frames_dropped, 0u);
  EXPECT_GT(ledger.frames_stalled, 0u);
  EXPECT_GT(ledger.frames_reordered, 0u);
  EXPECT_GT(ledger.objects_nan + ledger.objects_inf +
                ledger.objects_dim_mismatch,
            0u);
  EXPECT_EQ(stats.frames_offered, ledger.frames_delivered);
  EXPECT_EQ(stats.duplicates_dropped,
            ledger.frames_duplicated + ledger.restart_replays);
  EXPECT_EQ(stats.out_of_order_dropped, ledger.frames_reordered);
  EXPECT_EQ(stats.frames_rejected,
            stats.duplicates_dropped + stats.out_of_order_dropped);
  EXPECT_EQ(stats.objects_quarantined,
            ledger.objects_nan + ledger.objects_inf +
                ledger.objects_dim_mismatch);

  // --- No corrupted feature leaked into the store. ---
  for (core::SvsId id : system.svs_store().AllIds()) {
    auto svs = system.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    for (size_t i = 0; i < (*svs)->features().size(); ++i) {
      const FeatureVector& v = (*svs)->features().vector(i);
      EXPECT_EQ(v.dim(), dep_options.feature_dim);
      EXPECT_TRUE(core::FeatureIsFinite(v));
    }
  }

  // --- Health: exactly the stalled camera is stalled. ---
  for (const auto& [camera, health] : system.CameraHealthReport()) {
    if (camera == stalled_camera) {
      EXPECT_EQ(health, CameraHealth::kStalled) << camera;
    } else {
      EXPECT_NE(health, CameraHealth::kStalled) << camera;
    }
  }

  // --- Queries degrade gracefully, excluding only the stalled camera. ---
  FeatureVector probe;
  for (core::SvsId id : system.svs_store().AllIds()) {
    auto svs = system.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    if ((*svs)->camera() != stalled_camera) {
      probe = (*svs)->features().vector(0);
      break;
    }
  }
  ASSERT_GT(probe.dim(), 0u);
  auto direct = system.DirectQuery(probe);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->degraded);
  EXPECT_EQ(direct->excluded_cameras,
            std::vector<CameraId>{stalled_camera});
  for (core::SvsId id : direct->candidate_svss) {
    auto svs = system.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_NE((*svs)->camera(), stalled_camera);
  }

  // --- Crash-safe persistence: torn snapshot salvages, clean restores. ---
  const std::string clean_path = TempPath("drill_clean.vzss");
  const std::string torn_path = TempPath("drill_torn.vzss");
  ASSERT_TRUE(io::SaveSvsStore(system.svs_store(), clean_path).ok());
  ASSERT_TRUE(io::SaveSvsStore(system.svs_store(), torn_path).ok());
  size_t snapshot_bytes = 0;
  {
    std::FILE* f = std::fopen(clean_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    snapshot_bytes = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
  }
  ASSERT_TRUE(
      FaultInjector::TruncateFile(torn_path, snapshot_bytes * 7 / 10).ok());

  core::SvsStore strict;
  EXPECT_FALSE(io::LoadSvsStore(torn_path, &strict).ok());
  EXPECT_EQ(strict.size(), 0u);

  core::SvsStore salvaged;
  io::SnapshotLoadOptions salvage_options;
  salvage_options.salvage = true;
  io::SnapshotLoadReport report;
  ASSERT_TRUE(
      io::LoadSvsStore(torn_path, &salvaged, salvage_options, &report).ok());
  EXPECT_TRUE(report.salvaged);
  EXPECT_GT(report.records_loaded, 0u);
  EXPECT_LT(report.records_loaded, system.svs_store().size());
  EXPECT_EQ(salvaged.size(), report.records_loaded);

  core::SvsStore clean;
  ASSERT_TRUE(io::LoadSvsStore(clean_path, &clean).ok());
  VideoZilla restored(options);
  ASSERT_TRUE(restored.RestoreFromSvsStore(clean).ok());
  EXPECT_EQ(restored.svs_store().size(), system.svs_store().size());
  // Restore is a restart: the stall clock resets, every camera serves again.
  auto restored_query = restored.DirectQuery(probe);
  ASSERT_TRUE(restored_query.ok());
  EXPECT_FALSE(restored_query->degraded);
  EXPECT_TRUE(restored_query->excluded_cameras.empty());
  EXPECT_GE(restored_query->candidate_svss.size(),
            direct->candidate_svss.size());

  std::remove(clean_path.c_str());
  std::remove(torn_path.c_str());
}

}  // namespace
}  // namespace vz
