#include "clustering/cluster_tree.h"

#include <gtest/gtest.h>

#include "clustering/dendrogram_purity.h"

namespace vz::clustering {
namespace {

ClusterTree MakeCaterpillar(const std::vector<int>& items) {
  // ((..((0, 1), 2), ...), n-1)
  ClusterTree tree;
  int current = tree.AddLeaf(items[0]);
  for (size_t i = 1; i < items.size(); ++i) {
    const int leaf = tree.AddLeaf(items[i]);
    current = tree.AddInternal({current, leaf});
  }
  tree.SetRoot(current);
  return tree;
}

TEST(ClusterTreeTest, LeafItemsUnderRoot) {
  ClusterTree tree = MakeCaterpillar({5, 9, 3});
  EXPECT_TRUE(tree.Validate().ok());
  auto items = tree.LeafItemsUnder(tree.root());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<int>{3, 5, 9}));
  EXPECT_EQ(tree.num_leaves(), 3u);
}

TEST(ClusterTreeTest, ValidateCatchesMissingRoot) {
  ClusterTree tree;
  tree.AddLeaf(0);
  EXPECT_FALSE(tree.Validate().ok());  // root never set
}

TEST(ClusterTreeTest, ValidateCatchesUnreachableNodes) {
  ClusterTree tree;
  const int a = tree.AddLeaf(0);
  tree.AddLeaf(1);  // never attached
  tree.SetRoot(a);
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(ClusterTreeTest, EmptyTreeIsValid) {
  ClusterTree tree;
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(DendrogramPurityTest, PerfectTreeHasPurityOne) {
  // ((0, 1), (2, 3)) with labels {0, 0, 1, 1}.
  ClusterTree tree;
  const int l0 = tree.AddLeaf(0);
  const int l1 = tree.AddLeaf(1);
  const int l2 = tree.AddLeaf(2);
  const int l3 = tree.AddLeaf(3);
  const int a = tree.AddInternal({l0, l1});
  const int b = tree.AddInternal({l2, l3});
  tree.SetRoot(tree.AddInternal({a, b}));
  auto purity = DendrogramPurity(tree, {0, 0, 1, 1});
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(DendrogramPurityTest, MixedTreeScoresBelowOne) {
  // ((0, 2), (1, 3)) with labels {0, 0, 1, 1}: same-label pairs only meet
  // at the root, where the purity is 1/2.
  ClusterTree tree;
  const int l0 = tree.AddLeaf(0);
  const int l2 = tree.AddLeaf(2);
  const int l1 = tree.AddLeaf(1);
  const int l3 = tree.AddLeaf(3);
  const int a = tree.AddInternal({l0, l2});
  const int b = tree.AddInternal({l1, l3});
  tree.SetRoot(tree.AddInternal({a, b}));
  auto purity = DendrogramPurity(tree, {0, 0, 1, 1});
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 0.5);
}

TEST(DendrogramPurityTest, HandCheckedCaterpillar) {
  // Caterpillar (((0,1),2),3) with labels {0, 1, 0, 1}.
  // Pairs: (0,2): LCA covers {0,1,2}, purity 2/3. (1,3): LCA = root covers
  // all 4, purity 2/4. Average = (2/3 + 1/2) / 2 = 7/12.
  ClusterTree tree = MakeCaterpillar({0, 1, 2, 3});
  auto purity = DendrogramPurity(tree, {0, 1, 0, 1});
  ASSERT_TRUE(purity.ok());
  EXPECT_NEAR(*purity, 7.0 / 12.0, 1e-12);
}

TEST(DendrogramPurityTest, NoPairsMeansPurityOne) {
  ClusterTree tree = MakeCaterpillar({0, 1, 2});
  auto purity = DendrogramPurity(tree, {0, 1, 2});  // all distinct labels
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(DendrogramPurityTest, RejectsNegativeLabels) {
  ClusterTree tree = MakeCaterpillar({0, 1});
  EXPECT_FALSE(DendrogramPurity(tree, {0, -1}).ok());
}

}  // namespace
}  // namespace vz::clustering
