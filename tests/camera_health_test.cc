// Camera health state machine and its effect on ingestion and queries:
// stall detection and recovery, degradation via accumulated faults, the
// reorder/duplicate guard, and graceful query degradation (partial answers
// with the excluded cameras reported, never errors).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/videozilla.h"

namespace vz::core {
namespace {

VideoZillaOptions GuardedOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 10'000;
  options.enable_keyframe_selection = false;
  options.ingest.reorder_tolerance_ms = 2'000;
  options.ingest.stall_threshold_ms = 30'000;
  options.ingest.degraded_fault_fraction = 0.2;
  options.ingest.degraded_min_frames = 5;
  options.ingest.expected_feature_dim = 4;
  return options;
}

FrameObservation MakeFrame(const CameraId& camera, int64_t ts_ms,
                           int64_t frame_id, float value = 1.0f) {
  FrameObservation frame;
  frame.camera = camera;
  frame.timestamp_ms = ts_ms;
  frame.frame_id = frame_id;
  DetectedObject object;
  object.feature = FeatureVector({value, value + 1, value + 2, value + 3});
  frame.objects.push_back(object);
  return frame;
}

TEST(CameraHealthTest, FreshCameraIsHealthy) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  auto health = system.camera_health("cam");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, CameraHealth::kHealthy);
  EXPECT_FALSE(system.camera_health("unknown").ok());
}

TEST(CameraHealthTest, SilenceBeyondThresholdStallsAndRecoveryHeals) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 1'000, 1)).ok());
  EXPECT_EQ(*system.camera_health("cam"), CameraHealth::kHealthy);

  // The clock advances (other feeds, wall clock) but "cam" stays silent.
  system.AdvanceTime(40'000);
  EXPECT_EQ(*system.camera_health("cam"), CameraHealth::kStalled);

  // Frames resume: the stall heals without intervention.
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 41'000, 2)).ok());
  EXPECT_EQ(*system.camera_health("cam"), CameraHealth::kHealthy);
}

TEST(CameraHealthTest, NeverIngestedCameraStallsFromItsStartTime) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("mute").ok());
  system.AdvanceTime(31'000);
  EXPECT_EQ(*system.camera_health("mute"), CameraHealth::kStalled);
}

TEST(CameraHealthTest, AccumulatedQuarantinesDegrade) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  // 10 frames, 4 of them carrying a NaN feature: fault fraction 0.4 > 0.2.
  for (int i = 0; i < 10; ++i) {
    FrameObservation frame = MakeFrame("cam", 1'000 * (i + 1), i);
    if (i % 3 == 0) {
      frame.objects[0].feature[2] = std::numeric_limits<float>::quiet_NaN();
    }
    ASSERT_TRUE(system.IngestFrame(frame).ok());
  }
  auto stats = system.camera_ingest_stats("cam");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->frames_offered, 10u);
  EXPECT_EQ(stats->frames_accepted, 10u);
  EXPECT_EQ(stats->objects_quarantined, 4u);
  EXPECT_EQ(*system.camera_health("cam"), CameraHealth::kDegraded);
  // Degraded is a warning, not an exclusion: queries still search the feed.
  auto result = system.DirectQuery(FeatureVector({1, 2, 3, 4}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->degraded);
  EXPECT_TRUE(result->excluded_cameras.empty());
}

TEST(CameraHealthTest, FewEarlyFaultsDoNotDegrade) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  FrameObservation bad = MakeFrame("cam", 1'000, 1);
  bad.objects[0].feature[0] = std::numeric_limits<float>::infinity();
  ASSERT_TRUE(system.IngestFrame(bad).ok());
  // 1 fault / 1 frame is 100%, but below degraded_min_frames it is not
  // diagnostic.
  EXPECT_EQ(*system.camera_health("cam"), CameraHealth::kHealthy);
}

TEST(CameraHealthTest, ReorderWithinToleranceIsQuarantined) {
  VideoZilla system(GuardedOptions());
  ASSERT_TRUE(system.CameraStart("cam").ok());
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 5'000, 1)).ok());
  // 1.5 s late: inside the 2 s window -> dropped + counted, OK returned.
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 3'500, 2)).ok());
  // 2.5 s late: beyond the window -> contract violation.
  EXPECT_EQ(system.IngestFrame(MakeFrame("cam", 2'500, 3)).code(),
            StatusCode::kFailedPrecondition);
  // Exact re-delivery of the newest frame -> duplicate.
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 5'000, 1)).ok());

  auto stats = system.camera_ingest_stats("cam");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->frames_offered, 4u);
  EXPECT_EQ(stats->frames_accepted, 1u);
  EXPECT_EQ(stats->out_of_order_dropped, 1u);
  EXPECT_EQ(stats->duplicates_dropped, 1u);
  EXPECT_EQ(stats->frames_rejected, 2u);
  EXPECT_EQ(system.ingest_stats().frames_rejected, 2u);
}

TEST(CameraHealthTest, DimensionMismatchAndEmptyFeaturesAreQuarantined) {
  VideoZilla system(GuardedOptions());  // expected_feature_dim = 4
  ASSERT_TRUE(system.CameraStart("cam").ok());
  FrameObservation frame = MakeFrame("cam", 1'000, 1);
  DetectedObject wrong_dim;
  wrong_dim.feature = FeatureVector({1.0f, 2.0f});  // dim 2 != 4
  frame.objects.push_back(wrong_dim);
  frame.objects.push_back(DetectedObject{});  // empty feature
  ASSERT_TRUE(system.IngestFrame(frame).ok());
  auto stats = system.camera_ingest_stats("cam");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects_quarantined, 2u);
  EXPECT_EQ(system.ingest_stats().features_extracted, 1u);
}

TEST(CameraHealthTest, LearnedDimensionGuardsLaterMismatches) {
  VideoZillaOptions options = GuardedOptions();
  options.ingest.expected_feature_dim = 0;  // learn from the first object
  VideoZilla system(options);
  ASSERT_TRUE(system.CameraStart("cam").ok());
  ASSERT_TRUE(system.IngestFrame(MakeFrame("cam", 1'000, 1)).ok());  // dim 4
  FrameObservation shrunk = MakeFrame("cam", 2'000, 2);
  shrunk.objects[0].feature = FeatureVector({1.0f});
  ASSERT_TRUE(system.IngestFrame(shrunk).ok());
  EXPECT_EQ(system.camera_ingest_stats("cam")->objects_quarantined, 1u);
}

TEST(CameraHealthTest, QueriesExcludeOnlyStalledCameras) {
  VideoZillaOptions options = GuardedOptions();
  options.segmenter.t_max_ms = 4'000;
  VideoZilla system(options);
  ASSERT_TRUE(system.CameraStart("live").ok());
  ASSERT_TRUE(system.CameraStart("dead").ok());
  // Both cameras produce SVSs early on.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        system.IngestFrame(MakeFrame("dead", 1'000 * (i + 1), i, 5.0f)).ok());
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        system
            .IngestFrame(MakeFrame("live", 1'000 * (i + 1), 100 + i, 5.0f))
            .ok());
  }
  ASSERT_TRUE(system.Flush().ok());
  // "dead" went silent at 12 s; "live" carried the clock to 60 s.
  EXPECT_EQ(*system.camera_health("dead"), CameraHealth::kStalled);
  EXPECT_EQ(*system.camera_health("live"), CameraHealth::kHealthy);

  auto report = system.CameraHealthReport();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].first, "dead");
  EXPECT_EQ(report[0].second, CameraHealth::kStalled);
  EXPECT_EQ(report[1].first, "live");
  EXPECT_EQ(report[1].second, CameraHealth::kHealthy);

  auto direct = system.DirectQuery(FeatureVector({5, 6, 7, 8}));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->degraded);
  EXPECT_EQ(direct->excluded_cameras, std::vector<CameraId>{"dead"});
  for (SvsId id : direct->candidate_svss) {
    auto svs = system.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_EQ((*svs)->camera(), "live");
  }

  auto clustering = system.ClusteringQuery(
      (*system.svs_store().Get(direct->candidate_svss.empty()
                                   ? system.svs_store().AllIds().front()
                                   : direct->candidate_svss.front()))
          ->features());
  ASSERT_TRUE(clustering.ok());
  EXPECT_TRUE(clustering->degraded);
  EXPECT_EQ(clustering->excluded_cameras, std::vector<CameraId>{"dead"});
  for (SvsId id : clustering->similar_svss) {
    auto svs = system.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_EQ((*svs)->camera(), "live");
  }
}

TEST(CameraHealthTest, ConstraintFilteredCamerasAreNotReportedExcluded) {
  VideoZillaOptions options = GuardedOptions();
  options.segmenter.t_max_ms = 4'000;
  VideoZilla system(options);
  ASSERT_TRUE(system.CameraStart("live").ok());
  ASSERT_TRUE(system.CameraStart("dead").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        system.IngestFrame(MakeFrame("dead", 1'000 * (i + 1), i)).ok());
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        system.IngestFrame(MakeFrame("live", 1'000 * (i + 1), 100 + i)).ok());
  }
  ASSERT_TRUE(system.Flush().ok());
  ASSERT_EQ(*system.camera_health("dead"), CameraHealth::kStalled);

  // The caller already scoped the query away from the stalled camera: the
  // answer is complete within its constraints, not degraded.
  QueryConstraints constraints;
  constraints.cameras = std::vector<CameraId>{"live"};
  auto result = system.DirectQuery(FeatureVector({1, 2, 3, 4}), constraints);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->degraded);
  EXPECT_TRUE(result->excluded_cameras.empty());
}

TEST(CameraHealthTest, HealthNamesAreStable) {
  EXPECT_EQ(CameraHealthToString(CameraHealth::kHealthy), "healthy");
  EXPECT_EQ(CameraHealthToString(CameraHealth::kDegraded), "degraded");
  EXPECT_EQ(CameraHealthToString(CameraHealth::kStalled), "stalled");
}

}  // namespace
}  // namespace vz::core
