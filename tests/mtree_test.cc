#include "index/mtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace vz::index {
namespace {

using ::vz::testing::EuclideanPointMetric;
using ::vz::testing::MakeClusteredPoints;

std::vector<int> BruteForceKnn(const std::vector<FeatureVector>& points,
                               const std::vector<int>& stored, int target,
                               size_t k) {
  std::vector<std::pair<double, int>> ranked;
  for (int s : stored) {
    ranked.emplace_back(EuclideanDistance(points[static_cast<size_t>(s)],
                                          points[static_cast<size_t>(target)]),
                        s);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> result;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

TEST(MTreeTest, EmptyTreeQueriesFail) {
  EuclideanPointMetric metric({FeatureVector({0.0f})});
  MTree tree(&metric, MTreeOptions{});
  EXPECT_FALSE(tree.KNearestNeighbors(0, 1).ok());
  EXPECT_FALSE(tree.RangeQuery(0, 1.0).ok());
}

class MTreeNodeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MTreeNodeSizeTest, KnnMatchesBruteForceAcrossNodeSizes) {
  auto data = MakeClusteredPoints(4, 15, 6, 15.0, 1.5, 31 + GetParam());
  EuclideanPointMetric metric(data.points);
  MTreeOptions options;
  options.max_node_size = GetParam();
  MTree tree(&metric, options);
  std::vector<int> stored;
  for (size_t i = 5; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
    stored.push_back(static_cast<int>(i));
  }
  ASSERT_TRUE(tree.Validate().ok());
  for (int query = 0; query < 5; ++query) {
    auto knn = tree.KNearestNeighbors(query, 7);
    ASSERT_TRUE(knn.ok());
    const auto expected = BruteForceKnn(data.points, stored, query, 7);
    EXPECT_EQ(*knn, expected) << "query " << query;
  }
}

TEST_P(MTreeNodeSizeTest, RangeQueryMatchesBruteForce) {
  auto data = MakeClusteredPoints(3, 12, 4, 12.0, 2.0, 77 + GetParam());
  EuclideanPointMetric metric(data.points);
  MTreeOptions options;
  options.max_node_size = GetParam();
  MTree tree(&metric, options);
  for (size_t i = 1; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  const double radius = 5.0;
  auto result = tree.RangeQuery(0, radius);
  ASSERT_TRUE(result.ok());
  std::vector<int> expected;
  for (size_t i = 1; i < data.points.size(); ++i) {
    if (EuclideanDistance(data.points[0], data.points[i]) <= radius) {
      expected.push_back(static_cast<int>(i));
    }
  }
  std::sort(result->begin(), result->end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*result, expected);
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, MTreeNodeSizeTest,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(MTreeTest, GrowsInHeightAndStaysValid) {
  auto data = MakeClusteredPoints(1, 200, 3, 0.0, 5.0, 11);
  EuclideanPointMetric metric(data.points);
  MTreeOptions options;
  options.max_node_size = 4;
  MTree tree(&metric, options);
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GE(tree.Height(), 3u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(MTreeTest, SelfQueryReturnsSelfFirst) {
  auto data = MakeClusteredPoints(2, 10, 4, 10.0, 1.0, 13);
  EuclideanPointMetric metric(data.points);
  MTree tree(&metric, MTreeOptions{});
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  auto knn = tree.KNearestNeighbors(3, 1);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ((*knn)[0], 3);
}

}  // namespace
}  // namespace vz::index
