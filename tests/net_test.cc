// Loopback tests of the networked serving layer: a real TCP server and
// clients on 127.0.0.1. The headline contract is transparency — a remote
// ingest-then-query round trip must be bit-identical to the same operations
// in process — plus the serving-specific behaviours: concurrent clients,
// deadline expiry over the wire, connection- and admission-level shedding
// with client backoff, protocol-version negotiation, and graceful-shutdown
// draining of in-flight requests.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/socket.h"
#include "core/videozilla.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "sim/dataset.h"
#include "sim/verifier.h"

namespace vz::net {
namespace {

using core::VideoZilla;
using core::VideoZillaOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 29;
  return options;
}

VideoZillaOptions SmallSystemOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 20'000;
  options.enable_keyframe_selection = false;
  options.ingest.expected_feature_dim = 32;
  return options;
}

// A rig owning one system; either ingested in process or served over TCP.
struct Rig {
  std::unique_ptr<sim::Deployment> deployment;
  std::unique_ptr<VideoZilla> system;
  std::unique_ptr<sim::HeavyModel> heavy;
  std::unique_ptr<sim::SimObjectVerifier> verifier;

  explicit Rig(const VideoZillaOptions& options = SmallSystemOptions()) {
    deployment = std::make_unique<sim::Deployment>(SmallDeployment());
    (void)deployment->observations();
    system = std::make_unique<VideoZilla>(options);
    heavy = std::make_unique<sim::HeavyModel>();
    verifier = std::make_unique<sim::SimObjectVerifier>(
        &deployment->space(), &deployment->log(), heavy.get());
    system->SetVerifier(verifier.get());
  }
};

// Streams the rig's deployment into a server through `client` — the same
// camera-start / per-frame / flush sequence Deployment::IngestAll runs
// in process.
void IngestOverWire(Rig* rig, Client* client) {
  for (const auto& info : rig->deployment->cameras()) {
    ASSERT_TRUE(client->CameraStart(info.camera).ok());
  }
  for (const auto& observation : rig->deployment->observations()) {
    ASSERT_TRUE(client->IngestFrame(observation).ok());
  }
  ASSERT_TRUE(client->Flush().ok());
}

// A verifier that blocks its first Verify call until released; later calls
// pass straight through. Lets tests pin a query mid-flight
// deterministically.
class LatchedVerifier : public core::ObjectVerifier {
 public:
  explicit LatchedVerifier(core::ObjectVerifier* inner) : inner_(inner) {}

  Verification Verify(const core::Svs& svs,
                      const FeatureVector& query_feature) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_seen_) {
        first_seen_ = true;
        entered_ = true;
        entered_cv_.notify_all();
        release_cv_.wait(lock, [this] { return released_; });
      }
    }
    return inner_->Verify(svs, query_feature);
  }

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  core::ObjectVerifier* inner_;
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool first_seen_ = false;
  bool entered_ = false;
  bool released_ = false;
};

TEST(NetTest, RemoteRoundTripBitIdenticalToInProcess) {
  // Two identical worlds: one queried in process, one ingested and queried
  // over TCP. Every result field must match exactly.
  Rig local;
  ASSERT_TRUE(local.deployment->IngestAll(local.system.get()).ok());

  Rig remote;
  ServerOptions server_options;
  server_options.idle_poll_ms = 5;
  Server server(remote.system.get(), server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client_or = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  Client client = std::move(*client_or);
  EXPECT_EQ(client.server_protocol_version(), kProtocolVersion);
  IngestOverWire(&remote, &client);

  // Ingestion state converged identically.
  auto monitor = client.MonitorStats();
  ASSERT_TRUE(monitor.ok());
  const core::IngestStats& local_stats = local.system->ingest_stats();
  EXPECT_EQ(monitor->ingest.frames_offered, local_stats.frames_offered);
  EXPECT_EQ(monitor->ingest.features_extracted,
            local_stats.features_extracted);
  EXPECT_EQ(monitor->ingest.svs_created, local_stats.svs_created);
  EXPECT_EQ(monitor->svs_count, local.system->svs_store().size());
  EXPECT_EQ(monitor->camera_count, local.system->cameras().size());

  // Direct queries agree bit for bit across several object classes.
  Rng local_rng(1);
  Rng remote_rng(1);
  for (int object_class = 0; object_class < 4; ++object_class) {
    const FeatureVector local_query =
        local.deployment->MakeQueryFeature(object_class, &local_rng);
    const FeatureVector remote_query =
        remote.deployment->MakeQueryFeature(object_class, &remote_rng);
    auto in_process = local.system->DirectQuery(local_query);
    ASSERT_TRUE(in_process.ok());
    auto over_wire = client.DirectQuery(remote_query);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    EXPECT_EQ(over_wire->candidate_svss, in_process->candidate_svss);
    EXPECT_EQ(over_wire->matched_svss, in_process->matched_svss);
    EXPECT_EQ(over_wire->total_gpu_ms, in_process->total_gpu_ms);
    EXPECT_EQ(over_wire->bottleneck_camera_gpu_ms,
              in_process->bottleneck_camera_gpu_ms);
    EXPECT_EQ(over_wire->per_camera_gpu_ms, in_process->per_camera_gpu_ms);
    EXPECT_EQ(over_wire->frames_processed, in_process->frames_processed);
    EXPECT_EQ(over_wire->cameras_searched, in_process->cameras_searched);
    EXPECT_EQ(over_wire->degraded, in_process->degraded);
    EXPECT_EQ(over_wire->timed_out, in_process->timed_out);
    EXPECT_EQ(over_wire->completed_fraction, in_process->completed_fraction);
  }

  // Clustering query by id and by map agree too.
  const auto ids = local.system->svs_store().AllIds();
  ASSERT_FALSE(ids.empty());
  auto in_process = local.system->ClusteringQuery(ids[0]);
  ASSERT_TRUE(in_process.ok());
  auto over_wire = client.ClusteringQuery(ids[0]);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
  EXPECT_EQ(over_wire->similar_svss, in_process->similar_svss);
  EXPECT_EQ(over_wire->cameras_contributing,
            in_process->cameras_contributing);
  EXPECT_EQ(over_wire->fast_omd_routed, in_process->fast_omd_routed);
  {
    auto svs = local.system->svs_store().Get(ids[0]);
    ASSERT_TRUE(svs.ok());
    auto by_map_local = local.system->ClusteringQuery((*svs)->features());
    ASSERT_TRUE(by_map_local.ok());
    auto by_map_wire = client.ClusteringQuery((*svs)->features());
    ASSERT_TRUE(by_map_wire.ok());
    EXPECT_EQ(by_map_wire->similar_svss, by_map_local->similar_svss);
  }

  // Metadata agrees for every SVS.
  for (core::SvsId id : ids) {
    auto local_meta = local.system->GetMetaData(id);
    ASSERT_TRUE(local_meta.ok());
    auto wire_meta = client.GetMetaData(id);
    ASSERT_TRUE(wire_meta.ok());
    EXPECT_EQ(wire_meta->camera, local_meta->camera);
    EXPECT_EQ(wire_meta->start_ms, local_meta->start_ms);
    EXPECT_EQ(wire_meta->end_ms, local_meta->end_ms);
    EXPECT_EQ(wire_meta->num_frames, local_meta->num_frames);
  }
  auto missing = client.GetMetaData(999'999);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Camera health agrees.
  auto health = client.CameraHealthReport();
  ASSERT_TRUE(health.ok());
  const auto local_health = local.system->CameraHealthReport();
  ASSERT_EQ(health->size(), local_health.size());
  for (size_t i = 0; i < health->size(); ++i) {
    EXPECT_EQ((*health)[i].camera, local_health[i].first);
    EXPECT_EQ((*health)[i].health, local_health[i].second);
  }

  client.Close();
  server.Shutdown();
}

TEST(NetTest, ConcurrentClientsGetConsistentAnswers) {
  Rig rig;
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  ServerOptions server_options;
  server_options.max_connections = 4;
  server_options.idle_poll_ms = 5;
  Server server(rig.system.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  Rng rng(2);
  const FeatureVector query = rig.deployment->MakeQueryFeature(0, &rng);
  auto expected = rig.system->DirectQuery(query);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 5;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        auto result = client->DirectQuery(query);
        if (!result.ok() ||
            result->matched_svss != expected->matched_svss ||
            result->total_gpu_ms != expected->total_gpu_ms) {
          failures[c] = 2;
          return;
        }
        if (!client->MonitorStats().ok() ||
            !client->QueryLoadStats().ok()) {
          failures[c] = 3;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures, std::vector<int>(kClients, 0));
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.requests_served,
            static_cast<uint64_t>(kClients * kRoundsPerClient));
  server.Shutdown();
}

TEST(NetTest, ExpiredDeadlineYieldsTimedOutPartialOverWire) {
  Rig rig;
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A zero budget is already expired on entry: the wire must carry the
  // deadline out and the timed-out partial result back — never an error.
  Rng rng(3);
  core::QueryConstraints constraints;
  constraints.deadline_ms = 0;
  auto direct =
      client->DirectQuery(rig.deployment->MakeQueryFeature(0, &rng),
                          constraints);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_TRUE(direct->timed_out);
  EXPECT_EQ(direct->completed_fraction, 0.0);
  EXPECT_TRUE(direct->matched_svss.empty());

  const auto ids = rig.system->svs_store().AllIds();
  ASSERT_FALSE(ids.empty());
  auto clustering = client->ClusteringQuery(ids[0], constraints);
  ASSERT_TRUE(clustering.ok());
  EXPECT_TRUE(clustering->timed_out);

  // The server-side load counters saw both timeouts; readable over the wire.
  auto load = client->QueryLoadStats();
  ASSERT_TRUE(load.ok());
  EXPECT_GE(load->timed_out, 2u);
  server.Shutdown();
}

TEST(NetTest, AdmissionShedTravelsAsResourceExhaustedWithRetryAfter) {
  VideoZillaOptions options = SmallSystemOptions();
  options.admission.max_in_flight = 1;
  options.admission.max_queue = 0;
  options.admission.retry_after_hint_ms = 37;
  Rig rig(options);
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  LatchedVerifier latched(rig.verifier.get());
  rig.system->SetVerifier(&latched);

  ServerOptions server_options;
  server_options.max_connections = 4;
  server_options.idle_poll_ms = 5;
  Server server(rig.system.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // A probe drawn from the store guarantees a non-empty candidate set, so
  // the query is certain to enter the (latched) verifier.
  const auto ids = rig.system->svs_store().AllIds();
  ASSERT_FALSE(ids.empty());
  auto probe_svs = rig.system->svs_store().Get(ids[0]);
  ASSERT_TRUE(probe_svs.ok());
  const FeatureVector query = (*probe_svs)->features().vector(0);

  // Client A parks a query inside the verifier, holding the only admission
  // slot.
  std::thread holder([&] {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto result = client->DirectQuery(query);
    EXPECT_TRUE(result.ok());
  });
  latched.WaitEntered();

  // Client B without retries is shed immediately with the admission status.
  {
    ClientOptions no_retry;
    no_retry.max_shed_retries = 0;
    auto client = Client::Connect("127.0.0.1", server.port(), no_retry);
    ASSERT_TRUE(client.ok());
    auto shed = client->DirectQuery(query);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  }

  // Client C retries with backoff seeded by the server's 37 ms hint; once A
  // is released its retry succeeds.
  std::thread retrier([&] {
    ClientOptions retry;
    retry.max_shed_retries = 50;
    retry.backoff_cap_ms = 50;
    retry.backoff_jitter = 0;  // exact backoff arithmetic below
    auto client = Client::Connect("127.0.0.1", server.port(), retry);
    ASSERT_TRUE(client.ok());
    auto result = client->DirectQuery(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(client->call_stats().shed_retries, 1u);
    // The first backoff already honors the wire hint.
    EXPECT_GE(client->call_stats().backoff_ms_total, 37);
  });
  // Hold the latch until C has been shed at least twice (A's shed plus one
  // of C's), then let A finish.
  while (rig.system->query_load_stats().shed < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  latched.Release();
  holder.join();
  retrier.join();
  EXPECT_GE(rig.system->query_load_stats().shed, 2u);
  server.Shutdown();
}

TEST(NetTest, ConnectionShedIsRetryableAndHonorsRetryAfter) {
  Rig rig;
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  ServerOptions server_options;
  server_options.max_connections = 1;
  server_options.shed_retry_after_ms = 21;
  server_options.idle_poll_ms = 5;
  Server server(rig.system.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  auto first = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  // Keep the connection demonstrably live, not just open.
  ASSERT_TRUE(first->MonitorStats().ok());

  // Without retries the second connection is shed at the Hello.
  {
    ClientOptions no_retry;
    no_retry.max_shed_retries = 0;
    auto second = Client::Connect("127.0.0.1", server.port(), no_retry);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  }

  // With retries, the shed client backs off (seeded by the 21 ms wire hint)
  // until the first client leaves, then gets the slot and works.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    first->Close();
  });
  ClientOptions retry;
  retry.max_shed_retries = 50;
  retry.backoff_cap_ms = 40;
  retry.backoff_jitter = 0;  // exact backoff arithmetic below
  auto second = Client::Connect("127.0.0.1", server.port(), retry);
  releaser.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(second->call_stats().shed_retries, 1u);
  EXPECT_GE(second->call_stats().backoff_ms_total, 21);
  EXPECT_TRUE(second->MonitorStats().ok());
  EXPECT_GE(server.stats().connections_shed, 2u);
  server.Shutdown();
}

TEST(NetTest, GracefulShutdownDrainsInFlightRequest) {
  Rig rig;
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  LatchedVerifier latched(rig.verifier.get());
  rig.system->SetVerifier(&latched);
  ServerOptions server_options;
  server_options.idle_poll_ms = 5;
  Server server(rig.system.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // Probe from the store: guarantees candidates, so the query parks in the
  // latched verifier.
  const auto ids = rig.system->svs_store().AllIds();
  ASSERT_FALSE(ids.empty());
  auto probe_svs = rig.system->svs_store().Get(ids[0]);
  ASSERT_TRUE(probe_svs.ok());
  const FeatureVector query = (*probe_svs)->features().vector(0);
  auto client_or = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client_or.ok());
  Client client = std::move(*client_or);

  StatusOr<core::DirectQueryResult> in_flight =
      Status::Internal("not yet run");
  std::thread querier([&] { in_flight = client.DirectQuery(query); });
  latched.WaitEntered();

  // Shutdown must block until the parked query completes and its response
  // is on the wire — not cut the connection under it.
  std::thread shutter([&] { server.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  latched.Release();
  shutter.join();
  querier.join();
  ASSERT_TRUE(in_flight.ok()) << in_flight.status().ToString();
  EXPECT_FALSE(in_flight->candidate_svss.empty());
  EXPECT_EQ(in_flight->completed_fraction, 1.0);
  EXPECT_FALSE(in_flight->timed_out);

  // The listener is gone: new connections are refused outright.
  ClientOptions no_retry;
  no_retry.max_shed_retries = 0;
  no_retry.max_reconnects = 0;
  EXPECT_FALSE(
      Client::Connect("127.0.0.1", server.port(), no_retry).ok());
}

TEST(NetTest, HelloVersionMismatchRejectedWithServerVersion) {
  Rig rig;
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());

  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  io::BinaryWriter hello;
  hello.WriteU32(kProtocolVersion + 7);
  ASSERT_TRUE(WriteFrame(fd->get(), static_cast<uint32_t>(MsgType::kHello),
                         hello.buffer())
                  .ok());
  auto response = ReadFrame(fd->get());
  ASSERT_TRUE(response.ok());
  io::BinaryReader reader(response->payload);
  auto wire_status = DecodeWireStatus(&reader);
  ASSERT_TRUE(wire_status.ok());
  EXPECT_EQ(wire_status->status.code(), StatusCode::kFailedPrecondition);
  // The refusal still reports the server's own version for diagnostics.
  auto server_version = reader.ReadU32();
  ASSERT_TRUE(server_version.ok());
  EXPECT_EQ(*server_version, kProtocolVersion);
  // The connection is closed after the refusal.
  auto next = ReadFrame(fd->get());
  EXPECT_FALSE(next.ok());
  server.Shutdown();
}

TEST(NetTest, RpcBeforeHelloRejectedAndConnectionClosed) {
  Rig rig;
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      WriteFrame(fd->get(), static_cast<uint32_t>(MsgType::kFlush), "").ok());
  auto response = ReadFrame(fd->get());
  ASSERT_TRUE(response.ok());
  io::BinaryReader reader(response->payload);
  auto wire_status = DecodeWireStatus(&reader);
  ASSERT_TRUE(wire_status.ok());
  EXPECT_EQ(wire_status->status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ReadFrame(fd->get()).ok());
  server.Shutdown();
}

TEST(NetTest, MalformedPayloadKeepsConnectionUsable) {
  Rig rig;
  ASSERT_TRUE(rig.deployment->IngestAll(rig.system.get()).ok());
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());

  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  // This test speaks legacy framing throughout, so it must negotiate the
  // lock-step v4 protocol — advertising v5 would switch the server to
  // correlation-id framing after the Hello.
  io::BinaryWriter hello;
  hello.WriteU32(kMinProtocolVersion);
  ASSERT_TRUE(WriteFrame(fd->get(), static_cast<uint32_t>(MsgType::kHello),
                         hello.buffer())
                  .ok());
  ASSERT_TRUE(ReadFrame(fd->get()).ok());

  // A well-framed request whose payload is garbage: answered with
  // kInvalidArgument, connection stays open.
  ASSERT_TRUE(WriteFrame(fd->get(),
                         static_cast<uint32_t>(MsgType::kDirectQuery),
                         "\x01garbage")
                  .ok());
  auto bad = ReadFrame(fd->get());
  ASSERT_TRUE(bad.ok());
  io::BinaryReader bad_reader(bad->payload);
  auto bad_status = DecodeWireStatus(&bad_reader);
  ASSERT_TRUE(bad_status.ok());
  EXPECT_EQ(bad_status->status.code(), StatusCode::kInvalidArgument);

  // The same connection still serves a valid request afterwards.
  ASSERT_TRUE(
      WriteFrame(fd->get(), static_cast<uint32_t>(MsgType::kMonitorStats), "")
          .ok());
  auto good = ReadFrame(fd->get());
  ASSERT_TRUE(good.ok());
  io::BinaryReader good_reader(good->payload);
  auto good_status = DecodeWireStatus(&good_reader);
  ASSERT_TRUE(good_status.ok());
  EXPECT_TRUE(good_status->status.ok());
  server.Shutdown();
}

TEST(NetTest, SnapshotSaveAndLoadRoundTripOverWire) {
  const std::string path = TempPath("net_snapshot.vzss");
  Rig source;
  ASSERT_TRUE(source.deployment->IngestAll(source.system.get()).ok());
  const size_t expected_svss = source.system->svs_store().size();
  Rng rng(6);
  const FeatureVector query = source.deployment->MakeQueryFeature(1, &rng);
  auto expected = source.system->DirectQuery(query);
  ASSERT_TRUE(expected.ok());
  {
    Server server(source.system.get(), {});
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SaveSnapshot(path).ok());
    // A bogus server-local path is an RPC error, not a dead connection.
    EXPECT_FALSE(client->SaveSnapshot("/no/such/dir/x.vzss").ok());
    EXPECT_TRUE(client->MonitorStats().ok());
    server.Shutdown();
  }

  // Restore into a fresh instance over the wire; queries then match the
  // source system exactly.
  Rig restored;
  Server server(restored.system.get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto loaded = client->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, expected_svss);
  EXPECT_FALSE(client->LoadSnapshot("/no/such/file.vzss").ok());
  auto result = client->DirectQuery(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matched_svss, expected->matched_svss);
  EXPECT_EQ(result->total_gpu_ms, expected->total_gpu_ms);
  server.Shutdown();
  std::remove(path.c_str());
}

// --- Backoff arithmetic (pure function, no sockets). ---

TEST(BackoffTest, NoJitterMatchesDoublingWithCap) {
  ClientOptions options;
  options.backoff_floor_ms = 10;
  options.backoff_cap_ms = 100;
  options.backoff_jitter = 0;
  EXPECT_EQ(BackoffDelayMs(options, 0, 0, nullptr), 10);
  EXPECT_EQ(BackoffDelayMs(options, 0, 1, nullptr), 20);
  EXPECT_EQ(BackoffDelayMs(options, 0, 2, nullptr), 40);
  EXPECT_EQ(BackoffDelayMs(options, 0, 3, nullptr), 80);
  EXPECT_EQ(BackoffDelayMs(options, 0, 4, nullptr), 100);  // capped
  EXPECT_EQ(BackoffDelayMs(options, 0, 20, nullptr), 100);
  // A server hint overrides the floor as the base.
  EXPECT_EQ(BackoffDelayMs(options, 37, 0, nullptr), 37);
  EXPECT_EQ(BackoffDelayMs(options, 37, 1, nullptr), 74);
}

TEST(BackoffTest, JitterShrinksWithinBoundsAndIsSeedDeterministic) {
  ClientOptions options;
  options.backoff_floor_ms = 100;
  options.backoff_cap_ms = 1'000;
  options.backoff_jitter = 0.25;
  Rng a(11), b(11), c(12);
  bool saw_difference_between_seeds = false;
  for (size_t attempt = 0; attempt < 8; ++attempt) {
    const int64_t unjittered = BackoffDelayMs(options, 0, attempt, nullptr);
    const int64_t da = BackoffDelayMs(options, 0, attempt, &a);
    const int64_t db = BackoffDelayMs(options, 0, attempt, &b);
    const int64_t dc = BackoffDelayMs(options, 0, attempt, &c);
    // Subtractive: never above the deterministic delay, never below the
    // jitter floor, and the cap stays an honest bound.
    EXPECT_LE(da, unjittered);
    EXPECT_GE(da, static_cast<int64_t>(unjittered * 0.75) - 1);
    EXPECT_LE(da, options.backoff_cap_ms);
    EXPECT_EQ(da, db);  // same seed, same stream
    if (da != dc) saw_difference_between_seeds = true;
  }
  // Two clients with different seeds must desynchronise — that is the whole
  // point of jitter.
  EXPECT_TRUE(saw_difference_between_seeds);
}

// --- Idempotency tokens: exactly-once over raw sockets. ---

// Performs the client side of the Hello exchange on a raw socket. The raw
// tests speak legacy framing throughout, so they negotiate the lock-step
// v4 protocol — advertising v5 would switch the server to correlation-id
// framing after the Hello.
void RawHello(int fd) {
  io::BinaryWriter hello;
  hello.WriteU32(kMinProtocolVersion);
  ASSERT_TRUE(WriteFrame(fd, static_cast<uint32_t>(MsgType::kHello),
                         hello.buffer())
                  .ok());
  auto ack = ReadFrame(fd);
  ASSERT_TRUE(ack.ok());
  io::BinaryReader reader(ack->payload);
  auto status = DecodeWireStatus(&reader);
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(status->status.ok());
}

// Sends one tokened request and returns (decoded status, raw payload).
StatusOr<WireFrame> RawTokenedCall(int fd, MsgType type, uint64_t session,
                                   uint64_t sequence,
                                   const std::string& body = "") {
  io::BinaryWriter payload;
  EncodeIdempotencyToken(&payload, {session, sequence});
  VZ_RETURN_IF_ERROR(WriteFrame(fd, static_cast<uint32_t>(type),
                                payload.buffer() + body));
  return ReadFrame(fd);
}

Status RawStatusOf(const WireFrame& frame) {
  io::BinaryReader reader(frame.payload);
  auto status = DecodeWireStatus(&reader);
  if (!status.ok()) return status.status();
  return status->status;
}

TEST(NetTest, DuplicateMutatingRpcReplayedNotReapplied) {
  Rig rig;
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  RawHello(fd->get());

  io::BinaryWriter body;
  body.WriteString("cam-x");
  auto first = RawTokenedCall(fd->get(), MsgType::kCameraStart, 77, 1,
                              body.buffer());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(RawStatusOf(*first).ok());

  // The duplicate gets the cached response, byte for byte — NOT the
  // "camera already started" error a re-execution would produce.
  auto duplicate = RawTokenedCall(fd->get(), MsgType::kCameraStart, 77, 1,
                                  body.buffer());
  ASSERT_TRUE(duplicate.ok());
  EXPECT_TRUE(RawStatusOf(*duplicate).ok());
  EXPECT_EQ(duplicate->payload, first->payload);
  EXPECT_EQ(server.stats().duplicates_replayed, 1u);

  // A FRESH sequence for the same camera does re-execute — and correctly
  // fails, proving the duplicate above never reached the system.
  auto fresh = RawTokenedCall(fd->get(), MsgType::kCameraStart, 77, 2,
                              body.buffer());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(RawStatusOf(*fresh).code(), StatusCode::kFailedPrecondition);

  // Same story for ingest: a duplicated frame RPC is absorbed at the wire,
  // before the ingestion guard ever sees it.
  const auto& observation = rig.deployment->observations().front();
  ASSERT_TRUE(
      RawStatusOf(*RawTokenedCall(fd->get(), MsgType::kCameraStart, 77, 3,
                                  [&] {
                                    io::BinaryWriter w;
                                    w.WriteString(observation.camera);
                                    return w.buffer();
                                  }()))
          .ok());
  io::BinaryWriter frame_body;
  EncodeFrameObservation(&frame_body, observation);
  for (int send = 0; send < 3; ++send) {
    auto response = RawTokenedCall(fd->get(), MsgType::kIngestFrame, 77, 4,
                                   frame_body.buffer());
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(RawStatusOf(*response).ok());
  }
  EXPECT_EQ(rig.system->ingest_stats().frames_offered, 1u);
  EXPECT_EQ(server.stats().duplicates_replayed, 3u);
  EXPECT_EQ(server.stats().sessions_active, 1u);
  server.Shutdown();
}

TEST(NetTest, DuplicateOlderThanDedupWindowRefused) {
  Rig rig;
  ServerOptions options;
  options.dedup_window = 2;
  Server server(rig.system.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  RawHello(fd->get());

  for (uint64_t seq = 1; seq <= 3; ++seq) {
    auto response = RawTokenedCall(fd->get(), MsgType::kFlush, 9, seq);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(RawStatusOf(*response).ok());
  }
  // Sequence 1 was trimmed out of the 2-deep window: the server can no
  // longer prove exactly-once, so it refuses loudly instead of re-applying.
  auto stale = RawTokenedCall(fd->get(), MsgType::kFlush, 9, 1);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(RawStatusOf(*stale).code(), StatusCode::kFailedPrecondition);
  // Sequence 3 is still inside the window and replays fine.
  auto recent = RawTokenedCall(fd->get(), MsgType::kFlush, 9, 3);
  ASSERT_TRUE(recent.ok());
  EXPECT_TRUE(RawStatusOf(*recent).ok());
  server.Shutdown();
}

TEST(NetTest, MutatingRpcWithoutTokenRejectedButConnectionSurvives) {
  Rig rig;
  Server server(rig.system.get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  RawHello(fd->get());

  // v2 requires a token on every mutating request; a bare payload decodes
  // as a malformed token.
  ASSERT_TRUE(
      WriteFrame(fd->get(), static_cast<uint32_t>(MsgType::kFlush), "").ok());
  auto bare = ReadFrame(fd->get());
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(RawStatusOf(*bare).code(), StatusCode::kInvalidArgument);

  // Session id 0 is reserved ("no token") and rejected too.
  auto zero = RawTokenedCall(fd->get(), MsgType::kFlush, 0, 1);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(RawStatusOf(*zero).code(), StatusCode::kInvalidArgument);

  // The connection is still usable afterwards.
  auto good = RawTokenedCall(fd->get(), MsgType::kFlush, 5, 1);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(RawStatusOf(*good).ok());
  server.Shutdown();
}

// --- Connection supervision. ---

TEST(NetTest, PingKeepsIdleConnectionAliveAndIdleOnesGetEvicted) {
  Rig rig;
  ServerOptions options;
  options.idle_timeout_ms = 60;
  options.eviction_grace_ms = 20;
  options.idle_poll_ms = 5;
  Server server(rig.system.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // A client that pings through a quiet stretch 4x the idle timeout stays
  // connected — no eviction, no reconnect.
  {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 12; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_TRUE(client->Ping().ok());
    }
    EXPECT_TRUE(client->MonitorStats().ok());
    EXPECT_EQ(client->call_stats().reconnects, 0u);
    EXPECT_EQ(client->call_stats().transport_failures, 0u);
    EXPECT_GE(client->call_stats().pings_sent, 12u);
  }
  EXPECT_GE(server.stats().pings_served, 12u);
  EXPECT_EQ(server.stats().connections_evicted_idle, 0u);

  // A silent client is evicted after idle timeout + grace; its next call
  // rides the reconnect path transparently.
  auto idler = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(idler.ok());
  ASSERT_TRUE(idler->MonitorStats().ok());
  while (server.stats().connections_evicted_idle == 0 &&
         server.stats().connections_active > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().connections_evicted_idle, 1u);
  EXPECT_TRUE(idler->MonitorStats().ok());  // reconnected under the hood
  EXPECT_GE(idler->call_stats().reconnects, 1u);
  EXPECT_GE(idler->call_stats().transport_failures, 1u);
  server.Shutdown();
}

TEST(NetTest, SlowClientTricklingAFrameIsEvicted) {
  Rig rig;
  ServerOptions options;
  options.read_timeout_ms = 60;
  options.idle_poll_ms = 5;
  Server server(rig.system.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto fd = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(fd.ok());
  RawHello(fd->get());

  // Send only the first bytes of a valid frame, then stall. Once the first
  // byte arrived, the whole frame must land within read_timeout_ms; a
  // slow-loris trickle must not hold the connection open.
  const std::string frame =
      EncodeFrame(static_cast<uint32_t>(MsgType::kMonitorStats), "");
  ASSERT_TRUE(SendAll(fd->get(), frame.data(), 6).ok());
  auto next = ReadFrame(fd->get(), 2'000);
  EXPECT_FALSE(next.ok());  // server hung up on us without a response
  EXPECT_GE(server.stats().connections_evicted_slow, 1u);
  server.Shutdown();
}

TEST(NetTest, ConnectionRegistryTracksTrafficAndTravelsInMonitorStats) {
  Rig rig;
  ServerOptions options;
  options.idle_poll_ms = 5;
  Server server(rig.system.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Flush().ok());  // mutating: creates a session
  ASSERT_TRUE(client->Ping().ok());

  const std::vector<ConnectionInfo> registry = server.connection_stats();
  ASSERT_EQ(registry.size(), 1u);
  EXPECT_GE(registry[0].rpcs, 3u);  // hello + flush + ping
  EXPECT_GT(registry[0].bytes_in, 0u);
  EXPECT_GT(registry[0].bytes_out, 0u);
  EXPECT_GE(registry[0].age_ms, registry[0].idle_ms);

  // The same registry travels inside MonitorStats for remote operators.
  auto monitor = client->MonitorStats();
  ASSERT_TRUE(monitor.ok());
  EXPECT_GE(monitor->serving.connections_accepted, 1u);
  EXPECT_GE(monitor->serving.pings_served, 1u);
  EXPECT_EQ(monitor->serving.sessions_active, 1u);
  ASSERT_EQ(monitor->serving.connections.size(), 1u);
  EXPECT_GE(monitor->serving.connections[0].rpcs, 3u);
  EXPECT_GT(monitor->serving.connections[0].bytes_in, 0u);
  server.Shutdown();
  EXPECT_EQ(server.stats().connections_active, 0u);
}

}  // namespace
}  // namespace vz::net
