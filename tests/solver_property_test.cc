// Deeper solver properties: exact EMD against an independent brute-force
// oracle, scale laws, and stress shapes the basic unit tests don't touch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "solver/emd.h"

namespace vz::solver {
namespace {

// For equal-cardinality uniform weights, EMD equals the optimal assignment
// cost / n (Birkhoff: the transportation polytope's vertices are
// permutation matrices). Brute-force all permutations as an oracle.
double AssignmentOracle(const std::vector<std::vector<double>>& cost) {
  const size_t n = cost.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best / static_cast<double>(n);
}

class EmdOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmdOracleTest, ExactEmdMatchesAssignmentOracle) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.UniformUint64(4);  // up to 5! = 120 permutations
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.UniformDouble(0.0, 10.0);
  }
  std::vector<double> w(n, 1.0);
  auto emd = ExactEmd(w, w, [&cost](size_t i, size_t j) {
    return cost[i][j];
  });
  ASSERT_TRUE(emd.ok());
  EXPECT_NEAR(emd->distance, AssignmentOracle(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(EmdScalingTest, DistanceScalesWithGroundDistance) {
  // EMD is linear in the ground distance: scaling every d(i,j) by c scales
  // the result by c.
  Rng rng(31);
  const size_t n = 6;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.UniformDouble(0.0, 5.0);
  }
  std::vector<double> w(n, 1.0);
  auto base = ExactEmd(w, w, [&](size_t i, size_t j) { return cost[i][j]; });
  auto scaled =
      ExactEmd(w, w, [&](size_t i, size_t j) { return 3.0 * cost[i][j]; });
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(scaled.ok());
  EXPECT_NEAR(scaled->distance, 3.0 * base->distance, 1e-9);
}

TEST(EmdScalingTest, MassConcentrationIsEquivalentToDuplication) {
  // One supply of weight 2 behaves like two coincident supplies of weight 1.
  std::vector<double> b_points = {0.0, 10.0};
  auto ground_single = [&](size_t, size_t j) {
    return std::fabs(4.0 - b_points[j]);
  };
  auto single = ExactEmd({2.0}, {1.0, 1.0}, ground_single);
  auto ground_double = [&](size_t, size_t j) {
    return std::fabs(4.0 - b_points[j]);
  };
  auto doubled = ExactEmd({1.0, 1.0}, {1.0, 1.0}, ground_double);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(doubled.ok());
  EXPECT_NEAR(single->distance, doubled->distance, 1e-9);
}

TEST(EmdStressTest, HighlyAsymmetricCardinalities) {
  // 1 supply vs 50 demands and vice versa.
  Rng rng(37);
  std::vector<double> points(50);
  for (double& p : points) p = rng.UniformDouble(0.0, 100.0);
  std::vector<double> many(50, 1.0);
  const double anchor = 50.0;
  auto forward = ExactEmd({1.0}, many, [&](size_t, size_t j) {
    return std::fabs(anchor - points[j]);
  });
  auto backward = ExactEmd(many, {1.0}, [&](size_t i, size_t) {
    return std::fabs(points[i] - anchor);
  });
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  // Both equal the mean absolute deviation from the anchor.
  double expected = 0.0;
  for (double p : points) expected += std::fabs(anchor - p) / 50.0;
  EXPECT_NEAR(forward->distance, expected, 1e-9);
  EXPECT_NEAR(backward->distance, expected, 1e-9);
}

TEST(EmdStressTest, ZeroWeightEntriesAreNeutral) {
  // Items with zero weight must not affect the distance.
  std::vector<double> a = {0.0, 3.0};
  std::vector<double> b = {1.0};
  auto with_zero = ExactEmd({1.0, 0.0}, {1.0}, [&](size_t i, size_t j) {
    return std::fabs(a[i] - b[j]);
  });
  auto without = ExactEmd({1.0}, {1.0}, [&](size_t, size_t) { return 1.0; });
  ASSERT_TRUE(with_zero.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with_zero->distance, without->distance, 1e-9);
}

TEST(ThresholdedEmdStressTest, SparseGraphStillShipsEverything) {
  // With a tiny threshold almost no direct arcs exist; everything routes
  // through the transshipment vertex and the full mass still ships.
  Rng rng(41);
  const size_t n = 20;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.UniformDouble(0.0, 100.0);
  for (auto& v : b) v = rng.UniformDouble(0.0, 100.0);
  std::vector<double> w(n, 1.0);
  auto result = ThresholdedEmd(w, w, [&](size_t i, size_t j) {
    return std::fabs(a[i] - b[j]);
  }, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->distance, 0.0);
  EXPECT_LE(result->distance, 0.5 + 1e-9);  // capped ground distance
}

}  // namespace
}  // namespace vz::solver
