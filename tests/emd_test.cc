#include "solver/emd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace vz::solver {
namespace {

// 1-D point sets: EMD has a closed form (sorted matching) for uniform
// weights of equal cardinality.
double Ground1D(const std::vector<double>& a, const std::vector<double>& b,
                size_t i, size_t j) {
  return std::fabs(a[i] - b[j]);
}

TEST(EmdTest, IdenticalDistributionsHaveZeroDistance) {
  std::vector<double> pts = {0.0, 1.0, 2.0};
  std::vector<double> w = {1.0, 1.0, 1.0};
  auto result = ExactEmd(w, w, [&pts](size_t i, size_t j) {
    return Ground1D(pts, pts, i, j);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 0.0, 1e-9);
}

TEST(EmdTest, SinglePointsDistanceIsGroundDistance) {
  auto result = ExactEmd({1.0}, {1.0}, [](size_t, size_t) { return 4.2; });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 4.2, 1e-9);
}

TEST(EmdTest, KnownOneDimensionalInstance) {
  // a = {0, 1}, b = {2, 3}: optimal matching 0->2, 1->3, mean cost 2.
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> b = {2.0, 3.0};
  std::vector<double> w = {1.0, 1.0};
  auto result = ExactEmd(w, w, [&](size_t i, size_t j) {
    return Ground1D(a, b, i, j);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 2.0, 1e-9);
}

TEST(EmdTest, UnequalCardinalitySplitsMass) {
  // a = {0} vs b = {-1, 1}: each half unit travels distance 1.
  std::vector<double> a = {0.0};
  std::vector<double> b = {-1.0, 1.0};
  auto result = ExactEmd({1.0}, {1.0, 1.0}, [&](size_t i, size_t j) {
    return Ground1D(a, b, i, j);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 1.0, 1e-9);
}

TEST(EmdTest, WeightsAreNormalized) {
  // Scaling all weights must not change the distance.
  std::vector<double> a = {0.0, 4.0};
  std::vector<double> b = {1.0, 5.0};
  auto ground = [&](size_t i, size_t j) { return Ground1D(a, b, i, j); };
  auto r1 = ExactEmd({1.0, 1.0}, {1.0, 1.0}, ground);
  auto r2 = ExactEmd({10.0, 10.0}, {0.5, 0.5}, ground);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r1->distance, r2->distance, 1e-9);
}

TEST(EmdTest, RejectsBadInput) {
  auto ground = [](size_t, size_t) { return 1.0; };
  EXPECT_FALSE(ExactEmd({}, {1.0}, ground).ok());
  EXPECT_FALSE(ExactEmd({1.0}, {}, ground).ok());
  EXPECT_FALSE(ExactEmd({-1.0}, {1.0}, ground).ok());
  EXPECT_FALSE(ExactEmd({0.0}, {1.0}, ground).ok());
  EXPECT_FALSE(
      ExactEmd({1.0}, {1.0}, [](size_t, size_t) { return -1.0; }).ok());
  EXPECT_FALSE(ThresholdedEmd({1.0}, {1.0}, ground, -0.5).ok());
}

TEST(ThresholdedEmdTest, LargeThresholdMatchesExact) {
  Rng rng(5);
  std::vector<double> a(6);
  std::vector<double> b(6);
  for (auto& v : a) v = rng.UniformDouble(0.0, 10.0);
  for (auto& v : b) v = rng.UniformDouble(0.0, 10.0);
  std::vector<double> w(6, 1.0);
  auto ground = [&](size_t i, size_t j) { return Ground1D(a, b, i, j); };
  auto exact = ExactEmd(w, w, ground);
  auto thresholded = ThresholdedEmd(w, w, ground, 100.0);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(thresholded.ok());
  EXPECT_NEAR(exact->distance, thresholded->distance, 1e-6);
}

TEST(ThresholdedEmdTest, LowerBoundsExactAndMonotoneInThreshold) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> a(8);
    std::vector<double> b(8);
    for (auto& v : a) v = rng.UniformDouble(0.0, 10.0);
    for (auto& v : b) v = rng.UniformDouble(0.0, 10.0);
    std::vector<double> w(8, 1.0);
    auto ground = [&](size_t i, size_t j) { return Ground1D(a, b, i, j); };
    auto exact = ExactEmd(w, w, ground);
    ASSERT_TRUE(exact.ok());
    double previous = 0.0;
    for (double t : {1.0, 3.0, 6.0, 12.0}) {
      auto approx = ThresholdedEmd(w, w, ground, t);
      ASSERT_TRUE(approx.ok());
      EXPECT_LE(approx->distance, exact->distance + 1e-9);
      EXPECT_GE(approx->distance, previous - 1e-9);  // monotone in t
      previous = approx->distance;
    }
  }
}

TEST(ThresholdedEmdTest, ZeroThresholdCostsNothing) {
  // With t = 0 every unit routes through the transshipment vertex at cost 0.
  std::vector<double> a = {0.0};
  std::vector<double> b = {100.0};
  auto result = ThresholdedEmd({1.0}, {1.0}, [&](size_t i, size_t j) {
    return Ground1D(a, b, i, j);
  }, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, 0.0, 1e-9);
}

TEST(ThresholdedEmdTest, FewerArcsThanExact) {
  Rng rng(13);
  std::vector<double> a(10);
  std::vector<double> b(10);
  for (auto& v : a) v = rng.UniformDouble(0.0, 10.0);
  for (auto& v : b) v = rng.UniformDouble(0.0, 10.0);
  std::vector<double> w(10, 1.0);
  auto ground = [&](size_t i, size_t j) { return Ground1D(a, b, i, j); };
  auto exact = ExactEmd(w, w, ground);
  auto approx = ThresholdedEmd(w, w, ground, 2.0);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_LT(approx->num_arcs, exact->num_arcs);
}

// Metric-property sweep: EMD with a metric ground distance is a metric
// (Rubner et al. 2000) — check symmetry and the triangle inequality on
// random instances.
class EmdMetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmdMetricPropertyTest, SymmetryAndTriangleInequality) {
  Rng rng(GetParam());
  const size_t n = 5;
  std::vector<double> a(n);
  std::vector<double> b(n);
  std::vector<double> c(n);
  for (auto& v : a) v = rng.UniformDouble(0.0, 10.0);
  for (auto& v : b) v = rng.UniformDouble(0.0, 10.0);
  for (auto& v : c) v = rng.UniformDouble(0.0, 10.0);
  std::vector<double> w(n, 1.0);
  auto dist = [&w](const std::vector<double>& x,
                   const std::vector<double>& y) {
    auto r = ExactEmd(w, w, [&x, &y](size_t i, size_t j) {
      return std::fabs(x[i] - y[j]);
    });
    EXPECT_TRUE(r.ok());
    return r->distance;
  };
  const double ab = dist(a, b);
  const double ba = dist(b, a);
  const double ac = dist(a, c);
  const double cb = dist(c, b);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_LE(ab, ac + cb + 1e-9);
  EXPECT_NEAR(dist(a, a), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EmdMetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace vz::solver
