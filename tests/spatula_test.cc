#include "baseline/spatula.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vz::baseline {
namespace {

TEST(SpatulaTest, CorrelatesByLocation) {
  SpatulaCorrelator spatula;
  spatula.RegisterCamera("a", "nyc");
  spatula.RegisterCamera("b", "nyc");
  spatula.RegisterCamera("c", "la");
  const auto nyc = spatula.CorrelatedCameras("a");
  EXPECT_EQ(nyc.size(), 2u);
  EXPECT_TRUE(std::find(nyc.begin(), nyc.end(), "b") != nyc.end());
  EXPECT_TRUE(std::find(nyc.begin(), nyc.end(), "a") != nyc.end());
  const auto la = spatula.CorrelatedCameras("c");
  EXPECT_EQ(la, std::vector<core::CameraId>{"c"});
}

TEST(SpatulaTest, UnknownCameraCorrelatesWithItself) {
  SpatulaCorrelator spatula;
  spatula.RegisterCamera("a", "nyc");
  EXPECT_EQ(spatula.CorrelatedCameras("ghost"),
            std::vector<core::CameraId>{"ghost"});
}

TEST(SpatulaTest, ReRegistrationIsIdempotent) {
  SpatulaCorrelator spatula;
  spatula.RegisterCamera("a", "nyc");
  spatula.RegisterCamera("a", "nyc");
  EXPECT_EQ(spatula.CamerasAt("nyc").size(), 1u);
  EXPECT_EQ(spatula.num_cameras(), 1u);
}

TEST(SpatulaTest, CamerasAtUnknownLocationIsEmpty) {
  SpatulaCorrelator spatula;
  EXPECT_TRUE(spatula.CamerasAt("nowhere").empty());
}

}  // namespace
}  // namespace vz::baseline
