// Fuzzes the wire-frame decoder with the deterministic fault injector:
// truncated frames at every prefix length, seeded bit flips, and
// valid-CRC-but-garbage payloads against every payload codec. The contract
// under test is the decode failure taxonomy in net/wire.h — corruption
// yields kDataLoss, well-formed-but-alien bytes yield kInvalidArgument, and
// nothing ever crashes, hangs, or allocates from a hostile length field.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/binary_format.h"
#include "net/wire.h"
#include "sim/fault_injector.h"

namespace vz::net {
namespace {

using sim::FaultInjector;

bool IsFuzzStatus(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kInvalidArgument;
}

// A representative request frame with a structured payload.
std::string SampleFrame() {
  io::BinaryWriter payload;
  EncodeFeatureVector(&payload, FeatureVector({1.5f, -2.0f, 3.25f, 0.0f}));
  core::QueryConstraints constraints;
  constraints.deadline_ms = 250;
  constraints.cameras = std::vector<core::CameraId>{"cam-a", "cam-b"};
  EncodeQueryConstraints(&payload, constraints);
  return EncodeFrame(static_cast<uint32_t>(MsgType::kDirectQuery),
                     payload.buffer());
}

TEST(FrameFuzzTest, IntactFrameRoundTrips) {
  const std::string bytes = SampleFrame();
  io::BinaryReader reader(bytes);
  auto frame = DecodeFrame(&reader);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, static_cast<uint32_t>(MsgType::kDirectQuery));
  EXPECT_EQ(reader.remaining(), 0u);  // exactly one frame consumed
}

// Truncation at every prefix length: always a clean kDataLoss (the bytes are
// torn), never a crash or a success.
TEST(FrameFuzzTest, EveryTruncationIsDataLoss) {
  const std::string bytes = SampleFrame();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    auto frame = DecodeFrame(&reader);
    ASSERT_FALSE(frame.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss)
        << "prefix " << keep << ": " << frame.status().ToString();
  }
}

// Seeded bit flips anywhere in the frame — framing fields included — must
// be detected. Up to 3 flips on a frame this small is within CRC32's
// guaranteed detection distance, so a quiet success would be a codec bug,
// not fuzzer bad luck.
TEST(FrameFuzzTest, BitFlipsNeverDecodeQuietly) {
  const std::string bytes = SampleFrame();
  for (uint64_t seed = 0; seed < 300; ++seed) {
    for (size_t flips = 1; flips <= 3; ++flips) {
      std::string corrupt = bytes;
      ASSERT_TRUE(FaultInjector::FlipBits(&corrupt, flips, seed).ok());
      io::BinaryReader reader(corrupt);
      auto frame = DecodeFrame(&reader);
      ASSERT_FALSE(frame.ok())
          << "seed " << seed << ", " << flips << " flips decoded quietly";
      EXPECT_TRUE(IsFuzzStatus(frame.status()))
          << frame.status().ToString();
    }
  }
}

// Heavier corruption: flip bursts plus truncation combined. Here a CRC
// collision is theoretically possible but astronomically unlikely; the
// invariant asserted is only "returns a status, never crashes or hangs".
TEST(FrameFuzzTest, HeavyCorruptionNeverCrashes) {
  const std::string bytes = SampleFrame();
  Rng rng(99);
  for (uint64_t seed = 0; seed < 500; ++seed) {
    std::string corrupt = bytes;
    ASSERT_TRUE(
        FaultInjector::FlipBits(&corrupt, 1 + seed % 64, seed).ok());
    if (rng.Bernoulli(0.5)) {
      const size_t keep = rng.UniformUint64(corrupt.size() + 1);
      ASSERT_TRUE(FaultInjector::Truncate(&corrupt, keep).ok());
    }
    io::BinaryReader reader(corrupt);
    auto frame = DecodeFrame(&reader);
    if (!frame.ok()) EXPECT_TRUE(IsFuzzStatus(frame.status()));
  }
}

// A frame whose length field claims more than kMaxPayloadBytes must be
// rejected before any allocation happens.
TEST(FrameFuzzTest, HostileLengthRejectedWithoutAllocation) {
  io::BinaryWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(static_cast<uint32_t>(MsgType::kFlush));
  writer.WriteU64(kMaxPayloadBytes + 1);
  writer.WriteU32(0xDEADBEEF);  // placeholder crc; length check comes first
  io::BinaryReader reader(writer.buffer());
  auto frame = DecodeFrame(&reader);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameFuzzTest, BadMagicAndUnknownTypeAreInvalidArgument) {
  {
    std::string bytes = SampleFrame();
    bytes[0] ^= 0xFF;  // magic is the first little-endian u32
    io::BinaryReader reader(bytes);
    EXPECT_EQ(DecodeFrame(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Unknown-but-whole frame: correctly framed, CRC valid, alien type.
    const std::string bytes = EncodeFrame(4242, "payload");
    io::BinaryReader reader(bytes);
    EXPECT_EQ(DecodeFrame(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// Frames whose framing is valid (good CRC) but whose payload is random
// garbage: every payload codec must return a status, not crash — the
// overflow-safe reader makes giant counts fail before allocation.
TEST(FrameFuzzTest, RandomPayloadsAgainstEveryCodec) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const size_t size = rng.UniformUint64(96);
    std::string payload(size, '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.UniformUint64(256));
    }
    auto with_reader = [&payload](auto&& decode) {
      io::BinaryReader reader(payload);
      auto result = decode(&reader);
      (void)result;  // only invariant: returns, no crash/hang
    };
    with_reader([](io::BinaryReader* r) { return DecodeWireStatus(r); });
    with_reader([](io::BinaryReader* r) { return DecodeFeatureVector(r); });
    with_reader([](io::BinaryReader* r) { return DecodeFeatureMap(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeFrameObservation(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeQueryConstraints(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeDirectQueryResult(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeClusteringQueryResult(r); });
    with_reader([](io::BinaryReader* r) { return DecodeSvsMetadata(r); });
    with_reader([](io::BinaryReader* r) { return DecodeQueryLoadStats(r); });
    with_reader([](io::BinaryReader* r) { return DecodeMonitorStats(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeCameraHealthReport(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeIdempotencyToken(r); });
  }
}

// --- Protocol-v2 wire fields: tokens, ping, supervision stats. ---

TEST(FrameFuzzTest, IdempotencyTokenRoundTripsAndRejectsReservedSession) {
  io::BinaryWriter writer;
  EncodeIdempotencyToken(&writer, {0x1122334455667788ULL, 42});
  io::BinaryReader reader(writer.buffer());
  auto token = DecodeIdempotencyToken(&reader);
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token->session_id, 0x1122334455667788ULL);
  EXPECT_EQ(token->sequence, 42u);
  EXPECT_EQ(reader.remaining(), 0u);

  // Session id 0 is reserved as "no token": a frame carrying it is
  // well-formed but alien — kInvalidArgument, not kDataLoss.
  io::BinaryWriter reserved;
  EncodeIdempotencyToken(&reserved, {0, 7});
  io::BinaryReader reserved_reader(reserved.buffer());
  auto rejected = DecodeIdempotencyToken(&reserved_reader);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameFuzzTest, TruncatedTokenIsAlwaysAnError) {
  io::BinaryWriter writer;
  EncodeIdempotencyToken(&writer, {99, 3});
  const std::string bytes = writer.buffer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_FALSE(DecodeIdempotencyToken(&reader).ok()) << keep;
  }
}

// kPing is a known frame type introduced in v2: an empty-payload ping frame
// must pass the framing layer's known-type check, and a mutating frame's
// token prefix survives the same truncation/flip treatment as everything
// else.
TEST(FrameFuzzTest, PingAndTokenedFramesSurviveTheFuzzSweep) {
  const std::string ping =
      EncodeFrame(static_cast<uint32_t>(MsgType::kPing), "");
  {
    io::BinaryReader reader(ping);
    auto frame = DecodeFrame(&reader);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, static_cast<uint32_t>(MsgType::kPing));
    EXPECT_TRUE(frame->payload.empty());
  }
  // A tokened mutating frame, as the client builds it: token then body.
  ASSERT_TRUE(IsMutatingType(static_cast<uint32_t>(MsgType::kFlush)));
  ASSERT_FALSE(IsMutatingType(static_cast<uint32_t>(MsgType::kDirectQuery)));
  ASSERT_FALSE(IsMutatingType(static_cast<uint32_t>(MsgType::kPing)));
  io::BinaryWriter tokened;
  EncodeIdempotencyToken(&tokened, {77, 8});
  const std::string frame_bytes =
      EncodeFrame(static_cast<uint32_t>(MsgType::kFlush), tokened.buffer());
  for (size_t keep = 0; keep < frame_bytes.size(); ++keep) {
    std::string torn = frame_bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_EQ(DecodeFrame(&reader).status().code(), StatusCode::kDataLoss)
        << keep;
  }
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::string corrupt = frame_bytes;
    ASSERT_TRUE(FaultInjector::FlipBits(&corrupt, 2, seed).ok());
    io::BinaryReader reader(corrupt);
    auto frame = DecodeFrame(&reader);
    ASSERT_FALSE(frame.ok()) << "seed " << seed;
    EXPECT_TRUE(IsFuzzStatus(frame.status()));
  }
}

// The v2 MonitorStats payload (serving counters + connection registry)
// round-trips exactly and fails cleanly under truncation.
TEST(FrameFuzzTest, MonitorStatsV2RoundTripsAndFailsCleanlyWhenTorn) {
  MonitorStatsReply stats;
  stats.ingest.frames_offered = 123;
  stats.svs_count = 9;
  stats.camera_count = 4;
  stats.now_ms = 77'000;
  stats.serving.connections_accepted = 6;
  stats.serving.connections_shed = 1;
  stats.serving.connections_evicted_idle = 2;
  stats.serving.connections_evicted_slow = 3;
  stats.serving.duplicates_replayed = 4;
  stats.serving.pings_served = 5;
  stats.serving.sessions_active = 2;
  stats.serving.sessions_evicted = 1;
  stats.serving.connections.push_back({11, 5'000, 40, 1'024, 2'048, 17});
  stats.serving.connections.push_back({12, 100, 0, 64, 96, 1});
  io::BinaryWriter writer;
  EncodeMonitorStats(&writer, stats);

  io::BinaryReader reader(writer.buffer());
  auto decoded = DecodeMonitorStats(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(decoded->ingest.frames_offered, 123u);
  EXPECT_EQ(decoded->serving.connections_evicted_idle, 2u);
  EXPECT_EQ(decoded->serving.connections_evicted_slow, 3u);
  EXPECT_EQ(decoded->serving.duplicates_replayed, 4u);
  EXPECT_EQ(decoded->serving.pings_served, 5u);
  EXPECT_EQ(decoded->serving.sessions_active, 2u);
  EXPECT_EQ(decoded->serving.sessions_evicted, 1u);
  ASSERT_EQ(decoded->serving.connections.size(), 2u);
  EXPECT_EQ(decoded->serving.connections[0].id, 11u);
  EXPECT_EQ(decoded->serving.connections[0].age_ms, 5'000);
  EXPECT_EQ(decoded->serving.connections[0].idle_ms, 40);
  EXPECT_EQ(decoded->serving.connections[0].bytes_in, 1'024u);
  EXPECT_EQ(decoded->serving.connections[0].bytes_out, 2'048u);
  EXPECT_EQ(decoded->serving.connections[0].rpcs, 17u);
  EXPECT_EQ(decoded->serving.connections[1].id, 12u);

  const std::string bytes = writer.buffer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader torn_reader(torn);
    EXPECT_FALSE(DecodeMonitorStats(&torn_reader).ok()) << keep;
  }
}

// Corruption in one frame of a concatenated stream must not desync the
// frames before it: each successful decode consumes exactly one frame.
TEST(FrameFuzzTest, StreamStaysFramedUpToTheCorruption) {
  const std::string good = SampleFrame();
  std::string second = SampleFrame();
  ASSERT_TRUE(FaultInjector::FlipBits(&second, 2, 7).ok());
  const std::string stream = good + second + good;
  io::BinaryReader reader(stream);
  ASSERT_TRUE(DecodeFrame(&reader).ok());
  EXPECT_EQ(reader.position(), good.size());
  auto corrupt = DecodeFrame(&reader);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_TRUE(IsFuzzStatus(corrupt.status()));
}

// --- The length-prefixed-bytes primitives the frame codec is built on. ---

TEST(LengthPrefixedBytesTest, RoundTripsIncludingEmptyAndBinary) {
  io::BinaryWriter writer;
  writer.WriteLengthPrefixedBytes("");
  writer.WriteLengthPrefixedBytes(std::string("\x00\xFFmid\x00", 6));
  io::BinaryReader reader(writer.buffer());
  auto empty = reader.ReadLengthPrefixedBytes();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto binary = reader.ReadLengthPrefixedBytes();
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(*binary, std::string("\x00\xFFmid\x00", 6));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(LengthPrefixedBytesTest, HostileAndTruncatedPrefixesFailSafely) {
  {
    // Length claims far more than the buffer holds (would overflow naive
    // `position + length` arithmetic).
    io::BinaryWriter writer;
    writer.WriteU64(~0ull);
    io::BinaryReader reader(writer.buffer());
    EXPECT_FALSE(reader.ReadLengthPrefixedBytes().ok());
  }
  io::BinaryWriter writer;
  writer.WriteLengthPrefixedBytes("0123456789");
  const std::string bytes = writer.buffer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_FALSE(reader.ReadLengthPrefixedBytes().ok()) << keep;
  }
}

// --- The in-memory fault helpers themselves. ---

TEST(BufferFaultTest, HelpersValidateInput) {
  std::string data = "0123456789";
  EXPECT_FALSE(FaultInjector::Truncate(&data, 11).ok());
  ASSERT_TRUE(FaultInjector::Truncate(&data, 4).ok());
  EXPECT_EQ(data, "0123");
  ASSERT_TRUE(FaultInjector::FlipBits(&data, 2, 5).ok());
  EXPECT_NE(data, "0123");
  ASSERT_TRUE(FaultInjector::Truncate(&data, 0).ok());
  EXPECT_FALSE(FaultInjector::FlipBits(&data, 1, 5).ok());  // now empty
}

TEST(BufferFaultTest, FlipsAreSeedDeterministic) {
  std::string a = "the quick brown fox";
  std::string b = a;
  std::string c = a;
  ASSERT_TRUE(FaultInjector::FlipBits(&a, 4, 17).ok());
  ASSERT_TRUE(FaultInjector::FlipBits(&b, 4, 17).ok());
  ASSERT_TRUE(FaultInjector::FlipBits(&c, 4, 18).ok());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace vz::net
