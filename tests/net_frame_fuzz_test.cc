// Fuzzes the wire-frame decoder with the deterministic fault injector:
// truncated frames at every prefix length, seeded bit flips, and
// valid-CRC-but-garbage payloads against every payload codec. The contract
// under test is the decode failure taxonomy in net/wire.h — corruption
// yields kDataLoss, well-formed-but-alien bytes yield kInvalidArgument, and
// nothing ever crashes, hangs, or allocates from a hostile length field.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/binary_format.h"
#include "net/wire.h"
#include "sim/fault_injector.h"

namespace vz::net {
namespace {

using sim::FaultInjector;

bool IsFuzzStatus(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kInvalidArgument;
}

// A representative request frame with a structured payload.
std::string SampleFrame() {
  io::BinaryWriter payload;
  EncodeFeatureVector(&payload, FeatureVector({1.5f, -2.0f, 3.25f, 0.0f}));
  core::QueryConstraints constraints;
  constraints.deadline_ms = 250;
  constraints.cameras = std::vector<core::CameraId>{"cam-a", "cam-b"};
  EncodeQueryConstraints(&payload, constraints);
  return EncodeFrame(static_cast<uint32_t>(MsgType::kDirectQuery),
                     payload.buffer());
}

TEST(FrameFuzzTest, IntactFrameRoundTrips) {
  const std::string bytes = SampleFrame();
  io::BinaryReader reader(bytes);
  auto frame = DecodeFrame(&reader);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, static_cast<uint32_t>(MsgType::kDirectQuery));
  EXPECT_EQ(reader.remaining(), 0u);  // exactly one frame consumed
}

// Truncation at every prefix length: always a clean kDataLoss (the bytes are
// torn), never a crash or a success.
TEST(FrameFuzzTest, EveryTruncationIsDataLoss) {
  const std::string bytes = SampleFrame();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    auto frame = DecodeFrame(&reader);
    ASSERT_FALSE(frame.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss)
        << "prefix " << keep << ": " << frame.status().ToString();
  }
}

// Seeded bit flips anywhere in the frame — framing fields included — must
// be detected. Up to 3 flips on a frame this small is within CRC32's
// guaranteed detection distance, so a quiet success would be a codec bug,
// not fuzzer bad luck.
TEST(FrameFuzzTest, BitFlipsNeverDecodeQuietly) {
  const std::string bytes = SampleFrame();
  for (uint64_t seed = 0; seed < 300; ++seed) {
    for (size_t flips = 1; flips <= 3; ++flips) {
      std::string corrupt = bytes;
      ASSERT_TRUE(FaultInjector::FlipBits(&corrupt, flips, seed).ok());
      io::BinaryReader reader(corrupt);
      auto frame = DecodeFrame(&reader);
      ASSERT_FALSE(frame.ok())
          << "seed " << seed << ", " << flips << " flips decoded quietly";
      EXPECT_TRUE(IsFuzzStatus(frame.status()))
          << frame.status().ToString();
    }
  }
}

// Heavier corruption: flip bursts plus truncation combined. Here a CRC
// collision is theoretically possible but astronomically unlikely; the
// invariant asserted is only "returns a status, never crashes or hangs".
TEST(FrameFuzzTest, HeavyCorruptionNeverCrashes) {
  const std::string bytes = SampleFrame();
  Rng rng(99);
  for (uint64_t seed = 0; seed < 500; ++seed) {
    std::string corrupt = bytes;
    ASSERT_TRUE(
        FaultInjector::FlipBits(&corrupt, 1 + seed % 64, seed).ok());
    if (rng.Bernoulli(0.5)) {
      const size_t keep = rng.UniformUint64(corrupt.size() + 1);
      ASSERT_TRUE(FaultInjector::Truncate(&corrupt, keep).ok());
    }
    io::BinaryReader reader(corrupt);
    auto frame = DecodeFrame(&reader);
    if (!frame.ok()) {
      EXPECT_TRUE(IsFuzzStatus(frame.status()));
    }
  }
}

// A frame whose length field claims more than kMaxPayloadBytes must be
// rejected before any allocation happens.
TEST(FrameFuzzTest, HostileLengthRejectedWithoutAllocation) {
  io::BinaryWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(static_cast<uint32_t>(MsgType::kFlush));
  writer.WriteU64(kMaxPayloadBytes + 1);
  writer.WriteU32(0xDEADBEEF);  // placeholder crc; length check comes first
  io::BinaryReader reader(writer.buffer());
  auto frame = DecodeFrame(&reader);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameFuzzTest, BadMagicAndUnknownTypeAreInvalidArgument) {
  {
    std::string bytes = SampleFrame();
    bytes[0] ^= 0xFF;  // magic is the first little-endian u32
    io::BinaryReader reader(bytes);
    EXPECT_EQ(DecodeFrame(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Unknown-but-whole frame: correctly framed, CRC valid, alien type.
    const std::string bytes = EncodeFrame(4242, "payload");
    io::BinaryReader reader(bytes);
    EXPECT_EQ(DecodeFrame(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// Frames whose framing is valid (good CRC) but whose payload is random
// garbage: every payload codec must return a status, not crash — the
// overflow-safe reader makes giant counts fail before allocation.
TEST(FrameFuzzTest, RandomPayloadsAgainstEveryCodec) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const size_t size = rng.UniformUint64(96);
    std::string payload(size, '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.UniformUint64(256));
    }
    auto with_reader = [&payload](auto&& decode) {
      io::BinaryReader reader(payload);
      auto result = decode(&reader);
      (void)result;  // only invariant: returns, no crash/hang
    };
    with_reader([](io::BinaryReader* r) { return DecodeWireStatus(r); });
    with_reader([](io::BinaryReader* r) { return DecodeFeatureVector(r); });
    with_reader([](io::BinaryReader* r) { return DecodeFeatureMap(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeFrameObservation(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeQueryConstraints(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeDirectQueryResult(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeClusteringQueryResult(r); });
    with_reader([](io::BinaryReader* r) { return DecodeSvsMetadata(r); });
    with_reader([](io::BinaryReader* r) { return DecodeQueryLoadStats(r); });
    with_reader([](io::BinaryReader* r) { return DecodeMonitorStats(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeCameraHealthReport(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeIdempotencyToken(r); });
    // v5 payload codecs.
    with_reader(
        [](io::BinaryReader* r) { return DecodeSubscribeRequest(r); });
    with_reader([](io::BinaryReader* r) { return DecodePushEvent(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeIngestBatchReply(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeAdminTuneRequest(r); });
    with_reader(
        [](io::BinaryReader* r) { return DecodeAdminTuneReply(r); });
  }
}

// --- Protocol-v2 wire fields: tokens, ping, supervision stats. ---

TEST(FrameFuzzTest, IdempotencyTokenRoundTripsAndRejectsReservedSession) {
  io::BinaryWriter writer;
  EncodeIdempotencyToken(&writer, {0x1122334455667788ULL, 42});
  io::BinaryReader reader(writer.buffer());
  auto token = DecodeIdempotencyToken(&reader);
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token->session_id, 0x1122334455667788ULL);
  EXPECT_EQ(token->sequence, 42u);
  EXPECT_EQ(reader.remaining(), 0u);

  // Session id 0 is reserved as "no token": a frame carrying it is
  // well-formed but alien — kInvalidArgument, not kDataLoss.
  io::BinaryWriter reserved;
  EncodeIdempotencyToken(&reserved, {0, 7});
  io::BinaryReader reserved_reader(reserved.buffer());
  auto rejected = DecodeIdempotencyToken(&reserved_reader);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameFuzzTest, TruncatedTokenIsAlwaysAnError) {
  io::BinaryWriter writer;
  EncodeIdempotencyToken(&writer, {99, 3});
  const std::string bytes = writer.buffer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_FALSE(DecodeIdempotencyToken(&reader).ok()) << keep;
  }
}

// kPing is a known frame type introduced in v2: an empty-payload ping frame
// must pass the framing layer's known-type check, and a mutating frame's
// token prefix survives the same truncation/flip treatment as everything
// else.
TEST(FrameFuzzTest, PingAndTokenedFramesSurviveTheFuzzSweep) {
  const std::string ping =
      EncodeFrame(static_cast<uint32_t>(MsgType::kPing), "");
  {
    io::BinaryReader reader(ping);
    auto frame = DecodeFrame(&reader);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, static_cast<uint32_t>(MsgType::kPing));
    EXPECT_TRUE(frame->payload.empty());
  }
  // A tokened mutating frame, as the client builds it: token then body.
  ASSERT_TRUE(IsMutatingType(static_cast<uint32_t>(MsgType::kFlush)));
  ASSERT_FALSE(IsMutatingType(static_cast<uint32_t>(MsgType::kDirectQuery)));
  ASSERT_FALSE(IsMutatingType(static_cast<uint32_t>(MsgType::kPing)));
  io::BinaryWriter tokened;
  EncodeIdempotencyToken(&tokened, {77, 8});
  const std::string frame_bytes =
      EncodeFrame(static_cast<uint32_t>(MsgType::kFlush), tokened.buffer());
  for (size_t keep = 0; keep < frame_bytes.size(); ++keep) {
    std::string torn = frame_bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_EQ(DecodeFrame(&reader).status().code(), StatusCode::kDataLoss)
        << keep;
  }
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::string corrupt = frame_bytes;
    ASSERT_TRUE(FaultInjector::FlipBits(&corrupt, 2, seed).ok());
    io::BinaryReader reader(corrupt);
    auto frame = DecodeFrame(&reader);
    ASSERT_FALSE(frame.ok()) << "seed " << seed;
    EXPECT_TRUE(IsFuzzStatus(frame.status()));
  }
}

// The v2 MonitorStats payload (serving counters + connection registry)
// round-trips exactly and fails cleanly under truncation.
TEST(FrameFuzzTest, MonitorStatsV2RoundTripsAndFailsCleanlyWhenTorn) {
  MonitorStatsReply stats;
  stats.ingest.frames_offered = 123;
  stats.svs_count = 9;
  stats.camera_count = 4;
  stats.now_ms = 77'000;
  stats.serving.connections_accepted = 6;
  stats.serving.connections_shed = 1;
  stats.serving.connections_evicted_idle = 2;
  stats.serving.connections_evicted_slow = 3;
  stats.serving.duplicates_replayed = 4;
  stats.serving.pings_served = 5;
  stats.serving.sessions_active = 2;
  stats.serving.sessions_evicted = 1;
  stats.serving.connections.push_back({11, 5'000, 40, 1'024, 2'048, 17});
  stats.serving.connections.push_back({12, 100, 0, 64, 96, 1});
  stats.serving.subscriptions_active = 3;
  stats.serving.subscriptions_total = 7;
  stats.serving.pushes_sent = 99;
  stats.serving.push_drops = 4;
  stats.serving.push_gaps_sent = 2;
  stats.serving.ingest_batches = 13;
  io::BinaryWriter writer;
  EncodeMonitorStats(&writer, stats);

  io::BinaryReader reader(writer.buffer());
  auto decoded = DecodeMonitorStats(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(decoded->ingest.frames_offered, 123u);
  EXPECT_EQ(decoded->serving.connections_evicted_idle, 2u);
  EXPECT_EQ(decoded->serving.connections_evicted_slow, 3u);
  EXPECT_EQ(decoded->serving.duplicates_replayed, 4u);
  EXPECT_EQ(decoded->serving.pings_served, 5u);
  EXPECT_EQ(decoded->serving.sessions_active, 2u);
  EXPECT_EQ(decoded->serving.sessions_evicted, 1u);
  ASSERT_EQ(decoded->serving.connections.size(), 2u);
  EXPECT_EQ(decoded->serving.connections[0].id, 11u);
  EXPECT_EQ(decoded->serving.connections[0].age_ms, 5'000);
  EXPECT_EQ(decoded->serving.connections[0].idle_ms, 40);
  EXPECT_EQ(decoded->serving.connections[0].bytes_in, 1'024u);
  EXPECT_EQ(decoded->serving.connections[0].bytes_out, 2'048u);
  EXPECT_EQ(decoded->serving.connections[0].rpcs, 17u);
  EXPECT_EQ(decoded->serving.connections[1].id, 12u);
  EXPECT_EQ(decoded->serving.subscriptions_active, 3u);
  EXPECT_EQ(decoded->serving.subscriptions_total, 7u);
  EXPECT_EQ(decoded->serving.pushes_sent, 99u);
  EXPECT_EQ(decoded->serving.push_drops, 4u);
  EXPECT_EQ(decoded->serving.push_gaps_sent, 2u);
  EXPECT_EQ(decoded->serving.ingest_batches, 13u);

  // The v5 subscription counters are a prefix-compatible tail: cutting the
  // payload exactly at the v4 boundary is a valid v4 payload (counters
  // decode as zero); every other truncation is an error.
  const std::string bytes = writer.buffer();
  const size_t v5_tail_bytes = 6 * sizeof(uint64_t);
  ASSERT_GT(bytes.size(), v5_tail_bytes);
  const size_t v4_boundary = bytes.size() - v5_tail_bytes;
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader torn_reader(torn);
    auto torn_stats = DecodeMonitorStats(&torn_reader);
    if (keep == v4_boundary) {
      ASSERT_TRUE(torn_stats.ok()) << keep;
      EXPECT_EQ(torn_stats->serving.pings_served, 5u);
      EXPECT_EQ(torn_stats->serving.subscriptions_active, 0u);
      EXPECT_EQ(torn_stats->serving.ingest_batches, 0u);
    } else {
      EXPECT_FALSE(torn_stats.ok()) << keep;
    }
  }
}

// Corruption in one frame of a concatenated stream must not desync the
// frames before it: each successful decode consumes exactly one frame.
TEST(FrameFuzzTest, StreamStaysFramedUpToTheCorruption) {
  const std::string good = SampleFrame();
  std::string second = SampleFrame();
  ASSERT_TRUE(FaultInjector::FlipBits(&second, 2, 7).ok());
  const std::string stream = good + second + good;
  io::BinaryReader reader(stream);
  ASSERT_TRUE(DecodeFrame(&reader).ok());
  EXPECT_EQ(reader.position(), good.size());
  auto corrupt = DecodeFrame(&reader);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_TRUE(IsFuzzStatus(corrupt.status()));
}

// --- Protocol-v5 framing: correlation-id multiplexing and push frames. ---

std::string SamplePushFrame(uint64_t correlation) {
  PushEvent event;
  event.subscription_id = 3;
  event.sequence = 12;
  event.kind = PushKind::kMatch;
  event.svs_id = 99;
  event.camera = "cam-harbor";
  event.start_ms = 10'000;
  event.end_ms = 30'000;
  event.distance = 1.25;
  io::BinaryWriter payload;
  EncodePushEvent(&payload, event);
  return EncodeFrameV5(static_cast<uint32_t>(MsgType::kPushEvent),
                       correlation, payload.buffer());
}

TEST(FrameFuzzV5Test, IntactFrameRoundTripsWithCorrelation) {
  io::BinaryWriter payload;
  EncodeSubscribeRequest(&payload, {});
  const std::string bytes = EncodeFrameV5(
      static_cast<uint32_t>(MsgType::kSubscribe), 0x1122334455667788ULL,
      payload.buffer());
  EXPECT_EQ(bytes.size(), WireFrameBytesV5(payload.buffer().size()));
  io::BinaryReader reader(bytes);
  auto frame = DecodeFrameV5(&reader);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, static_cast<uint32_t>(MsgType::kSubscribe));
  EXPECT_EQ(frame->correlation, 0x1122334455667788ULL);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(FrameFuzzV5Test, EveryTruncationIsDataLoss) {
  const std::string bytes = SamplePushFrame(42);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    auto frame = DecodeFrameV5(&reader);
    ASSERT_FALSE(frame.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss)
        << "prefix " << keep << ": " << frame.status().ToString();
  }
}

TEST(FrameFuzzV5Test, BitFlipsNeverDecodeQuietly) {
  const std::string bytes = SamplePushFrame(7);
  for (uint64_t seed = 0; seed < 300; ++seed) {
    for (size_t flips = 1; flips <= 3; ++flips) {
      std::string corrupt = bytes;
      ASSERT_TRUE(FaultInjector::FlipBits(&corrupt, flips, seed).ok());
      io::BinaryReader reader(corrupt);
      auto frame = DecodeFrameV5(&reader);
      ASSERT_FALSE(frame.ok())
          << "seed " << seed << ", " << flips << " flips decoded quietly";
      EXPECT_TRUE(IsFuzzStatus(frame.status())) << frame.status().ToString();
    }
  }
}

TEST(FrameFuzzV5Test, HostileLengthAndBadMagicAreRejected) {
  {
    io::BinaryWriter writer;
    writer.WriteU32(kWireMagicV5);
    writer.WriteU32(static_cast<uint32_t>(MsgType::kPushEvent));
    writer.WriteU64(1);  // correlation
    writer.WriteU64(kMaxPayloadBytes + 1);
    writer.WriteU32(0xDEADBEEF);
    io::BinaryReader reader(writer.buffer());
    EXPECT_EQ(DecodeFrameV5(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
  // The two framings never decode each other's bytes as a whole frame —
  // the magics are the negotiation boundary's enforcement.
  {
    const std::string legacy = SampleFrame();
    io::BinaryReader reader(legacy);
    EXPECT_EQ(DecodeFrameV5(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    const std::string v5 = SamplePushFrame(1);
    io::BinaryReader reader(v5);
    EXPECT_EQ(DecodeFrame(&reader).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// A multiplexed stream: a response frame, an asynchronous push with an
// unrelated correlation id, another response. Each decode consumes exactly
// one frame and carries its own correlation — the demux loop's ground truth.
TEST(FrameFuzzV5Test, InterleavedPushFramesStayFramed) {
  io::BinaryWriter status_payload;
  EncodeWireStatus(&status_payload, {Status::OK(), 0});
  const uint32_t response_type =
      static_cast<uint32_t>(MsgType::kPing) | kResponseFlag;
  const std::string first =
      EncodeFrameV5(response_type, 5, status_payload.buffer());
  const std::string push = SamplePushFrame(0xFEEDFACE);  // unknown to nobody
  const std::string second =
      EncodeFrameV5(response_type, 6, status_payload.buffer());
  const std::string stream = first + push + second;

  io::BinaryReader reader(stream);
  auto a = DecodeFrameV5(&reader);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->correlation, 5u);
  EXPECT_EQ(reader.position(), first.size());
  auto b = DecodeFrameV5(&reader);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->type, static_cast<uint32_t>(MsgType::kPushEvent));
  EXPECT_EQ(b->correlation, 0xFEEDFACEu);
  auto c = DecodeFrameV5(&reader);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->correlation, 6u);
  EXPECT_EQ(reader.remaining(), 0u);

  // Corruption in the push frame must not desync the response before it.
  std::string corrupt_push = push;
  ASSERT_TRUE(FaultInjector::FlipBits(&corrupt_push, 2, 3).ok());
  io::BinaryReader torn_reader(first + corrupt_push + second);
  ASSERT_TRUE(DecodeFrameV5(&torn_reader).ok());
  auto torn = DecodeFrameV5(&torn_reader);
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(IsFuzzStatus(torn.status()));
}

// A well-framed push frame (CRC valid) whose payload is a torn PushEvent
// encoding: the framing layer accepts it, the payload codec must fail with
// a status — the demux loop then drops the push and keeps the stream.
TEST(FrameFuzzV5Test, TornPushPayloadFailsCleanlyInsideAValidFrame) {
  PushEvent event;
  event.subscription_id = 1;
  event.kind = PushKind::kGap;
  event.dropped = 17;
  io::BinaryWriter payload;
  EncodePushEvent(&payload, event);
  const std::string intact = payload.buffer();
  for (size_t keep = 0; keep < intact.size(); ++keep) {
    std::string torn = intact;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    const std::string framed = EncodeFrameV5(
        static_cast<uint32_t>(MsgType::kPushEvent), 9, torn);
    io::BinaryReader reader(framed);
    auto frame = DecodeFrameV5(&reader);
    ASSERT_TRUE(frame.ok()) << "framing must accept a valid CRC";
    io::BinaryReader payload_reader(frame->payload);
    EXPECT_FALSE(DecodePushEvent(&payload_reader).ok()) << keep;
  }
}

// The codec encodes only the fields of the announced kind — a push frame
// carries no dead weight from the other variants.
TEST(FrameFuzzV5Test, PushEventRoundTripsEveryKind) {
  for (PushKind kind :
       {PushKind::kMatch, PushKind::kIndexUpdate, PushKind::kGap}) {
    PushEvent event;
    event.subscription_id = 8;
    event.sequence = 21;
    event.kind = kind;
    event.svs_id = 5;
    event.camera = "cam-x";
    event.start_ms = -10;
    event.end_ms = 40;
    event.distance = 0.5;
    event.index_version = 33;
    event.dropped = 2;
    io::BinaryWriter writer;
    EncodePushEvent(&writer, event);
    io::BinaryReader reader(writer.buffer());
    auto decoded = DecodePushEvent(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(reader.remaining(), 0u);
    EXPECT_EQ(decoded->subscription_id, 8u);
    EXPECT_EQ(decoded->sequence, 21u);
    EXPECT_EQ(decoded->kind, kind);
    switch (kind) {
      case PushKind::kMatch:
        EXPECT_EQ(decoded->svs_id, 5);
        EXPECT_EQ(decoded->camera, "cam-x");
        EXPECT_EQ(decoded->start_ms, -10);
        EXPECT_EQ(decoded->end_ms, 40);
        EXPECT_EQ(decoded->distance, 0.5);
        break;
      case PushKind::kIndexUpdate:
        EXPECT_EQ(decoded->index_version, 33u);
        break;
      case PushKind::kGap:
        EXPECT_EQ(decoded->dropped, 2u);
        break;
    }
  }
  // A gap marker claiming zero drops is well-formed-but-alien.
  PushEvent empty_gap;
  empty_gap.kind = PushKind::kGap;
  empty_gap.dropped = 0;
  io::BinaryWriter writer;
  EncodePushEvent(&writer, empty_gap);
  io::BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodePushEvent(&reader).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameFuzzV5Test, SubscribeAndAdminTunePayloadsRoundTrip) {
  SubscribeRequest request;
  request.query = FeatureVector({0.5f, 1.5f});
  request.threshold = 2.75;
  request.has_camera_filter = true;
  request.cameras = {"cam-a", "cam-b"};
  request.want_matches = true;
  request.want_stats = true;
  io::BinaryWriter writer;
  EncodeSubscribeRequest(&writer, request);
  io::BinaryReader reader(writer.buffer());
  auto decoded = DecodeSubscribeRequest(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(decoded->threshold, 2.75);
  EXPECT_TRUE(decoded->has_camera_filter);
  EXPECT_EQ(decoded->cameras, request.cameras);
  EXPECT_TRUE(decoded->want_stats);

  AdminTuneRequest tune;
  tune.boundary_scale = 1.5;
  tune.keyframe_selection = false;
  io::BinaryWriter tune_writer;
  EncodeAdminTuneRequest(&tune_writer, tune);
  io::BinaryReader tune_reader(tune_writer.buffer());
  auto tuned = DecodeAdminTuneRequest(&tune_reader);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_EQ(tune_reader.remaining(), 0u);
  ASSERT_TRUE(tuned->boundary_scale.has_value());
  EXPECT_EQ(*tuned->boundary_scale, 1.5);
  ASSERT_TRUE(tuned->keyframe_selection.has_value());
  EXPECT_FALSE(*tuned->keyframe_selection);
  EXPECT_FALSE(tuned->index_mode.has_value());
  EXPECT_FALSE(tuned->omd_alpha.has_value());

  // Truncation sweeps over both payloads: never a crash, never a success.
  for (const std::string& bytes :
       {writer.buffer(), tune_writer.buffer()}) {
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      std::string torn = bytes;
      ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
      io::BinaryReader torn_reader(torn);
      if (bytes == writer.buffer()) {
        EXPECT_FALSE(DecodeSubscribeRequest(&torn_reader).ok()) << keep;
      } else {
        EXPECT_FALSE(DecodeAdminTuneRequest(&torn_reader).ok()) << keep;
      }
    }
  }
}

// --- The length-prefixed-bytes primitives the frame codec is built on. ---

TEST(LengthPrefixedBytesTest, RoundTripsIncludingEmptyAndBinary) {
  io::BinaryWriter writer;
  writer.WriteLengthPrefixedBytes("");
  writer.WriteLengthPrefixedBytes(std::string("\x00\xFFmid\x00", 6));
  io::BinaryReader reader(writer.buffer());
  auto empty = reader.ReadLengthPrefixedBytes();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto binary = reader.ReadLengthPrefixedBytes();
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(*binary, std::string("\x00\xFFmid\x00", 6));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(LengthPrefixedBytesTest, HostileAndTruncatedPrefixesFailSafely) {
  {
    // Length claims far more than the buffer holds (would overflow naive
    // `position + length` arithmetic).
    io::BinaryWriter writer;
    writer.WriteU64(~0ull);
    io::BinaryReader reader(writer.buffer());
    EXPECT_FALSE(reader.ReadLengthPrefixedBytes().ok());
  }
  io::BinaryWriter writer;
  writer.WriteLengthPrefixedBytes("0123456789");
  const std::string bytes = writer.buffer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::string torn = bytes;
    ASSERT_TRUE(FaultInjector::Truncate(&torn, keep).ok());
    io::BinaryReader reader(torn);
    EXPECT_FALSE(reader.ReadLengthPrefixedBytes().ok()) << keep;
  }
}

// --- The in-memory fault helpers themselves. ---

TEST(BufferFaultTest, HelpersValidateInput) {
  std::string data = "0123456789";
  EXPECT_FALSE(FaultInjector::Truncate(&data, 11).ok());
  ASSERT_TRUE(FaultInjector::Truncate(&data, 4).ok());
  EXPECT_EQ(data, "0123");
  ASSERT_TRUE(FaultInjector::FlipBits(&data, 2, 5).ok());
  EXPECT_NE(data, "0123");
  ASSERT_TRUE(FaultInjector::Truncate(&data, 0).ok());
  EXPECT_FALSE(FaultInjector::FlipBits(&data, 1, 5).ok());  // now empty
}

TEST(BufferFaultTest, FlipsAreSeedDeterministic) {
  std::string a = "the quick brown fox";
  std::string b = a;
  std::string c = a;
  ASSERT_TRUE(FaultInjector::FlipBits(&a, 4, 17).ok());
  ASSERT_TRUE(FaultInjector::FlipBits(&b, 4, 17).ok());
  ASSERT_TRUE(FaultInjector::FlipBits(&c, 4, 18).ok());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace vz::net
