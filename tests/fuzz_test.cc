// Randomized property sweeps across modules: these catch invariant
// violations that targeted unit tests miss (rotation bookkeeping, pruning
// correctness under odd metrics, segmentation partition laws).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include <cstdio>
#include <fstream>
#include <string>

#include "clustering/dendrogram_purity.h"
#include "core/omd.h"
#include "core/segmenter.h"
#include "core/svs.h"
#include "index/mtree.h"
#include "index/perch_tree.h"
#include "io/svs_snapshot.h"
#include "sim/dataset.h"
#include "sim/fault_injector.h"
#include "test_util.h"

namespace vz {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, PerchInvariantsSurviveRandomWorkloads) {
  Rng rng(GetParam());
  // Random cluster structure each run.
  const size_t clusters = 2 + rng.UniformUint64(4);
  const size_t per_cluster = 5 + rng.UniformUint64(15);
  const double separation = rng.UniformDouble(5.0, 30.0);
  const double noise = rng.UniformDouble(0.2, 3.0);
  auto data = testing::MakeClusteredPoints(clusters, per_cluster, 6,
                                           separation, noise, GetParam());
  testing::EuclideanPointMetric metric(data.points);
  index::PerchOptions options;
  options.samples_per_node = 1 + rng.UniformUint64(4);
  index::PerchTree tree(&metric, options);

  std::vector<int> order(data.points.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(tree.Insert(order[i]).ok());
    if (i % 7 == 0) {
      ASSERT_TRUE(tree.Validate().ok()) << "after insert " << i;
    }
    if (i % 11 == 3) {
      // Interleaved queries must not disturb the structure.
      auto nn = tree.NearestNeighbor(order[rng.UniformUint64(i + 1)]);
      ASSERT_TRUE(nn.ok());
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), data.points.size());

  // Cluster extraction at any k partitions the items exactly.
  for (size_t k : {1ul, 2ul, clusters, data.points.size() + 5}) {
    const auto extracted = tree.ExtractClusters(k);
    std::vector<int> all;
    for (const auto& cluster : extracted) {
      all.insert(all.end(), cluster.begin(), cluster.end());
    }
    std::sort(all.begin(), all.end());
    std::vector<int> expected(data.points.size());
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(all, expected) << "k=" << k;
  }
  // The exported tree is well-formed and purity is in range.
  auto purity =
      clustering::DendrogramPurity(tree.ToClusterTree(), data.labels);
  ASSERT_TRUE(purity.ok());
  EXPECT_GE(*purity, 0.0);
  EXPECT_LE(*purity, 1.0 + 1e-12);
}

TEST_P(FuzzTest, PrunedNnAlwaysMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xBEEF);
  auto data = testing::MakeClusteredPoints(
      3, 12, 4, rng.UniformDouble(3.0, 20.0), rng.UniformDouble(0.5, 4.0),
      GetParam() ^ 0xBEEF);
  testing::EuclideanPointMetric metric(data.points);
  index::PerchTree tree(&metric, index::PerchOptions{});
  const size_t held_out = 6;
  for (size_t i = 0; i + held_out < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  for (size_t q = data.points.size() - held_out; q < data.points.size();
       ++q) {
    auto nn = tree.NearestNeighbor(static_cast<int>(q));
    ASSERT_TRUE(nn.ok());
    double best = 1e18;
    int expected = -1;
    for (size_t i = 0; i + held_out < data.points.size(); ++i) {
      const double d = EuclideanDistance(data.points[q], data.points[i]);
      if (d < best) {
        best = d;
        expected = static_cast<int>(i);
      }
    }
    EXPECT_EQ(*nn, expected);
  }
}

TEST_P(FuzzTest, MTreeInvariantsSurviveRandomNodeSizes) {
  Rng rng(GetParam() ^ 0xC0DE);
  auto data = testing::MakeClusteredPoints(
      4, 20, 5, rng.UniformDouble(5.0, 25.0), rng.UniformDouble(0.3, 2.5),
      GetParam() ^ 0xC0DE);
  testing::EuclideanPointMetric metric(data.points);
  index::MTreeOptions options;
  options.max_node_size = 2 + rng.UniformUint64(14);
  index::MTree tree(&metric, options);
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  // Range query self-consistency: every returned item is within radius.
  const int probe = static_cast<int>(rng.UniformUint64(data.points.size()));
  const double radius = rng.UniformDouble(1.0, 10.0);
  auto range = tree.RangeQuery(probe, radius);
  ASSERT_TRUE(range.ok());
  for (int id : *range) {
    EXPECT_LE(EuclideanDistance(data.points[static_cast<size_t>(probe)],
                                data.points[static_cast<size_t>(id)]),
              radius + 1e-9);
  }
}

TEST_P(FuzzTest, SegmenterPartitionsItsInputExactly) {
  Rng rng(GetParam() ^ 0xFACE);
  core::SegmenterOptions options;
  options.t_max_ms = 1000 * (20 + rng.UniformUint64(100));
  options.t_split_ms = options.t_max_ms / 10;
  options.min_novel_features = 3 + rng.UniformUint64(8);
  options.novelty_check_stride = 1 + rng.UniformUint64(4);
  core::VideoSegmenter segmenter(options, Rng(GetParam()));

  const size_t total = 100 + rng.UniformUint64(300);
  size_t emitted = 0;
  int64_t ts = 0;
  int64_t last_end = -1;
  for (size_t i = 0; i < total; ++i) {
    FeatureVector v(4);
    // Occasional scene shifts.
    const double center = (i / 60) % 2 == 0 ? 0.0 : 8.0;
    for (size_t d = 0; d < 4; ++d) {
      v[d] = static_cast<float>(center + rng.Gaussian(0.0, 0.3));
    }
    auto segment = segmenter.AddFeature(ts, v);
    if (segment.has_value()) {
      emitted += segment->features.size();
      EXPECT_LE(segment->start_ms, segment->end_ms);
      EXPECT_GT(segment->start_ms, last_end - 1);  // non-overlapping
      last_end = segment->end_ms;
    }
    ts += 500 + static_cast<int64_t>(rng.UniformUint64(1500));
  }
  auto tail = segmenter.Flush();
  if (tail.has_value()) emitted += tail->features.size();
  // Conservation law: every feature fed in leaves in exactly one segment.
  EXPECT_EQ(emitted, total);
  EXPECT_EQ(segmenter.buffered_features(), 0u);
}

TEST_P(FuzzTest, OmdSymmetryUnderRandomMaps) {
  Rng rng(GetParam() ^ 0xD00D);
  core::OmdOptions options;
  options.mode = rng.Bernoulli(0.5) ? core::OmdMode::kExact
                                    : core::OmdMode::kThresholded;
  options.threshold_alpha = rng.UniformDouble(0.4, 1.0);
  options.max_vectors = 32;
  core::OmdCalculator calc(options);
  const FeatureMap a = testing::MakeMap(
      3 + rng.UniformUint64(20), 5, rng.UniformDouble(-2, 2), 1.0,
      GetParam() * 3 + 1);
  const FeatureMap b = testing::MakeMap(
      3 + rng.UniformUint64(20), 5, rng.UniformDouble(-2, 2), 1.0,
      GetParam() * 3 + 2);
  auto ab = calc.Distance(a, b);
  auto ba = calc.Distance(b, a);
  auto aa = calc.Distance(a, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  ASSERT_TRUE(aa.ok());
  EXPECT_NEAR(*ab, *ba, 1e-6 * (1.0 + *ab));
  EXPECT_NEAR(*aa, 0.0, 1e-6);
  EXPECT_GE(*ab, 0.0);
}

TEST_P(FuzzTest, CorruptedSnapshotsNeverCrashOrPoisonTheStore) {
  Rng rng(GetParam() ^ 0x51AB);
  core::SvsStore original;
  for (int i = 0; i < 4; ++i) {
    const core::SvsId id = original.Create(
        "cam-" + std::to_string(i % 2), i * 100, i * 100 + 90,
        testing::MakeMap(8, 5, i * 1.5, 0.5, GetParam() + i));
    auto svs = original.GetMutable(id);
    ASSERT_TRUE(svs.ok());
    (*svs)->set_frame_ids({i * 2LL, i * 2LL + 1});
  }
  const std::string path = ::testing::TempDir() + "/fuzz_snap_" +
                           std::to_string(GetParam()) + ".vzss";

  for (const bool v1 : {false, true}) {
    for (int trial = 0; trial < 12; ++trial) {
      ASSERT_TRUE((v1 ? io::SaveSvsStoreV1(original, path)
                      : io::SaveSvsStore(original, path))
                      .ok());
      size_t size = 0;
      {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        size = static_cast<size_t>(in.tellg());
      }
      const bool truncated = rng.Bernoulli(0.5);
      if (truncated) {
        ASSERT_TRUE(sim::FaultInjector::TruncateFile(
                        path, static_cast<size_t>(rng.UniformUint64(size)))
                        .ok());
      } else {
        ASSERT_TRUE(sim::FaultInjector::FlipBits(
                        path, 1 + static_cast<size_t>(rng.UniformUint64(8)),
                        rng.NextUint64())
                        .ok());
      }

      // Default (all-or-nothing) mode: a clean error leaves the target
      // store untouched; v1 bit flips may parse (no checksums to catch
      // them) but must never crash. v2 catches every corruption.
      core::SvsStore strict;
      const Status status = io::LoadSvsStore(path, &strict);
      if (!status.ok()) {
        EXPECT_EQ(strict.size(), 0u)
            << "failed load appended records (v1=" << v1
            << ", truncated=" << truncated << ", trial=" << trial << ")";
      }
      if (!v1) {
        EXPECT_FALSE(status.ok())
            << "v2 accepted corruption (truncated=" << truncated
            << ", trial=" << trial << ")";
      }

      // Salvage mode: success or error, and on success the store holds
      // exactly the reported prefix.
      core::SvsStore salvaged;
      io::SnapshotLoadOptions salvage_options;
      salvage_options.salvage = true;
      io::SnapshotLoadReport report;
      const Status salvage_status =
          io::LoadSvsStore(path, &salvaged, salvage_options, &report);
      if (salvage_status.ok()) {
        EXPECT_EQ(salvaged.size(), report.records_loaded);
      } else {
        EXPECT_EQ(salvaged.size(), 0u);
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace vz
