#include "solver/min_cost_flow.h"

#include <gtest/gtest.h>

namespace vz::solver {
namespace {

TEST(MinCostFlowTest, SingleArc) {
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(s, t, 2.5, 3.0).ok());
  auto result = flow.Solve(s, t);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->max_flow, 2.5);
  EXPECT_DOUBLE_EQ(result->min_cost, 7.5);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // Two parallel paths; the cheap one saturates first.
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  const int a = flow.AddNode();
  const int b = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(s, a, 1.0, 1.0).ok());
  ASSERT_TRUE(flow.AddArc(a, t, 1.0, 1.0).ok());
  ASSERT_TRUE(flow.AddArc(s, b, 1.0, 5.0).ok());
  ASSERT_TRUE(flow.AddArc(b, t, 1.0, 5.0).ok());
  auto result = flow.Solve(s, t);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->max_flow, 2.0);
  EXPECT_DOUBLE_EQ(result->min_cost, 1.0 * 2 + 5.0 * 2);
}

TEST(MinCostFlowTest, ResidualReroutingFindsOptimum) {
  // Classic case where the greedy first path must be partially undone via
  // the residual arc to achieve min cost at max flow.
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  const int a = flow.AddNode();
  const int b = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(s, a, 1.0, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(s, b, 1.0, 2.0).ok());
  ASSERT_TRUE(flow.AddArc(a, b, 1.0, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(a, t, 1.0, 3.0).ok());
  ASSERT_TRUE(flow.AddArc(b, t, 2.0, 1.0).ok());
  auto result = flow.Solve(s, t);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->max_flow, 2.0);
  // Optimal: s->a->b->t (cost 1) and s->b->t (cost 3) = 4.
  EXPECT_DOUBLE_EQ(result->min_cost, 4.0);
}

TEST(MinCostFlowTest, FlowOnArcReportsShippedAmount) {
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  auto arc = flow.AddArc(s, t, 4.0, 1.0);
  ASSERT_TRUE(arc.ok());
  ASSERT_TRUE(flow.Solve(s, t).ok());
  EXPECT_DOUBLE_EQ(flow.FlowOnArc(*arc), 4.0);
}

TEST(MinCostFlowTest, DisconnectedGraphShipsNothing) {
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  flow.AddNode();
  auto result = flow.Solve(s, t);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->max_flow, 0.0);
  EXPECT_DOUBLE_EQ(result->min_cost, 0.0);
}

TEST(MinCostFlowTest, RejectsInvalidInput) {
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  EXPECT_FALSE(flow.AddArc(s, 5, 1.0, 1.0).ok());
  EXPECT_FALSE(flow.AddArc(s, t, -1.0, 1.0).ok());
  EXPECT_FALSE(flow.AddArc(s, t, 1.0, -1.0).ok());
  EXPECT_FALSE(flow.Solve(s, s).ok());
}

TEST(MinCostFlowTest, SolveTwiceFails) {
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(s, t, 1.0, 1.0).ok());
  ASSERT_TRUE(flow.Solve(s, t).ok());
  EXPECT_FALSE(flow.Solve(s, t).ok());
}

TEST(MinCostFlowTest, TransportationShapedInstance) {
  // 2 supplies x 3 demands with known optimum.
  MinCostFlow flow;
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  const int s0 = flow.AddNode();
  const int s1 = flow.AddNode();
  const int d0 = flow.AddNode();
  const int d1 = flow.AddNode();
  const int d2 = flow.AddNode();
  ASSERT_TRUE(flow.AddArc(s, s0, 0.5, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(s, s1, 0.5, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(d0, t, 0.4, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(d1, t, 0.4, 0.0).ok());
  ASSERT_TRUE(flow.AddArc(d2, t, 0.2, 0.0).ok());
  // Costs: s0 close to d0, s1 close to d1; d2 equally far from both.
  ASSERT_TRUE(flow.AddArc(s0, d0, 1.0, 0.1).ok());
  ASSERT_TRUE(flow.AddArc(s0, d1, 1.0, 1.0).ok());
  ASSERT_TRUE(flow.AddArc(s0, d2, 1.0, 0.5).ok());
  ASSERT_TRUE(flow.AddArc(s1, d0, 1.0, 1.0).ok());
  ASSERT_TRUE(flow.AddArc(s1, d1, 1.0, 0.1).ok());
  ASSERT_TRUE(flow.AddArc(s1, d2, 1.0, 0.5).ok());
  auto result = flow.Solve(s, t);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->max_flow, 1.0, 1e-9);
  // 0.4 on each cheap arc + 0.2 through d2: 0.4*0.1*2 + 0.2*0.5 = 0.18.
  EXPECT_NEAR(result->min_cost, 0.18, 1e-9);
}

}  // namespace
}  // namespace vz::solver
