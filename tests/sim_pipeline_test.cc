// Coverage for the simulation pipeline pieces the end-to-end tests exercise
// only implicitly: CameraSimulator's observation contract, combined-drive
// schedules, evaluation accumulation, and detector/extractor interplay.
#include <gtest/gtest.h>

#include <set>

#include "sim/dataset.h"
#include "sim/evaluation.h"
#include "sim/object_class.h"
#include "sim/video_source.h"

namespace vz::sim {
namespace {

TEST(CameraSimulatorTest, ObservationsCarryDetectionsAndLogTruth) {
  SceneLibrary scenes;
  VideoSourceOptions options;
  options.camera = "cam";
  options.fps = 1.0;
  options.style_tag = "nyc";
  options.schedule = {{&scenes.downtown(), 30'000}};
  int64_t next_id = 0;
  FeatureSpace space(FeatureSpaceOptions{16, 10.0, 2.0, 3});
  FeatureExtractor extractor(&space, ExtractorProfile::ResNet50());
  ObjectDetector detector(DetectorProfile{});
  GroundTruthLog log;
  CameraSimulator sim(VideoSource(options, Rng(5), &next_id), &detector,
                      &extractor, &log, Rng(7));

  size_t frames = 0;
  size_t objects = 0;
  std::set<int64_t> ids;
  for (;;) {
    auto obs = sim.NextObservation();
    if (!obs.has_value()) break;
    ++frames;
    EXPECT_EQ(obs->camera, "cam");
    EXPECT_TRUE(ids.insert(obs->frame_id).second) << "duplicate frame id";
    EXPECT_GE(obs->deviation_from_previous, 0.0);
    EXPECT_LE(obs->deviation_from_previous, 1.0);
    EXPECT_GT(obs->encoded_bytes, 0u);
    for (const core::DetectedObject& object : obs->objects) {
      ++objects;
      EXPECT_EQ(object.feature.dim(), 16u);
      EXPECT_GE(object.class_hint, 0);
      EXPECT_GT(object.box.Area(), 0.0f);
    }
    // Every observation has a truth record.
    EXPECT_NE(log.Lookup(obs->frame_id), nullptr);
  }
  EXPECT_EQ(frames, 30u);
  EXPECT_GT(objects, frames);  // downtown averages several objects/frame
  EXPECT_EQ(log.size(), frames);
}

TEST(DeploymentTest, CombinedDrivesSwitchScenes) {
  DeploymentOptions options;
  options.cities = 0;
  options.downtown_per_city = 0;
  options.highway_cameras = 0;
  options.train_stations = 0;
  options.harbors = 0;
  options.combined_drives = 1;
  options.feed_duration_ms = 60'000;
  options.fps = 1.0;
  Deployment deployment(options);
  ASSERT_EQ(deployment.cameras().size(), 1u);
  EXPECT_EQ(deployment.cameras()[0].kind, "combined");

  // First half is downtown-flavored (people + traffic mix), second half is
  // highway-flavored (no pedestrians on foot in our highway scene).
  size_t first_half_people = 0;
  size_t second_half_people = 0;
  for (const auto& obs : deployment.observations()) {
    const FrameTruth* truth = deployment.log().Lookup(obs.frame_id);
    ASSERT_NE(truth, nullptr);
    size_t people = 0;
    for (int cls : truth->object_classes) people += (cls == kPerson);
    if (truth->timestamp_ms < 30'000) {
      first_half_people += people;
    } else {
      second_half_people += people;
    }
  }
  EXPECT_GT(first_half_people, 5u);
  EXPECT_EQ(second_half_people, 0u);
}

TEST(DeploymentTest, DeterministicAcrossInstances) {
  DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 1;
  options.highway_cameras = 1;
  options.train_stations = 0;
  options.harbors = 0;
  options.feed_duration_ms = 20'000;
  options.fps = 1.0;
  options.seed = 99;
  Deployment a(options);
  Deployment b(options);
  const auto& oa = a.observations();
  const auto& ob = b.observations();
  ASSERT_EQ(oa.size(), ob.size());
  for (size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].frame_id, ob[i].frame_id);
    EXPECT_EQ(oa[i].timestamp_ms, ob[i].timestamp_ms);
    ASSERT_EQ(oa[i].objects.size(), ob[i].objects.size());
    for (size_t o = 0; o < oa[i].objects.size(); ++o) {
      EXPECT_EQ(oa[i].objects[o].feature, ob[i].objects[o].feature);
    }
  }
}

TEST(EvaluationTest, AccumulationMatchesJointEvaluation) {
  GroundTruthLog log;
  for (int64_t f = 0; f < 40; ++f) {
    log.Record(f, {"cam", f, f % 3 == 0 ? std::vector<int>{kBoat}
                                        : std::vector<int>{}});
  }
  HeavyModel model(0.95, 0.05, 5);
  std::vector<int64_t> universe;
  for (int64_t f = 0; f < 40; ++f) universe.push_back(f);
  std::vector<int64_t> first_half(universe.begin(), universe.begin() + 20);

  // Two queries accumulated vs the sum of their parts.
  QueryEvaluation split;
  split += EvaluateFrameQuery(first_half, universe, kBoat, log, model);
  split += EvaluateFrameQuery(first_half, universe, kBoat, log, model);
  const QueryEvaluation once =
      EvaluateFrameQuery(first_half, universe, kBoat, log, model);
  EXPECT_EQ(split.true_positives, 2 * once.true_positives);
  EXPECT_EQ(split.false_negatives, 2 * once.false_negatives);
  EXPECT_DOUBLE_EQ(split.Recall(), once.Recall());
  EXPECT_DOUBLE_EQ(split.Fnr(), 1.0 - split.Recall());
}

TEST(EvaluationTest, EmptyExaminedSetIsAllNegatives) {
  GroundTruthLog log;
  log.Record(1, {"cam", 0, {kCar}});
  log.Record(2, {"cam", 0, {}});
  HeavyModel model(1.0, 0.0, 7);
  const auto eval = EvaluateFrameQuery({}, {1, 2}, kCar, log, model);
  EXPECT_EQ(eval.true_positives, 0u);
  EXPECT_EQ(eval.false_negatives, 1u);
  EXPECT_EQ(eval.true_negatives, 1u);
  EXPECT_DOUBLE_EQ(eval.Precision(), 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(eval.Recall(), 0.0);
}

TEST(SceneLibraryTest, ResidentialIsTheOnlyHydrantSource) {
  SceneLibrary scenes;
  EXPECT_GT(scenes.downtown_residential()
                .class_distribution[kFireHydrant],
            0.0);
  EXPECT_DOUBLE_EQ(
      scenes.downtown_commercial().class_distribution[kFireHydrant], 0.0);
  EXPECT_DOUBLE_EQ(scenes.highway().class_distribution[kFireHydrant], 0.0);
  EXPECT_DOUBLE_EQ(
      scenes.train_station_train().class_distribution[kFireHydrant], 0.0);
  // Trains appear only when a train is passing.
  EXPECT_GT(scenes.train_station_train().class_distribution[kTrain], 0.0);
  EXPECT_DOUBLE_EQ(
      scenes.train_station_empty().class_distribution[kTrain], 0.0);
}

}  // namespace
}  // namespace vz::sim
