#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/dataset.h"
#include "sim/evaluation.h"
#include "sim/feature_extractor.h"
#include "sim/feature_space.h"
#include "sim/ground_truth.h"
#include "sim/object_class.h"
#include "sim/object_detector.h"
#include "sim/scene.h"
#include "sim/verifier.h"
#include "sim/video_source.h"

namespace vz::sim {
namespace {

TEST(ObjectClassTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c < kNumObjectClasses; ++c) {
    names.insert(ObjectClassName(c));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumObjectClasses));
  EXPECT_EQ(ObjectClassName(kOtherClass), "other");
}

TEST(SceneTest, DistributionsAreNormalizedEnough) {
  SceneLibrary scenes;
  for (const Scene* scene :
       {&scenes.downtown(), &scenes.highway(), &scenes.train_station_train(),
        &scenes.train_station_empty(), &scenes.harbor_busy(),
        &scenes.harbor_quiet(), &scenes.parking_lot()}) {
    double total = 0.0;
    for (double p : scene->class_distribution) total += p;
    EXPECT_NEAR(total, 1.0, 1e-6) << scene->name;
  }
}

TEST(SceneTest, SamplingFollowsDistribution) {
  SceneLibrary scenes;
  Rng rng(1);
  std::vector<int> counts(kNumObjectClasses, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(scenes.highway().SampleClass(&rng))]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[kCar]) / n, 0.58, 0.02);
  EXPECT_EQ(counts[kBoat], 0);
}

TEST(FeatureSpaceTest, PrototypesAreWellSeparated) {
  FeatureSpace space(FeatureSpaceOptions{});
  for (int a = 0; a < kNumObjectClasses; ++a) {
    for (int b = a + 1; b < kNumObjectClasses; ++b) {
      EXPECT_GT(EuclideanDistance(space.Prototype(a), space.Prototype(b)),
                5.0);
    }
  }
}

TEST(FeatureSpaceTest, StyleOffsetsAreDeterministic) {
  FeatureSpace space(FeatureSpaceOptions{});
  const FeatureVector a = space.StyleOffset("nyc");
  const FeatureVector b = space.StyleOffset("nyc");
  const FeatureVector c = space.StyleOffset("la");
  EXPECT_EQ(a, b);
  EXPECT_GT(EuclideanDistance(a, c), 0.1);
}

TEST(FeatureSpaceTest, NearestPrototypeIdentity) {
  FeatureSpace space(FeatureSpaceOptions{});
  for (int c = 0; c < kNumObjectClasses; ++c) {
    EXPECT_EQ(space.NearestPrototype(space.Prototype(c)), c);
  }
}

TEST(FeatureExtractorTest, GoodExtractorClassifiesAccurately) {
  FeatureSpace space(FeatureSpaceOptions{});
  FeatureExtractor extractor(&space, ExtractorProfile::ResNet50());
  Rng rng(2);
  int correct = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const int truth = rng.UniformInt(0, kNumObjectClasses - 1);
    const FeatureVector f = extractor.Extract(truth, "nyc", &rng);
    correct += (extractor.Classify(f) == truth);
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.80);
}

TEST(FeatureExtractorTest, Vgg16ConfusesFireHydrants) {
  FeatureSpace space(FeatureSpaceOptions{});
  FeatureExtractor resnet(&space, ExtractorProfile::ResNet50());
  FeatureExtractor vgg(&space, ExtractorProfile::Vgg16());
  Rng rng_a(3);
  Rng rng_b(3);
  const int n = 600;
  int resnet_correct = 0;
  int vgg_correct = 0;
  for (int i = 0; i < n; ++i) {
    resnet_correct +=
        resnet.Classify(resnet.Extract(kFireHydrant, "", &rng_a)) ==
        kFireHydrant;
    vgg_correct +=
        vgg.Classify(vgg.Extract(kFireHydrant, "", &rng_b)) == kFireHydrant;
  }
  EXPECT_GT(resnet_correct, vgg_correct + n / 10);
}

TEST(FeatureExtractorTest, TopKIncludesOtherForHardExamples) {
  FeatureSpace space(FeatureSpaceOptions{});
  ExtractorProfile profile = ExtractorProfile::ResNet50();
  profile.hard_example_prob = 1.0;  // every example is hard
  FeatureExtractor extractor(&space, profile);
  Rng rng(4);
  int other = 0;
  for (int i = 0; i < 200; ++i) {
    const auto ranking =
        extractor.TopKClasses(extractor.Extract(kCar, "", &rng), 3);
    other += (ranking.front() == kOtherClass);
  }
  EXPECT_GT(other, 100);
}

TEST(ObjectDetectorTest, RecallControlsDetections) {
  DetectorProfile profile;
  profile.recall = 0.5;
  profile.false_positives_per_frame = 0.0;
  ObjectDetector detector(profile);
  Rng rng(5);
  size_t detected = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    detected += detector.Detect({kCar, kPerson}, &rng).size();
  }
  EXPECT_NEAR(static_cast<double>(detected) / (2 * n), 0.5, 0.05);
}

TEST(ObjectDetectorTest, BoxesAreInsideFrame) {
  ObjectDetector detector(DetectorProfile{});
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    for (const Detection& d : detector.Detect({kCar}, &rng)) {
      EXPECT_GE(d.box.left, 0.0f);
      EXPECT_GE(d.box.top, 0.0f);
      EXPECT_LE(d.box.right, 1280.0f);
      EXPECT_LE(d.box.bottom, 720.0f);
      EXPECT_GT(d.box.Area(), 0.0f);
    }
  }
}

TEST(VideoSourceTest, ScheduleControlsDurationAndScenes) {
  SceneLibrary scenes;
  VideoSourceOptions options;
  options.camera = "cam";
  options.fps = 1.0;
  options.schedule = {{&scenes.downtown(), 10'000},
                      {&scenes.highway(), 10'000}};
  int64_t next_id = 0;
  VideoSource source(options, Rng(7), &next_id);
  size_t frames = 0;
  size_t downtown_frames = 0;
  int64_t last_ts = -1;
  for (;;) {
    auto frame = source.NextFrame();
    if (!frame.has_value()) break;
    ++frames;
    EXPECT_GT(frame->timestamp_ms, last_ts);
    last_ts = frame->timestamp_ms;
    downtown_frames += (frame->scene->name == "downtown");
  }
  EXPECT_EQ(frames, 20u);
  EXPECT_EQ(downtown_frames, 10u);
  EXPECT_EQ(next_id, 20);
}

TEST(GroundTruthLogTest, RecordsAndQueries) {
  GroundTruthLog log;
  log.Record(5, {"cam", 100, {kCar, kBoat}});
  EXPECT_TRUE(log.FrameContains(5, kCar));
  EXPECT_FALSE(log.FrameContains(5, kTrain));
  EXPECT_FALSE(log.FrameContains(6, kCar));
  ASSERT_NE(log.Lookup(5), nullptr);
  EXPECT_EQ(log.Lookup(5)->camera, "cam");
}

TEST(HeavyModelTest, DeterministicVerdicts) {
  HeavyModel model(0.97, 0.05, 1);
  for (int64_t f = 0; f < 50; ++f) {
    EXPECT_EQ(model.DetectsInFrame(f, kCar, true),
              model.DetectsInFrame(f, kCar, true));
  }
}

TEST(HeavyModelTest, RatesAreApproximatelyRespected) {
  HeavyModel model(0.9, 0.1, 2);
  int tp = 0;
  int fp = 0;
  const int n = 20000;
  for (int64_t f = 0; f < n; ++f) {
    tp += model.DetectsInFrame(f, kCar, true);
    fp += model.DetectsInFrame(f, kBoat, false);
  }
  EXPECT_NEAR(static_cast<double>(tp) / n, 0.9, 0.02);
  EXPECT_NEAR(static_cast<double>(fp) / n, 0.1, 0.02);
}

TEST(EvaluationTest, CountsConfusionCorrectly) {
  GroundTruthLog log;
  log.Record(1, {"cam", 0, {kCar}});
  log.Record(2, {"cam", 0, {}});
  log.Record(3, {"cam", 0, {kCar}});
  log.Record(4, {"cam", 0, {}});
  HeavyModel perfect(1.0, 0.0, 3);
  // Examined: frames 1 and 2. Frame 3 (positive, unexamined) becomes FN.
  const auto eval =
      EvaluateFrameQuery({1, 2}, {1, 2, 3, 4}, kCar, log, perfect);
  EXPECT_EQ(eval.true_positives, 1u);
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_EQ(eval.false_negatives, 1u);
  EXPECT_EQ(eval.true_negatives, 2u);
  EXPECT_DOUBLE_EQ(eval.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(eval.Precision(), 1.0);
}

TEST(SyntheticDatasetTest, ShapesAndLabels) {
  SyntheticDatasetOptions options;
  options.num_svs = 30;
  options.vectors_per_svs = 20;
  options.dim = 16;
  options.num_types = 5;
  const SyntheticDataset data = MakeSyntheticDataset(options);
  ASSERT_EQ(data.svss.size(), 30u);
  ASSERT_EQ(data.labels.size(), 30u);
  for (const FeatureMap& map : data.svss) {
    EXPECT_EQ(map.size(), 20u);
    EXPECT_EQ(map.dim(), 16u);
  }
  for (int label : data.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(SyntheticDatasetTest, SameTypeIsCloserThanCrossType) {
  SyntheticDatasetOptions options;
  options.num_svs = 20;
  options.vectors_per_svs = 15;
  options.dim = 32;
  options.num_types = 4;
  const SyntheticDataset data = MakeSyntheticDataset(options);
  // Compare centroid distances as a cheap proxy.
  double same = 0.0;
  double cross = 0.0;
  size_t same_n = 0;
  size_t cross_n = 0;
  for (size_t i = 0; i < data.svss.size(); ++i) {
    for (size_t j = i + 1; j < data.svss.size(); ++j) {
      const double d = ObjectCentroidDistance(data.svss[i], data.svss[j]);
      if (data.labels[i] == data.labels[j]) {
        same += d;
        ++same_n;
      } else {
        cross += d;
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(SyntheticDatasetTest, VariableLengthsWithinBounds) {
  SyntheticDatasetOptions options;
  options.num_svs = 20;
  options.variable_length = true;
  options.min_vectors = 5;
  options.max_vectors = 15;
  options.dim = 8;
  const SyntheticDataset data = MakeSyntheticDataset(options);
  bool varied = false;
  for (const FeatureMap& map : data.svss) {
    EXPECT_GE(map.size(), 5u);
    EXPECT_LE(map.size(), 15u);
    varied |= (map.size() != data.svss.front().size());
  }
  EXPECT_TRUE(varied);
}

TEST(DeploymentTest, BuildsExpectedCameraMix) {
  DeploymentOptions options;
  options.feed_duration_ms = 30'000;
  options.fps = 1.0;
  Deployment deployment(options);
  size_t downtown = 0;
  size_t highway = 0;
  size_t station = 0;
  size_t harbor = 0;
  for (const auto& cam : deployment.cameras()) {
    if (cam.kind == "downtown") ++downtown;
    if (cam.kind == "highway") ++highway;
    if (cam.kind == "train_station") ++station;
    if (cam.kind == "harbor") ++harbor;
  }
  EXPECT_EQ(downtown, 20u);
  EXPECT_EQ(highway, 20u);
  EXPECT_EQ(station, 2u);
  EXPECT_EQ(harbor, 2u);
  EXPECT_FALSE(deployment.observations().empty());
  EXPECT_GT(deployment.log().size(), 0u);
}

}  // namespace
}  // namespace vz::sim
