#include "clustering/hac.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clustering/dendrogram_purity.h"
#include "test_util.h"

namespace vz::clustering {
namespace {

double PointDist(const std::vector<double>& pts, size_t i, size_t j) {
  return std::fabs(pts[i] - pts[j]);
}

TEST(HacTest, SingleItem) {
  auto result = Hac(1, [](size_t, size_t) { return 0.0; }, Linkage::kSingle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.Validate().ok());
  EXPECT_EQ(result->merges.size(), 0u);
}

TEST(HacTest, RejectsEmpty) {
  EXPECT_FALSE(Hac(0, [](size_t, size_t) { return 0.0; },
                   Linkage::kAverage)
                   .ok());
}

TEST(HacTest, MergesNearestPairFirst) {
  std::vector<double> pts = {0.0, 0.1, 5.0, 9.0};
  auto result = Hac(pts.size(), [&pts](size_t i, size_t j) {
    return PointDist(pts, i, j);
  }, Linkage::kSingle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->merges.size(), 3u);
  EXPECT_NEAR(result->merges[0].height, 0.1, 1e-12);
  // Full tree: n(n-1)/2 distance evaluations.
  EXPECT_EQ(result->num_distance_evals, 6u);
}

class HacLinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(HacLinkageTest, RecoversSeparatedClustersAtCut) {
  auto data = testing::MakeClusteredPoints(3, 12, 6, 25.0, 0.5, 21);
  auto result = Hac(data.points.size(), [&data](size_t i, size_t j) {
    return EuclideanDistance(data.points[i], data.points[j]);
  }, GetParam());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tree.Validate().ok());

  const auto flat = HacFlatClusters(*result, data.points.size(), 3);
  // Same label -> same flat cluster; different label -> different cluster.
  for (size_t i = 0; i < flat.size(); ++i) {
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (data.labels[i] == data.labels[j]) {
        EXPECT_EQ(flat[i], flat[j]);
      } else {
        EXPECT_NE(flat[i], flat[j]);
      }
    }
  }
}

TEST_P(HacLinkageTest, PurityOneOnSeparatedData) {
  auto data = testing::MakeClusteredPoints(4, 8, 6, 25.0, 0.5, 22);
  auto result = Hac(data.points.size(), [&data](size_t i, size_t j) {
    return EuclideanDistance(data.points[i], data.points[j]);
  }, GetParam());
  ASSERT_TRUE(result.ok());
  auto purity = DendrogramPurity(result->tree, data.labels);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST_P(HacLinkageTest, MergeHeightsNonDecreasing) {
  auto data = testing::MakeClusteredPoints(2, 15, 4, 8.0, 2.0, 23);
  auto result = Hac(data.points.size(), [&data](size_t i, size_t j) {
    return EuclideanDistance(data.points[i], data.points[j]);
  }, GetParam());
  ASSERT_TRUE(result.ok());
  // Single/complete/average linkage are all reducible, so the merge
  // sequence is monotone.
  for (size_t m = 1; m < result->merges.size(); ++m) {
    EXPECT_GE(result->merges[m].height, result->merges[m - 1].height - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, HacLinkageTest,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

TEST(HacTest, FlatClustersClampK) {
  std::vector<double> pts = {0.0, 1.0, 2.0};
  auto result = Hac(pts.size(), [&pts](size_t i, size_t j) {
    return PointDist(pts, i, j);
  }, Linkage::kAverage);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(HacFlatClusters(*result, 3, 0).size(), 3u);
  auto one = HacFlatClusters(*result, 3, 1);
  for (size_t label : one) EXPECT_EQ(label, 0u);
  auto all = HacFlatClusters(*result, 3, 10);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace vz::clustering
