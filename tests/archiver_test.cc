#include "core/archiver.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

class ArchiverTest : public ::testing::Test {
 protected:
  static sim::DeploymentOptions SmallDeployment() {
    sim::DeploymentOptions options;
    options.cities = 1;
    options.downtown_per_city = 2;
    options.highway_cameras = 1;
    options.train_stations = 1;
    options.harbors = 1;
    options.feed_duration_ms = 60'000;
    options.fps = 1.0;
    options.feature_dim = 32;
    return options;
  }

  static VideoZillaOptions VzOptions() {
    VideoZillaOptions options;
    options.segmenter.t_max_ms = 20'000;
    options.omd.max_vectors = 48;
    options.boundary_scale = 1.3;
    options.enable_keyframe_selection = false;
    return options;
  }

  ArchiverTest()
      : deployment_(SmallDeployment()),
        system_(VzOptions()),
        heavy_(1.0, 0.0, 3),
        verifier_(&deployment_.space(), &deployment_.log(), &heavy_) {
    EXPECT_TRUE(deployment_.IngestAll(&system_).ok());
    system_.SetVerifier(&verifier_);
  }

  sim::Deployment deployment_;
  VideoZilla system_;
  sim::HeavyModel heavy_;
  sim::SimObjectVerifier verifier_;
};

TEST_F(ArchiverTest, UnaccessedStoreArchivesEverything) {
  ArchiverOptions options;
  options.access_frequency_threshold = 0.01;
  Archiver archiver(&system_, options);
  auto plan = archiver.PlanArchive();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->to_archive.size(), system_.svs_store().size());
  EXPECT_DOUBLE_EQ(plan->ByteFraction(), 1.0);
  EXPECT_DOUBLE_EQ(plan->DurationFraction(), 1.0);
}

TEST_F(ArchiverTest, AccessedClustersAreKept) {
  // Access boat content heavily, then plan: boat-cluster SVSs should be
  // kept while untouched clusters are archived.
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const FeatureVector query =
        deployment_.MakeQueryFeature(sim::kBoat, &rng);
    ASSERT_TRUE(system_.DirectQuery(query).ok());
  }
  ArchiverOptions options;
  options.access_frequency_threshold = 0.5;
  Archiver archiver(&system_, options);
  auto plan = archiver.PlanArchive();
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(plan->to_archive.size(), system_.svs_store().size());
  EXPECT_GT(plan->to_archive.size(), 0u);
  // The plan's byte and duration fractions are consistent with its content.
  EXPECT_GT(plan->total_bytes, plan->archived_bytes);
}

TEST_F(ArchiverTest, IsArchivedReflectsAccessFrequency) {
  Rng rng(7);
  // Warm up accesses on boat content.
  for (int i = 0; i < 8; ++i) {
    const FeatureVector query =
        deployment_.MakeQueryFeature(sim::kBoat, &rng);
    ASSERT_TRUE(system_.DirectQuery(query).ok());
  }
  Archiver archiver(&system_, ArchiverOptions{});
  // A harbor-like query SVS should report a higher cluster access frequency
  // than a downtown-like one.
  SvsId harbor_svs = -1;
  SvsId downtown_svs = -1;
  for (SvsId id : system_.svs_store().AllIds()) {
    auto svs = system_.svs_store().Get(id);
    if (!svs.ok()) continue;
    if (harbor_svs < 0 && (*svs)->camera().rfind("harbor", 0) == 0 &&
        deployment_.log().SvsContains(**svs, sim::kBoat)) {
      harbor_svs = id;
    }
    if (downtown_svs < 0 && (*svs)->camera().rfind("downtown", 0) == 0) {
      downtown_svs = id;
    }
  }
  ASSERT_GE(harbor_svs, 0);
  ASSERT_GE(downtown_svs, 0);
  auto harbor_map = system_.svs_store().Get(harbor_svs);
  auto downtown_map = system_.svs_store().Get(downtown_svs);
  ASSERT_TRUE(harbor_map.ok());
  ASSERT_TRUE(downtown_map.ok());
  auto harbor_freq = archiver.IsArchived((*harbor_map)->features());
  auto downtown_freq = archiver.IsArchived((*downtown_map)->features());
  ASSERT_TRUE(harbor_freq.ok());
  ASSERT_TRUE(downtown_freq.ok());
  EXPECT_GT(*harbor_freq, *downtown_freq);
}

TEST_F(ArchiverTest, EstimatedFrequencyFallsBackGracefully) {
  Archiver archiver(&system_, ArchiverOptions{});
  auto freq = archiver.EstimatedAccessFrequency(0);
  ASSERT_TRUE(freq.ok());
  EXPECT_GE(*freq, 0.0);
  EXPECT_FALSE(archiver.EstimatedAccessFrequency(999999).ok());
}

}  // namespace
}  // namespace vz::core
