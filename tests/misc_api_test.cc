// Coverage for small public APIs that the larger suites exercise only
// incidentally: metric memoization, calculator knobs, store orderings, and
// logging levels.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/feature_map_metric.h"
#include "core/omd.h"
#include "test_util.h"

namespace vz {
namespace {

using ::vz::testing::MakeMap;

TEST(FeatureMapListMetricTest, MemoizationCountsMissesOnly) {
  std::vector<FeatureMap> maps;
  maps.push_back(MakeMap(8, 4, 0.0, 0.3, 1));
  maps.push_back(MakeMap(8, 4, 3.0, 0.3, 2));
  maps.push_back(MakeMap(8, 4, 6.0, 0.3, 3));
  core::OmdCalculator calc;
  core::FeatureMapListMetric cached(&maps, &calc, /*memoize=*/true);
  core::FeatureMapListMetric uncached(&maps, &calc, /*memoize=*/false);

  const double d1 = cached.Distance(0, 1);
  const double d2 = cached.Distance(1, 0);  // symmetric cache hit
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(cached.num_distance_evals(), 1u);

  uncached.Distance(0, 1);
  uncached.Distance(1, 0);
  EXPECT_EQ(uncached.num_distance_evals(), 2u);

  // Lower bound never exceeds the distance (exact-mode property is covered
  // elsewhere; here just the plumbing).
  EXPECT_GE(cached.Distance(0, 2), 0.0);
  EXPECT_GE(cached.LowerBound(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(cached.Distance(1, 1), 0.0);
  cached.ResetCounters();
  EXPECT_EQ(cached.num_distance_evals(), 0u);
}

TEST(FeatureMapListMetricTest, GrowingListKeepsIdsValid) {
  std::vector<FeatureMap> maps;
  maps.push_back(MakeMap(6, 4, 0.0, 0.3, 4));
  core::OmdCalculator calc;
  core::FeatureMapListMetric metric(&maps, &calc);
  maps.push_back(MakeMap(6, 4, 5.0, 0.3, 5));  // grow after construction
  EXPECT_GT(metric.Distance(0, 1), 0.0);
  EXPECT_GT(metric.LowerBound(0, 1), 0.0);
  // Replacing a slot requires invalidating its cached centroid.
  const double before = metric.LowerBound(0, 1);
  maps[1] = MakeMap(6, 4, 50.0, 0.3, 6);
  metric.InvalidateCentroid(1);
  EXPECT_GT(metric.LowerBound(0, 1), before);
}

TEST(OmdCalculatorKnobsTest, CounterAndModeAdjustments) {
  core::OmdCalculator calc;
  const FeatureMap a = MakeMap(6, 4, 0.0, 0.3, 7);
  const FeatureMap b = MakeMap(6, 4, 2.0, 0.3, 8);
  ASSERT_TRUE(calc.Distance(a, b).ok());
  EXPECT_EQ(calc.num_computations(), 1u);
  calc.ResetCounter();
  EXPECT_EQ(calc.num_computations(), 0u);

  // Alpha is clamped into a sane range.
  calc.set_threshold_alpha(5.0);
  EXPECT_DOUBLE_EQ(calc.options().threshold_alpha, 1.0);
  calc.set_threshold_alpha(-1.0);
  EXPECT_GT(calc.options().threshold_alpha, 0.0);

  // Mode switch takes effect: exact >= thresholded on the same pair.
  calc.set_threshold_alpha(0.5);
  calc.set_mode(core::OmdMode::kThresholded);
  auto approx = calc.Distance(a, b);
  calc.set_mode(core::OmdMode::kExact);
  auto exact = calc.Distance(a, b);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(*approx, *exact + 1e-9);
}

TEST(SvsStoreOrderingTest, IdsForCameraPreserveCreationOrder) {
  core::SvsStore store;
  const core::SvsId a0 = store.Create("a", 0, 10, MakeMap(3, 2, 0, 1, 9));
  const core::SvsId b0 = store.Create("b", 0, 10, MakeMap(3, 2, 0, 1, 10));
  const core::SvsId a1 = store.Create("a", 10, 20, MakeMap(3, 2, 0, 1, 11));
  EXPECT_EQ(store.IdsForCamera("a"),
            (std::vector<core::SvsId>{a0, a1}));
  EXPECT_EQ(store.IdsForCamera("b"), (std::vector<core::SvsId>{b0}));
  EXPECT_TRUE(store.IdsForCamera("ghost").empty());
  EXPECT_EQ(store.AllIds(), (std::vector<core::SvsId>{a0, b0, a1}));
}

TEST(SvsMetadataTest, AccessFrequencyUsesElapsedHours) {
  core::SvsStore store;
  const core::SvsId id = store.Create("cam", 0, 1000, MakeMap(3, 2, 0, 1, 12));
  auto svs = store.GetMutable(id);
  ASSERT_TRUE(svs.ok());
  (*svs)->RecordAccess(500);
  (*svs)->RecordAccess(800);
  // Two accesses over one simulated hour.
  const core::SvsMetadata meta = (*svs)->Metadata(3'600'000);
  EXPECT_EQ(meta.access_count, 2u);
  EXPECT_NEAR(meta.access_frequency, 2.0, 1e-9);
  EXPECT_EQ(meta.last_access_ms, 800);
}

TEST(LoggingTest, LevelGateControlsEmission) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash regardless of gating.
  VZ_LOG(Debug) << "suppressed " << 1;
  VZ_LOG(Error) << "emitted " << 2;
  SetLogLevel(saved);
}

}  // namespace
}  // namespace vz
