#include "core/videozilla.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/dataset.h"
#include "sim/evaluation.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::core {
namespace {

// A small deployment: 2 downtown + 2 highway + 1 station + 1 harbor.
sim::DeploymentOptions SmallDeployment() {
  sim::DeploymentOptions options;
  options.cities = 1;
  options.downtown_per_city = 2;
  options.highway_cameras = 2;
  options.train_stations = 1;
  options.harbors = 1;
  options.feed_duration_ms = 90'000;
  options.fps = 1.0;
  options.feature_dim = 32;
  options.seed = 5;
  return options;
}

VideoZillaOptions FastVzOptions() {
  VideoZillaOptions options;
  options.segmenter.t_max_ms = 30'000;
  options.segmenter.t_split_ms = 10'000;
  options.omd.max_vectors = 64;
  options.intra.recluster_interval = 2;
  options.boundary_scale = 1.3;
  options.enable_keyframe_selection = false;  // deterministic small runs
  return options;
}

class VideoZillaTest : public ::testing::Test {
 protected:
  VideoZillaTest()
      : deployment_(SmallDeployment()),
        system_(FastVzOptions()),
        heavy_(/*tpr=*/1.0, /*fpr=*/0.0, /*seed=*/3),
        verifier_(&deployment_.space(), &deployment_.log(), &heavy_) {
    EXPECT_TRUE(deployment_.IngestAll(&system_).ok());
    system_.SetVerifier(&verifier_);
  }

  sim::Deployment deployment_;
  VideoZilla system_;
  sim::HeavyModel heavy_;
  sim::SimObjectVerifier verifier_;
};

TEST_F(VideoZillaTest, IngestionCreatesIndexedSvss) {
  EXPECT_GT(system_.ingest_stats().svs_created, 6u);
  EXPECT_GT(system_.svs_store().size(), 6u);
  EXPECT_EQ(system_.svs_store().size(), system_.ingest_stats().svs_created);
  EXPECT_GT(system_.inter_index().size(), 0u);
  // Every SVS belongs to a started camera and carries frames.
  size_t with_frames = 0;
  for (SvsId id : system_.svs_store().AllIds()) {
    auto svs = system_.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    with_frames += !(*svs)->frame_ids().empty();
  }
  EXPECT_GT(with_frames, system_.svs_store().size() / 2);
}

TEST_F(VideoZillaTest, DirectQueryMatchesAreTruePositives) {
  Rng rng(7);
  const FeatureVector query =
      deployment_.MakeQueryFeature(sim::kBoat, &rng);
  auto result = system_.DirectQuery(query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->matched_svss.empty());
  // With a perfect heavy model, every matched SVS truly contains a boat.
  for (SvsId id : result->matched_svss) {
    auto svs = system_.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_TRUE(deployment_.log().SvsContains(**svs, sim::kBoat));
  }
  EXPECT_GT(result->total_gpu_ms, 0.0);
  EXPECT_GE(result->total_gpu_ms, result->bottleneck_camera_gpu_ms);
}

TEST_F(VideoZillaTest, DirectQueryPrunesComparedToFlat) {
  Rng rng(9);
  const FeatureVector query =
      deployment_.MakeQueryFeature(sim::kTrain, &rng);
  auto hierarchical = system_.DirectQuery(query);
  ASSERT_TRUE(hierarchical.ok());
  system_.SetIndexMode(IndexMode::kFlat);
  auto flat = system_.DirectQuery(query);
  ASSERT_TRUE(flat.ok());
  system_.SetIndexMode(IndexMode::kHierarchical);
  EXPECT_EQ(flat->candidate_svss.size(), system_.svs_store().size());
  EXPECT_LT(hierarchical->candidate_svss.size(),
            flat->candidate_svss.size());
  EXPECT_LT(hierarchical->total_gpu_ms, flat->total_gpu_ms);
}

TEST_F(VideoZillaTest, CameraConstraintRespected) {
  Rng rng(11);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kCar, &rng);
  QueryConstraints constraints;
  constraints.cameras = std::vector<CameraId>{"highway-0"};
  auto result = system_.DirectQuery(query, constraints);
  ASSERT_TRUE(result.ok());
  for (SvsId id : result->candidate_svss) {
    auto svs = system_.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_EQ((*svs)->camera(), "highway-0");
  }
}

TEST_F(VideoZillaTest, TimeRangeConstraintRespected) {
  Rng rng(13);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kCar, &rng);
  QueryConstraints constraints;
  constraints.time_range_ms = {0, 20'000};
  auto result = system_.DirectQuery(query, constraints);
  ASSERT_TRUE(result.ok());
  for (SvsId id : result->candidate_svss) {
    auto svs = system_.svs_store().Get(id);
    ASSERT_TRUE(svs.ok());
    EXPECT_LE((*svs)->start_ms(), 20'000);
  }
}

TEST_F(VideoZillaTest, ClusteringQueryFindsSemanticPeers) {
  // Use a stored harbor SVS as the query; its semantic peers should come
  // back, and they should skew toward boat-containing content.
  SvsId harbor_svs = -1;
  for (SvsId id : system_.svs_store().AllIds()) {
    auto svs = system_.svs_store().Get(id);
    if (svs.ok() && (*svs)->camera() == "harbor-0" &&
        deployment_.log().SvsContains(**svs, sim::kBoat)) {
      harbor_svs = id;
      break;
    }
  }
  ASSERT_GE(harbor_svs, 0);
  auto svs = system_.svs_store().Get(harbor_svs);
  ASSERT_TRUE(svs.ok());
  auto result = system_.ClusteringQuery((*svs)->features());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->similar_svss.empty());
  size_t with_boats = 0;
  for (SvsId id : result->similar_svss) {
    auto peer = system_.svs_store().Get(id);
    ASSERT_TRUE(peer.ok());
    with_boats += deployment_.log().SvsContains(**peer, sim::kBoat);
  }
  EXPECT_GT(with_boats * 2, result->similar_svss.size());
}

TEST_F(VideoZillaTest, MetadataAndAccessTracking) {
  Rng rng(17);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kBoat, &rng);
  auto result = system_.DirectQuery(query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->matched_svss.empty());
  auto meta = system_.GetMetaData(result->matched_svss.front());
  ASSERT_TRUE(meta.ok());
  EXPECT_GE(meta->access_count, 1u);
  EXPECT_EQ(meta->camera.rfind("harbor", 0), 0u);
  EXPECT_GT(meta->num_frames, 0u);
  EXPECT_FALSE(system_.GetMetaData(999999).ok());
}

TEST_F(VideoZillaTest, FlatSvsModeSubsetOfFlat) {
  Rng rng(19);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kTrain, &rng);
  system_.SetIndexMode(IndexMode::kFlatSvs);
  auto flat_svs = system_.DirectQuery(query);
  system_.SetIndexMode(IndexMode::kFlat);
  auto flat = system_.DirectQuery(query);
  system_.SetIndexMode(IndexMode::kHierarchical);
  ASSERT_TRUE(flat_svs.ok());
  ASSERT_TRUE(flat.ok());
  EXPECT_LE(flat_svs->candidate_svss.size(), flat->candidate_svss.size());
  std::unordered_set<SvsId> all(flat->candidate_svss.begin(),
                                flat->candidate_svss.end());
  for (SvsId id : flat_svs->candidate_svss) {
    EXPECT_TRUE(all.count(id) > 0);
  }
}

TEST_F(VideoZillaTest, CameraLifecycle) {
  EXPECT_FALSE(system_.CameraStart("harbor-0").ok());  // already started
  ASSERT_TRUE(system_.CameraTerminate("harbor-0").ok());
  EXPECT_FALSE(system_.CameraTerminate("harbor-0").ok());
  for (const auto& entry : system_.inter_index().entries()) {
    EXPECT_NE(entry.camera, "harbor-0");
  }
  // Stored SVSs survive termination.
  EXPECT_GT(system_.svs_store().IdsForCamera("harbor-0").size(), 0u);
}

TEST_F(VideoZillaTest, KnobsApplyWithoutBreakingQueries) {
  ASSERT_TRUE(system_.SetInterGroupCount(3).ok());
  EXPECT_EQ(system_.inter_index().groups().size(), 3u);
  ASSERT_TRUE(system_.SetIntraClusterCount(2).ok());
  system_.SetOmdAlpha(1.0);
  system_.SetBoundaryScale(1.6);
  Rng rng(23);
  const FeatureVector query = deployment_.MakeQueryFeature(sim::kBoat, &rng);
  EXPECT_TRUE(system_.DirectQuery(query).ok());
}

TEST(VideoZillaLifecycleTest, IngestRequiresStartedCamera) {
  VideoZilla system(FastVzOptions());
  FrameObservation frame;
  frame.camera = "ghost";
  EXPECT_FALSE(system.IngestFrame(frame).ok());
}

}  // namespace
}  // namespace vz::core
