#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace vz {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  VZ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-2);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubled(int x) {
  VZ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace vz
