// Edge cases for the index structures: duplicates, degenerate sizes,
// option extremes, and cross-structure consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "clustering/dendrogram_purity.h"
#include "index/mtree.h"
#include "index/nn_descent.h"
#include "index/perch_tree.h"
#include "test_util.h"

namespace vz::index {
namespace {

using ::vz::testing::EuclideanPointMetric;
using ::vz::testing::MakeClusteredPoints;

TEST(PerchEdgeTest, DuplicatePointsAreHandled) {
  std::vector<FeatureVector> points(10, FeatureVector({1.0f, 2.0f}));
  points.push_back(FeatureVector({9.0f, 9.0f}));
  EuclideanPointMetric metric(points);
  PerchTree tree(&metric, PerchOptions{});
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  // NN of the outlier among stored items is itself (already stored).
  auto nn = tree.NearestNeighbor(10);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(*nn, 10);
  // 2 clusters separate duplicates from the outlier.
  const auto clusters = tree.ExtractClusters(2);
  ASSERT_EQ(clusters.size(), 2u);
  const bool outlier_alone =
      (clusters[0].size() == 1 && clusters[0][0] == 10) ||
      (clusters[1].size() == 1 && clusters[1][0] == 10);
  EXPECT_TRUE(outlier_alone);
}

TEST(PerchEdgeTest, KnnLargerThanTreeReturnsEverything) {
  auto data = MakeClusteredPoints(2, 4, 3, 10.0, 0.5, 3);
  EuclideanPointMetric metric(data.points);
  PerchTree tree(&metric, PerchOptions{});
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  auto knn = tree.KNearestNeighbors(0, 100);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), data.points.size());
}

TEST(PerchEdgeTest, SingleSampleApproximationStaysValid) {
  auto data = MakeClusteredPoints(3, 15, 4, 15.0, 1.0, 5);
  EuclideanPointMetric metric(data.points);
  PerchOptions options;
  options.samples_per_node = 1;  // cheapest possible masking approximation
  PerchTree tree(&metric, options);
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  auto purity =
      clustering::DendrogramPurity(tree.ToClusterTree(), data.labels);
  ASSERT_TRUE(purity.ok());
  EXPECT_GT(*purity, 0.8);
}

TEST(PerchEdgeTest, RotationCapPreventsRunaway) {
  auto data = MakeClusteredPoints(2, 30, 3, 1.0, 2.0, 7);  // fully overlapped
  EuclideanPointMetric metric(data.points);
  PerchOptions options;
  options.max_rotations_per_insert = 4;
  PerchTree tree(&metric, options);
  for (size_t i = 0; i < data.points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_LE(tree.stats().masking_rotations,
            4 * data.points.size());
}

TEST(MTreeEdgeTest, DuplicatePointsAndTinyNodes) {
  std::vector<FeatureVector> points(12, FeatureVector({0.0f}));
  EuclideanPointMetric metric(points);
  MTreeOptions options;
  options.max_node_size = 2;
  MTree tree(&metric, options);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  auto knn = tree.KNearestNeighbors(0, 5);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 5u);
  auto range = tree.RangeQuery(0, 0.0);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 12u);  // all coincide
}

TEST(MTreeEdgeTest, NodeSizeFloorIsEnforced) {
  EuclideanPointMetric metric({FeatureVector({0.0f}), FeatureVector({1.0f}),
                               FeatureVector({2.0f})});
  MTreeOptions options;
  options.max_node_size = 0;  // silently clamped to 2
  MTree tree(&metric, options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(tree.Insert(i).ok());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(NnDescentEdgeTest, TinyCollections) {
  EuclideanPointMetric metric({FeatureVector({0.0f}), FeatureVector({1.0f})});
  NnDescentGraph graph(&metric, NnDescentOptions{});
  ASSERT_TRUE(graph.Build({0, 1}).ok());
  auto knn = graph.KNearestNeighbors(0, 5);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->size(), 2u);
  EXPECT_EQ((*knn)[0], 0);
}

TEST(NnDescentEdgeTest, SingleItemGraph) {
  EuclideanPointMetric metric({FeatureVector({0.0f})});
  NnDescentGraph graph(&metric, NnDescentOptions{});
  ASSERT_TRUE(graph.Build({0}).ok());
  auto knn = graph.KNearestNeighbors(0, 1);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(*knn, std::vector<int>{0});
}

TEST(CrossStructureTest, AllThreeAgreeOnEasyNearestNeighbor) {
  auto data = MakeClusteredPoints(4, 10, 5, 25.0, 0.4, 9);
  EuclideanPointMetric metric(data.points);
  PerchTree perch(&metric, PerchOptions{});
  MTree mtree(&metric, MTreeOptions{});
  NnDescentGraph ann(&metric, NnDescentOptions{});
  std::vector<int> items;
  for (size_t i = 1; i < data.points.size(); ++i) {
    items.push_back(static_cast<int>(i));
    ASSERT_TRUE(perch.Insert(static_cast<int>(i)).ok());
    ASSERT_TRUE(mtree.Insert(static_cast<int>(i)).ok());
  }
  ASSERT_TRUE(ann.Build(items).ok());
  auto a = perch.NearestNeighbor(0);
  auto b = mtree.KNearestNeighbors(0, 1);
  auto c = ann.KNearestNeighbors(0, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, (*b)[0]);
  EXPECT_EQ(*a, (*c)[0]);
}

}  // namespace
}  // namespace vz::index
