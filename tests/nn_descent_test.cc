#include "index/nn_descent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "test_util.h"

namespace vz::index {
namespace {

using ::vz::testing::EuclideanPointMetric;
using ::vz::testing::MakeClusteredPoints;

TEST(NnDescentTest, BuildRequiresItems) {
  EuclideanPointMetric metric({FeatureVector({0.0f})});
  NnDescentGraph graph(&metric, NnDescentOptions{});
  EXPECT_FALSE(graph.Build({}).ok());
}

TEST(NnDescentTest, QueriesBeforeBuildFail) {
  EuclideanPointMetric metric({FeatureVector({0.0f})});
  NnDescentGraph graph(&metric, NnDescentOptions{});
  EXPECT_FALSE(graph.KNearestNeighbors(0, 1).ok());
}

TEST(NnDescentTest, BuildTwiceFails) {
  EuclideanPointMetric metric(
      {FeatureVector({0.0f}), FeatureVector({1.0f})});
  NnDescentGraph graph(&metric, NnDescentOptions{});
  ASSERT_TRUE(graph.Build({0, 1}).ok());
  EXPECT_FALSE(graph.Build({0, 1}).ok());
}

TEST(NnDescentTest, HighRecallOnClusteredData) {
  auto data = MakeClusteredPoints(5, 40, 8, 20.0, 1.0, 51);
  EuclideanPointMetric metric(data.points);
  NnDescentOptions options;
  options.graph_degree = 12;
  options.seed = 7;
  NnDescentGraph graph(&metric, options);
  std::vector<int> items;
  for (size_t i = 0; i < data.points.size(); ++i) {
    items.push_back(static_cast<int>(i));
  }
  ASSERT_TRUE(graph.Build(items).ok());

  // 20-NN of a handful of queries vs brute force.
  double total_recall = 0.0;
  const size_t k = 20;
  for (int query : {0, 45, 90, 135, 180}) {
    auto approx = graph.KNearestNeighbors(query, k);
    ASSERT_TRUE(approx.ok());
    std::vector<std::pair<double, int>> ranked;
    for (size_t i = 0; i < data.points.size(); ++i) {
      ranked.emplace_back(
          EuclideanDistance(data.points[static_cast<size_t>(query)],
                            data.points[i]),
          static_cast<int>(i));
    }
    std::sort(ranked.begin(), ranked.end());
    std::unordered_set<int> truth;
    for (size_t i = 0; i < k; ++i) truth.insert(ranked[i].second);
    size_t hits = 0;
    for (int id : *approx) hits += truth.count(id);
    total_recall += static_cast<double>(hits) / static_cast<double>(k);
  }
  // ANN: high but typically not perfect recall (the Sec. 7.3 comparison).
  EXPECT_GT(total_recall / 5.0, 0.85);
}

TEST(NnDescentTest, GraphDegreeRespected) {
  auto data = MakeClusteredPoints(2, 20, 4, 10.0, 1.0, 61);
  EuclideanPointMetric metric(data.points);
  NnDescentOptions options;
  options.graph_degree = 5;
  NnDescentGraph graph(&metric, options);
  std::vector<int> items;
  for (size_t i = 0; i < data.points.size(); ++i) {
    items.push_back(static_cast<int>(i));
  }
  ASSERT_TRUE(graph.Build(items).ok());
  for (size_t i = 0; i < graph.size(); ++i) {
    EXPECT_LE(graph.NeighborsOf(i).size(), 5u);
    EXPECT_GE(graph.NeighborsOf(i).size(), 1u);
  }
}

TEST(NnDescentTest, ResultsSortedByDistance) {
  auto data = MakeClusteredPoints(1, 30, 4, 0.0, 3.0, 71);
  EuclideanPointMetric metric(data.points);
  NnDescentGraph graph(&metric, NnDescentOptions{});
  std::vector<int> items;
  for (size_t i = 1; i < data.points.size(); ++i) {
    items.push_back(static_cast<int>(i));
  }
  ASSERT_TRUE(graph.Build(items).ok());
  auto result = graph.KNearestNeighbors(0, 10);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE(
        EuclideanDistance(data.points[0],
                          data.points[static_cast<size_t>((*result)[i - 1])]),
        EuclideanDistance(data.points[0],
                          data.points[static_cast<size_t>((*result)[i])]) +
            1e-9);
  }
}

}  // namespace
}  // namespace vz::index
