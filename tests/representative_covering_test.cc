// Properties of the covering-representative construction that the
// hierarchical index's losslessness depends on (see DESIGN.md deviation 3):
// a feature hitting any member representative must hit the covering summary.
#include <gtest/gtest.h>

#include "core/representative.h"
#include "test_util.h"

namespace vz::core {
namespace {

using ::vz::testing::MakeMap;

Representative RepOf(const FeatureMap& map, Rng* rng) {
  auto rep = BuildRepresentative(map, RepresentativeOptions{}, rng);
  EXPECT_TRUE(rep.ok());
  return *rep;
}

class CoveringPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoveringPropertyTest, MemberHitsImplyCoverHits) {
  Rng rng(GetParam());
  // Several member representatives at random centers.
  std::vector<Representative> members;
  std::vector<FeatureMap> maps;
  const size_t num_members = 2 + rng.UniformUint64(5);
  for (size_t m = 0; m < num_members; ++m) {
    maps.push_back(MakeMap(20, 6, rng.UniformDouble(-10.0, 10.0), 0.6,
                           GetParam() * 10 + m));
  }
  for (const FeatureMap& map : maps) members.push_back(RepOf(map, &rng));
  std::vector<const Representative*> pointers;
  for (const Representative& rep : members) pointers.push_back(&rep);
  auto cover =
      BuildCoveringRepresentative(pointers, RepresentativeOptions{}, &rng);
  ASSERT_TRUE(cover.ok());

  // Probe with random features; whenever a member's boundary contains the
  // probe, the covering summary must as well (at the same scale).
  for (int probe = 0; probe < 200; ++probe) {
    FeatureVector f(6);
    for (size_t d = 0; d < 6; ++d) {
      f[d] = static_cast<float>(rng.UniformDouble(-14.0, 14.0));
    }
    bool member_hit = false;
    for (const Representative& rep : members) {
      member_hit |= rep.Hit(f, 1.0);
    }
    if (member_hit) {
      EXPECT_TRUE(cover->Hit(f, 1.0)) << "probe " << probe;
    }
  }
}

TEST_P(CoveringPropertyTest, CoverWeightsSumToOne) {
  Rng rng(GetParam() ^ 0xAA);
  const FeatureMap a = MakeMap(15, 4, 0.0, 0.5, GetParam() + 1);
  const FeatureMap b = MakeMap(15, 4, 6.0, 0.5, GetParam() + 2);
  const Representative ra = RepOf(a, &rng);
  const Representative rb = RepOf(b, &rng);
  auto cover = BuildCoveringRepresentative({&ra, &rb},
                                           RepresentativeOptions{}, &rng);
  ASSERT_TRUE(cover.ok());
  double total = 0.0;
  for (const WeightedCenter& c : cover->centers()) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(cover->size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(CoveringRepresentativeTest, RejectsEmptyInput) {
  Rng rng(1);
  EXPECT_FALSE(BuildCoveringRepresentative({}, RepresentativeOptions{}, &rng)
                   .ok());
  Representative empty;
  EXPECT_FALSE(
      BuildCoveringRepresentative({&empty}, RepresentativeOptions{}, &rng)
          .ok());
  const FeatureMap map = MakeMap(5, 4, 0.0, 0.5, 2);
  const Representative rep = RepOf(map, &rng);
  EXPECT_FALSE(
      BuildCoveringRepresentative({&rep}, RepresentativeOptions{}, nullptr)
          .ok());
}

TEST(CoveringRepresentativeTest, SingleMemberCoversItself) {
  Rng rng(3);
  const FeatureMap map = MakeMap(30, 5, 2.0, 0.8, 4);
  const Representative member = RepOf(map, &rng);
  auto cover = BuildCoveringRepresentative({&member},
                                           RepresentativeOptions{}, &rng);
  ASSERT_TRUE(cover.ok());
  // Every vector the member's boundaries admit is admitted by the cover.
  for (size_t i = 0; i < map.size(); ++i) {
    if (member.Hit(map.vector(i))) {
      EXPECT_TRUE(cover->Hit(map.vector(i))) << "vector " << i;
    }
  }
}

}  // namespace
}  // namespace vz::core
