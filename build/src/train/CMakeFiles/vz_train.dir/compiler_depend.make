# Empty compiler generated dependencies file for vz_train.
# This may be replaced when dependencies are built.
