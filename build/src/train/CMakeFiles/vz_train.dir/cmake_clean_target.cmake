file(REMOVE_RECURSE
  "libvz_train.a"
)
