file(REMOVE_RECURSE
  "CMakeFiles/vz_train.dir/specialized_trainer.cc.o"
  "CMakeFiles/vz_train.dir/specialized_trainer.cc.o.d"
  "libvz_train.a"
  "libvz_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
