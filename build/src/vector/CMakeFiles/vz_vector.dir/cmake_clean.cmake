file(REMOVE_RECURSE
  "CMakeFiles/vz_vector.dir/feature_map.cc.o"
  "CMakeFiles/vz_vector.dir/feature_map.cc.o.d"
  "CMakeFiles/vz_vector.dir/feature_vector.cc.o"
  "CMakeFiles/vz_vector.dir/feature_vector.cc.o.d"
  "libvz_vector.a"
  "libvz_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
