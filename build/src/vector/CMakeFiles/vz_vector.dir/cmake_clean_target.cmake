file(REMOVE_RECURSE
  "libvz_vector.a"
)
