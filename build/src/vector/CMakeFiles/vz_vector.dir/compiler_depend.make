# Empty compiler generated dependencies file for vz_vector.
# This may be replaced when dependencies are built.
