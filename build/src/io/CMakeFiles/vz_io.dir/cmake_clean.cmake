file(REMOVE_RECURSE
  "CMakeFiles/vz_io.dir/binary_format.cc.o"
  "CMakeFiles/vz_io.dir/binary_format.cc.o.d"
  "CMakeFiles/vz_io.dir/svs_snapshot.cc.o"
  "CMakeFiles/vz_io.dir/svs_snapshot.cc.o.d"
  "libvz_io.a"
  "libvz_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
