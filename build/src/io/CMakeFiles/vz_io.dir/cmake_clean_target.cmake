file(REMOVE_RECURSE
  "libvz_io.a"
)
