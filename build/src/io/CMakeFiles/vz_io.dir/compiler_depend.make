# Empty compiler generated dependencies file for vz_io.
# This may be replaced when dependencies are built.
