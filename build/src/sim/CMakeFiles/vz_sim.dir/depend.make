# Empty dependencies file for vz_sim.
# This may be replaced when dependencies are built.
