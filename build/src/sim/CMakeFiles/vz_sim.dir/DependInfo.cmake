
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cc" "src/sim/CMakeFiles/vz_sim.dir/dataset.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/dataset.cc.o.d"
  "/root/repo/src/sim/evaluation.cc" "src/sim/CMakeFiles/vz_sim.dir/evaluation.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/evaluation.cc.o.d"
  "/root/repo/src/sim/feature_extractor.cc" "src/sim/CMakeFiles/vz_sim.dir/feature_extractor.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/feature_extractor.cc.o.d"
  "/root/repo/src/sim/feature_space.cc" "src/sim/CMakeFiles/vz_sim.dir/feature_space.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/feature_space.cc.o.d"
  "/root/repo/src/sim/ground_truth.cc" "src/sim/CMakeFiles/vz_sim.dir/ground_truth.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/ground_truth.cc.o.d"
  "/root/repo/src/sim/object_class.cc" "src/sim/CMakeFiles/vz_sim.dir/object_class.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/object_class.cc.o.d"
  "/root/repo/src/sim/object_detector.cc" "src/sim/CMakeFiles/vz_sim.dir/object_detector.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/object_detector.cc.o.d"
  "/root/repo/src/sim/scene.cc" "src/sim/CMakeFiles/vz_sim.dir/scene.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/scene.cc.o.d"
  "/root/repo/src/sim/verifier.cc" "src/sim/CMakeFiles/vz_sim.dir/verifier.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/verifier.cc.o.d"
  "/root/repo/src/sim/video_source.cc" "src/sim/CMakeFiles/vz_sim.dir/video_source.cc.o" "gcc" "src/sim/CMakeFiles/vz_sim.dir/video_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/vz_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/vz_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vz_index.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vz_clustering.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
