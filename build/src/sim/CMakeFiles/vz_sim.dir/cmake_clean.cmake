file(REMOVE_RECURSE
  "CMakeFiles/vz_sim.dir/dataset.cc.o"
  "CMakeFiles/vz_sim.dir/dataset.cc.o.d"
  "CMakeFiles/vz_sim.dir/evaluation.cc.o"
  "CMakeFiles/vz_sim.dir/evaluation.cc.o.d"
  "CMakeFiles/vz_sim.dir/feature_extractor.cc.o"
  "CMakeFiles/vz_sim.dir/feature_extractor.cc.o.d"
  "CMakeFiles/vz_sim.dir/feature_space.cc.o"
  "CMakeFiles/vz_sim.dir/feature_space.cc.o.d"
  "CMakeFiles/vz_sim.dir/ground_truth.cc.o"
  "CMakeFiles/vz_sim.dir/ground_truth.cc.o.d"
  "CMakeFiles/vz_sim.dir/object_class.cc.o"
  "CMakeFiles/vz_sim.dir/object_class.cc.o.d"
  "CMakeFiles/vz_sim.dir/object_detector.cc.o"
  "CMakeFiles/vz_sim.dir/object_detector.cc.o.d"
  "CMakeFiles/vz_sim.dir/scene.cc.o"
  "CMakeFiles/vz_sim.dir/scene.cc.o.d"
  "CMakeFiles/vz_sim.dir/verifier.cc.o"
  "CMakeFiles/vz_sim.dir/verifier.cc.o.d"
  "CMakeFiles/vz_sim.dir/video_source.cc.o"
  "CMakeFiles/vz_sim.dir/video_source.cc.o.d"
  "libvz_sim.a"
  "libvz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
