file(REMOVE_RECURSE
  "libvz_sim.a"
)
