file(REMOVE_RECURSE
  "CMakeFiles/vz_baseline.dir/classifier_only.cc.o"
  "CMakeFiles/vz_baseline.dir/classifier_only.cc.o.d"
  "CMakeFiles/vz_baseline.dir/spatula.cc.o"
  "CMakeFiles/vz_baseline.dir/spatula.cc.o.d"
  "CMakeFiles/vz_baseline.dir/topk_index.cc.o"
  "CMakeFiles/vz_baseline.dir/topk_index.cc.o.d"
  "libvz_baseline.a"
  "libvz_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
