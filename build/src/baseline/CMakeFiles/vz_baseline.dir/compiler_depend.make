# Empty compiler generated dependencies file for vz_baseline.
# This may be replaced when dependencies are built.
