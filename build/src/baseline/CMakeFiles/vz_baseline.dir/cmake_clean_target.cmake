file(REMOVE_RECURSE
  "libvz_baseline.a"
)
