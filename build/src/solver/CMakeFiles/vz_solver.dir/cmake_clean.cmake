file(REMOVE_RECURSE
  "CMakeFiles/vz_solver.dir/emd.cc.o"
  "CMakeFiles/vz_solver.dir/emd.cc.o.d"
  "CMakeFiles/vz_solver.dir/min_cost_flow.cc.o"
  "CMakeFiles/vz_solver.dir/min_cost_flow.cc.o.d"
  "libvz_solver.a"
  "libvz_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
