# Empty compiler generated dependencies file for vz_solver.
# This may be replaced when dependencies are built.
