file(REMOVE_RECURSE
  "libvz_solver.a"
)
