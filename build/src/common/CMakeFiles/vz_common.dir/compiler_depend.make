# Empty compiler generated dependencies file for vz_common.
# This may be replaced when dependencies are built.
