file(REMOVE_RECURSE
  "CMakeFiles/vz_common.dir/logging.cc.o"
  "CMakeFiles/vz_common.dir/logging.cc.o.d"
  "CMakeFiles/vz_common.dir/math_util.cc.o"
  "CMakeFiles/vz_common.dir/math_util.cc.o.d"
  "CMakeFiles/vz_common.dir/rng.cc.o"
  "CMakeFiles/vz_common.dir/rng.cc.o.d"
  "CMakeFiles/vz_common.dir/status.cc.o"
  "CMakeFiles/vz_common.dir/status.cc.o.d"
  "libvz_common.a"
  "libvz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
