file(REMOVE_RECURSE
  "libvz_common.a"
)
