file(REMOVE_RECURSE
  "libvz_index.a"
)
