file(REMOVE_RECURSE
  "CMakeFiles/vz_index.dir/mtree.cc.o"
  "CMakeFiles/vz_index.dir/mtree.cc.o.d"
  "CMakeFiles/vz_index.dir/nn_descent.cc.o"
  "CMakeFiles/vz_index.dir/nn_descent.cc.o.d"
  "CMakeFiles/vz_index.dir/perch_tree.cc.o"
  "CMakeFiles/vz_index.dir/perch_tree.cc.o.d"
  "libvz_index.a"
  "libvz_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
