# Empty compiler generated dependencies file for vz_index.
# This may be replaced when dependencies are built.
