
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/mtree.cc" "src/index/CMakeFiles/vz_index.dir/mtree.cc.o" "gcc" "src/index/CMakeFiles/vz_index.dir/mtree.cc.o.d"
  "/root/repo/src/index/nn_descent.cc" "src/index/CMakeFiles/vz_index.dir/nn_descent.cc.o" "gcc" "src/index/CMakeFiles/vz_index.dir/nn_descent.cc.o.d"
  "/root/repo/src/index/perch_tree.cc" "src/index/CMakeFiles/vz_index.dir/perch_tree.cc.o" "gcc" "src/index/CMakeFiles/vz_index.dir/perch_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/vz_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vz_clustering.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
