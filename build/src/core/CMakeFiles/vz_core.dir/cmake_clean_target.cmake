file(REMOVE_RECURSE
  "libvz_core.a"
)
