# Empty dependencies file for vz_core.
# This may be replaced when dependencies are built.
