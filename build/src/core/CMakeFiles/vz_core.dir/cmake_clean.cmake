file(REMOVE_RECURSE
  "CMakeFiles/vz_core.dir/app_registry.cc.o"
  "CMakeFiles/vz_core.dir/app_registry.cc.o.d"
  "CMakeFiles/vz_core.dir/archiver.cc.o"
  "CMakeFiles/vz_core.dir/archiver.cc.o.d"
  "CMakeFiles/vz_core.dir/feature_map_metric.cc.o"
  "CMakeFiles/vz_core.dir/feature_map_metric.cc.o.d"
  "CMakeFiles/vz_core.dir/inter_camera_index.cc.o"
  "CMakeFiles/vz_core.dir/inter_camera_index.cc.o.d"
  "CMakeFiles/vz_core.dir/intra_camera_index.cc.o"
  "CMakeFiles/vz_core.dir/intra_camera_index.cc.o.d"
  "CMakeFiles/vz_core.dir/keyframe_selector.cc.o"
  "CMakeFiles/vz_core.dir/keyframe_selector.cc.o.d"
  "CMakeFiles/vz_core.dir/monitor.cc.o"
  "CMakeFiles/vz_core.dir/monitor.cc.o.d"
  "CMakeFiles/vz_core.dir/omd.cc.o"
  "CMakeFiles/vz_core.dir/omd.cc.o.d"
  "CMakeFiles/vz_core.dir/query.cc.o"
  "CMakeFiles/vz_core.dir/query.cc.o.d"
  "CMakeFiles/vz_core.dir/representative.cc.o"
  "CMakeFiles/vz_core.dir/representative.cc.o.d"
  "CMakeFiles/vz_core.dir/segmenter.cc.o"
  "CMakeFiles/vz_core.dir/segmenter.cc.o.d"
  "CMakeFiles/vz_core.dir/svs.cc.o"
  "CMakeFiles/vz_core.dir/svs.cc.o.d"
  "CMakeFiles/vz_core.dir/videozilla.cc.o"
  "CMakeFiles/vz_core.dir/videozilla.cc.o.d"
  "libvz_core.a"
  "libvz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
