
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_registry.cc" "src/core/CMakeFiles/vz_core.dir/app_registry.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/app_registry.cc.o.d"
  "/root/repo/src/core/archiver.cc" "src/core/CMakeFiles/vz_core.dir/archiver.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/archiver.cc.o.d"
  "/root/repo/src/core/feature_map_metric.cc" "src/core/CMakeFiles/vz_core.dir/feature_map_metric.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/feature_map_metric.cc.o.d"
  "/root/repo/src/core/inter_camera_index.cc" "src/core/CMakeFiles/vz_core.dir/inter_camera_index.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/inter_camera_index.cc.o.d"
  "/root/repo/src/core/intra_camera_index.cc" "src/core/CMakeFiles/vz_core.dir/intra_camera_index.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/intra_camera_index.cc.o.d"
  "/root/repo/src/core/keyframe_selector.cc" "src/core/CMakeFiles/vz_core.dir/keyframe_selector.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/keyframe_selector.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/vz_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/omd.cc" "src/core/CMakeFiles/vz_core.dir/omd.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/omd.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/vz_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/query.cc.o.d"
  "/root/repo/src/core/representative.cc" "src/core/CMakeFiles/vz_core.dir/representative.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/representative.cc.o.d"
  "/root/repo/src/core/segmenter.cc" "src/core/CMakeFiles/vz_core.dir/segmenter.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/segmenter.cc.o.d"
  "/root/repo/src/core/svs.cc" "src/core/CMakeFiles/vz_core.dir/svs.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/svs.cc.o.d"
  "/root/repo/src/core/videozilla.cc" "src/core/CMakeFiles/vz_core.dir/videozilla.cc.o" "gcc" "src/core/CMakeFiles/vz_core.dir/videozilla.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/vz_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/vz_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vz_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vz_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
