file(REMOVE_RECURSE
  "libvz_clustering.a"
)
