file(REMOVE_RECURSE
  "CMakeFiles/vz_clustering.dir/cluster_tree.cc.o"
  "CMakeFiles/vz_clustering.dir/cluster_tree.cc.o.d"
  "CMakeFiles/vz_clustering.dir/dendrogram_purity.cc.o"
  "CMakeFiles/vz_clustering.dir/dendrogram_purity.cc.o.d"
  "CMakeFiles/vz_clustering.dir/hac.cc.o"
  "CMakeFiles/vz_clustering.dir/hac.cc.o.d"
  "CMakeFiles/vz_clustering.dir/kmeans.cc.o"
  "CMakeFiles/vz_clustering.dir/kmeans.cc.o.d"
  "CMakeFiles/vz_clustering.dir/silhouette.cc.o"
  "CMakeFiles/vz_clustering.dir/silhouette.cc.o.d"
  "libvz_clustering.a"
  "libvz_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
