
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/cluster_tree.cc" "src/clustering/CMakeFiles/vz_clustering.dir/cluster_tree.cc.o" "gcc" "src/clustering/CMakeFiles/vz_clustering.dir/cluster_tree.cc.o.d"
  "/root/repo/src/clustering/dendrogram_purity.cc" "src/clustering/CMakeFiles/vz_clustering.dir/dendrogram_purity.cc.o" "gcc" "src/clustering/CMakeFiles/vz_clustering.dir/dendrogram_purity.cc.o.d"
  "/root/repo/src/clustering/hac.cc" "src/clustering/CMakeFiles/vz_clustering.dir/hac.cc.o" "gcc" "src/clustering/CMakeFiles/vz_clustering.dir/hac.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/clustering/CMakeFiles/vz_clustering.dir/kmeans.cc.o" "gcc" "src/clustering/CMakeFiles/vz_clustering.dir/kmeans.cc.o.d"
  "/root/repo/src/clustering/silhouette.cc" "src/clustering/CMakeFiles/vz_clustering.dir/silhouette.cc.o" "gcc" "src/clustering/CMakeFiles/vz_clustering.dir/silhouette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/vz_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
