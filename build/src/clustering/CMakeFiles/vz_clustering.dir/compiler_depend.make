# Empty compiler generated dependencies file for vz_clustering.
# This may be replaced when dependencies are built.
