# Empty compiler generated dependencies file for bench_fig18_cluster_classes.
# This may be replaced when dependencies are built.
