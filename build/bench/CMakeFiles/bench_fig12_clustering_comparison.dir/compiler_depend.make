# Empty compiler generated dependencies file for bench_fig12_clustering_comparison.
# This may be replaced when dependencies are built.
