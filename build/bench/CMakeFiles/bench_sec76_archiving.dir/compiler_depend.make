# Empty compiler generated dependencies file for bench_sec76_archiving.
# This may be replaced when dependencies are built.
