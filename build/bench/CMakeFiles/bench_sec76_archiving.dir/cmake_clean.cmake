file(REMOVE_RECURSE
  "CMakeFiles/bench_sec76_archiving.dir/bench_sec76_archiving.cc.o"
  "CMakeFiles/bench_sec76_archiving.dir/bench_sec76_archiving.cc.o.d"
  "bench_sec76_archiving"
  "bench_sec76_archiving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec76_archiving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
