# Empty dependencies file for bench_fig15_topk_k.
# This may be replaced when dependencies are built.
