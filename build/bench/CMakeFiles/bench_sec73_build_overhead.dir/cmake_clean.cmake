file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_build_overhead.dir/bench_sec73_build_overhead.cc.o"
  "CMakeFiles/bench_sec73_build_overhead.dir/bench_sec73_build_overhead.cc.o.d"
  "bench_sec73_build_overhead"
  "bench_sec73_build_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_build_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
