# Empty dependencies file for bench_micro_omd.
# This may be replaced when dependencies are built.
