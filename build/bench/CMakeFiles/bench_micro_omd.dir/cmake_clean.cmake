file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_omd.dir/bench_micro_omd.cc.o"
  "CMakeFiles/bench_micro_omd.dir/bench_micro_omd.cc.o.d"
  "bench_micro_omd"
  "bench_micro_omd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_omd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
