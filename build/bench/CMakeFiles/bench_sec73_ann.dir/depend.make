# Empty dependencies file for bench_sec73_ann.
# This may be replaced when dependencies are built.
