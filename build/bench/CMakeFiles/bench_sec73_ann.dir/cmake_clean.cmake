file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_ann.dir/bench_sec73_ann.cc.o"
  "CMakeFiles/bench_sec73_ann.dir/bench_sec73_ann.cc.o.d"
  "bench_sec73_ann"
  "bench_sec73_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
