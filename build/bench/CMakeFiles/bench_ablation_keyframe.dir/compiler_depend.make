# Empty compiler generated dependencies file for bench_ablation_keyframe.
# This may be replaced when dependencies are built.
