file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keyframe.dir/bench_ablation_keyframe.cc.o"
  "CMakeFiles/bench_ablation_keyframe.dir/bench_ablation_keyframe.cc.o.d"
  "bench_ablation_keyframe"
  "bench_ablation_keyframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keyframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
