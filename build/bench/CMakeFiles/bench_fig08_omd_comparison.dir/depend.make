# Empty dependencies file for bench_fig08_omd_comparison.
# This may be replaced when dependencies are built.
