# Empty compiler generated dependencies file for bench_fig16_bottleneck_time.
# This may be replaced when dependencies are built.
