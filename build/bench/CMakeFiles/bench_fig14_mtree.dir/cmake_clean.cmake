file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mtree.dir/bench_fig14_mtree.cc.o"
  "CMakeFiles/bench_fig14_mtree.dir/bench_fig14_mtree.cc.o.d"
  "bench_fig14_mtree"
  "bench_fig14_mtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
