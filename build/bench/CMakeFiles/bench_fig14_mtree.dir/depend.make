# Empty dependencies file for bench_fig14_mtree.
# This may be replaced when dependencies are built.
