file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_snapshot.dir/bench_micro_snapshot.cc.o"
  "CMakeFiles/bench_micro_snapshot.dir/bench_micro_snapshot.cc.o.d"
  "bench_micro_snapshot"
  "bench_micro_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
