# Empty dependencies file for bench_micro_snapshot.
# This may be replaced when dependencies are built.
