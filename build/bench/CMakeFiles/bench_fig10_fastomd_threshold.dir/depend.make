# Empty dependencies file for bench_fig10_fastomd_threshold.
# This may be replaced when dependencies are built.
