# Empty dependencies file for bench_fig19_error_rates.
# This may be replaced when dependencies are built.
