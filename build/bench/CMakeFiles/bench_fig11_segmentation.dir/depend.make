# Empty dependencies file for bench_fig11_segmentation.
# This may be replaced when dependencies are built.
