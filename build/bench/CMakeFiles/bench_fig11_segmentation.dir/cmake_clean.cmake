file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_segmentation.dir/bench_fig11_segmentation.cc.o"
  "CMakeFiles/bench_fig11_segmentation.dir/bench_fig11_segmentation.cc.o.d"
  "bench_fig11_segmentation"
  "bench_fig11_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
