file(REMOVE_RECURSE
  "CMakeFiles/bench_sec75_specialized_training.dir/bench_sec75_specialized_training.cc.o"
  "CMakeFiles/bench_sec75_specialized_training.dir/bench_sec75_specialized_training.cc.o.d"
  "bench_sec75_specialized_training"
  "bench_sec75_specialized_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec75_specialized_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
