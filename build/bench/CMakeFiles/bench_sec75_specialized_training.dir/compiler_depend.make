# Empty compiler generated dependencies file for bench_sec75_specialized_training.
# This may be replaced when dependencies are built.
