file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rotations.dir/bench_ablation_rotations.cc.o"
  "CMakeFiles/bench_ablation_rotations.dir/bench_ablation_rotations.cc.o.d"
  "bench_ablation_rotations"
  "bench_ablation_rotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
