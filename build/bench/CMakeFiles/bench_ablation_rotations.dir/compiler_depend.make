# Empty compiler generated dependencies file for bench_ablation_rotations.
# This may be replaced when dependencies are built.
