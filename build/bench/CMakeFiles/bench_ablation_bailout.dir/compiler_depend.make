# Empty compiler generated dependencies file for bench_ablation_bailout.
# This may be replaced when dependencies are built.
