file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bailout.dir/bench_ablation_bailout.cc.o"
  "CMakeFiles/bench_ablation_bailout.dir/bench_ablation_bailout.cc.o.d"
  "bench_ablation_bailout"
  "bench_ablation_bailout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bailout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
