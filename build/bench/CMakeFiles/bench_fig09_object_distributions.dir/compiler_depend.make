# Empty compiler generated dependencies file for bench_fig09_object_distributions.
# This may be replaced when dependencies are built.
