# Empty dependencies file for drone_survey.
# This may be replaced when dependencies are built.
