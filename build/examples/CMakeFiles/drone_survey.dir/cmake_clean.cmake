file(REMOVE_RECURSE
  "CMakeFiles/drone_survey.dir/drone_survey.cpp.o"
  "CMakeFiles/drone_survey.dir/drone_survey.cpp.o.d"
  "drone_survey"
  "drone_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
