# Empty compiler generated dependencies file for archival_service.
# This may be replaced when dependencies are built.
