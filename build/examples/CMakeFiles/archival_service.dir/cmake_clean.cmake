file(REMOVE_RECURSE
  "CMakeFiles/archival_service.dir/archival_service.cpp.o"
  "CMakeFiles/archival_service.dir/archival_service.cpp.o.d"
  "archival_service"
  "archival_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
