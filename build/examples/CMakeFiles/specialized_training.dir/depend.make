# Empty dependencies file for specialized_training.
# This may be replaced when dependencies are built.
