file(REMOVE_RECURSE
  "CMakeFiles/specialized_training.dir/specialized_training.cpp.o"
  "CMakeFiles/specialized_training.dir/specialized_training.cpp.o.d"
  "specialized_training"
  "specialized_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialized_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
