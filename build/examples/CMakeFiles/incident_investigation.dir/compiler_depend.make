# Empty compiler generated dependencies file for incident_investigation.
# This may be replaced when dependencies are built.
