# Empty dependencies file for vz_cli.
# This may be replaced when dependencies are built.
