file(REMOVE_RECURSE
  "CMakeFiles/vz_cli.dir/vz_cli.cpp.o"
  "CMakeFiles/vz_cli.dir/vz_cli.cpp.o.d"
  "vz_cli"
  "vz_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
