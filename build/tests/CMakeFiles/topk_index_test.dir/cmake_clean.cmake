file(REMOVE_RECURSE
  "CMakeFiles/topk_index_test.dir/topk_index_test.cc.o"
  "CMakeFiles/topk_index_test.dir/topk_index_test.cc.o.d"
  "topk_index_test"
  "topk_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
