# Empty compiler generated dependencies file for topk_index_test.
# This may be replaced when dependencies are built.
