# Empty compiler generated dependencies file for representative_covering_test.
# This may be replaced when dependencies are built.
