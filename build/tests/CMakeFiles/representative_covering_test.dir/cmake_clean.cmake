file(REMOVE_RECURSE
  "CMakeFiles/representative_covering_test.dir/representative_covering_test.cc.o"
  "CMakeFiles/representative_covering_test.dir/representative_covering_test.cc.o.d"
  "representative_covering_test"
  "representative_covering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representative_covering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
