
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/representative_covering_test.cc" "tests/CMakeFiles/representative_covering_test.dir/representative_covering_test.cc.o" "gcc" "tests/CMakeFiles/representative_covering_test.dir/representative_covering_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/vz_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/vz_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/vz_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vz_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/vz_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vz_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/vz_train.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
