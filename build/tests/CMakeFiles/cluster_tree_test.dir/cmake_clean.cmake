file(REMOVE_RECURSE
  "CMakeFiles/cluster_tree_test.dir/cluster_tree_test.cc.o"
  "CMakeFiles/cluster_tree_test.dir/cluster_tree_test.cc.o.d"
  "cluster_tree_test"
  "cluster_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
