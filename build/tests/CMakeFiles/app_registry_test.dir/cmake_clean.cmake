file(REMOVE_RECURSE
  "CMakeFiles/app_registry_test.dir/app_registry_test.cc.o"
  "CMakeFiles/app_registry_test.dir/app_registry_test.cc.o.d"
  "app_registry_test"
  "app_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
