# Empty compiler generated dependencies file for app_registry_test.
# This may be replaced when dependencies are built.
