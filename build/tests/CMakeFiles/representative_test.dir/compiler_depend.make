# Empty compiler generated dependencies file for representative_test.
# This may be replaced when dependencies are built.
