# Empty compiler generated dependencies file for omd_test.
# This may be replaced when dependencies are built.
