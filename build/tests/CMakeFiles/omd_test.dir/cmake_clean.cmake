file(REMOVE_RECURSE
  "CMakeFiles/omd_test.dir/omd_test.cc.o"
  "CMakeFiles/omd_test.dir/omd_test.cc.o.d"
  "omd_test"
  "omd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
