file(REMOVE_RECURSE
  "CMakeFiles/nn_descent_test.dir/nn_descent_test.cc.o"
  "CMakeFiles/nn_descent_test.dir/nn_descent_test.cc.o.d"
  "nn_descent_test"
  "nn_descent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_descent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
