# Empty compiler generated dependencies file for nn_descent_test.
# This may be replaced when dependencies are built.
