# Empty dependencies file for videozilla_edge_test.
# This may be replaced when dependencies are built.
