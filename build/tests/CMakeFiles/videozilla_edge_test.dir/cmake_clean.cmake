file(REMOVE_RECURSE
  "CMakeFiles/videozilla_edge_test.dir/videozilla_edge_test.cc.o"
  "CMakeFiles/videozilla_edge_test.dir/videozilla_edge_test.cc.o.d"
  "videozilla_edge_test"
  "videozilla_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videozilla_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
