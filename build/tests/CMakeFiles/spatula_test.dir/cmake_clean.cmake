file(REMOVE_RECURSE
  "CMakeFiles/spatula_test.dir/spatula_test.cc.o"
  "CMakeFiles/spatula_test.dir/spatula_test.cc.o.d"
  "spatula_test"
  "spatula_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
