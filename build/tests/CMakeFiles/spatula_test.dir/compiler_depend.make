# Empty compiler generated dependencies file for spatula_test.
# This may be replaced when dependencies are built.
