# Empty compiler generated dependencies file for perch_tree_test.
# This may be replaced when dependencies are built.
