file(REMOVE_RECURSE
  "CMakeFiles/perch_tree_test.dir/perch_tree_test.cc.o"
  "CMakeFiles/perch_tree_test.dir/perch_tree_test.cc.o.d"
  "perch_tree_test"
  "perch_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perch_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
