# Empty dependencies file for misc_api_test.
# This may be replaced when dependencies are built.
