file(REMOVE_RECURSE
  "CMakeFiles/misc_api_test.dir/misc_api_test.cc.o"
  "CMakeFiles/misc_api_test.dir/misc_api_test.cc.o.d"
  "misc_api_test"
  "misc_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
