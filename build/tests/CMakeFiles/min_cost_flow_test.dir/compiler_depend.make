# Empty compiler generated dependencies file for min_cost_flow_test.
# This may be replaced when dependencies are built.
