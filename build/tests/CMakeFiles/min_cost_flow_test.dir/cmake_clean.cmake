file(REMOVE_RECURSE
  "CMakeFiles/min_cost_flow_test.dir/min_cost_flow_test.cc.o"
  "CMakeFiles/min_cost_flow_test.dir/min_cost_flow_test.cc.o.d"
  "min_cost_flow_test"
  "min_cost_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_cost_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
