# Empty compiler generated dependencies file for feature_vector_test.
# This may be replaced when dependencies are built.
