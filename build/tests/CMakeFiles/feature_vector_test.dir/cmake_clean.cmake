file(REMOVE_RECURSE
  "CMakeFiles/feature_vector_test.dir/feature_vector_test.cc.o"
  "CMakeFiles/feature_vector_test.dir/feature_vector_test.cc.o.d"
  "feature_vector_test"
  "feature_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
