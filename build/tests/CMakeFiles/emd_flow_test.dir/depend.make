# Empty dependencies file for emd_flow_test.
# This may be replaced when dependencies are built.
