file(REMOVE_RECURSE
  "CMakeFiles/emd_flow_test.dir/emd_flow_test.cc.o"
  "CMakeFiles/emd_flow_test.dir/emd_flow_test.cc.o.d"
  "emd_flow_test"
  "emd_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emd_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
