# Empty dependencies file for inter_index_test.
# This may be replaced when dependencies are built.
