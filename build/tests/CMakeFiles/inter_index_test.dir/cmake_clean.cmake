file(REMOVE_RECURSE
  "CMakeFiles/inter_index_test.dir/inter_index_test.cc.o"
  "CMakeFiles/inter_index_test.dir/inter_index_test.cc.o.d"
  "inter_index_test"
  "inter_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inter_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
