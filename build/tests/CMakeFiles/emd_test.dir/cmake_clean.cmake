file(REMOVE_RECURSE
  "CMakeFiles/emd_test.dir/emd_test.cc.o"
  "CMakeFiles/emd_test.dir/emd_test.cc.o.d"
  "emd_test"
  "emd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
