file(REMOVE_RECURSE
  "CMakeFiles/index_edge_test.dir/index_edge_test.cc.o"
  "CMakeFiles/index_edge_test.dir/index_edge_test.cc.o.d"
  "index_edge_test"
  "index_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
