file(REMOVE_RECURSE
  "CMakeFiles/intra_index_test.dir/intra_index_test.cc.o"
  "CMakeFiles/intra_index_test.dir/intra_index_test.cc.o.d"
  "intra_index_test"
  "intra_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intra_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
