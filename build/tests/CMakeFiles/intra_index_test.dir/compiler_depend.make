# Empty compiler generated dependencies file for intra_index_test.
# This may be replaced when dependencies are built.
