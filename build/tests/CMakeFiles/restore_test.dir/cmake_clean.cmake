file(REMOVE_RECURSE
  "CMakeFiles/restore_test.dir/restore_test.cc.o"
  "CMakeFiles/restore_test.dir/restore_test.cc.o.d"
  "restore_test"
  "restore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
