file(REMOVE_RECURSE
  "CMakeFiles/videozilla_test.dir/videozilla_test.cc.o"
  "CMakeFiles/videozilla_test.dir/videozilla_test.cc.o.d"
  "videozilla_test"
  "videozilla_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videozilla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
