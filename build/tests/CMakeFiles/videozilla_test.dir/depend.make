# Empty dependencies file for videozilla_test.
# This may be replaced when dependencies are built.
