// Reproduces Figure 18: feature clusters discovered in the same video —
// Video-zilla's representative centers map to the scene's actual object
// classes, while the top-k index additionally carries an "other" bucket
// whose frames every query must re-examine (the source of the top-k index's
// wasted GPU time).
#include <cstdio>
#include <string>

#include "bench_util.h"

namespace vz::bench {
namespace {

void Run() {
  EndToEndRig rig;
  Banner("Figure 18: feature clusters in the same video",
         "one downtown feed; VZ cluster centers vs top-k indexed classes");
  const core::CameraId camera = "downtown-nyc-0";

  // Video-zilla: classes implied by the camera's cluster representatives
  // (each weighted center sits near one class prototype).
  auto intra = rig.system.intra_index(camera);
  if (!intra.ok()) {
    std::printf("camera %s not found\n", camera.c_str());
    return;
  }
  std::printf("Video-zilla clusters for %s:\n", camera.c_str());
  size_t cluster_index = 0;
  for (const auto& cluster : (*intra)->clusters()) {
    std::printf("  cluster %zu (%zu SVSs):", cluster_index++,
                cluster.members.size());
    for (const auto& center : cluster.representative.centers()) {
      const int cls = rig.deployment.space().NearestPrototype(center.center);
      std::printf(" %s(w=%.2f)",
                  std::string(sim::ObjectClassName(cls)).c_str(),
                  center.weight);
    }
    std::printf("\n");
  }

  // Top-k index: classes in the inverted index, including "other".
  std::printf("top-k index classes for %s:\n ", camera.c_str());
  size_t count = 0;
  bool has_other = false;
  for (int cls : rig.topk.IndexedClasses(camera)) {
    std::printf(" %s", std::string(sim::ObjectClassName(cls)).c_str());
    ++count;
    has_other |= (cls == sim::kOtherClass);
  }
  std::printf("\n  -> %zu classes%s\n", count,
              has_other ? " (includes the extra \"other\" class that every "
                          "query rescans)"
                        : "");
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
