// Reproduces Figure 12: Video-zilla's incremental clustering (PERCH-OMD) vs
// hierarchical agglomerative clustering with single/complete/average
// linkage, as SVSs stream in. All methods reach similar dendrogram purity,
// but HAC's cumulative OMD computations grow quadratically with the index
// size (it needs the full distance matrix) while the incremental tree grows
// roughly linearly, and HAC's per-attempt latency explodes because it
// reclusters from scratch on every arrival.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "clustering/dendrogram_purity.h"
#include "clustering/hac.h"
#include "common/sim_clock.h"
#include "core/feature_map_metric.h"
#include "index/perch_tree.h"

namespace vz::bench {
namespace {

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Figure 12: clustering algorithm comparison",
         "200 synthetic SVSs (10 types) streamed; checkpoints every 40");

  core::OmdOptions omd_options;
  omd_options.max_vectors = 40;
  core::OmdCalculator calc(omd_options);

  // PERCH-OMD: one incremental tree; its memoized metric counts each
  // distinct pair solved once, as the real system does.
  core::FeatureMapListMetric perch_metric(&data.svss, &calc,
                                          /*memoize=*/true);
  index::PerchTree perch(&perch_metric, index::PerchOptions{});

  // HAC: distances served from a memo shared across attempts (the kindest
  // possible implementation — it still needs every pair at least once).
  core::FeatureMapListMetric hac_metric(&data.svss, &calc, /*memoize=*/true);

  std::printf(
      "%-6s | %-9s %-12s %-11s | %-9s %-12s %-11s (per linkage)\n", "size",
      "vz-purity", "vz-cum-OMD", "vz-ins-ms", "hac-purity", "hac-cum-OMD",
      "hac-att-ms");
  const std::vector<size_t> checkpoints = {40, 80, 120, 160, 200};
  size_t next_checkpoint = 0;
  for (size_t n = 0; n < data.svss.size(); ++n) {
    Stopwatch insert_watch;
    (void)perch.Insert(static_cast<int>(n));
    const double insert_ms = insert_watch.ElapsedMillis();
    if (next_checkpoint >= checkpoints.size() ||
        n + 1 != checkpoints[next_checkpoint]) {
      continue;
    }
    ++next_checkpoint;
    const size_t size = n + 1;
    std::vector<int> labels(data.labels.begin(),
                            data.labels.begin() + static_cast<long>(size));
    auto vz_purity =
        clustering::DendrogramPurity(perch.ToClusterTree(), labels);

    // One HAC attempt per linkage at this size (the paper's HAC baselines
    // would have run at *every* insertion; per-attempt cost is what blows
    // up, and cumulative OMD count is the same since distances memoize).
    double hac_purity_avg = 0.0;
    double hac_ms_avg = 0.0;
    for (clustering::Linkage linkage :
         {clustering::Linkage::kSingle, clustering::Linkage::kComplete,
          clustering::Linkage::kAverage}) {
      Stopwatch hac_watch;
      auto hac = clustering::Hac(
          size,
          [&hac_metric](size_t i, size_t j) {
            return hac_metric.Distance(static_cast<int>(i),
                                       static_cast<int>(j));
          },
          linkage);
      hac_ms_avg += hac_watch.ElapsedMillis() / 3.0;
      if (hac.ok()) {
        auto purity = clustering::DendrogramPurity(hac->tree, labels);
        if (purity.ok()) hac_purity_avg += *purity / 3.0;
      }
    }
    std::printf("%-6zu | %9.3f %12llu %11.2f | %9.3f %12llu %11.2f\n", size,
                vz_purity.ok() ? *vz_purity : -1.0,
                static_cast<unsigned long long>(
                    perch_metric.num_distance_evals()),
                insert_ms, hac_purity_avg,
                static_cast<unsigned long long>(
                    hac_metric.num_distance_evals()),
                hac_ms_avg);
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
