// Reproduces the Sec. 7.3 index-building overhead accounting: the index is
// tiny relative to the video it covers, builds quickly, and the hierarchical
// (edge -> cloud) organisation ships a small fraction of the bytes a flat
// centralized index would (the paper measures a 19x reduction with 20
// cameras x 100 SVSs).
#include <cstdio>

#include "bench_util.h"
#include "common/sim_clock.h"

namespace vz::bench {
namespace {

size_t RepresentativeBytes(const core::Representative& rep) {
  size_t bytes = 0;
  for (const auto& center : rep.centers()) {
    bytes += center.center.dim() * sizeof(float) + 3 * sizeof(double);
  }
  return bytes;
}

void Run() {
  Banner("Sec 7.3: index building overhead & edge->cloud traffic",
         "16-camera deployment, 8 min feeds");
  Stopwatch build_watch;
  EndToEndRig rig;
  const double build_seconds = build_watch.ElapsedSeconds();

  const auto& stats = rig.system.ingest_stats();
  size_t video_bytes = 0;
  int64_t video_ms = 0;
  size_t index_bytes = 0;
  for (core::SvsId id : rig.system.svs_store().AllIds()) {
    auto svs = rig.system.svs_store().Get(id);
    if (!svs.ok()) continue;
    video_bytes += (*svs)->encoded_bytes();
    video_ms += (*svs)->DurationMs();
    index_bytes += RepresentativeBytes((*svs)->representative());
  }
  for (const auto& cam : rig.deployment.cameras()) {
    auto intra = rig.system.intra_index(cam.camera);
    if (!intra.ok()) continue;
    for (const auto& cluster : (*intra)->clusters()) {
      index_bytes += RepresentativeBytes(cluster.representative);
    }
  }
  for (const auto& entry : rig.system.inter_index().entries()) {
    index_bytes += RepresentativeBytes(entry.rep);
  }

  std::printf("SVSs indexed:                  %zu\n",
              rig.system.svs_store().size());
  std::printf("video covered:                 %.1f camera-minutes, %.1f MB\n",
              static_cast<double>(video_ms) / 60000.0,
              static_cast<double>(video_bytes) / 1e6);
  std::printf("index size (all reps):         %.1f KB (%.4f%% of video)\n",
              static_cast<double>(index_bytes) / 1e3,
              100.0 * static_cast<double>(index_bytes) /
                  static_cast<double>(video_bytes));
  std::printf("end-to-end build time:         %.2f s (incl. synthesis)\n",
              build_seconds);

  // Traffic: hierarchical sends only representative SVSs to the cloud;
  // a flat centralized index would ship every extracted feature.
  const size_t hierarchical =
      rig.system.inter_index().representative_bytes_received();
  const size_t flat = stats.raw_feature_bytes;
  std::printf("edge->cloud traffic, flat:     %.2f MB (all raw features)\n",
              static_cast<double>(flat) / 1e6);
  std::printf("edge->cloud traffic, 2-level:  %.2f MB (representatives only)\n",
              static_cast<double>(hierarchical) / 1e6);
  std::printf("traffic reduction:             %.1fx (paper: 19x at its scale)\n",
              hierarchical > 0
                  ? static_cast<double>(flat) /
                        static_cast<double>(hierarchical)
                  : 0.0);
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
