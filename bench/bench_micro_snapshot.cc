// Microbenchmark (google-benchmark): snapshot save/load throughput for the
// SVS store — the restart path of a deployed indexing layer. Not a paper
// figure; an operational metric for this implementation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/representative.h"
#include "core/svs.h"
#include "io/svs_snapshot.h"
#include "sim/dataset.h"

namespace {

void FillStore(vz::core::SvsStore* store, size_t num_svs) {
  vz::sim::SyntheticDatasetOptions options;
  options.num_svs = num_svs;
  options.vectors_per_svs = 60;
  options.dim = 64;
  options.seed = 77;
  vz::sim::SyntheticDataset data = vz::sim::MakeSyntheticDataset(options);
  vz::Rng rng(5);
  for (size_t i = 0; i < data.svss.size(); ++i) {
    const vz::core::SvsId id =
        store->Create("cam-" + std::to_string(i % 8),
                      static_cast<int64_t>(i) * 1000,
                      static_cast<int64_t>(i) * 1000 + 900,
                      std::move(data.svss[i]));
    auto svs = store->GetMutable(id);
    auto rep = vz::core::BuildRepresentative(
        (*svs)->features(), vz::core::RepresentativeOptions{}, &rng);
    if (rep.ok()) (*svs)->set_representative(*rep);
    (*svs)->set_frame_ids({static_cast<int64_t>(i), static_cast<int64_t>(i) + 1});
  }
}

void BM_SnapshotSave(benchmark::State& state) {
  vz::core::SvsStore store;
  FillStore(&store, static_cast<size_t>(state.range(0)));
  const std::string path = "/tmp/vz_bench_snapshot.vzss";
  for (auto _ : state) {
    benchmark::DoNotOptimize(vz::io::SaveSvsStore(store, path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSave)->Arg(32)->Arg(128);

void BM_SnapshotLoad(benchmark::State& state) {
  vz::core::SvsStore store;
  FillStore(&store, static_cast<size_t>(state.range(0)));
  const std::string path = "/tmp/vz_bench_snapshot.vzss";
  if (!vz::io::SaveSvsStore(store, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    vz::core::SvsStore loaded;
    benchmark::DoNotOptimize(vz::io::LoadSvsStore(path, &loaded));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
