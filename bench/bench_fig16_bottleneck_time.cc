// Reproduces Figure 16: bottleneck query time — the GPU time of the slowest
// intra-camera index — for fire hydrant / boat / train queries under
// Video-zilla vs the per-camera top-k baseline. Because the end-to-end
// latency is gated by the slowest camera even with perfect parallelism,
// both systems look similar here (Video-zilla's win is the *cumulative* GPU
// time of Fig. 17).
//
// A threads axis rides along: the same query set is replayed against rigs
// configured with 1 / 2 / 4 execution lanes. The simulated GPU bottleneck
// numbers are bit-identical across lanes (the determinism guarantee of the
// parallel query path); the wall-clock column shows how much of the *index*
// side — candidate search plus verifier dispatch — the thread pool absorbs.
//
// A deadline axis rides along too: the same queries under shrinking
// wall-clock budgets, recording the average completed fraction and the
// timed-out count per budget — the graceful-degradation curve of the
// best-effort timeout path. Pass a single budget
// (`bench_fig16_bottleneck_time --deadline-ms 5`) to run only the deadline
// axis at that budget, skipping the figure sweep.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "bench_util.h"

namespace vz::bench {
namespace {

constexpr int kQueriesPerClass = 10;

void Run() {
  Banner("Figure 16: bottleneck (slowest-camera) query time",
         "28 cameras, 10 query instances per object class, threads axis");

  for (const size_t num_threads : {size_t{1}, size_t{2}, size_t{4}}) {
    core::VideoZillaOptions vz_options = BenchVzOptions();
    vz_options.num_threads = num_threads;
    EndToEndRig rig(LargeDeploymentOptions(), vz_options);
    Rng rng(41);

    std::printf("\n-- query threads: %zu --\n", num_threads);
    std::printf("%-13s %24s %24s %16s\n", "query",
                "video-zilla bottleneck (s)", "top-k bottleneck (s)",
                "vz wall (ms/q)");
    for (int object_class : PaperQueryClasses()) {
      double vz_bottleneck_ms = 0.0;
      double topk_bottleneck_ms = 0.0;
      double wall_ms = 0.0;
      for (int q = 0; q < kQueriesPerClass; ++q) {
        const FeatureVector query =
            rig.deployment.MakeQueryFeature(object_class, &rng);
        const auto start = std::chrono::steady_clock::now();
        auto result = rig.system.DirectQuery(query);
        const auto end = std::chrono::steady_clock::now();
        wall_ms += std::chrono::duration<double, std::milli>(end - start)
                       .count() /
                   kQueriesPerClass;
        if (result.ok()) {
          vz_bottleneck_ms +=
              result->bottleneck_camera_gpu_ms / kQueriesPerClass;
        }
        const auto topk = rig.topk.Query(object_class);
        size_t worst_frames = 0;
        for (const auto& [camera, frames] : topk.per_camera_frames) {
          worst_frames = std::max(worst_frames, frames);
        }
        topk_bottleneck_ms += static_cast<double>(worst_frames) *
                              rig.gpu_cost.heavy_ms_per_frame /
                              kQueriesPerClass;
      }
      std::printf("%-13s %24.2f %24.2f %16.3f\n",
                  std::string(sim::ObjectClassName(object_class)).c_str(),
                  vz_bottleneck_ms / 1000.0, topk_bottleneck_ms / 1000.0,
                  wall_ms);
    }
  }
}

void RunDeadlineAxis(const std::vector<int64_t>& budgets_ms) {
  Banner("Deadline axis: completed fraction vs wall-clock budget",
         "best-effort timeouts; 0 = no deadline");
  core::VideoZillaOptions vz_options = BenchVzOptions();
  vz_options.num_threads = 4;
  EndToEndRig rig(LargeDeploymentOptions(), vz_options);

  std::printf("\n%-14s %10s %14s %14s %18s\n", "deadline (ms)", "queries",
              "timed out", "avg completed", "avg matches");
  for (const int64_t budget_ms : budgets_ms) {
    Rng rng(41);  // identical query set per budget
    size_t queries = 0;
    size_t timed_out = 0;
    double completed_sum = 0.0;
    double matches_sum = 0.0;
    core::QueryConstraints constraints;
    // 0 means unconstrained; a negative budget is already expired on entry,
    // the floor of the graceful-degradation curve.
    if (budget_ms != 0) constraints.deadline_ms = budget_ms;
    for (int object_class : PaperQueryClasses()) {
      for (int q = 0; q < kQueriesPerClass; ++q) {
        const FeatureVector query =
            rig.deployment.MakeQueryFeature(object_class, &rng);
        auto result = rig.system.DirectQuery(query, constraints);
        if (!result.ok()) continue;
        ++queries;
        timed_out += result->timed_out ? 1 : 0;
        completed_sum += result->completed_fraction;
        matches_sum += static_cast<double>(result->matched_svss.size());
      }
    }
    if (queries == 0) continue;
    std::printf("%-14lld %10zu %14zu %13.1f%% %18.1f\n",
                static_cast<long long>(budget_ms), queries, timed_out,
                100.0 * completed_sum / static_cast<double>(queries),
                matches_sum / static_cast<double>(queries));
  }
}

}  // namespace
}  // namespace vz::bench

int main(int argc, char** argv) {
  // Default sweep: no deadline, then shrinking budgets down to an
  // already-expired one (every query returns the empty best-effort result).
  std::vector<int64_t> budgets_ms = {0, 50, 10, 2, -1};
  bool deadline_only = false;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      budgets_ms = {std::atoll(argv[i + 1])};
      deadline_only = true;  // probing the deadline curve, skip the sweep
    }
  }
  if (!deadline_only) vz::bench::Run();
  vz::bench::RunDeadlineAxis(budgets_ms);
  return 0;
}
