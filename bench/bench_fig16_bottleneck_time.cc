// Reproduces Figure 16: bottleneck query time — the GPU time of the slowest
// intra-camera index — for fire hydrant / boat / train queries under
// Video-zilla vs the per-camera top-k baseline. Because the end-to-end
// latency is gated by the slowest camera even with perfect parallelism,
// both systems look similar here (Video-zilla's win is the *cumulative* GPU
// time of Fig. 17).
//
// A threads axis rides along: the same query set is replayed against rigs
// configured with 1 / 2 / 4 execution lanes. The simulated GPU bottleneck
// numbers are bit-identical across lanes (the determinism guarantee of the
// parallel query path); the wall-clock column shows how much of the *index*
// side — candidate search plus verifier dispatch — the thread pool absorbs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "bench_util.h"

namespace vz::bench {
namespace {

constexpr int kQueriesPerClass = 10;

void Run() {
  Banner("Figure 16: bottleneck (slowest-camera) query time",
         "28 cameras, 10 query instances per object class, threads axis");

  for (const size_t num_threads : {size_t{1}, size_t{2}, size_t{4}}) {
    core::VideoZillaOptions vz_options = BenchVzOptions();
    vz_options.num_threads = num_threads;
    EndToEndRig rig(LargeDeploymentOptions(), vz_options);
    Rng rng(41);

    std::printf("\n-- query threads: %zu --\n", num_threads);
    std::printf("%-13s %24s %24s %16s\n", "query",
                "video-zilla bottleneck (s)", "top-k bottleneck (s)",
                "vz wall (ms/q)");
    for (int object_class : PaperQueryClasses()) {
      double vz_bottleneck_ms = 0.0;
      double topk_bottleneck_ms = 0.0;
      double wall_ms = 0.0;
      for (int q = 0; q < kQueriesPerClass; ++q) {
        const FeatureVector query =
            rig.deployment.MakeQueryFeature(object_class, &rng);
        const auto start = std::chrono::steady_clock::now();
        auto result = rig.system.DirectQuery(query);
        const auto end = std::chrono::steady_clock::now();
        wall_ms += std::chrono::duration<double, std::milli>(end - start)
                       .count() /
                   kQueriesPerClass;
        if (result.ok()) {
          vz_bottleneck_ms +=
              result->bottleneck_camera_gpu_ms / kQueriesPerClass;
        }
        const auto topk = rig.topk.Query(object_class);
        size_t worst_frames = 0;
        for (const auto& [camera, frames] : topk.per_camera_frames) {
          worst_frames = std::max(worst_frames, frames);
        }
        topk_bottleneck_ms += static_cast<double>(worst_frames) *
                              rig.gpu_cost.heavy_ms_per_frame /
                              kQueriesPerClass;
      }
      std::printf("%-13s %24.2f %24.2f %16.3f\n",
                  std::string(sim::ObjectClassName(object_class)).c_str(),
                  vz_bottleneck_ms / 1000.0, topk_bottleneck_ms / 1000.0,
                  wall_ms);
    }
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
