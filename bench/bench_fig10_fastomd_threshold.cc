// Reproduces Figure 10: the impact of the FastOMD threshold alpha on
// approximation error and computation time, over random pairs of synthetic
// SVSs. Error decreases and time grows as alpha -> 1 (where FastOMD equals
// exact OMD); the paper settles on alpha = 0.6.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/sim_clock.h"
#include "core/omd.h"

namespace vz::bench {
namespace {

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  data_options.num_svs = 40;
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Figure 10: impact of threshold on FastOMD",
         "40 synthetic SVSs, 60x128-d vectors, 20 random pairs per alpha");

  // Random SVS pairs.
  Rng rng(17);
  std::vector<std::pair<size_t, size_t>> pairs;
  while (pairs.size() < 20) {
    const size_t a = rng.UniformUint64(data.svss.size());
    const size_t b = rng.UniformUint64(data.svss.size());
    if (a != b) pairs.emplace_back(a, b);
  }

  // Exact reference distances and time.
  core::OmdOptions exact_options;
  exact_options.mode = core::OmdMode::kExact;
  exact_options.max_vectors = 60;
  core::OmdCalculator exact(exact_options);
  std::vector<double> reference;
  Stopwatch exact_watch;
  for (const auto& [a, b] : pairs) {
    auto d = exact.Distance(data.svss[a], data.svss[b]);
    reference.push_back(d.ok() ? *d : 0.0);
  }
  const double exact_time = exact_watch.ElapsedSeconds();

  std::printf("%-7s %18s %18s\n", "alpha", "approx error", "normalized time");
  for (double alpha : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    core::OmdOptions options;
    options.mode = core::OmdMode::kThresholded;
    options.threshold_alpha = alpha;
    options.max_vectors = 60;
    core::OmdCalculator approx(options);
    double error = 0.0;
    Stopwatch watch;
    for (size_t p = 0; p < pairs.size(); ++p) {
      auto d = approx.Distance(data.svss[pairs[p].first],
                               data.svss[pairs[p].second]);
      const double value = d.ok() ? *d : 0.0;
      if (reference[p] > 0.0) {
        error += (reference[p] - value) / reference[p];
      }
    }
    const double elapsed = watch.ElapsedSeconds();
    std::printf("%-7.2f %17.2f%% %18.3f\n", alpha,
                100.0 * error / static_cast<double>(pairs.size()),
                exact_time > 0.0 ? elapsed / exact_time : 0.0);
  }
  std::printf("exact OMD wall time for %zu pairs: %.3f s\n", pairs.size(),
              exact_time);
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
