// Ablation for the design choices of Sec. 4: masking-triggered and
// balance-triggered rotations, and the OCD-pruned nearest-neighbor search.
// An adversarial arrival order (cluster types interleaved) makes the
// greedy-only tree impure; masking rotations restore purity, balance
// rotations keep the tree shallow (which in turn keeps searches cheap).
#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "clustering/dendrogram_purity.h"
#include "core/feature_map_metric.h"
#include "index/perch_tree.h"

namespace vz::bench {
namespace {

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  data_options.num_svs = 150;
  data_options.svs_jitter = 1.2;
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Ablation: PERCH rotations and pruning",
         "150 synthetic SVSs, type-sorted arrival (the Fig. 7 masking case)");

  // Sorted-by-type arrival: each new type's first SVSs land inside the
  // previous types' region of the tree and are masked there (exactly the
  // car/train scenario of Fig. 7) until rotations pull them out.
  std::vector<int> order(data.svss.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&data](int a, int b) {
    return data.labels[static_cast<size_t>(a)] <
           data.labels[static_cast<size_t>(b)];
  });
  core::OmdOptions omd_options;
  omd_options.max_vectors = 40;

  struct Config {
    const char* name;
    bool masking;
    bool balance;
  };
  const std::vector<Config> configs = {
      {"greedy only", false, false},
      {"+ masking", true, false},
      {"+ balance", false, true},
      {"+ both", true, true},
  };
  std::printf("%-14s %10s %8s %10s %12s %14s\n", "config", "purity", "depth",
              "balance", "rotations", "OMD computed");
  for (const Config& config : configs) {
    core::OmdCalculator calc(omd_options);
    core::FeatureMapListMetric metric(&data.svss, &calc, /*memoize=*/true);
    index::PerchOptions options;
    options.enable_masking_rotations = config.masking;
    options.enable_balance_rotations = config.balance;
    index::PerchTree tree(&metric, options);
    for (int item : order) {
      (void)tree.Insert(item);
    }
    auto purity = clustering::DendrogramPurity(tree.ToClusterTree(),
                                               data.labels);
    std::printf("%-14s %10.3f %8zu %10.3f %12llu %14llu\n", config.name,
                purity.ok() ? *purity : -1.0, tree.Depth(),
                tree.AverageBalance(),
                static_cast<unsigned long long>(
                    tree.stats().masking_rotations +
                    tree.stats().balance_rotations),
                static_cast<unsigned long long>(metric.num_distance_evals()));
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
