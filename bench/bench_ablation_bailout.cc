// Ablation for Sec. 5.3: the performance monitor's adaptation ladder and
// bailout. A deliberately degraded configuration (noisy VGG-16 features,
// boundaries too tight) drives query F1 below the user preference; the
// monitor walks through (i) more clusters, (ii) exact OMD, (iii) flat SVS
// index, then bails out to the frame-level scan, and the ladder's effect on
// F1 is visible at each step.
#include <cstdio>

#include "bench_util.h"
#include "core/monitor.h"

namespace vz::bench {
namespace {

const char* StateName(core::MonitorState state) {
  switch (state) {
    case core::MonitorState::kNormal:
      return "normal";
    case core::MonitorState::kMoreClusters:
      return "more-clusters";
    case core::MonitorState::kAccurateOmd:
      return "exact-omd";
    case core::MonitorState::kFlatSvsIndex:
      return "flat-svs";
    case core::MonitorState::kBailout:
      return "BAILOUT";
  }
  return "?";
}

void Run() {
  Banner("Sec 5.3 ablation: performance monitoring and bailout",
         "VGG-16 features, boundary scale 0.8 (deliberately degraded)");
  sim::DeploymentOptions dep_options = BenchDeploymentOptions();
  dep_options.extractor = sim::ExtractorProfile::Vgg16();
  core::VideoZillaOptions vz_options = BenchVzOptions();
  vz_options.boundary_scale = 0.8;  // too tight: hierarchical recall tanks
  EndToEndRig rig(dep_options, vz_options);

  core::MonitorOptions monitor_options;
  monitor_options.target_f1 = 0.6;
  monitor_options.ground_truth_interval = 5;
  monitor_options.bailout_probe_interval = 5;
  core::PerformanceMonitor monitor(
      &rig.system, monitor_options,
      [&rig](const FeatureVector& feature) {
        const int cls = rig.deployment.space().NearestPrototype(feature);
        return rig.deployment.log().TrueSvsSet(rig.system.svs_store(), cls);
      });

  Rng rng(67);
  core::MonitorState last_state = monitor.state();
  std::printf("%-7s %-14s %8s %8s\n", "query", "state", "last F1",
              "matched");
  for (int q = 1; q <= 60; ++q) {
    const int cls = PaperQueryClasses()[static_cast<size_t>(q) % 3];
    auto result = monitor.Query(rig.deployment.MakeQueryFeature(cls, &rng));
    const bool transitioned = monitor.state() != last_state;
    if (transitioned || q % 10 == 0) {
      std::printf("%-7d %-14s %8.2f %8zu%s\n", q, StateName(monitor.state()),
                  monitor.last_f1(),
                  result.ok() ? result->matched_svss.size() : 0,
                  transitioned ? "   <- transition" : "");
    }
    last_state = monitor.state();
  }
  std::printf("ground-truth comparisons run: %llu (every %zu queries)\n",
              static_cast<unsigned long long>(monitor.ground_truth_checks()),
              monitor_options.ground_truth_interval);
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
