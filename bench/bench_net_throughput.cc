// Serving-layer throughput: requests/sec and p50/p99 latency of the binary
// RPC path over loopback TCP versus the same calls made in process, at 1, 4
// and 16 concurrent clients. Two workloads bracket the cost spectrum: a
// stats poll (pure framing + dispatch overhead) and a DirectQuery against a
// pre-ingested deployment (real query compute, where the wire should all
// but disappear). A fourth transport prices the sharded topology: the same
// deployment split over 2 edge servers behind a coordinator (one extra hop
// plus scatter-gather fan-out and merge per query —
// scripts/run_cluster.sh boots the multi-process equivalent). Emits one
// JSON object per row alongside the usual table.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/chaos_proxy.h"
#include "net/client.h"
#include "net/coordinator.h"
#include "net/server.h"

namespace vz {
namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

struct Row {
  std::string workload;
  std::string transport;
  size_t clients = 0;
  size_t requests = 0;
  double reqs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[index];
}

/// Runs `requests_per_client` timed calls on `clients` threads; `call` is
/// (client_index, request_index) -> ok.
template <typename Fn>
Row RunWorkload(const std::string& workload, const std::string& transport,
                size_t clients, size_t requests_per_client, Fn&& call) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (size_t r = 0; r < requests_per_client; ++r) {
        const Clock::time_point t0 = Clock::now();
        if (!call(c, r)) return;  // drop this lane; row shows fewer requests
        latencies[c].push_back(ToMs(Clock::now() - t0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_ms = ToMs(Clock::now() - start);

  std::vector<double> all;
  for (const auto& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  std::sort(all.begin(), all.end());
  Row row;
  row.workload = workload;
  row.transport = transport;
  row.clients = clients;
  row.requests = all.size();
  row.reqs_per_sec =
      elapsed_ms > 0 ? 1000.0 * static_cast<double>(all.size()) / elapsed_ms
                     : 0.0;
  row.p50_ms = Percentile(&all, 0.50);
  row.p99_ms = Percentile(&all, 0.99);
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-13s %-11s %8zu %9zu %12.0f %10.3f %10.3f\n",
              row.workload.c_str(), row.transport.c_str(), row.clients,
              row.requests, row.reqs_per_sec, row.p50_ms, row.p99_ms);
  std::printf("JSON {\"bench\":\"net_throughput\",\"workload\":\"%s\","
              "\"transport\":\"%s\",\"clients\":%zu,\"requests\":%zu,"
              "\"reqs_per_sec\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
              row.workload.c_str(), row.transport.c_str(), row.clients,
              row.requests, row.reqs_per_sec, row.p50_ms, row.p99_ms);
}

}  // namespace
}  // namespace vz

int main() {
  using namespace vz;
  bench::Banner("Serving layer: loopback RPC vs in-process vs chaos proxy "
                "vs 2-edge coordinator",
                "deployment=16 cameras x 8 min, workloads=stats poll + "
                "DirectQuery, clients=1/4/16, proxy runs fault-free, "
                "coordinator fans out over 2 edge shards");

  bench::EndToEndRig rig;
  Rng rng(3);
  const FeatureVector query =
      rig.deployment.MakeQueryFeature(sim::kBoat, &rng);

  net::ServerOptions server_options;
  server_options.max_connections = 32;  // loopback + proxied pools coexist
  net::Server server(&rig.system, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // A fault-free chaos proxy in the path prices the relay itself (one extra
  // hop, two pump threads per connection, per-chunk fault rolls that all
  // come up clean) — the baseline tax every chaos drill pays.
  net::ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  net::ChaosProxy proxy(proxy_options);
  if (Status s = proxy.Start(); !s.ok()) {
    std::fprintf(stderr, "proxy start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The sharded topology: the same deployment split round-robin over 2 edge
  // shards behind a coordinator. Prices scatter-gather fan-out + merge (and
  // the rep-sync-pruned fan-out on direct queries) against the single-node
  // rows above. Background sync is off so rows time queries, not sync churn.
  const auto edge_shards = rig.deployment.PartitionCameras(2);
  std::vector<std::unique_ptr<core::VideoZilla>> edge_systems;
  std::vector<std::unique_ptr<net::Server>> edge_servers;
  net::CoordinatorOptions coord_options;
  coord_options.sync_interval_ms = 0;
  coord_options.max_connections = 32;
  coord_options.omd = bench::BenchVzOptions().omd;
  coord_options.inter = bench::BenchVzOptions().inter;
  coord_options.boundary_scale = bench::BenchVzOptions().boundary_scale;
  for (const auto& shard : edge_shards) {
    edge_systems.push_back(
        std::make_unique<core::VideoZilla>(bench::BenchVzOptions()));
    if (Status s = rig.deployment.IngestShard(edge_systems.back().get(),
                                              shard);
        !s.ok()) {
      std::fprintf(stderr, "shard ingest failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    net::ServerOptions edge_options;
    edge_options.max_connections = 32;
    edge_servers.push_back(std::make_unique<net::Server>(
        edge_systems.back().get(), edge_options));
    if (Status s = edge_servers.back()->Start(); !s.ok()) {
      std::fprintf(stderr, "edge start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    coord_options.edges.push_back({"127.0.0.1", edge_servers.back()->port()});
  }
  net::Coordinator coordinator(coord_options);
  if (Status s = coordinator.Start(); !s.ok()) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  std::printf("\n%-13s %-11s %8s %9s %12s %10s %10s\n", "workload",
              "transport", "clients", "requests", "reqs/sec", "p50 (ms)",
              "p99 (ms)");

  const std::vector<size_t> kClientCounts = {1, 4, 16};
  constexpr size_t kStatsRequests = 2'000;
  constexpr size_t kQueryRequests = 20;

  for (size_t clients : kClientCounts) {
    PrintRow(RunWorkload(
        "stats_poll", "in-process", clients, kStatsRequests,
        [&](size_t, size_t) {
          // The in-process equivalent of the Monitor RPC body.
          volatile uint64_t sink = rig.system.ingest_stats().frames_offered +
                                   rig.system.svs_store().size();
          (void)sink;
          return true;
        }));
    std::vector<net::Client> pool;
    for (size_t c = 0; c < clients; ++c) {
      auto client = net::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     client.status().ToString().c_str());
        return 1;
      }
      pool.push_back(std::move(*client));
    }
    std::vector<net::Client> proxied;
    for (size_t c = 0; c < clients; ++c) {
      auto client = net::Client::Connect("127.0.0.1", proxy.port());
      if (!client.ok()) {
        std::fprintf(stderr, "proxied connect failed: %s\n",
                     client.status().ToString().c_str());
        return 1;
      }
      proxied.push_back(std::move(*client));
    }
    std::vector<net::Client> sharded;
    for (size_t c = 0; c < clients; ++c) {
      auto client = net::Client::Connect("127.0.0.1", coordinator.port());
      if (!client.ok()) {
        std::fprintf(stderr, "coordinator connect failed: %s\n",
                     client.status().ToString().c_str());
        return 1;
      }
      sharded.push_back(std::move(*client));
    }
    PrintRow(RunWorkload("stats_poll", "loopback", clients, kStatsRequests,
                         [&](size_t c, size_t) {
                           return pool[c].MonitorStats().ok();
                         }));
    PrintRow(RunWorkload("stats_poll", "chaos-proxy", clients, kStatsRequests,
                         [&](size_t c, size_t) {
                           return proxied[c].MonitorStats().ok();
                         }));
    PrintRow(RunWorkload("stats_poll", "coordinator", clients, kStatsRequests,
                         [&](size_t c, size_t) {
                           return sharded[c].MonitorStats().ok();
                         }));
    PrintRow(RunWorkload("direct_query", "in-process", clients,
                         kQueryRequests, [&](size_t, size_t) {
                           return rig.system.DirectQuery(query).ok();
                         }));
    PrintRow(RunWorkload("direct_query", "loopback", clients, kQueryRequests,
                         [&](size_t c, size_t) {
                           return pool[c].DirectQuery(query).ok();
                         }));
    PrintRow(RunWorkload("direct_query", "chaos-proxy", clients,
                         kQueryRequests, [&](size_t c, size_t) {
                           return proxied[c].DirectQuery(query).ok();
                         }));
    PrintRow(RunWorkload("direct_query", "coordinator", clients,
                         kQueryRequests, [&](size_t c, size_t) {
                           return sharded[c].DirectQuery(query).ok();
                         }));
  }

  // --- Protocol v5: per-frame vs batched ingest, and push delivery. ---
  // Fresh systems per row: the rig's system is already populated and its
  // per-camera monotone-timestamp guard would reject replayed frames. The
  // frames carry no detections, so both rows pay identical (near-zero)
  // ingest compute and the comparison isolates the per-RPC wire overhead —
  // the thing kIngestBatch amortizes. (With real detection-laden frames the
  // wire all but disappears behind segment-finalization compute, which the
  // core benches price.)
  const core::CameraId ingest_camera = rig.deployment.cameras().front().camera;
  const size_t ingest_frames = 4'096;
  constexpr size_t kIngestBatch = 16;
  std::vector<core::FrameObservation> wire_frames;
  wire_frames.reserve(ingest_frames);
  for (size_t i = 0; i < ingest_frames; ++i) {
    core::FrameObservation frame;
    frame.camera = ingest_camera;
    frame.timestamp_ms = static_cast<int64_t>(i) * 1'000;
    frame.frame_id = static_cast<int64_t>(i);
    wire_frames.push_back(frame);
  }
  double per_frame_fps = 0.0;
  double batched_fps = 0.0;
  for (int batched = 0; batched < 2; ++batched) {
    core::VideoZilla ingest_system(bench::BenchVzOptions());
    net::Server ingest_server(&ingest_system, net::ServerOptions{});
    if (Status s = ingest_server.Start(); !s.ok()) {
      std::fprintf(stderr, "ingest server start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    auto ingest_client_or =
        net::Client::Connect("127.0.0.1", ingest_server.port());
    if (!ingest_client_or.ok()) {
      std::fprintf(stderr, "ingest connect failed: %s\n",
                   ingest_client_or.status().ToString().c_str());
      return 1;
    }
    net::Client ingest_client = std::move(*ingest_client_or);
    if (Status s = ingest_client.CameraStart(ingest_camera); !s.ok()) {
      std::fprintf(stderr, "camera start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    Row row;
    if (batched == 0) {
      row = RunWorkload("ingest_frame", "loopback", 1, ingest_frames,
                        [&](size_t, size_t r) {
                          return ingest_client.IngestFrame(wire_frames[r])
                              .ok();
                        });
      per_frame_fps = row.reqs_per_sec;
    } else {
      row = RunWorkload(
          "ingest_batch16", "loopback", 1, ingest_frames / kIngestBatch,
          [&](size_t, size_t r) {
            std::vector<core::FrameObservation> batch(
                wire_frames.begin() + static_cast<long>(r * kIngestBatch),
                wire_frames.begin() +
                    static_cast<long>((r + 1) * kIngestBatch));
            auto reply = ingest_client.IngestBatch(batch);
            return reply.ok() && reply->rejected == 0;
          });
      batched_fps = row.reqs_per_sec * static_cast<double>(kIngestBatch);
    }
    PrintRow(row);
    ingest_client.Close();
    ingest_server.Shutdown();
  }
  std::printf("\nbatched ingest: %.2fx frames/sec over per-frame "
              "(%.0f vs %.0f)\n",
              per_frame_fps > 0 ? batched_fps / per_frame_fps : 0.0,
              batched_fps, per_frame_fps);

  // Subscribe delivery latency: time from the segment-finalizing ingest RPC
  // leaving one client to the match push arriving on another client's
  // connection. Each round ingests a single frame far past t_max so the
  // open segment finalizes immediately; push_poll_ms=1 so the row prices
  // the engine + wire rather than the drain poll. reqs/sec is left 0 — this
  // is an event-latency row, not a throughput row.
  {
    core::VideoZilla push_system(bench::BenchVzOptions());
    net::ServerOptions push_options;
    push_options.push_poll_ms = 1;
    net::Server push_server(&push_system, push_options);
    if (Status s = push_server.Start(); !s.ok()) {
      std::fprintf(stderr, "push server start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    auto subscriber_or = net::Client::Connect("127.0.0.1", push_server.port());
    auto ingester_or = net::Client::Connect("127.0.0.1", push_server.port());
    if (!subscriber_or.ok() || !ingester_or.ok()) {
      std::fprintf(stderr, "push bench connect failed\n");
      return 1;
    }
    net::Client subscriber = std::move(*subscriber_or);
    net::Client ingester = std::move(*ingester_or);

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Clock::time_point> arrivals;
    net::SubscribeRequest request;
    request.query = query;
    request.threshold = 1e12;  // match-all: the row times delivery, not eval
    auto sub_id =
        subscriber.Subscribe(request, [&](const net::PushEvent&) {
          std::lock_guard<std::mutex> lock(mu);
          arrivals.push_back(Clock::now());
          cv.notify_all();
        });
    if (!sub_id.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   sub_id.status().ToString().c_str());
      return 1;
    }
    const core::CameraId camera = rig.deployment.cameras().front().camera;
    if (Status s = ingester.CameraStart(camera); !s.ok()) {
      std::fprintf(stderr, "camera start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    constexpr size_t kPushRounds = 64;
    std::vector<double> push_latencies;
    int64_t ts = 0;
    for (size_t r = 0; r <= kPushRounds; ++r, ts += 300'000) {
      size_t before = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        before = arrivals.size();
      }
      core::FrameObservation frame;
      frame.camera = camera;
      frame.timestamp_ms = ts;
      frame.frame_id = 10'000'000 + static_cast<int64_t>(r);
      core::DetectedObject object;
      object.feature = query;
      frame.objects.push_back(object);
      const Clock::time_point t0 = Clock::now();
      if (!ingester.IngestFrame(frame).ok()) break;
      if (r == 0) continue;  // the first frame only opens the segment
      std::unique_lock<std::mutex> lock(mu);
      if (!cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return arrivals.size() > before; })) {
        break;
      }
      push_latencies.push_back(ToMs(arrivals[before] - t0));
    }
    std::sort(push_latencies.begin(), push_latencies.end());
    Row row;
    row.workload = "push_latency";
    row.transport = "loopback";
    row.clients = 1;
    row.requests = push_latencies.size();
    row.p50_ms = Percentile(&push_latencies, 0.50);
    row.p99_ms = Percentile(&push_latencies, 0.99);
    PrintRow(row);
    subscriber.Close();
    ingester.Close();
    push_server.Shutdown();
  }

  const net::CoordinatorStats coord_stats = coordinator.stats();
  coordinator.Shutdown();
  for (auto& edge : edge_servers) edge->Shutdown();
  std::printf("\ncoordinator totals: %llu requests, %llu fan-out legs "
              "(%llu failed, %llu pruned), %llu degraded answers\n",
              static_cast<unsigned long long>(coord_stats.requests_served),
              static_cast<unsigned long long>(coord_stats.fanout_legs),
              static_cast<unsigned long long>(coord_stats.fanout_failures),
              static_cast<unsigned long long>(coord_stats.pruned_legs),
              static_cast<unsigned long long>(coord_stats.degraded_answers));
  proxy.Shutdown();
  server.Shutdown();
  const net::ServerStats stats = server.stats();
  std::printf("\nserver totals: %llu requests, %llu connections, %llu "
              "request errors\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.request_errors));
  return 0;
}
