// Reproduces Figure 17: cumulative GPU time across all intra-camera indices
// for the three query classes, Video-zilla vs the per-camera top-k index.
// The paper's headline: Video-zilla cuts cumulative GPU time by up to 14x,
// because the hierarchical SVS index dispatches the heavy model to a handful
// of semantically matching streams instead of every camera's class-bucket
// plus its "other" bucket.
#include <cstdio>

#include "bench_util.h"

namespace vz::bench {
namespace {

constexpr int kQueriesPerClass = 10;

void Run() {
  EndToEndRig rig(LargeDeploymentOptions());
  Banner("Figure 17: cumulative GPU time across intra-camera indices",
         "28 cameras, 10 query instances per object class");
  Rng rng(43);

  std::printf("%-13s %18s %18s %10s\n", "query", "video-zilla (s)",
              "top-k index (s)", "reduction");
  double vz_total = 0.0;
  double topk_total = 0.0;
  for (int object_class : PaperQueryClasses()) {
    double vz_ms = 0.0;
    double topk_ms = 0.0;
    for (int q = 0; q < kQueriesPerClass; ++q) {
      const FeatureVector query =
          rig.deployment.MakeQueryFeature(object_class, &rng);
      auto result = rig.system.DirectQuery(query);
      if (result.ok()) vz_ms += result->total_gpu_ms;
      const auto topk = rig.topk.Query(object_class);
      topk_ms += static_cast<double>(topk.frames.size()) *
                 rig.gpu_cost.heavy_ms_per_frame;
    }
    vz_total += vz_ms;
    topk_total += topk_ms;
    std::printf("%-13s %18.2f %18.2f %9.1fx\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                vz_ms / 1000.0, topk_ms / 1000.0,
                vz_ms > 0 ? topk_ms / vz_ms : 0.0);
  }
  std::printf("%-13s %18.2f %18.2f %9.1fx   (paper: up to 14x)\n", "ALL",
              vz_total / 1000.0, topk_total / 1000.0,
              vz_total > 0 ? topk_total / vz_total : 0.0);
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
