// Reproduces Figure 13: OMD computations per SVS query and per SVS
// insertion, with and without the OCD-lower-bound pruning of Sec. 4.3, as a
// function of index size. The paper reports ~92% reduction for queries and
// ~80% for insertions (insertions additionally pay for masking checks and
// node-cost updates that pruning cannot remove).
//
// Each measurement uses a fresh probe SVS so memoization never hides work:
// the counts are exactly the OMD solves a cold query/insertion triggers.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/feature_map_metric.h"
#include "index/perch_tree.h"

namespace vz::bench {
namespace {

constexpr size_t kProbesPerPoint = 2;
const std::vector<size_t> kSizes = {40, 80, 120, 160, 200};

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  // 200 indexed + fresh probes for every (checkpoint, op, mode).
  data_options.num_svs = 200 + kSizes.size() * kProbesPerPoint * 4;
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Figure 13: OMD computations per query / insertion (pruning)",
         "synthetic dataset, fresh probe SVSs per measurement");

  core::OmdOptions omd_options;
  omd_options.max_vectors = 40;
  core::OmdCalculator calc(omd_options);

  core::FeatureMapListMetric pruned_metric(&data.svss, &calc, true);
  core::FeatureMapListMetric full_metric(&data.svss, &calc, true);
  index::PerchOptions pruned_options;
  pruned_options.enable_pruned_nn = true;
  index::PerchOptions full_options;
  full_options.enable_pruned_nn = false;
  index::PerchTree pruned_tree(&pruned_metric, pruned_options);
  index::PerchTree full_tree(&full_metric, full_options);

  size_t next_probe = 200;
  auto measure = [&](index::PerchTree* tree,
                     core::FeatureMapListMetric* metric, bool insert) {
    double evals = 0.0;
    for (size_t p = 0; p < kProbesPerPoint; ++p) {
      const int probe = static_cast<int>(next_probe++);
      const uint64_t before = metric->num_distance_evals();
      if (insert) {
        (void)tree->Insert(probe);
      } else {
        (void)tree->NearestNeighbor(probe);
      }
      evals += static_cast<double>(metric->num_distance_evals() - before) /
               kProbesPerPoint;
    }
    return evals;
  };

  std::printf(
      "%-6s | %12s %12s %9s | %12s %12s %9s\n", "size", "qry-pruned",
      "qry-full", "saved", "ins-pruned", "ins-full", "saved");
  size_t inserted = 0;
  for (size_t size : kSizes) {
    while (inserted < size) {
      (void)pruned_tree.Insert(static_cast<int>(inserted));
      (void)full_tree.Insert(static_cast<int>(inserted));
      ++inserted;
    }
    const double query_pruned = measure(&pruned_tree, &pruned_metric, false);
    const double query_full = measure(&full_tree, &full_metric, false);
    const double insert_pruned = measure(&pruned_tree, &pruned_metric, true);
    const double insert_full = measure(&full_tree, &full_metric, true);
    const double query_saved =
        query_full > 0 ? 100.0 * (1.0 - query_pruned / query_full) : 0.0;
    const double insert_saved =
        insert_full > 0 ? 100.0 * (1.0 - insert_pruned / insert_full) : 0.0;
    std::printf("%-6zu | %12.1f %12.1f %8.1f%% | %12.1f %12.1f %8.1f%%\n",
                size, query_pruned, query_full, query_saved, insert_pruned,
                insert_full, insert_saved);
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
