// Reproduces Figure 15: impact of the top-k index's recognized-class count K
// on cumulative GPU time. A small K dumps many objects into the "other"
// bucket, which every query must rescan; growing K shrinks that bucket but
// raises ingestion cost (the trade-off of Sec. 7.4 — "identifying the right
// K value is non-trivial", which Video-zilla sidesteps entirely).
#include <cstdio>

#include "bench_util.h"

namespace vz::bench {
namespace {

void Run() {
  Banner("Figure 15: impact of K on the top-k index's GPU time",
         "16-camera deployment; fire_hydrant+boat+train queries");
  const sim::DeploymentOptions dep_options = BenchDeploymentOptions();
  sim::Deployment deployment(dep_options);
  sim::GpuCostModel gpu;

  std::printf("%-4s %20s %20s %14s\n", "K", "query GPU time (s)",
              "ingest GPU time (s)", "other frames");
  for (size_t recognized : {3, 5, 6, 7, 8}) {
    baseline::TopKIndexOptions options;
    options.recognized_classes = recognized;
    baseline::TopKIndex index(&deployment.extractor(), options);
    for (const core::FrameObservation& obs : deployment.observations()) {
      index.IngestFrame(obs);
    }
    index.Finalize();
    double query_gpu_ms = 0.0;
    for (int object_class : PaperQueryClasses()) {
      const auto result = index.Query(object_class);
      query_gpu_ms +=
          static_cast<double>(result.frames.size()) * gpu.heavy_ms_per_frame;
    }
    // "other" bucket size averaged over cameras, via a query for a class
    // that never occurs (other frames are all that come back).
    size_t other_frames = 0;
    for (const auto& cam : deployment.cameras()) {
      other_frames += index.Query(sim::kDog, {cam.camera}).frames.size();
    }
    std::printf("%-4zu %20.2f %20.2f %14zu\n", recognized,
                query_gpu_ms / 1000.0, index.ingest_gpu_ms() / 1000.0,
                other_frames);
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
