// Reproduces the Sec. 7.6 case study: proactive video archiving. Only a
// small fraction of SVS-covered video time contains each queried object
// (the paper measured 1.5% / 2.0% / 26.3% for fire hydrant / boat / train,
// 29.1% for their union), so aggressively archiving low-information SVSs
// frees >70% of the storage.
#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "core/archiver.h"

namespace vz::bench {
namespace {

void Run() {
  EndToEndRig rig;
  Banner("Sec 7.6: proactive video archiving",
         "16 cameras; duration share of SVSs containing each object");

  // Duration ratios of SVSs containing each query object.
  int64_t total_ms = 0;
  for (core::SvsId id : rig.system.svs_store().AllIds()) {
    auto svs = rig.system.svs_store().Get(id);
    if (svs.ok()) total_ms += (*svs)->DurationMs();
  }
  std::unordered_set<core::SvsId> union_set;
  std::printf("%-14s %26s\n", "object", "share of video time in SVSs");
  for (int object_class : PaperQueryClasses()) {
    const auto truth = rig.deployment.log().TrueSvsSet(
        rig.system.svs_store(), object_class);
    int64_t object_ms = 0;
    for (core::SvsId id : truth) {
      auto svs = rig.system.svs_store().Get(id);
      if (svs.ok()) object_ms += (*svs)->DurationMs();
      union_set.insert(id);
    }
    std::printf("%-14s %25.1f%%\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                total_ms > 0 ? 100.0 * object_ms / total_ms : 0.0);
  }
  int64_t union_ms = 0;
  for (core::SvsId id : union_set) {
    auto svs = rig.system.svs_store().Get(id);
    if (svs.ok()) union_ms += (*svs)->DurationMs();
  }
  std::printf("%-14s %25.1f%%   (paper: 29.1%%)\n", "union",
              total_ms > 0 ? 100.0 * union_ms / total_ms : 0.0);

  // Exercise the archival service: warm accesses with the three query
  // classes, then plan the archive.
  Rng rng(61);
  for (int object_class : PaperQueryClasses()) {
    for (int q = 0; q < 6; ++q) {
      (void)rig.system.DirectQuery(
          rig.deployment.MakeQueryFeature(object_class, &rng));
    }
  }
  core::ArchiverOptions archiver_options;
  archiver_options.access_frequency_threshold = 1.0;
  core::Archiver archiver(&rig.system, archiver_options);
  auto plan = archiver.PlanArchive();
  if (plan.ok()) {
    std::printf(
        "\narchive plan: %zu of %zu SVSs -> %.1f%% of bytes freed, "
        "%.1f%% of video time (paper: >70%%)\n",
        plan->to_archive.size(), rig.system.svs_store().size(),
        100.0 * plan->ByteFraction(), 100.0 * plan->DurationFraction());
  }

  // The paper's composed isArchived API on one low-information SVS.
  for (core::SvsId id : rig.system.svs_store().AllIds()) {
    auto svs = rig.system.svs_store().Get(id);
    if (!svs.ok()) continue;
    if ((*svs)->camera().rfind("station", 0) == 0 &&
        !rig.deployment.log().SvsContains(**svs, sim::kTrain)) {
      auto freq = archiver.IsArchived((*svs)->features());
      if (freq.ok()) {
        std::printf("isArchived(empty-station SVS %lld) -> cluster access "
                    "frequency %.3f/h\n",
                    static_cast<long long>(id), *freq);
      }
      break;
    }
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
