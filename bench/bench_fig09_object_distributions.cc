// Reproduces Figure 9: object class distributions over time (per SVS) for a
// train-station camera vs an in-vehicle (downtown) camera. The station's
// distribution swings with events (train arrivals); the road feed's barely
// moves — the paper's argument for SVS descriptiveness over camera-level
// characterization.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "sim/object_class.h"

namespace vz::bench {
namespace {

void PrintCameraSeries(EndToEndRig* rig, const core::CameraId& camera) {
  std::printf("\ncamera %s — per-SVS true object distribution:\n",
              camera.c_str());
  std::printf("%-5s %-12s %-8s", "svs", "window(s)", "objects");
  for (int c : {sim::kPerson, sim::kCar, sim::kTruck, sim::kTrain,
                sim::kLuggage, sim::kBoat, sim::kBird, sim::kBench}) {
    std::printf(" %9s", std::string(sim::ObjectClassName(c)).c_str());
  }
  std::printf("\n");
  for (core::SvsId id : rig->system.svs_store().IdsForCamera(camera)) {
    auto svs = rig->system.svs_store().Get(id);
    if (!svs.ok()) continue;
    std::map<int, size_t> histogram;
    size_t total = 0;
    for (int64_t frame : (*svs)->frame_ids()) {
      const sim::FrameTruth* truth = rig->deployment.log().Lookup(frame);
      if (truth == nullptr) continue;
      for (int cls : truth->object_classes) {
        histogram[cls]++;
        ++total;
      }
    }
    std::printf("%-5lld %5lld-%-6lld %-8zu", static_cast<long long>(id),
                static_cast<long long>((*svs)->start_ms() / 1000),
                static_cast<long long>((*svs)->end_ms() / 1000), total);
    for (int c : {sim::kPerson, sim::kCar, sim::kTruck, sim::kTrain,
                  sim::kLuggage, sim::kBoat, sim::kBird, sim::kBench}) {
      const double frac =
          total == 0 ? 0.0
                     : static_cast<double>(histogram[c]) / total;
      std::printf(" %8.1f%%", 100.0 * frac);
    }
    std::printf("\n");
  }
}

void Run() {
  EndToEndRig rig;
  Banner("Figure 9: object distributions from the same feed",
         "train-station camera vs downtown in-vehicle camera");
  PrintCameraSeries(&rig, "station-0");
  PrintCameraSeries(&rig, "downtown-nyc-0");
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
