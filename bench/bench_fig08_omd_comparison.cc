// Reproduces Figure 8: average pairwise OMD between SVSs grouped at the
// camera level vs grouped by Video-zilla's semantic clusters, for four feed
// types (in-vehicle, harbor, train-station, combined drive).
//
// A lower "Video-zilla" bar than "camera-level" bar means the semantic
// clusters are tighter than raw camera feeds — the paper's headline for the
// station / harbor / combined cases, with in-vehicle feeds roughly equal.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/omd.h"

namespace vz::bench {
namespace {

double AvgPairwiseOmd(const std::vector<core::SvsId>& ids,
                      const core::SvsStore& store,
                      core::OmdCalculator* calc) {
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto a = store.Get(ids[i]);
    if (!a.ok()) continue;
    for (size_t j = i + 1; j < ids.size(); ++j) {
      auto b = store.Get(ids[j]);
      if (!b.ok()) continue;
      auto d = calc->Distance((*a)->features(), (*b)->features());
      if (d.ok()) {
        total += *d;
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

void Run() {
  sim::DeploymentOptions dep_options = BenchDeploymentOptions();
  dep_options.combined_drives = 2;
  core::VideoZillaOptions vz_options = BenchVzOptions();
  EndToEndRig rig(dep_options, vz_options);
  Banner("Figure 8: OMD comparison (camera-level vs Video-zilla clusters)",
         "16+2 cameras, 8 min feeds, 48-d features");

  core::OmdCalculator calc(vz_options.omd);

  // SVS ids per feed kind, and per camera.
  std::map<std::string, std::vector<std::vector<core::SvsId>>> per_camera;
  std::map<std::string, std::vector<core::SvsId>> per_kind;
  for (const auto& cam : rig.deployment.cameras()) {
    auto ids = rig.system.svs_store().IdsForCamera(cam.camera);
    if (ids.empty()) continue;
    std::string kind = cam.kind;
    if (kind == "downtown" || kind == "highway") kind = "in-vehicle";
    per_camera[kind].push_back(ids);
    auto& pool = per_kind[kind];
    pool.insert(pool.end(), ids.begin(), ids.end());
  }

  // Video-zilla grouping: the semantic clusters the hierarchical index
  // derives within each feed (train-passing vs empty-platform at a station,
  // downtown vs highway stretches of a combined drive, ...). The camera
  // baseline lumps each feed whole; the semantic clusters split it by
  // content, which is exactly the contrast Fig. 8 plots.
  std::map<std::string, std::vector<std::vector<core::SvsId>>> vz_clusters;
  for (const auto& cam : rig.deployment.cameras()) {
    std::string kind = cam.kind;
    if (kind == "downtown" || kind == "highway") kind = "in-vehicle";
    auto intra = rig.system.intra_index(cam.camera);
    if (!intra.ok()) continue;
    for (const auto& cluster : (*intra)->clusters()) {
      if (cluster.members.size() >= 2) {
        vz_clusters[kind].push_back(cluster.members);
      }
    }
  }

  std::printf("%-14s %22s %22s\n", "feed type", "camera-level avg OMD",
              "Video-zilla avg OMD");
  for (const char* kind : {"in-vehicle", "harbor", "train_station",
                           "combined"}) {
    double camera_total = 0.0;
    size_t camera_groups = 0;
    for (const auto& ids : per_camera[kind]) {
      if (ids.size() < 2) continue;
      camera_total += AvgPairwiseOmd(ids, rig.system.svs_store(), &calc);
      ++camera_groups;
    }
    double vz_total = 0.0;
    size_t vz_groups = 0;
    for (const auto& ids : vz_clusters[kind]) {
      vz_total += AvgPairwiseOmd(ids, rig.system.svs_store(), &calc);
      ++vz_groups;
    }
    std::printf("%-14s %22.3f %22.3f\n", kind,
                camera_groups ? camera_total / camera_groups : 0.0,
                vz_groups ? vz_total / vz_groups : 0.0);
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
