// Reproduces Figure 14: PERCH-OMD vs M-tree — OMD computations needed for a
// k-nearest-SVS search, as a function of the M-tree's maximum node size.
// Both return (nearly) the correct neighbor set; the M-tree needs extra OMD
// computations, with a strong dependence on the node-size knob that the
// PERCH-based index does not expose at all (Sec. 7.3).
#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "core/feature_map_metric.h"
#include "index/mtree.h"
#include "index/perch_tree.h"

namespace vz::bench {
namespace {

constexpr size_t kNeighbors = 20;  // == ground-truth cluster size
constexpr size_t kQueries = 5;

// Fraction of returned neighbors sharing the query's ground-truth type.
double TypePurity(const std::vector<int>& result,
                  const std::vector<int>& labels, int query) {
  if (result.empty()) return 0.0;
  size_t same = 0;
  for (int id : result) {
    same += labels[static_cast<size_t>(id)] ==
            labels[static_cast<size_t>(query)];
  }
  return static_cast<double>(same) / static_cast<double>(result.size());
}

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  data_options.num_svs = 200;  // 10 types x 20 SVSs
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Figure 14: PERCH-OMD vs M-tree (20-NN search)",
         "200 synthetic SVSs, 5 query SVSs, per-query OMD computations");

  core::OmdOptions omd_options;
  omd_options.max_vectors = 40;
  core::OmdCalculator calc(omd_options);
  Rng rng(23);
  std::vector<int> queries;
  while (queries.size() < kQueries) {
    const int q = static_cast<int>(rng.UniformUint64(data.svss.size()));
    if (std::find(queries.begin(), queries.end(), q) == queries.end()) {
      queries.push_back(q);
    }
  }

  // PERCH reference line.
  double perch_evals = 0.0;
  double perch_purity = 0.0;
  {
    core::FeatureMapListMetric metric(&data.svss, &calc, /*memoize=*/false);
    index::PerchTree tree(&metric, index::PerchOptions{});
    // Build with a memoized metric to keep construction cheap, then swap in
    // honest per-query counting: rebuild is avoided by building directly
    // with the unmemoized metric but only counting the query phase.
    for (size_t i = 0; i < data.svss.size(); ++i) {
      (void)tree.Insert(static_cast<int>(i));
    }
    for (int q : queries) {
      metric.ResetCounters();
      auto knn = tree.KNearestNeighbors(q, kNeighbors);
      perch_evals += static_cast<double>(metric.num_distance_evals()) /
                     kQueries;
      if (knn.ok()) perch_purity += TypePurity(*knn, data.labels, q) / kQueries;
    }
  }
  std::printf("PERCH-OMD (dashed line): %.1f OMD computations/query, "
              "neighbor purity %.3f\n\n",
              perch_evals, perch_purity);

  std::printf("%-14s %22s %16s\n", "max node size", "OMD computations/query",
              "neighbor purity");
  for (size_t node_size : {4, 8, 16, 32, 64}) {
    core::FeatureMapListMetric metric(&data.svss, &calc, /*memoize=*/false);
    index::MTreeOptions options;
    options.max_node_size = node_size;
    index::MTree tree(&metric, options);
    for (size_t i = 0; i < data.svss.size(); ++i) {
      (void)tree.Insert(static_cast<int>(i));
    }
    double evals = 0.0;
    double purity = 0.0;
    for (int q : queries) {
      metric.ResetCounters();
      auto knn = tree.KNearestNeighbors(q, kNeighbors);
      evals += static_cast<double>(metric.num_distance_evals()) / kQueries;
      if (knn.ok()) purity += TypePurity(*knn, data.labels, q) / kQueries;
    }
    std::printf("%-14zu %22.1f %16.3f\n", node_size, evals, purity);
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
