// Microbenchmark (google-benchmark): exact vs thresholded OMD solve time as
// a function of SVS size — the raw cost the FastOMD approximation of
// Sec. 3.2 attacks. The paper reports 767 ms average per thresholded OMD at
// alpha = 0.6 on 1024-d, ~700-vector SVSs; our absolute numbers differ with
// size but the exact/thresholded gap shape is the same.
#include <benchmark/benchmark.h>

#include "core/omd.h"
#include "sim/dataset.h"

namespace {

vz::sim::SyntheticDataset MakePair(size_t vectors) {
  vz::sim::SyntheticDatasetOptions options;
  options.num_svs = 2;
  options.vectors_per_svs = vectors;
  options.dim = 128;
  options.num_types = 2;
  options.seed = 71;
  return vz::sim::MakeSyntheticDataset(options);
}

void BM_ExactOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kExact;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ExactOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ThresholdedOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kThresholded;
  options.threshold_alpha = 0.6;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ThresholdedOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_OcdLowerBound(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const double d =
        vz::ObjectCentroidDistance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OcdLowerBound)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
