// Microbenchmark (google-benchmark): exact vs thresholded OMD solve time as
// a function of SVS size — the raw cost the FastOMD approximation of
// Sec. 3.2 attacks. The paper reports 767 ms average per thresholded OMD at
// alpha = 0.6 on 1024-d, ~700-vector SVSs; our absolute numbers differ with
// size but the exact/thresholded gap shape is the same.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/thread_pool.h"
#include "core/omd.h"
#include "sim/dataset.h"
#include "vector/simd_kernels.h"

namespace {

vz::sim::SyntheticDataset MakePair(size_t vectors, size_t dim = 128) {
  vz::sim::SyntheticDatasetOptions options;
  options.num_svs = 2;
  options.vectors_per_svs = vectors;
  options.dim = dim;
  options.num_types = 2;
  options.seed = 71;
  return vz::sim::MakeSyntheticDataset(options);
}

void BM_ExactOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kExact;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ExactOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ThresholdedOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kThresholded;
  options.threshold_alpha = 0.6;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ThresholdedOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// The parallel ground-distance matrix fill (the quadratic kernel inside
// every OMD solve) across threads and dim axes: Args are {vectors per side,
// threads, dim}. threads = 1 is the serial legacy path; the parallel and
// vectorized fills are bit-identical to it. The `simd` counter records
// whether the AVX2 kernel table is active (set VZ_SIMD=scalar to force the
// scalar table and A/B on the same machine); dim = 512 single-threaded is
// the PR's headline speedup cell.
void BM_GroundDistanceMatrix(benchmark::State& state) {
  const auto vectors = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const auto dim = static_cast<size_t>(state.range(2));
  const auto data = MakePair(vectors, dim);
  vz::core::OmdOptions options;
  options.max_vectors = vectors;
  vz::core::OmdCalculator calc(options);
  std::unique_ptr<vz::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<vz::ThreadPool>(threads);
    calc.set_thread_pool(pool.get());
  }
  for (auto _ : state) {
    auto matrix = calc.ComputeGroundMatrix(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["cells"] = static_cast<double>(vectors * vectors);
  state.counters["simd"] = vz::simd::Avx2Active() ? 1.0 : 0.0;
}
BENCHMARK(BM_GroundDistanceMatrix)
    ->ArgsProduct({{64, 128, 256}, {1, 2, 4}, {128, 512}});

// Full thresholded OMD (matrix fill + solver) across the same threads axis;
// the solver stays serial, so this shows the end-to-end Amdahl picture.
void BM_ThresholdedOmdThreads(benchmark::State& state) {
  const auto vectors = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const auto data = MakePair(vectors);
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kThresholded;
  options.threshold_alpha = 0.6;
  options.max_vectors = vectors;
  vz::core::OmdCalculator calc(options);
  std::unique_ptr<vz::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<vz::ThreadPool>(threads);
    calc.set_thread_pool(pool.get());
  }
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ThresholdedOmdThreads)->ArgsProduct({{128, 256}, {1, 2, 4}});

void BM_OcdLowerBound(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const double d =
        vz::ObjectCentroidDistance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OcdLowerBound)->Arg(64)->Arg(128);

// The int8 shadow tier (Args: {vectors per side, dim}): an n*m pass over
// quantized codes that must stay orders of magnitude below the float
// ground-matrix fill it short-circuits.
void BM_QuantizedLowerBound(benchmark::State& state) {
  const auto vectors = static_cast<size_t>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto data = MakePair(vectors, dim);
  vz::core::OmdOptions options;
  options.max_vectors = vectors;
  for (auto _ : state) {
    const double d = vz::core::QuantizedOmdLowerBound(data.svss[0],
                                                      data.svss[1], options);
    benchmark::DoNotOptimize(d);
  }
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["simd"] = vz::simd::Avx2Active() ? 1.0 : 0.0;
}
BENCHMARK(BM_QuantizedLowerBound)->ArgsProduct({{64, 128, 256}, {128, 512}});

}  // namespace

BENCHMARK_MAIN();
