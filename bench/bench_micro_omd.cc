// Microbenchmark (google-benchmark): exact vs thresholded OMD solve time as
// a function of SVS size — the raw cost the FastOMD approximation of
// Sec. 3.2 attacks. The paper reports 767 ms average per thresholded OMD at
// alpha = 0.6 on 1024-d, ~700-vector SVSs; our absolute numbers differ with
// size but the exact/thresholded gap shape is the same.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/thread_pool.h"
#include "core/omd.h"
#include "sim/dataset.h"

namespace {

vz::sim::SyntheticDataset MakePair(size_t vectors) {
  vz::sim::SyntheticDatasetOptions options;
  options.num_svs = 2;
  options.vectors_per_svs = vectors;
  options.dim = 128;
  options.num_types = 2;
  options.seed = 71;
  return vz::sim::MakeSyntheticDataset(options);
}

void BM_ExactOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kExact;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ExactOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ThresholdedOmd(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kThresholded;
  options.threshold_alpha = 0.6;
  options.max_vectors = static_cast<size_t>(state.range(0));
  vz::core::OmdCalculator calc(options);
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ThresholdedOmd)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// The parallel ground-distance matrix fill (the quadratic kernel inside
// every OMD solve) across a threads axis: Args are {vectors per side,
// threads}. threads = 1 is the serial legacy path; the parallel fills are
// bit-identical to it. dim = 128, so a 256x256 matrix is ~8.4M FLOPs of
// batched row kernels — the speedup axis of the PR.
void BM_GroundDistanceMatrix(benchmark::State& state) {
  const auto vectors = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const auto data = MakePair(vectors);
  vz::core::OmdOptions options;
  options.max_vectors = vectors;
  vz::core::OmdCalculator calc(options);
  std::unique_ptr<vz::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<vz::ThreadPool>(threads);
    calc.set_thread_pool(pool.get());
  }
  for (auto _ : state) {
    auto matrix = calc.ComputeGroundMatrix(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = static_cast<double>(vectors * vectors);
}
BENCHMARK(BM_GroundDistanceMatrix)
    ->ArgsProduct({{64, 128, 256}, {1, 2, 4}});

// Full thresholded OMD (matrix fill + solver) across the same threads axis;
// the solver stays serial, so this shows the end-to-end Amdahl picture.
void BM_ThresholdedOmdThreads(benchmark::State& state) {
  const auto vectors = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const auto data = MakePair(vectors);
  vz::core::OmdOptions options;
  options.mode = vz::core::OmdMode::kThresholded;
  options.threshold_alpha = 0.6;
  options.max_vectors = vectors;
  vz::core::OmdCalculator calc(options);
  std::unique_ptr<vz::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<vz::ThreadPool>(threads);
    calc.set_thread_pool(pool.get());
  }
  for (auto _ : state) {
    auto d = calc.Distance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ThresholdedOmdThreads)->ArgsProduct({{128, 256}, {1, 2, 4}});

void BM_OcdLowerBound(benchmark::State& state) {
  const auto data = MakePair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const double d =
        vz::ObjectCentroidDistance(data.svss[0], data.svss[1]);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OcdLowerBound)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
