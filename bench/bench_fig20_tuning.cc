// Reproduces Figure 20: the scalability / precision / recall trade-off as
// the number of clusters in the inter-camera index varies, for fire-hydrant
// queries. Few clusters = coarse groups = everything is a candidate (high
// recall, high GPU); more clusters prune harder (precision up, recall and
// GPU down) until over-fragmentation sets in. The dashed line in the paper
// is the silhouette-chosen cluster count, which we also print.
#include <cstdio>
#include <unordered_set>

#include "bench_util.h"

namespace vz::bench {
namespace {

constexpr int kQueries = 8;

void Run() {
  // The paper's Fig. 20 sweeps the plain Sec. 3.3 cluster representatives
  // (pooled k-means, no covering guarantee, no exact confirmation stage) —
  // that is the configuration whose precision/recall/GPU actually move with
  // the cluster count.
  core::VideoZillaOptions vz_options = BenchVzOptions();
  vz_options.intra.covering_cluster_representatives = false;
  vz_options.enable_exact_stage = false;
  EndToEndRig rig(BenchDeploymentOptions(), vz_options);
  Banner("Figure 20: tuning the index cluster count",
         "fire_hydrant queries, SVS-level precision/recall, pooled reps");
  Rng rng(53);

  // Silhouette-chosen cluster counts (the paper's red dashed line). In this
  // implementation the inter-camera index's entries ARE the per-camera
  // cluster representatives, so the cluster-count knob that gates query
  // dispatch is the per-camera cluster count; we sweep it uniformly.
  (void)rig.system.SetIntraClusterCount(std::nullopt);
  size_t chosen = 0;
  size_t cams = 0;
  for (const auto& cam : rig.deployment.cameras()) {
    auto intra = rig.system.intra_index(cam.camera);
    if (intra.ok()) {
      chosen += (*intra)->clusters().size();
      ++cams;
    }
  }
  chosen = cams > 0 ? (chosen + cams / 2) / cams : 0;  // mean, rounded

  // Ground-truth SVS set.
  const auto truth = rig.deployment.log().TrueSvsSet(
      rig.system.svs_store(), sim::kFireHydrant);
  std::unordered_set<core::SvsId> truth_set(truth.begin(), truth.end());

  // Pre-draw the query features so every cluster setting sees them.
  std::vector<FeatureVector> queries;
  for (int q = 0; q < kQueries; ++q) {
    queries.push_back(rig.deployment.MakeQueryFeature(sim::kFireHydrant,
                                                      &rng));
  }

  double baseline_gpu = 0.0;
  std::printf("%-10s %10s %10s %16s\n", "clusters", "precision", "recall",
              "norm. GPU time");
  for (size_t k = 1; k <= 10; ++k) {
    if (!rig.system.SetIntraClusterCount(k).ok()) continue;
    size_t tp = 0;
    size_t predicted = 0;
    size_t truth_hits = 0;
    double gpu_ms = 0.0;
    std::unordered_set<core::SvsId> found;
    for (const FeatureVector& query : queries) {
      auto result = rig.system.DirectQuery(query);
      if (!result.ok()) continue;
      gpu_ms += result->total_gpu_ms;
      predicted += result->matched_svss.size();
      for (core::SvsId id : result->matched_svss) {
        tp += truth_set.count(id);
        if (truth_set.count(id)) found.insert(id);
      }
    }
    truth_hits = found.size();
    if (k == 1) baseline_gpu = gpu_ms;
    const double precision =
        predicted == 0 ? 1.0 : static_cast<double>(tp) / predicted;
    const double recall =
        truth.empty() ? 1.0
                      : static_cast<double>(truth_hits) / truth.size();
    std::printf("%-10zu %10.3f %10.3f %16.3f%s\n", k, precision, recall,
                baseline_gpu > 0 ? gpu_ms / baseline_gpu : 0.0,
                k == chosen ? "   <- silhouette-chosen" : "");
  }
  (void)rig.system.SetIntraClusterCount(std::nullopt);
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
