// Ablation for Sec. 5.1's adaptive key-frame selection: ingesting under an
// edge compute budget. Compared against ingest-everything (unbounded
// compute) and a fixed lightweight configuration, the adaptive ladder tracks
// the capacity, bounds the extraction queue, and loses little query quality.
#include <cstdio>

#include "bench_util.h"

namespace vz::bench {
namespace {

struct RunResult {
  uint64_t keyframes = 0;
  uint64_t features = 0;
  size_t svss = 0;
  double fnr = 0.0;
  double fpr = 0.0;
};

RunResult RunWith(const core::KeyframeOptions& keyframe, bool enabled) {
  sim::DeploymentOptions dep_options = BenchDeploymentOptions();
  dep_options.fps = 2.0;  // offered load above the edge budget
  core::VideoZillaOptions vz_options = BenchVzOptions();
  vz_options.enable_keyframe_selection = enabled;
  vz_options.keyframe = keyframe;
  EndToEndRig rig(dep_options, vz_options);

  RunResult out;
  out.keyframes = rig.system.ingest_stats().keyframes_selected;
  out.features = rig.system.ingest_stats().features_extracted;
  out.svss = rig.system.svs_store().size();
  const auto universe = rig.classifier_only.AllFrames();
  Rng rng(71);
  sim::QueryEvaluation eval;
  for (int object_class : PaperQueryClasses()) {
    for (int q = 0; q < 4; ++q) {
      const FeatureVector query =
          rig.deployment.MakeQueryFeature(object_class, &rng);
      auto result = rig.system.DirectQuery(query);
      if (!result.ok()) continue;
      eval += sim::EvaluateFrameQuery(rig.FramesOfSvss(result->candidate_svss),
                                      universe, object_class,
                                      rig.deployment.log(), rig.heavy);
    }
  }
  out.fnr = eval.Fnr();
  out.fpr = eval.Fpr();
  return out;
}

void Run() {
  Banner("Sec 5.1 ablation: adaptive key-frame selection",
         "16 cameras at 2 fps offered, edge budget ~1 fps per camera");

  core::KeyframeOptions adaptive;  // default ladder
  adaptive.processing_capacity_fps = 1.0;

  core::KeyframeOptions fixed_light;
  fixed_light.ladder = {{4, 0.2}};  // permanently lightweight
  fixed_light.processing_capacity_fps = 1.0;

  const RunResult everything = RunWith(adaptive, /*enabled=*/false);
  const RunResult adapted = RunWith(adaptive, /*enabled=*/true);
  const RunResult light = RunWith(fixed_light, /*enabled=*/true);

  std::printf("%-18s %10s %10s %8s %8s %8s\n", "configuration", "keyframes",
              "features", "SVSs", "FNR", "FPR");
  auto row = [](const char* name, const RunResult& r) {
    std::printf("%-18s %10llu %10llu %8zu %7.1f%% %7.2f%%\n", name,
                static_cast<unsigned long long>(r.keyframes),
                static_cast<unsigned long long>(r.features), r.svss,
                100.0 * r.fnr, 100.0 * r.fpr);
  };
  row("ingest everything", everything);
  row("adaptive ladder", adapted);
  row("fixed lightweight", light);
  std::printf("(the adaptive ladder should extract far fewer features than "
              "ingest-everything at similar error rates, and beat the fixed "
              "lightweight config on FNR when load allows)\n");
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
