// Reproduces the Sec. 7.3 ANN comparison: PERCH-OMD performs *precise*
// nearest-neighbor search, while the NN-descent graph (the algorithm behind
// PyNNDescent, the paper's ANN comparator) trades a little recall for
// speed. The paper measured 97.8% average recall for the ANN on its
// synthetic dataset.
#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "core/feature_map_metric.h"
#include "index/nn_descent.h"
#include "index/perch_tree.h"

namespace vz::bench {
namespace {

constexpr size_t kNeighbors = 20;
constexpr size_t kQueries = 5;

void Run() {
  sim::SyntheticDatasetOptions data_options = BenchSyntheticOptions();
  data_options.num_svs = 200;
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(data_options);
  Banner("Sec 7.3: PERCH-OMD (exact) vs NN-descent ANN (20-NN recall)",
         "200 synthetic SVSs, 5 queries");

  core::OmdOptions omd_options;
  omd_options.max_vectors = 40;
  core::OmdCalculator calc(omd_options);
  core::FeatureMapListMetric metric(&data.svss, &calc, /*memoize=*/true);

  Rng rng(29);
  std::vector<int> queries;
  while (queries.size() < kQueries) {
    const int q = static_cast<int>(rng.UniformUint64(data.svss.size()));
    if (std::find(queries.begin(), queries.end(), q) == queries.end()) {
      queries.push_back(q);
    }
  }

  // Exact ground-truth neighbor sets by brute force.
  std::vector<std::unordered_set<int>> truth;
  for (int q : queries) {
    std::vector<std::pair<double, int>> ranked;
    for (size_t i = 0; i < data.svss.size(); ++i) {
      ranked.emplace_back(metric.Distance(q, static_cast<int>(i)),
                          static_cast<int>(i));
    }
    std::sort(ranked.begin(), ranked.end());
    std::unordered_set<int> set;
    for (size_t i = 0; i < kNeighbors; ++i) set.insert(ranked[i].second);
    truth.push_back(std::move(set));
  }

  auto report = [&](const char* name, const char* key, auto&& knn_fn) {
    double recall = 0.0;
    const uint64_t before = metric.num_distance_evals();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const std::vector<int> result = knn_fn(queries[qi]);
      size_t hits = 0;
      for (int id : result) hits += truth[qi].count(id);
      recall += static_cast<double>(hits) / kNeighbors / kQueries;
    }
    const unsigned long long solves = static_cast<unsigned long long>(
        metric.num_distance_evals() - before);
    std::printf("%-22s recall %.3f (distinct OMD solves this phase: %llu)\n",
                name, recall, solves);
    std::printf("JSON {\"bench\":\"sec73_ann\",\"index\":\"%s\","
                "\"neighbors\":%zu,\"queries\":%zu,\"recall\":%.4f,"
                "\"omd_solves\":%llu}\n",
                key, kNeighbors, kQueries, recall, solves);
  };

  index::PerchTree perch(&metric, index::PerchOptions{});
  for (size_t i = 0; i < data.svss.size(); ++i) {
    (void)perch.Insert(static_cast<int>(i));
  }
  report("PERCH-OMD (exact NN)", "perch", [&perch](int q) {
    auto knn = perch.KNearestNeighbors(q, kNeighbors);
    return knn.ok() ? *knn : std::vector<int>{};
  });

  index::NnDescentOptions ann_options;
  ann_options.graph_degree = 10;
  ann_options.seed = 5;
  index::NnDescentGraph ann(&metric, ann_options);
  std::vector<int> items;
  for (size_t i = 0; i < data.svss.size(); ++i) {
    items.push_back(static_cast<int>(i));
  }
  (void)ann.Build(items);
  report("NN-descent (ANN)", "nn_descent", [&ann](int q) {
    auto knn = ann.KNearestNeighbors(q, kNeighbors);
    return knn.ok() ? *knn : std::vector<int>{};
  });
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
