// Microbenchmark (google-benchmark): PERCH insertion and nearest-neighbor
// query latency at different index sizes, with the production configuration
// (memoized thresholded OMD, OCD pruning, rotations on).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/feature_map_metric.h"
#include "index/perch_tree.h"
#include "sim/dataset.h"

namespace {

struct Fixture {
  explicit Fixture(size_t size) {
    vz::sim::SyntheticDatasetOptions options;
    options.num_svs = size + 512;  // extra SVSs serve as fresh probes
    options.vectors_per_svs = 40;
    options.dim = 64;
    options.seed = 73;
    data = vz::sim::MakeSyntheticDataset(options);
    vz::core::OmdOptions omd_options;
    omd_options.max_vectors = 40;
    calc = std::make_unique<vz::core::OmdCalculator>(omd_options);
    metric = std::make_unique<vz::core::FeatureMapListMetric>(
        &data.svss, calc.get(), /*memoize=*/true);
    tree = std::make_unique<vz::index::PerchTree>(
        metric.get(), vz::index::PerchOptions{});
    for (size_t i = 0; i < size; ++i) {
      (void)tree->Insert(static_cast<int>(i));
    }
    next_probe = size;
  }

  vz::sim::SyntheticDataset data;
  std::unique_ptr<vz::core::OmdCalculator> calc;
  std::unique_ptr<vz::core::FeatureMapListMetric> metric;
  std::unique_ptr<vz::index::PerchTree> tree;
  size_t next_probe = 0;
};

void BM_PerchInsert(benchmark::State& state) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    if (fixture.next_probe >= fixture.data.svss.size()) {
      state.SkipWithError("probe pool exhausted");
      break;
    }
    benchmark::DoNotOptimize(
        fixture.tree->Insert(static_cast<int>(fixture.next_probe++)));
  }
}
BENCHMARK(BM_PerchInsert)->Arg(64)->Arg(128)->Arg(256);

void BM_PerchNearestNeighbor(benchmark::State& state) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    if (fixture.next_probe >= fixture.data.svss.size()) {
      fixture.next_probe = static_cast<size_t>(state.range(0));
    }
    benchmark::DoNotOptimize(fixture.tree->NearestNeighbor(
        static_cast<int>(fixture.next_probe++)));
  }
}
BENCHMARK(BM_PerchNearestNeighbor)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
