#ifndef VZ_BENCH_BENCH_UTIL_H_
#define VZ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "baseline/classifier_only.h"
#include "baseline/spatula.h"
#include "baseline/topk_index.h"
#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/evaluation.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace vz::bench {

/// Prints a figure/table banner with the scaled-down parameters used, so the
/// output is self-describing next to EXPERIMENTS.md.
inline void Banner(const std::string& title, const std::string& params) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (!params.empty()) std::printf("params: %s\n", params.c_str());
}

/// Synthetic microbenchmark dataset at a bench-friendly scale. The paper's
/// microbenchmarks use 1000 SVSs x 500 vectors x 1024-d; these defaults keep
/// the same 10-type structure at a size that runs in seconds.
inline sim::SyntheticDatasetOptions BenchSyntheticOptions() {
  sim::SyntheticDatasetOptions options;
  options.num_svs = 200;
  options.vectors_per_svs = 60;
  options.dim = 128;
  options.num_types = 10;
  options.seed = 2022;
  return options;
}

/// The end-to-end deployment at bench scale: 16 cameras (2 cities x 3
/// downtown + 6 highway + 2 stations + 2 harbors), 8 minutes per feed.
inline sim::DeploymentOptions BenchDeploymentOptions() {
  sim::DeploymentOptions options;
  options.cities = 2;
  options.downtown_per_city = 3;
  options.highway_cameras = 6;
  options.train_stations = 2;
  options.harbors = 2;
  options.feed_duration_ms = 8LL * 60 * 1000;
  options.fps = 0.5;
  options.feature_dim = 48;
  options.seed = 7;
  return options;
}

inline core::VideoZillaOptions BenchVzOptions() {
  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 2LL * 60 * 1000;  // scaled-down t_max
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  // React to scene changes quickly so SVS boundaries track scene boundaries
  // (transition tails are the main FNR source at stream granularity).
  options.segmenter.min_novel_features = 4;
  options.segmenter.novelty_check_stride = 2;
  options.omd.max_vectors = 64;
  options.intra.recluster_interval = 3;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  options.seed = 11;
  return options;
}

/// A larger fleet for the GPU-time comparisons (Figs. 16-17): like the
/// paper's 44-camera deployment, most feeds do not contain any given query
/// object, which is where hierarchical pruning pays off.
inline sim::DeploymentOptions LargeDeploymentOptions() {
  sim::DeploymentOptions options = BenchDeploymentOptions();
  options.cities = 4;
  options.downtown_per_city = 3;
  options.highway_cameras = 12;
  return options;
}

/// One end-to-end rig: deployment + Video-zilla + baselines, all fed the
/// exact same frames.
struct EndToEndRig {
  explicit EndToEndRig(
      const sim::DeploymentOptions& dep_options = BenchDeploymentOptions(),
      const core::VideoZillaOptions& vz_options = BenchVzOptions(),
      const baseline::TopKIndexOptions& topk_options =
          baseline::TopKIndexOptions())
      : deployment(dep_options),
        system(vz_options),
        heavy(0.97, 0.05, 31),
        verifier(&deployment.space(), &deployment.log(), &heavy),
        topk(&deployment.extractor(), topk_options) {
    Status status = deployment.IngestAll(&system);
    if (!status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    }
    system.SetVerifier(&verifier);
    for (const core::FrameObservation& obs : deployment.observations()) {
      topk.IngestFrame(obs);
      classifier_only.IngestFrame(obs);
    }
    topk.Finalize();
    for (const auto& cam : deployment.cameras()) {
      spatula.RegisterCamera(cam.camera, cam.location_tag);
    }
  }

  /// Frames of the SVSs in `ids` (what the heavy model examines for VZ).
  std::vector<int64_t> FramesOfSvss(const std::vector<core::SvsId>& ids) {
    std::vector<int64_t> frames;
    for (core::SvsId id : ids) {
      auto svs = system.svs_store().Get(id);
      if (!svs.ok()) continue;
      frames.insert(frames.end(), (*svs)->frame_ids().begin(),
                    (*svs)->frame_ids().end());
    }
    return frames;
  }

  /// A camera whose feed truly contains `object_class` (for Spatula's
  /// "query captured by camera X" semantics); empty string if none.
  core::CameraId CameraContaining(int object_class) {
    for (const auto& cam : deployment.cameras()) {
      for (core::SvsId id :
           system.svs_store().IdsForCamera(cam.camera)) {
        auto svs = system.svs_store().Get(id);
        if (svs.ok() &&
            deployment.log().SvsContains(**svs, object_class)) {
          return cam.camera;
        }
      }
    }
    return "";
  }

  sim::Deployment deployment;
  core::VideoZilla system;
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier;
  baseline::TopKIndex topk;
  baseline::SpatulaCorrelator spatula;
  baseline::ClassifierOnlyBaseline classifier_only;
  sim::GpuCostModel gpu_cost;
};

/// The three paper query classes (Sec. 7.4).
inline std::vector<int> PaperQueryClasses() {
  return {sim::kFireHydrant, sim::kBoat, sim::kTrain};
}

}  // namespace vz::bench

#endif  // VZ_BENCH_BENCH_UTIL_H_
