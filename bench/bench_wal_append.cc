// WAL append cost across the durability dial: appends/sec and fsync-ack
// latency for fsync_interval_ms in {-1 (no fsync), 0 (sync every append),
// 1, 5, 20} at ~2 KiB payloads (a framed IngestFrame request). Two passes
// per setting bracket the commit rule's price:
//   - throughput: append a burst, one WaitDurable at the end — the batch
//     ingest shape, where group commit amortises the fsync;
//   - ack: WaitDurable after every append — the synchronous RPC shape,
//     where the gather window is the ack latency floor.
// Emits one JSON object per row alongside the table.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/wal.h"

namespace vz {
namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[index];
}

struct Row {
  int64_t fsync_interval_ms = 0;
  std::string mode;
  size_t appends = 0;
  double appends_per_sec = 0.0;
  double mb_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

void PrintRow(const Row& row) {
  std::printf("%10lld %-11s %8zu %14.0f %9.1f %10.3f %10.3f\n",
              static_cast<long long>(row.fsync_interval_ms),
              row.mode.c_str(), row.appends, row.appends_per_sec,
              row.mb_per_sec, row.p50_ms, row.p99_ms);
  std::printf("JSON {\"bench\":\"wal_append\",\"fsync_interval_ms\":%lld,"
              "\"mode\":\"%s\",\"appends\":%zu,\"appends_per_sec\":%.1f,"
              "\"mb_per_sec\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
              static_cast<long long>(row.fsync_interval_ms),
              row.mode.c_str(), row.appends, row.appends_per_sec,
              row.mb_per_sec, row.p50_ms, row.p99_ms);
}

std::string FreshWalDir(const std::string& tag) {
  const std::string dir = "/tmp/vz_bench_wal_" + tag;
  // Wipe any prior run's segments so every pass starts on segment 1.
  std::string command = "rm -rf " + dir;
  if (std::system(command.c_str()) != 0) {
    std::fprintf(stderr, "warning: could not clear %s\n", dir.c_str());
  }
  return dir;
}

io::WalRecord MakeRecord(uint64_t sequence, const std::string& payload) {
  io::WalRecord record;
  record.session_id = 1;
  record.sequence = sequence;
  record.op = 3;
  record.payload = payload;
  return record;
}

bool RunSetting(int64_t fsync_interval_ms, const std::string& payload,
                size_t burst_appends, size_t ack_appends) {
  const std::string tag = fsync_interval_ms < 0
                              ? "nofsync"
                              : std::to_string(fsync_interval_ms) + "ms";

  // --- Throughput pass: burst append, settle durability once. ---
  {
    io::WalOptions options;
    options.dir = FreshWalDir(tag + "_tp");
    options.fsync_interval_ms = fsync_interval_ms;
    auto wal = io::Wal::Open(options);
    if (!wal.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   wal.status().ToString().c_str());
      return false;
    }
    const Clock::time_point start = Clock::now();
    uint64_t last = 0;
    for (size_t i = 0; i < burst_appends; ++i) {
      auto lsn = (*wal)->Append(MakeRecord(i + 1, payload));
      if (!lsn.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     lsn.status().ToString().c_str());
        return false;
      }
      last = *lsn;
    }
    if (fsync_interval_ms >= 0) {
      if (Status s = (*wal)->WaitDurable(last); !s.ok()) {
        std::fprintf(stderr, "wait failed: %s\n", s.ToString().c_str());
        return false;
      }
    }
    const double elapsed_ms = ToMs(Clock::now() - start);
    Row row;
    row.fsync_interval_ms = fsync_interval_ms;
    row.mode = "throughput";
    row.appends = burst_appends;
    row.appends_per_sec =
        elapsed_ms > 0
            ? 1000.0 * static_cast<double>(burst_appends) / elapsed_ms
            : 0.0;
    row.mb_per_sec = row.appends_per_sec *
                     static_cast<double>(payload.size()) / (1024.0 * 1024.0);
    PrintRow(row);
  }

  // --- Ack pass: WaitDurable after every append (the RPC commit rule). ---
  if (fsync_interval_ms >= 0) {
    io::WalOptions options;
    options.dir = FreshWalDir(tag + "_ack");
    options.fsync_interval_ms = fsync_interval_ms;
    auto wal = io::Wal::Open(options);
    if (!wal.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   wal.status().ToString().c_str());
      return false;
    }
    std::vector<double> latencies;
    latencies.reserve(ack_appends);
    const Clock::time_point start = Clock::now();
    for (size_t i = 0; i < ack_appends; ++i) {
      const Clock::time_point t0 = Clock::now();
      auto lsn = (*wal)->Append(MakeRecord(i + 1, payload));
      if (!lsn.ok() || !(*wal)->WaitDurable(*lsn).ok()) {
        std::fprintf(stderr, "ack append failed at %zu\n", i);
        return false;
      }
      latencies.push_back(ToMs(Clock::now() - t0));
    }
    const double elapsed_ms = ToMs(Clock::now() - start);
    std::sort(latencies.begin(), latencies.end());
    Row row;
    row.fsync_interval_ms = fsync_interval_ms;
    row.mode = "ack";
    row.appends = ack_appends;
    row.appends_per_sec =
        elapsed_ms > 0 ? 1000.0 * static_cast<double>(ack_appends) / elapsed_ms
                       : 0.0;
    row.mb_per_sec = row.appends_per_sec *
                     static_cast<double>(payload.size()) / (1024.0 * 1024.0);
    row.p50_ms = Percentile(&latencies, 0.50);
    row.p99_ms = Percentile(&latencies, 0.99);
    PrintRow(row);
  }
  return true;
}

}  // namespace
}  // namespace vz

int main() {
  using namespace vz;
  bench::Banner("WAL append: throughput and ack latency vs fsync interval",
                "payload=2 KiB, burst=8000 appends (~16 MiB, spans "
                "segments), ack=500 appends, intervals=-1/0/1/5/20 ms");

  std::printf("\n%10s %-11s %8s %14s %9s %10s %10s\n", "fsync (ms)", "mode",
              "appends", "appends/sec", "MiB/sec", "p50 (ms)", "p99 (ms)");

  const std::string payload(2048, 'x');
  for (int64_t interval : {-1, 0, 1, 5, 20}) {
    if (!RunSetting(interval, payload, 8'000, 500)) return 1;
  }
  return 0;
}
