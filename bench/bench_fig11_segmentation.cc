// Reproduces Figure 11: automatic video segmentation quality, measured as
// the average OMD between adjacent segments (higher = better boundaries),
// for Video-zilla's segmenter vs an oracle (true SVS boundaries) and the
// fixed-length strawman (1/5/10-minute clips). Also prints the CDF of
// adjacent-segment OMDs (Fig. 11b).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/intra_camera_index.h"
#include "core/omd.h"
#include "core/segmenter.h"

namespace vz::bench {
namespace {

// Stream of (timestamp, feature) pairs at 1 feature/second, concatenating
// the synthetic SVSs, plus the true boundaries.
struct Stream {
  std::vector<std::pair<int64_t, FeatureVector>> features;
  std::vector<size_t> true_boundaries;  // indices where a new SVS begins
};

Stream MakeStream() {
  sim::SyntheticDatasetOptions options = BenchSyntheticOptions();
  options.num_svs = 10;
  options.num_types = 10;  // each segment a distinct type (paper setup)
  options.variable_length = true;
  options.min_vectors = 150;
  options.max_vectors = 450;
  options.dim = 64;
  const sim::SyntheticDataset data = sim::MakeSyntheticDataset(options);
  Stream stream;
  int64_t ts = 0;
  for (const FeatureMap& svs : data.svss) {
    stream.true_boundaries.push_back(stream.features.size());
    for (size_t i = 0; i < svs.size(); ++i) {
      stream.features.emplace_back(ts, svs.vector(i));
      ts += 1000;
    }
  }
  return stream;
}

// Average OMD between adjacent segments given boundary indices.
std::vector<double> AdjacentOmds(const Stream& stream,
                                 const std::vector<size_t>& boundaries,
                                 core::OmdCalculator* calc) {
  std::vector<FeatureMap> segments;
  for (size_t b = 0; b < boundaries.size(); ++b) {
    const size_t begin = boundaries[b];
    const size_t end =
        b + 1 < boundaries.size() ? boundaries[b + 1] : stream.features.size();
    if (end <= begin) continue;
    FeatureMap map;
    for (size_t i = begin; i < end; ++i) {
      (void)map.Add(stream.features[i].second, 1.0);
    }
    segments.push_back(std::move(map));
  }
  std::vector<double> omds;
  for (size_t s = 0; s + 1 < segments.size(); ++s) {
    auto d = calc->Distance(segments[s], segments[s + 1]);
    if (d.ok()) omds.push_back(*d);
  }
  return omds;
}

std::vector<size_t> FixedBoundaries(size_t total, size_t clip_len) {
  std::vector<size_t> boundaries;
  for (size_t i = 0; i < total; i += clip_len) boundaries.push_back(i);
  return boundaries;
}

void Run() {
  const Stream stream = MakeStream();
  Banner("Figure 11: OMD between adjacent SVSs (segmentation quality)",
         "10 synthetic SVSs of 150-450 features, 1 feature/s, 64-d");

  core::OmdOptions omd_options;
  omd_options.max_vectors = 64;
  core::OmdCalculator calc(omd_options);

  // --- Video-zilla's automatic segmentation, with the real reference loop:
  // each finished segment is indexed and the cluster representative becomes
  // the segmenter's reference (Sec. 5.1).
  core::SvsStore store;
  core::SvsMetric metric(&store, &calc);
  core::IntraIndexOptions intra_options;
  intra_options.recluster_interval = 1;
  core::IntraCameraIndex intra("synthetic", &store, &metric, intra_options,
                               Rng(3));
  core::SegmenterOptions seg_options;
  seg_options.t_max_ms = 10LL * 60 * 1000;  // 600 features cap
  seg_options.t_split_ms = 60'000;
  core::VideoSegmenter segmenter(seg_options, Rng(5));

  std::vector<size_t> ours_boundaries = {0};
  size_t consumed = 0;
  auto on_segment = [&](const core::Segment& segment) {
    const size_t segment_len = segment.features.size();
    consumed += segment_len;
    ours_boundaries.push_back(consumed);
    const core::SvsId id = store.Create(
        "synthetic", segment.start_ms, segment.end_ms, segment.features);
    if (intra.Insert(id).ok()) {
      auto rep = intra.ClusterRepresentativeFor(id);
      if (rep.ok()) segmenter.SetReference(**rep);
    }
  };
  for (const auto& [ts, feature] : stream.features) {
    auto segment = segmenter.AddFeature(ts, feature);
    if (segment.has_value()) on_segment(*segment);
  }
  auto tail = segmenter.Flush();
  if (tail.has_value()) on_segment(*tail);
  ours_boundaries.pop_back();  // last entry == total size, not a boundary

  struct Row {
    const char* name;
    std::vector<size_t> boundaries;
  };
  std::vector<Row> rows;
  rows.push_back({"oracle", stream.true_boundaries});
  rows.push_back({"video-zilla", ours_boundaries});
  rows.push_back({"fixed 1 min", FixedBoundaries(stream.features.size(), 60)});
  rows.push_back({"fixed 5 min", FixedBoundaries(stream.features.size(), 300)});
  rows.push_back(
      {"fixed 10 min", FixedBoundaries(stream.features.size(), 600)});

  std::printf("%-14s %10s %16s\n", "method", "segments", "avg adjacent OMD");
  std::vector<std::pair<const char*, std::vector<double>>> cdf_series;
  for (const Row& row : rows) {
    const std::vector<double> omds = AdjacentOmds(stream, row.boundaries,
                                                  &calc);
    std::printf("%-14s %10zu %16.3f\n", row.name, row.boundaries.size(),
                Mean(omds));
    cdf_series.emplace_back(row.name, omds);
  }

  std::printf("\nFig 11b — CDF of adjacent-SVS OMDs:\n");
  for (const auto& [name, omds] : cdf_series) {
    std::printf("%-14s:", name);
    for (const auto& [threshold, fraction] : EmpiricalCdf(omds, 6)) {
      std::printf("  (%.2f, %.2f)", threshold, fraction);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
