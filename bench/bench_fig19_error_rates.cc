// Reproduces Figure 19: frame-level false-positive and false-negative rates
// per indexing scheme and feature extractor, for the three query classes.
// Schemes: classifier-only (heavy model over everything), per-camera top-k,
// spatial-temporal correlation (Spatula-like), Video-zilla, and Video-zilla
// without the inter-camera index ("intra only").
//
// Expected shape (Sec. 7.4): Video-zilla cuts FPR by examining far fewer
// negative frames at a small FNR cost; S-T prunes too aggressively (high
// FNR); intra-only lowers FNR at higher FPR; and VGG-16's fire-hydrant
// confusion inflates that query's FNR through inaccurate clustering.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace vz::bench {
namespace {

constexpr int kQueriesPerClass = 8;

struct SchemeResult {
  sim::QueryEvaluation eval;
};

void RunExtractor(const std::string& name,
                  const sim::ExtractorProfile& profile) {
  sim::DeploymentOptions dep_options = BenchDeploymentOptions();
  dep_options.extractor = profile;
  EndToEndRig rig(dep_options);
  Rng rng(47);

  const std::vector<int64_t> universe = rig.classifier_only.AllFrames();
  std::printf("\n--- extractor: %s ---\n", name.c_str());
  std::printf("%-13s %-16s %8s %8s %10s\n", "query", "scheme", "FPR", "FNR",
              "examined");
  for (int object_class : PaperQueryClasses()) {
    sim::QueryEvaluation classifier_eval;
    sim::QueryEvaluation topk_eval;
    sim::QueryEvaluation st_eval;
    sim::QueryEvaluation vz_eval;
    sim::QueryEvaluation intra_eval;
    size_t classifier_frames = 0;
    size_t topk_frames = 0;
    size_t st_frames = 0;
    size_t vz_frames = 0;
    size_t intra_frames = 0;

    const core::CameraId source_camera = rig.CameraContaining(object_class);
    const auto correlated = rig.spatula.CorrelatedCameras(source_camera);

    for (int q = 0; q < kQueriesPerClass; ++q) {
      const FeatureVector query =
          rig.deployment.MakeQueryFeature(object_class, &rng);

      // Classifier-only: every frame is examined.
      classifier_eval += sim::EvaluateFrameQuery(
          universe, universe, object_class, rig.deployment.log(), rig.heavy);
      classifier_frames += universe.size();

      // Per-camera top-k.
      const auto topk = rig.topk.Query(object_class);
      topk_eval += sim::EvaluateFrameQuery(topk.frames, universe,
                                           object_class,
                                           rig.deployment.log(), rig.heavy);
      topk_frames += topk.frames.size();

      // Spatial-temporal: Video-zilla's intra-camera mechanism, restricted
      // to cameras co-located with the query's source camera (Sec. 7.4).
      {
        core::QueryConstraints constraints;
        constraints.cameras = correlated;
        const core::IndexMode saved = rig.system.index_mode();
        rig.system.SetIndexMode(core::IndexMode::kIntraOnly);
        auto result = rig.system.DirectQuery(query, constraints);
        rig.system.SetIndexMode(saved);
        if (result.ok()) {
          const auto frames = rig.FramesOfSvss(result->candidate_svss);
          st_eval += sim::EvaluateFrameQuery(frames, universe, object_class,
                                             rig.deployment.log(), rig.heavy);
          st_frames += frames.size();
        }
      }

      // Video-zilla (full hierarchy).
      {
        auto result = rig.system.DirectQuery(query);
        if (result.ok()) {
          const auto frames = rig.FramesOfSvss(result->candidate_svss);
          vz_eval += sim::EvaluateFrameQuery(frames, universe, object_class,
                                             rig.deployment.log(), rig.heavy);
          vz_frames += frames.size();
        }
      }

      // Intra-only (no inter-camera index).
      {
        const core::IndexMode saved = rig.system.index_mode();
        rig.system.SetIndexMode(core::IndexMode::kIntraOnly);
        auto result = rig.system.DirectQuery(query);
        rig.system.SetIndexMode(saved);
        if (result.ok()) {
          const auto frames = rig.FramesOfSvss(result->candidate_svss);
          intra_eval += sim::EvaluateFrameQuery(frames, universe,
                                                object_class,
                                                rig.deployment.log(),
                                                rig.heavy);
          intra_frames += frames.size();
        }
      }
    }

    const std::string cls(sim::ObjectClassName(object_class));
    auto row = [&cls](const char* scheme, const sim::QueryEvaluation& eval,
                      size_t frames) {
      std::printf("%-13s %-16s %7.2f%% %7.2f%% %10zu\n", cls.c_str(), scheme,
                  100.0 * eval.Fpr(), 100.0 * eval.Fnr(),
                  frames / kQueriesPerClass);
    };
    row("classifier", classifier_eval, classifier_frames);
    row("top-k", topk_eval, topk_frames);
    row("S-T", st_eval, st_frames);
    row("video-zilla", vz_eval, vz_frames);
    row("intra-only", intra_eval, intra_frames);
  }
}

void Run() {
  Banner("Figure 19: FPR/FNR by indexing scheme and feature extractor",
         "16 cameras, 8 query instances per class, frame-level scoring");
  RunExtractor("resnet50", sim::ExtractorProfile::ResNet50());
  RunExtractor("resnet34", sim::ExtractorProfile::ResNet34());
  RunExtractor("vgg16", sim::ExtractorProfile::Vgg16());
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
