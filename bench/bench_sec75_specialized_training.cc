// Reproduces the Sec. 7.5 case study: specialized DNN training. Training
// sets are selected either by Video-zilla's clustering query (automatic,
// semantic) or by manual spatial labels (all cameras in the same city).
// The clustering query's sets cover the target's classes and are visually
// coherent, so the predicted specialized top-2 accuracy matches — and
// slightly beats — the manually labeled grouping, without any labeling
// (the paper reports ~1% in Video-zilla's favor).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "train/specialized_trainer.h"

namespace vz::bench {
namespace {

constexpr size_t kSeeds = 8;  // target SVSs drawn from downtown cameras

void Run() {
  EndToEndRig rig;
  Banner("Sec 7.5: specialized DNN training (clustering query vs manual "
         "spatial labels)",
         "downtown in-vehicle feeds; predicted top-2 accuracy");
  train::SpecializedTrainer trainer(&rig.deployment.log());
  Rng rng(59);

  // Seed SVSs: downtown content (the paper uses the 20 downtown videos).
  std::vector<core::SvsId> seeds;
  for (const auto& cam : rig.deployment.cameras()) {
    if (cam.kind != "downtown") continue;
    for (core::SvsId id : rig.system.svs_store().IdsForCamera(cam.camera)) {
      seeds.push_back(id);
      if (seeds.size() >= kSeeds) break;
    }
    if (seeds.size() >= kSeeds) break;
  }

  auto resolve = [&rig](const std::vector<core::SvsId>& ids) {
    std::vector<const core::Svs*> out;
    for (core::SvsId id : ids) {
      auto svs = rig.system.svs_store().Get(id);
      if (svs.ok()) out.push_back(*svs);
    }
    return out;
  };

  const std::vector<train::BaseModelProfile> models = {
      train::BaseModelProfile::MobileNetV2(),
      train::BaseModelProfile::ResNet50(),
      train::BaseModelProfile::ResNet101(),
      train::BaseModelProfile::InceptionV3()};
  std::vector<double> vz_accuracy(models.size(), 0.0);
  std::vector<double> spatial_accuracy(models.size(), 0.0);

  for (core::SvsId seed : seeds) {
    auto seed_svs = rig.system.svs_store().Get(seed);
    if (!seed_svs.ok()) continue;
    const std::vector<const core::Svs*> target = {*seed_svs};

    // Video-zilla: training set from the clustering query (automatic).
    auto similar = rig.system.ClusteringQuery((*seed_svs)->features());
    std::vector<const core::Svs*> vz_training;
    if (similar.ok()) vz_training = resolve(similar->similar_svss);

    // Manual spatial labels: all SVSs of cameras in the same city.
    std::vector<core::SvsId> spatial_ids;
    for (const core::CameraId& camera :
         rig.spatula.CorrelatedCameras((*seed_svs)->camera())) {
      for (core::SvsId id : rig.system.svs_store().IdsForCamera(camera)) {
        spatial_ids.push_back(id);
      }
    }
    const std::vector<const core::Svs*> spatial_training =
        resolve(spatial_ids);

    const auto vz_analysis = trainer.Analyze(vz_training, target, &rng);
    const auto spatial_analysis =
        trainer.Analyze(spatial_training, target, &rng);
    for (size_t m = 0; m < models.size(); ++m) {
      vz_accuracy[m] +=
          trainer.PredictTop2Accuracy(models[m], vz_analysis) / seeds.size();
      spatial_accuracy[m] +=
          trainer.PredictTop2Accuracy(models[m], spatial_analysis) /
          seeds.size();
    }
  }

  std::printf("%-14s %22s %22s\n", "base model", "video-zilla top-2 acc",
              "spatial-labels top-2 acc");
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("%-14s %20.2f%% %20.2f%%\n", models[m].name.c_str(),
                100.0 * vz_accuracy[m], 100.0 * spatial_accuracy[m]);
  }
  std::printf("(no manual labeling needed for the Video-zilla column)\n");
}

}  // namespace
}  // namespace vz::bench

int main() {
  vz::bench::Run();
  return 0;
}
