#!/usr/bin/env bash
# Boots the 2-edge sharded topology end to end from a built tree and runs
# one operator-console session against the coordinator:
#
#   edge 0 (vz_server, shard 0/2) ─┐
#                                  ├─ vz_coordinator ── vz_cli --connect
#   edge 1 (vz_server, shard 1/2) ─┘
#
#   scripts/run_cluster.sh [build_dir]     # default: build
#
# Each edge pre-ingests its round-robin camera shard of the same simulated
# deployment (flags below must match across all four processes — they are
# the deployment contract). The in-process equivalent of this topology is
# the "coordinator" transport row of bench_net_throughput
# (ctest -C bench -L bench).
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${ROOT}"

EDGE0_PORT=9401
EDGE1_PORT=9402
COORD_PORT=9400
# One simulated world, described identically on every process.
DEPLOY_FLAGS=(--downtown 2 --highway 2 --stations 1 --harbors 1 --minutes 3)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_for_listen() {
  local name="$1" pattern="$2" log="$3"
  for _ in $(seq 1 100); do
    if grep -q "${pattern}" "${log}" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "${name} did not come up; log follows:" >&2
  cat "${log}" >&2
  return 1
}

LOG_DIR="$(mktemp -d)"

"${BUILD_DIR}/examples/vz_server" --port "${EDGE0_PORT}" \
  "${DEPLOY_FLAGS[@]}" --ingest --shard-index 0 --shard-count 2 \
  > "${LOG_DIR}/edge0.log" 2>&1 &
PIDS+=($!)
"${BUILD_DIR}/examples/vz_server" --port "${EDGE1_PORT}" \
  "${DEPLOY_FLAGS[@]}" --ingest --shard-index 1 --shard-count 2 \
  > "${LOG_DIR}/edge1.log" 2>&1 &
PIDS+=($!)
wait_for_listen "edge 0" "listening" "${LOG_DIR}/edge0.log"
wait_for_listen "edge 1" "listening" "${LOG_DIR}/edge1.log"

"${BUILD_DIR}/examples/vz_coordinator" --port "${COORD_PORT}" \
  --edge "127.0.0.1:${EDGE0_PORT}" --edge "127.0.0.1:${EDGE1_PORT}" \
  > "${LOG_DIR}/coordinator.log" 2>&1 &
PIDS+=($!)
wait_for_listen "coordinator" "listening" "${LOG_DIR}/coordinator.log"

echo "cluster up (logs in ${LOG_DIR}):"
sed 's/^/  /' "${LOG_DIR}/coordinator.log"

"${BUILD_DIR}/examples/vz_cli" --connect "127.0.0.1:${COORD_PORT}" \
  "${DEPLOY_FLAGS[@]}" --query boat --query train

echo "shutting the cluster down"
