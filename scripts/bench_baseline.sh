#!/usr/bin/env bash
# Regenerates the checked-in benchmark baselines (BENCH_*.json) from a built
# tree.
#
#   scripts/bench_baseline.sh [build_dir]     # default: build
#
# BENCH_micro_omd.json is google-benchmark's native JSON for the kernel-layer
# microbenchmarks (ground-matrix fill and quantized lower bound, with
# threads/dim/simd counters). BENCH_sec73_ann.json holds one JSON object per
# line, scraped from the bench's "JSON {...}" rows. Rerun on AVX2 hardware
# with VZ_SIMD=scalar to capture a scalar baseline for comparison.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${ROOT}"

"${BUILD_DIR}/bench/bench_micro_omd" \
  --benchmark_filter='BM_GroundDistanceMatrix|BM_QuantizedLowerBound' \
  --benchmark_format=json > BENCH_micro_omd.json

"${BUILD_DIR}/bench/bench_sec73_ann" | sed -n 's/^JSON //p' \
  > BENCH_sec73_ann.json

echo "wrote BENCH_micro_omd.json and BENCH_sec73_ann.json"
