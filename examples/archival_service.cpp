// Proactive video archiving service (the Sec. 6 custom-API case study and
// the Sec. 7.6 evaluation): after a period of query traffic, estimate every
// stream's future usefulness from its semantic cluster's access frequencies
// and move low-information streams to cold storage.
#include <cstdio>

#include "core/archiver.h"
#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

int main() {
  using namespace vz;

  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = 2;
  dep_options.highway_cameras = 2;
  dep_options.train_stations = 2;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 5 * 60 * 1000;
  dep_options.fps = 1.0;
  sim::Deployment deployment(dep_options);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 75 * 1000;
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  core::VideoZilla vz(options);
  if (Status s = deployment.IngestAll(&vz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  // A week in the life: analysts keep querying for trains and boats (the
  // station and harbor content), never for empty platforms.
  Rng rng(5);
  for (int day = 0; day < 4; ++day) {
    for (int q = 0; q < 5; ++q) {
      (void)vz.DirectQuery(deployment.MakeQueryFeature(sim::kTrain, &rng));
      (void)vz.DirectQuery(deployment.MakeQueryFeature(sim::kBoat, &rng));
    }
  }

  core::ArchiverOptions archive_options;
  archive_options.access_frequency_threshold = 0.5;
  core::Archiver archiver(&vz, archive_options);

  // The paper's composed isArchived() API, per stream kind.
  for (core::SvsId id : vz.svs_store().AllIds()) {
    auto svs = vz.svs_store().Get(id);
    if (!svs.ok()) continue;
    const bool has_train = deployment.log().SvsContains(**svs, sim::kTrain);
    if ((*svs)->camera().rfind("station", 0) != 0) continue;
    auto freq = archiver.IsArchived((*svs)->features());
    if (freq.ok()) {
      std::printf("isArchived(SVS %lld, %s): cluster access frequency "
                  "%.2f/h\n",
                  static_cast<long long>(id),
                  has_train ? "train passing " : "empty platform",
                  *freq);
    }
  }

  // Plan the sweep.
  auto plan = archiver.PlanArchive();
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\narchive plan: move %zu of %zu streams to cold storage\n",
              plan->to_archive.size(), vz.svs_store().size());
  std::printf("  frees %.1f MB of %.1f MB (%.0f%%), %.1f of %.1f camera-"
              "minutes\n",
              plan->archived_bytes / 1e6, plan->total_bytes / 1e6,
              100.0 * plan->ByteFraction(),
              plan->archived_duration_ms / 60000.0,
              plan->total_duration_ms / 60000.0);
  return 0;
}
