// Specialized-DNN training pipeline (the Sec. 7.5 case study as a reusable
// application): pick a target stream, pull its semantic peers with a
// clustering query, and hand the resulting training set to the transfer
// trainer — no manual camera labeling anywhere.
#include <cstdio>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "train/specialized_trainer.h"

int main() {
  using namespace vz;

  sim::DeploymentOptions dep_options;
  dep_options.cities = 2;
  dep_options.downtown_per_city = 3;
  dep_options.highway_cameras = 2;
  dep_options.train_stations = 1;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 5 * 60 * 1000;
  dep_options.fps = 1.0;
  sim::Deployment deployment(dep_options);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 75 * 1000;
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  core::VideoZilla vz(options);
  if (Status s = deployment.IngestAll(&vz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Target workload: the first downtown stream — we want a small, fast
  // model specialized for content like it.
  core::SvsId target_id = -1;
  for (core::SvsId id :
       vz.svs_store().IdsForCamera("downtown-nyc-0")) {
    target_id = id;
    break;
  }
  if (target_id < 0) {
    std::fprintf(stderr, "no downtown SVS found\n");
    return 1;
  }
  auto target = vz.svs_store().Get(target_id);
  if (!target.ok()) return 1;

  // Training set = the target's semantic cluster, across all cameras.
  auto similar = vz.ClusteringQuery((*target)->features());
  if (!similar.ok()) {
    std::fprintf(stderr, "%s\n", similar.status().ToString().c_str());
    return 1;
  }
  std::printf("clustering query found %zu semantically similar streams "
              "from %zu cameras (zero manual labels)\n",
              similar->similar_svss.size(), similar->cameras_contributing);

  std::vector<const core::Svs*> training;
  for (core::SvsId id : similar->similar_svss) {
    auto svs = vz.svs_store().Get(id);
    if (svs.ok()) training.push_back(*svs);
  }
  const std::vector<const core::Svs*> target_set = {*target};

  train::SpecializedTrainer trainer(&deployment.log());
  Rng rng(17);
  const auto analysis = trainer.Analyze(training, target_set, &rng);
  std::printf("training-set analysis: %zu objects, class coverage %.0f%%, "
              "visual coherence %.2f\n",
              analysis.training_objects, 100.0 * analysis.class_coverage,
              analysis.visual_coherence);
  std::printf("trained classes:");
  for (int cls : analysis.trained_classes) {
    std::printf(" %s", std::string(sim::ObjectClassName(cls)).c_str());
  }
  std::printf("\n\n%-14s %10s -> %s\n", "base model", "generic",
              "specialized top-2 accuracy");
  for (const auto& model :
       {train::BaseModelProfile::MobileNetV2(),
        train::BaseModelProfile::ResNet50(),
        train::BaseModelProfile::ResNet101(),
        train::BaseModelProfile::InceptionV3()}) {
    std::printf("%-14s %9.1f%% -> %.1f%%\n", model.name.c_str(),
                100.0 * model.base_top2_accuracy,
                100.0 * trainer.PredictTop2Accuracy(model, analysis));
  }
  return 0;
}
