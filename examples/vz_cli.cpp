// vz_cli — a small operator console for the indexing layer: build a
// simulated deployment, ingest it, answer queries, snapshot and restore.
// With --connect the same console drives a remote vz_server over the binary
// RPC protocol instead of an in-process instance.
//
//   vz_cli [--downtown N] [--highway N] [--stations N] [--harbors N]
//          [--minutes M] [--query CLASS]... [--mode hierarchical|intra|flat]
//          [--save PATH] [--load PATH] [--seed S]
//          [--deadline-ms D] [--max-inflight N] [--connect HOST:PORT]
//
// Examples:
//   vz_cli --downtown 4 --harbors 2 --minutes 6 --query boat --query train
//   vz_cli --load snapshot.vzss --query fire_hydrant
//   vz_cli --connect 127.0.0.1:9400 --query boat
//
// In connect mode the deployment flags must match the server's (both sides
// regenerate the same simulated world); ingestion streams over the wire
// unless the server already holds data, and --save/--load trigger
// server-local snapshots.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/videozilla.h"
#include "io/svs_snapshot.h"
#include "net/client.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace {

int ClassByName(const std::string& name) {
  for (int c = 0; c < vz::sim::kNumObjectClasses; ++c) {
    if (vz::sim::ObjectClassName(c) == name) return c;
  }
  return -1;
}

struct CliOptions {
  size_t downtown = 2;
  size_t highway = 2;
  size_t stations = 1;
  size_t harbors = 1;
  int64_t minutes = 5;
  std::vector<int> queries;
  std::string mode = "hierarchical";
  std::string save_path;
  std::string load_path;
  uint64_t seed = 7;
  // Wall-clock budget per query; <= 0 means no deadline.
  int64_t deadline_ms = 0;
  // Admission gate size; 0 means unlimited (no gating).
  size_t max_inflight = 0;
  // Remote mode: drive a vz_server at host:port instead of an in-process
  // instance.
  std::string connect;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--downtown" && (value = next_value(&i))) {
      options->downtown = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--highway" && (value = next_value(&i))) {
      options->highway = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--stations" && (value = next_value(&i))) {
      options->stations = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--harbors" && (value = next_value(&i))) {
      options->harbors = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--minutes" && (value = next_value(&i))) {
      options->minutes = std::atoll(value);
    } else if (arg == "--seed" && (value = next_value(&i))) {
      options->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--query" && (value = next_value(&i))) {
      const int cls = ClassByName(value);
      if (cls < 0) {
        std::fprintf(stderr, "unknown object class: %s\n", value);
        return false;
      }
      options->queries.push_back(cls);
    } else if (arg == "--mode" && (value = next_value(&i))) {
      options->mode = value;
    } else if (arg == "--deadline-ms" && (value = next_value(&i))) {
      options->deadline_ms = std::atoll(value);
    } else if (arg == "--max-inflight" && (value = next_value(&i))) {
      options->max_inflight = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--save" && (value = next_value(&i))) {
      options->save_path = value;
    } else if (arg == "--load" && (value = next_value(&i))) {
      options->load_path = value;
    } else if (arg == "--connect" && (value = next_value(&i))) {
      options->connect = value;
    } else if (arg == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Remote mode: the same console flow — ingest, query, snapshot — but every
// operation is an RPC against a vz_server. The deployment is still built
// locally: it supplies the frames to stream (when the server is empty) and
// the query features, and matching flags/seed guarantee both sides describe
// the same simulated world.
int RunConnected(vz::sim::Deployment* deployment, const CliOptions& cli) {
  using namespace vz;
  const size_t colon = cli.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == cli.connect.size()) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got %s\n",
                 cli.connect.c_str());
    return 2;
  }
  const std::string host = cli.connect.substr(0, colon);
  const int port = std::atoi(cli.connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port in --connect %s\n", cli.connect.c_str());
    return 2;
  }
  auto client_or = net::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(*client_or);
  std::printf("connected to %s (protocol v%u)\n", cli.connect.c_str(),
              client.server_protocol_version());
  if (cli.mode != "hierarchical") {
    std::fprintf(stderr,
                 "--mode is server-side configuration; ignored in connect "
                 "mode\n");
  }

  if (!cli.load_path.empty()) {
    auto loaded = client.LoadSnapshot(cli.load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %llu SVSs from %s (server-local)\n",
                static_cast<unsigned long long>(*loaded),
                cli.load_path.c_str());
  } else {
    auto stats = client.MonitorStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (stats->ingest.frames_offered == 0 && stats->svs_count == 0) {
      // Stream the local world over the wire: the same camera-start /
      // per-frame / flush sequence Deployment::IngestAll performs
      // in-process.
      for (const auto& info : deployment->cameras()) {
        if (Status s = client.CameraStart(info.camera); !s.ok()) {
          std::fprintf(stderr, "camera start failed: %s\n",
                       s.ToString().c_str());
          return 1;
        }
      }
      for (const auto& observation : deployment->observations()) {
        if (Status s = client.IngestFrame(observation); !s.ok()) {
          std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      if (Status s = client.Flush(); !s.ok()) {
        std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
        return 1;
      }
      stats = client.MonitorStats();
      if (!stats.ok()) {
        std::fprintf(stderr, "stats failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
    } else {
      std::printf("server already holds data; skipping ingest\n");
    }
    std::printf("ingested %llu frames / %llu features -> %llu SVSs across "
                "%llu cameras\n",
                static_cast<unsigned long long>(stats->ingest.frames_offered),
                static_cast<unsigned long long>(
                    stats->ingest.features_extracted),
                static_cast<unsigned long long>(stats->svs_count),
                static_cast<unsigned long long>(stats->camera_count));
    if (stats->ingest.frames_rejected > 0 ||
        stats->ingest.objects_quarantined > 0) {
      std::printf("quarantined: %llu frames rejected, %llu objects\n",
                  static_cast<unsigned long long>(
                      stats->ingest.frames_rejected),
                  static_cast<unsigned long long>(
                      stats->ingest.objects_quarantined));
    }
    if (auto health = client.CameraHealthReport(); health.ok()) {
      for (const auto& entry : *health) {
        if (entry.health != core::CameraHealth::kHealthy) {
          std::printf(
              "camera %s: %s\n", entry.camera.c_str(),
              std::string(core::CameraHealthToString(entry.health)).c_str());
        }
      }
    }
  }

  Rng rng(cli.seed ^ 0x51);
  core::QueryConstraints constraints;
  if (cli.deadline_ms > 0) constraints.deadline_ms = cli.deadline_ms;
  for (int object_class : cli.queries) {
    const FeatureVector query =
        deployment->MakeQueryFeature(object_class, &rng);
    auto result = client.DirectQuery(query, constraints);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery %s [remote]: %zu candidates -> %zu matches, "
                "%.0f ms GPU%s\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                result->candidate_svss.size(), result->matched_svss.size(),
                result->total_gpu_ms,
                result->timed_out ? " [timed out: partial result]" : "");
    if (result->timed_out) {
      std::printf("  completed %.0f%% of planned verification before the "
                  "%lldms deadline\n",
                  result->completed_fraction * 100.0,
                  static_cast<long long>(cli.deadline_ms));
    }
    for (core::SvsId id : result->matched_svss) {
      auto meta = client.GetMetaData(id);
      if (!meta.ok()) continue;
      std::printf("  %-20s %5llds - %5llds  (%zu frames)\n",
                  meta->camera.c_str(),
                  static_cast<long long>(meta->start_ms / 1000),
                  static_cast<long long>(meta->end_ms / 1000),
                  meta->num_frames);
    }
    if (!result->matched_svss.empty()) {
      // Pivot the best match into the other query primitive: all streams
      // semantically similar to it, again entirely over the wire.
      const core::SvsId pivot = result->matched_svss.front();
      auto peers = client.ClusteringQuery(pivot, constraints);
      if (peers.ok()) {
        std::printf("  clusteringQuery(SVS %lld): %zu similar streams "
                    "across %zu cameras%s\n",
                    static_cast<long long>(pivot),
                    peers->similar_svss.size(), peers->cameras_contributing,
                    peers->timed_out ? " [timed out: partial result]" : "");
      }
    }
  }

  if (auto load = client.QueryLoadStats();
      load.ok() && (load->shed > 0 || load->timed_out > 0)) {
    std::printf("\noverload: %llu queries shed, %llu timed out "
                "(%lldms total deadline overshoot)\n",
                static_cast<unsigned long long>(load->shed),
                static_cast<unsigned long long>(load->timed_out),
                static_cast<long long>(load->timeout_overshoot_ms_total));
  }

  if (!cli.save_path.empty()) {
    if (Status s = client.SaveSnapshot(cli.save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nsnapshot written to %s (server-local)\n",
                cli.save_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vz;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(stderr,
                 "usage: vz_cli [--downtown N] [--highway N] [--stations N] "
                 "[--harbors N] [--minutes M] [--query CLASS]... "
                 "[--mode hierarchical|intra|flatsvs|flat] [--save PATH] "
                 "[--load PATH] [--seed S] [--deadline-ms D] "
                 "[--max-inflight N] [--connect HOST:PORT]\n");
    return 2;
  }

  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = cli.downtown;
  dep_options.highway_cameras = cli.highway;
  dep_options.train_stations = cli.stations;
  dep_options.harbors = cli.harbors;
  dep_options.feed_duration_ms = cli.minutes * 60 * 1000;
  dep_options.fps = 1.0;
  dep_options.seed = cli.seed;
  sim::Deployment deployment(dep_options);

  if (!cli.connect.empty()) return RunConnected(&deployment, cli);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = std::max<int64_t>(30'000,
                                                 cli.minutes * 60'000 / 5);
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  // Overload protection: deadlines run on the wall clock (the default time
  // source); the admission gate is sized by --max-inflight with a one-deep
  // wait queue so a brief burst queues instead of shedding.
  if (cli.max_inflight > 0) {
    options.admission.max_in_flight = cli.max_inflight;
    options.admission.max_queue = 1;
  }
  core::VideoZilla vz(options);

  if (!cli.load_path.empty()) {
    // The simulated world (and its ground-truth log, which the verifier
    // consults) must be regenerated with the same deployment flags the
    // snapshot was built with.
    (void)deployment.observations();
    core::SvsStore loaded;
    if (Status s = io::LoadSvsStore(cli.load_path, &loaded); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = vz.RestoreFromSvsStore(loaded); !s.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored %zu SVSs across %zu cameras from %s\n",
                vz.svs_store().size(), vz.cameras().size(),
                cli.load_path.c_str());
  } else {
    if (Status s = deployment.IngestAll(&vz); !s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& stats = vz.ingest_stats();
    std::printf("ingested %llu frames / %llu features -> %zu SVSs across "
                "%zu cameras\n",
                static_cast<unsigned long long>(stats.frames_offered),
                static_cast<unsigned long long>(stats.features_extracted),
                vz.svs_store().size(), vz.cameras().size());
    if (stats.frames_rejected > 0 || stats.objects_quarantined > 0) {
      std::printf("quarantined: %llu frames rejected, %llu objects\n",
                  static_cast<unsigned long long>(stats.frames_rejected),
                  static_cast<unsigned long long>(stats.objects_quarantined));
    }
    for (const auto& [camera, health] : vz.CameraHealthReport()) {
      if (health != core::CameraHealth::kHealthy) {
        std::printf("camera %s: %s\n", camera.c_str(),
                    std::string(core::CameraHealthToString(health)).c_str());
      }
    }
  }

  if (cli.mode == "intra") {
    vz.SetIndexMode(core::IndexMode::kIntraOnly);
  } else if (cli.mode == "flatsvs") {
    vz.SetIndexMode(core::IndexMode::kFlatSvs);
  } else if (cli.mode == "flat") {
    vz.SetIndexMode(core::IndexMode::kFlat);
  }

  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  Rng rng(cli.seed ^ 0x51);
  core::QueryConstraints constraints;
  if (cli.deadline_ms > 0) constraints.deadline_ms = cli.deadline_ms;
  for (int object_class : cli.queries) {
    const FeatureVector query =
        deployment.MakeQueryFeature(object_class, &rng);
    auto result = vz.DirectQuery(query, constraints);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery %s [%s mode]: %zu candidates -> %zu matches, "
                "%.0f ms GPU%s\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                cli.mode.c_str(), result->candidate_svss.size(),
                result->matched_svss.size(), result->total_gpu_ms,
                result->timed_out ? " [timed out: partial result]" : "");
    if (result->timed_out) {
      std::printf("  completed %.0f%% of planned verification before the "
                  "%lldms deadline\n",
                  result->completed_fraction * 100.0,
                  static_cast<long long>(cli.deadline_ms));
    }
    for (core::SvsId id : result->matched_svss) {
      auto meta = vz.GetMetaData(id);
      if (!meta.ok()) continue;
      std::printf("  %-20s %5llds - %5llds  (%zu frames)\n",
                  meta->camera.c_str(),
                  static_cast<long long>(meta->start_ms / 1000),
                  static_cast<long long>(meta->end_ms / 1000),
                  meta->num_frames);
    }
    if (!result->matched_svss.empty()) {
      // Pivot the best match into the other query primitive: all streams
      // semantically similar to it.
      const core::SvsId pivot = result->matched_svss.front();
      auto peers = vz.ClusteringQuery(pivot, constraints);
      if (peers.ok()) {
        std::printf("  clusteringQuery(SVS %lld): %zu similar streams "
                    "across %zu cameras%s\n",
                    static_cast<long long>(pivot),
                    peers->similar_svss.size(), peers->cameras_contributing,
                    peers->timed_out ? " [timed out: partial result]" : "");
      }
    }
  }

  // Overload counters, in the same style as the ingestion quarantine line.
  const core::QueryLoadStats load = vz.query_load_stats();
  if (load.shed > 0 || load.timed_out > 0) {
    std::printf("\noverload: %llu queries shed, %llu timed out "
                "(%lldms total deadline overshoot)\n",
                static_cast<unsigned long long>(load.shed),
                static_cast<unsigned long long>(load.timed_out),
                static_cast<long long>(load.timeout_overshoot_ms_total));
  }

  if (!cli.save_path.empty()) {
    if (Status s = io::SaveSvsStore(vz.svs_store(), cli.save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nsnapshot written to %s\n", cli.save_path.c_str());
  }
  return 0;
}
