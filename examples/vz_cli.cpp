// vz_cli — a small operator console for the indexing layer: build a
// simulated deployment, ingest it, answer queries, snapshot and restore.
// With --connect the same console drives a remote vz_server over the binary
// RPC protocol instead of an in-process instance.
//
//   vz_cli [--downtown N] [--highway N] [--stations N] [--harbors N]
//          [--minutes M] [--query CLASS]... [--mode hierarchical|intra|flat]
//          [--save PATH] [--load PATH] [--seed S]
//          [--deadline-ms D] [--max-inflight N] [--connect HOST:PORT]
//          [--subscribe CLASS|all] [--sub-threshold T] [--sub-camera NAME]...
//          [--watch-seconds S] [--tune-boundary-scale X] [--tune-omd-alpha A]
//          [--tune-index-mode MODE] [--tune-keyframe on|off]
//
// Examples:
//   vz_cli --downtown 4 --harbors 2 --minutes 6 --query boat --query train
//   vz_cli --load snapshot.vzss --query fire_hydrant
//   vz_cli --connect 127.0.0.1:9400 --query boat
//   vz_cli --connect 127.0.0.1:9400 --subscribe boat --watch-seconds 60
//   vz_cli --connect 127.0.0.1:9400 --tune-boundary-scale 1.5
//
// In connect mode the deployment flags must match the server's (both sides
// regenerate the same simulated world); ingestion streams over the wire
// unless the server already holds data, and --save/--load trigger
// server-local snapshots. --subscribe registers a standing query over
// protocol v5 and prints match pushes as the server finalizes segments —
// run it in one terminal while another vz_cli (or any ingest source) feeds
// the server. --tune-* sends a kAdminTune RPC and prints the echoed
// settings.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/videozilla.h"
#include "io/svs_snapshot.h"
#include "net/client.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

namespace {

int ClassByName(const std::string& name) {
  for (int c = 0; c < vz::sim::kNumObjectClasses; ++c) {
    if (vz::sim::ObjectClassName(c) == name) return c;
  }
  return -1;
}

struct CliOptions {
  size_t downtown = 2;
  size_t highway = 2;
  size_t stations = 1;
  size_t harbors = 1;
  int64_t minutes = 5;
  std::vector<int> queries;
  std::string mode = "hierarchical";
  std::string save_path;
  std::string load_path;
  uint64_t seed = 7;
  // Wall-clock budget per query; <= 0 means no deadline.
  int64_t deadline_ms = 0;
  // Admission gate size; 0 means unlimited (no gating).
  size_t max_inflight = 0;
  // Remote mode: drive a vz_server at host:port instead of an in-process
  // instance.
  std::string connect;
  // Standing query (connect mode only): object class name, or "all".
  std::string subscribe_class;
  double sub_threshold = 1e12;
  std::vector<std::string> sub_cameras;
  int64_t watch_seconds = 30;
  // kAdminTune knobs (connect mode only); unset fields are left untouched
  // server-side.
  vz::net::AdminTuneRequest tune;
  bool has_tune = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--downtown" && (value = next_value(&i))) {
      options->downtown = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--highway" && (value = next_value(&i))) {
      options->highway = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--stations" && (value = next_value(&i))) {
      options->stations = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--harbors" && (value = next_value(&i))) {
      options->harbors = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--minutes" && (value = next_value(&i))) {
      options->minutes = std::atoll(value);
    } else if (arg == "--seed" && (value = next_value(&i))) {
      options->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--query" && (value = next_value(&i))) {
      const int cls = ClassByName(value);
      if (cls < 0) {
        std::fprintf(stderr, "unknown object class: %s\n", value);
        return false;
      }
      options->queries.push_back(cls);
    } else if (arg == "--mode" && (value = next_value(&i))) {
      options->mode = value;
    } else if (arg == "--deadline-ms" && (value = next_value(&i))) {
      options->deadline_ms = std::atoll(value);
    } else if (arg == "--max-inflight" && (value = next_value(&i))) {
      options->max_inflight = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--save" && (value = next_value(&i))) {
      options->save_path = value;
    } else if (arg == "--load" && (value = next_value(&i))) {
      options->load_path = value;
    } else if (arg == "--connect" && (value = next_value(&i))) {
      options->connect = value;
    } else if (arg == "--subscribe" && (value = next_value(&i))) {
      if (std::string(value) != "all" && ClassByName(value) < 0) {
        std::fprintf(stderr, "unknown object class: %s\n", value);
        return false;
      }
      options->subscribe_class = value;
    } else if (arg == "--sub-threshold" && (value = next_value(&i))) {
      options->sub_threshold = std::atof(value);
    } else if (arg == "--sub-camera" && (value = next_value(&i))) {
      options->sub_cameras.push_back(value);
    } else if (arg == "--watch-seconds" && (value = next_value(&i))) {
      options->watch_seconds = std::atoll(value);
    } else if (arg == "--tune-boundary-scale" && (value = next_value(&i))) {
      options->tune.boundary_scale = std::atof(value);
      options->has_tune = true;
    } else if (arg == "--tune-omd-alpha" && (value = next_value(&i))) {
      options->tune.omd_alpha = std::atof(value);
      options->has_tune = true;
    } else if (arg == "--tune-index-mode" && (value = next_value(&i))) {
      const std::string mode = value;
      if (mode == "hierarchical") {
        options->tune.index_mode = 0;
      } else if (mode == "intra") {
        options->tune.index_mode = 1;
      } else if (mode == "flatsvs") {
        options->tune.index_mode = 2;
      } else if (mode == "flat") {
        options->tune.index_mode = 3;
      } else {
        std::fprintf(stderr, "unknown index mode: %s\n", value);
        return false;
      }
      options->has_tune = true;
    } else if (arg == "--tune-keyframe" && (value = next_value(&i))) {
      options->tune.keyframe_selection = std::strcmp(value, "on") == 0;
      options->has_tune = true;
    } else if (arg == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Remote mode: the same console flow — ingest, query, snapshot — but every
// operation is an RPC against a vz_server. The deployment is still built
// locally: it supplies the frames to stream (when the server is empty) and
// the query features, and matching flags/seed guarantee both sides describe
// the same simulated world.
int RunConnected(vz::sim::Deployment* deployment, const CliOptions& cli) {
  using namespace vz;
  const size_t colon = cli.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == cli.connect.size()) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got %s\n",
                 cli.connect.c_str());
    return 2;
  }
  const std::string host = cli.connect.substr(0, colon);
  const int port = std::atoi(cli.connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port in --connect %s\n", cli.connect.c_str());
    return 2;
  }
  auto client_or = net::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(*client_or);
  std::printf("connected to %s (protocol v%u)\n", cli.connect.c_str(),
              client.server_protocol_version());
  if (cli.mode != "hierarchical") {
    std::fprintf(stderr,
                 "--mode is server-side configuration; ignored in connect "
                 "mode\n");
  }

  if (cli.has_tune) {
    auto tuned = client.AdminTune(cli.tune);
    if (!tuned.ok()) {
      std::fprintf(stderr, "admin tune failed: %s\n",
                   tuned.status().ToString().c_str());
      return 1;
    }
    static const char* kModeNames[] = {"hierarchical", "intra", "flatsvs",
                                       "flat"};
    std::printf("tuned: index_mode=%s boundary_scale=%.3f omd_alpha=%.3f "
                "keyframe=%s inter_groups=%llu intra_clusters=%llu\n",
                tuned->index_mode < 4 ? kModeNames[tuned->index_mode] : "?",
                tuned->boundary_scale, tuned->omd_alpha,
                tuned->keyframe_selection ? "on" : "off",
                static_cast<unsigned long long>(tuned->inter_group_count),
                static_cast<unsigned long long>(tuned->intra_cluster_count));
  }

  if (!cli.subscribe_class.empty()) {
    // Standing-query mode: no ingest, no one-shot queries — register the
    // subscription and print pushes as the server finalizes segments.
    Rng sub_rng(cli.seed ^ 0x5B);
    net::SubscribeRequest request;
    const bool match_all = cli.subscribe_class == "all";
    request.query = deployment->MakeQueryFeature(
        match_all ? 0 : ClassByName(cli.subscribe_class), &sub_rng);
    request.threshold = match_all ? 1e12 : cli.sub_threshold;
    if (!cli.sub_cameras.empty()) {
      request.has_camera_filter = true;
      request.cameras = cli.sub_cameras;
    }
    request.want_stats = true;  // index-version updates ride along
    std::atomic<uint64_t> pushes{0};
    auto sub_id = client.Subscribe(request, [&](const net::PushEvent& event) {
      switch (event.kind) {
        case net::PushKind::kMatch:
          std::printf("push #%llu: match svs %lld  %-20s %5llds - %5llds  "
                      "distance %.3f\n",
                      static_cast<unsigned long long>(event.sequence),
                      static_cast<long long>(event.svs_id),
                      event.camera.c_str(),
                      static_cast<long long>(event.start_ms / 1000),
                      static_cast<long long>(event.end_ms / 1000),
                      event.distance);
          break;
        case net::PushKind::kIndexUpdate:
          std::printf("push #%llu: index version %llu\n",
                      static_cast<unsigned long long>(event.sequence),
                      static_cast<unsigned long long>(event.index_version));
          break;
        case net::PushKind::kGap:
          std::printf("push #%llu: GAP — %llu events dropped (slow "
                      "consumer)\n",
                      static_cast<unsigned long long>(event.sequence),
                      static_cast<unsigned long long>(event.dropped));
          break;
      }
      std::fflush(stdout);
      pushes.fetch_add(1);
    });
    if (!sub_id.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   sub_id.status().ToString().c_str());
      return 1;
    }
    std::printf("subscribed (id %llu): standing query '%s', threshold %g%s; "
                "watching %llds (feed the server from another terminal)\n",
                static_cast<unsigned long long>(*sub_id),
                cli.subscribe_class.c_str(), request.threshold,
                cli.sub_cameras.empty() ? "" : ", camera-filtered",
                static_cast<long long>(cli.watch_seconds));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(cli.watch_seconds));
    if (Status s = client.Unsubscribe(*sub_id); !s.ok()) {
      std::fprintf(stderr, "unsubscribe failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("unsubscribed after %llu pushes\n",
                static_cast<unsigned long long>(pushes.load()));
    return 0;
  }

  if (!cli.load_path.empty()) {
    auto loaded = client.LoadSnapshot(cli.load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %llu SVSs from %s (server-local)\n",
                static_cast<unsigned long long>(*loaded),
                cli.load_path.c_str());
  } else {
    auto stats = client.MonitorStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (stats->ingest.frames_offered == 0 && stats->svs_count == 0) {
      // Stream the local world over the wire: the same camera-start /
      // per-frame / flush sequence Deployment::IngestAll performs
      // in-process.
      for (const auto& info : deployment->cameras()) {
        if (Status s = client.CameraStart(info.camera); !s.ok()) {
          std::fprintf(stderr, "camera start failed: %s\n",
                       s.ToString().c_str());
          return 1;
        }
      }
      for (const auto& observation : deployment->observations()) {
        if (Status s = client.IngestFrame(observation); !s.ok()) {
          std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      if (Status s = client.Flush(); !s.ok()) {
        std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
        return 1;
      }
      stats = client.MonitorStats();
      if (!stats.ok()) {
        std::fprintf(stderr, "stats failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
    } else {
      std::printf("server already holds data; skipping ingest\n");
    }
    std::printf("ingested %llu frames / %llu features -> %llu SVSs across "
                "%llu cameras\n",
                static_cast<unsigned long long>(stats->ingest.frames_offered),
                static_cast<unsigned long long>(
                    stats->ingest.features_extracted),
                static_cast<unsigned long long>(stats->svs_count),
                static_cast<unsigned long long>(stats->camera_count));
    if (stats->ingest.frames_rejected > 0 ||
        stats->ingest.objects_quarantined > 0) {
      std::printf("quarantined: %llu frames rejected, %llu objects\n",
                  static_cast<unsigned long long>(
                      stats->ingest.frames_rejected),
                  static_cast<unsigned long long>(
                      stats->ingest.objects_quarantined));
    }
    if (auto health = client.CameraHealthReport(); health.ok()) {
      for (const auto& entry : *health) {
        if (entry.health != core::CameraHealth::kHealthy) {
          std::printf(
              "camera %s: %s\n", entry.camera.c_str(),
              std::string(core::CameraHealthToString(entry.health)).c_str());
        }
      }
    }
  }

  Rng rng(cli.seed ^ 0x51);
  core::QueryConstraints constraints;
  if (cli.deadline_ms > 0) constraints.deadline_ms = cli.deadline_ms;
  for (int object_class : cli.queries) {
    const FeatureVector query =
        deployment->MakeQueryFeature(object_class, &rng);
    auto result = client.DirectQuery(query, constraints);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery %s [remote]: %zu candidates -> %zu matches, "
                "%.0f ms GPU%s\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                result->candidate_svss.size(), result->matched_svss.size(),
                result->total_gpu_ms,
                result->timed_out ? " [timed out: partial result]" : "");
    if (result->timed_out) {
      std::printf("  completed %.0f%% of planned verification before the "
                  "%lldms deadline\n",
                  result->completed_fraction * 100.0,
                  static_cast<long long>(cli.deadline_ms));
    }
    for (core::SvsId id : result->matched_svss) {
      auto meta = client.GetMetaData(id);
      if (!meta.ok()) continue;
      std::printf("  %-20s %5llds - %5llds  (%zu frames)\n",
                  meta->camera.c_str(),
                  static_cast<long long>(meta->start_ms / 1000),
                  static_cast<long long>(meta->end_ms / 1000),
                  meta->num_frames);
    }
    if (!result->matched_svss.empty()) {
      // Pivot the best match into the other query primitive: all streams
      // semantically similar to it, again entirely over the wire.
      const core::SvsId pivot = result->matched_svss.front();
      auto peers = client.ClusteringQuery(pivot, constraints);
      if (peers.ok()) {
        std::printf("  clusteringQuery(SVS %lld): %zu similar streams "
                    "across %zu cameras%s\n",
                    static_cast<long long>(pivot),
                    peers->similar_svss.size(), peers->cameras_contributing,
                    peers->timed_out ? " [timed out: partial result]" : "");
      }
    }
  }

  if (auto load = client.QueryLoadStats();
      load.ok() && (load->shed > 0 || load->timed_out > 0)) {
    std::printf("\noverload: %llu queries shed, %llu timed out "
                "(%lldms total deadline overshoot)\n",
                static_cast<unsigned long long>(load->shed),
                static_cast<unsigned long long>(load->timed_out),
                static_cast<long long>(load->timeout_overshoot_ms_total));
  }

  if (!cli.save_path.empty()) {
    if (Status s = client.SaveSnapshot(cli.save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nsnapshot written to %s (server-local)\n",
                cli.save_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vz;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(stderr,
                 "usage: vz_cli [--downtown N] [--highway N] [--stations N] "
                 "[--harbors N] [--minutes M] [--query CLASS]... "
                 "[--mode hierarchical|intra|flatsvs|flat] [--save PATH] "
                 "[--load PATH] [--seed S] [--deadline-ms D] "
                 "[--max-inflight N] [--connect HOST:PORT] "
                 "[--subscribe CLASS|all] [--sub-threshold T] "
                 "[--sub-camera NAME]... [--watch-seconds S] "
                 "[--tune-boundary-scale X] [--tune-omd-alpha A] "
                 "[--tune-index-mode MODE] [--tune-keyframe on|off]\n");
    return 2;
  }
  if (cli.connect.empty() && (!cli.subscribe_class.empty() || cli.has_tune)) {
    std::fprintf(stderr,
                 "--subscribe and --tune-* require --connect: standing "
                 "queries and admin tuning are server-side features\n");
    return 2;
  }

  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = cli.downtown;
  dep_options.highway_cameras = cli.highway;
  dep_options.train_stations = cli.stations;
  dep_options.harbors = cli.harbors;
  dep_options.feed_duration_ms = cli.minutes * 60 * 1000;
  dep_options.fps = 1.0;
  dep_options.seed = cli.seed;
  sim::Deployment deployment(dep_options);

  if (!cli.connect.empty()) return RunConnected(&deployment, cli);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = std::max<int64_t>(30'000,
                                                 cli.minutes * 60'000 / 5);
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  // Overload protection: deadlines run on the wall clock (the default time
  // source); the admission gate is sized by --max-inflight with a one-deep
  // wait queue so a brief burst queues instead of shedding.
  if (cli.max_inflight > 0) {
    options.admission.max_in_flight = cli.max_inflight;
    options.admission.max_queue = 1;
  }
  core::VideoZilla vz(options);

  if (!cli.load_path.empty()) {
    // The simulated world (and its ground-truth log, which the verifier
    // consults) must be regenerated with the same deployment flags the
    // snapshot was built with.
    (void)deployment.observations();
    core::SvsStore loaded;
    if (Status s = io::LoadSvsStore(cli.load_path, &loaded); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = vz.RestoreFromSvsStore(loaded); !s.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored %zu SVSs across %zu cameras from %s\n",
                vz.svs_store().size(), vz.cameras().size(),
                cli.load_path.c_str());
  } else {
    if (Status s = deployment.IngestAll(&vz); !s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& stats = vz.ingest_stats();
    std::printf("ingested %llu frames / %llu features -> %zu SVSs across "
                "%zu cameras\n",
                static_cast<unsigned long long>(stats.frames_offered),
                static_cast<unsigned long long>(stats.features_extracted),
                vz.svs_store().size(), vz.cameras().size());
    if (stats.frames_rejected > 0 || stats.objects_quarantined > 0) {
      std::printf("quarantined: %llu frames rejected, %llu objects\n",
                  static_cast<unsigned long long>(stats.frames_rejected),
                  static_cast<unsigned long long>(stats.objects_quarantined));
    }
    for (const auto& [camera, health] : vz.CameraHealthReport()) {
      if (health != core::CameraHealth::kHealthy) {
        std::printf("camera %s: %s\n", camera.c_str(),
                    std::string(core::CameraHealthToString(health)).c_str());
      }
    }
  }

  if (cli.mode == "intra") {
    vz.SetIndexMode(core::IndexMode::kIntraOnly);
  } else if (cli.mode == "flatsvs") {
    vz.SetIndexMode(core::IndexMode::kFlatSvs);
  } else if (cli.mode == "flat") {
    vz.SetIndexMode(core::IndexMode::kFlat);
  }

  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  Rng rng(cli.seed ^ 0x51);
  core::QueryConstraints constraints;
  if (cli.deadline_ms > 0) constraints.deadline_ms = cli.deadline_ms;
  for (int object_class : cli.queries) {
    const FeatureVector query =
        deployment.MakeQueryFeature(object_class, &rng);
    auto result = vz.DirectQuery(query, constraints);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery %s [%s mode]: %zu candidates -> %zu matches, "
                "%.0f ms GPU%s\n",
                std::string(sim::ObjectClassName(object_class)).c_str(),
                cli.mode.c_str(), result->candidate_svss.size(),
                result->matched_svss.size(), result->total_gpu_ms,
                result->timed_out ? " [timed out: partial result]" : "");
    if (result->timed_out) {
      std::printf("  completed %.0f%% of planned verification before the "
                  "%lldms deadline\n",
                  result->completed_fraction * 100.0,
                  static_cast<long long>(cli.deadline_ms));
    }
    for (core::SvsId id : result->matched_svss) {
      auto meta = vz.GetMetaData(id);
      if (!meta.ok()) continue;
      std::printf("  %-20s %5llds - %5llds  (%zu frames)\n",
                  meta->camera.c_str(),
                  static_cast<long long>(meta->start_ms / 1000),
                  static_cast<long long>(meta->end_ms / 1000),
                  meta->num_frames);
    }
    if (!result->matched_svss.empty()) {
      // Pivot the best match into the other query primitive: all streams
      // semantically similar to it.
      const core::SvsId pivot = result->matched_svss.front();
      auto peers = vz.ClusteringQuery(pivot, constraints);
      if (peers.ok()) {
        std::printf("  clusteringQuery(SVS %lld): %zu similar streams "
                    "across %zu cameras%s\n",
                    static_cast<long long>(pivot),
                    peers->similar_svss.size(), peers->cameras_contributing,
                    peers->timed_out ? " [timed out: partial result]" : "");
      }
    }
  }

  // Overload counters, in the same style as the ingestion quarantine line.
  const core::QueryLoadStats load = vz.query_load_stats();
  if (load.shed > 0 || load.timed_out > 0) {
    std::printf("\noverload: %llu queries shed, %llu timed out "
                "(%lldms total deadline overshoot)\n",
                static_cast<unsigned long long>(load.shed),
                static_cast<unsigned long long>(load.timed_out),
                static_cast<long long>(load.timeout_overshoot_ms_total));
  }

  if (!cli.save_path.empty()) {
    if (Status s = io::SaveSvsStore(vz.svs_store(), cli.save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nsnapshot written to %s\n", cli.save_path.c_str());
  }
  return 0;
}
