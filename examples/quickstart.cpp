// Quickstart: stand up a Video-zilla indexing layer over a handful of
// simulated camera feeds, ingest them, and run the two query primitives
// (directQuery / clusteringQuery) plus getMetaData.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

int main() {
  using namespace vz;

  // 1. A small simulated deployment: 2 downtown dashcams, 1 highway camera,
  //    1 train station, 1 harbor (stand-ins for real RTSP feeds; see
  //    DESIGN.md for the substitution rationale).
  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = 2;
  dep_options.highway_cameras = 1;
  dep_options.train_stations = 1;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 4 * 60 * 1000;
  dep_options.fps = 1.0;
  sim::Deployment deployment(dep_options);

  // 2. The indexing layer. The defaults follow the paper; here we shrink
  //    t_max to match the short feeds.
  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 60 * 1000;
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  core::VideoZilla vz(options);

  // 3. Register cameras and ingest every frame (cameraStart + per-frame
  //    ingestion; Flush finalizes the trailing SVSs).
  Status status = deployment.IngestAll(&vz);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu frames -> %zu semantic video streams across "
              "%zu cameras\n",
              static_cast<unsigned long long>(
                  vz.ingest_stats().frames_offered),
              vz.svs_store().size(), vz.cameras().size());

  // 4. Attach the heavy ground-truth model used to verify candidates.
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  // 5. directQuery: find streams containing a boat.
  Rng rng(1);
  const FeatureVector query =
      deployment.MakeQueryFeature(sim::kBoat, &rng);
  auto result = vz.DirectQuery(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndirectQuery(boat): %zu candidate SVSs -> %zu matches, "
              "%.1f ms simulated GPU time\n",
              result->candidate_svss.size(), result->matched_svss.size(),
              result->total_gpu_ms);
  for (core::SvsId id : result->matched_svss) {
    auto meta = vz.GetMetaData(id);
    if (!meta.ok()) continue;
    std::printf("  SVS %lld  camera=%s  window=%llds-%llds  frames=%zu\n",
                static_cast<long long>(id), meta->camera.c_str(),
                static_cast<long long>(meta->start_ms / 1000),
                static_cast<long long>(meta->end_ms / 1000),
                meta->num_frames);
  }

  // 6. clusteringQuery: everything semantically similar to the first match.
  if (!result->matched_svss.empty()) {
    auto svs = vz.svs_store().Get(result->matched_svss.front());
    if (svs.ok()) {
      auto similar = vz.ClusteringQuery((*svs)->features());
      if (similar.ok()) {
        std::printf("\nclusteringQuery(SVS %lld): %zu semantically similar "
                    "streams across %zu cameras\n",
                    static_cast<long long>(result->matched_svss.front()),
                    similar->similar_svss.size(),
                    similar->cameras_contributing);
      }
    }
  }
  return 0;
}
