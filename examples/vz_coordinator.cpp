// vz_coordinator — the query plane of a sharded deployment: fans
// DirectQuery/ClusteringQuery/MonitorStats out over N edge vz_servers,
// merges their partial answers, and maintains the inter-camera
// representative index locally via the kRepSync RPC. It holds no video
// state of its own and refuses mutating RPCs — ingest goes to the edges.
//
//   vz_coordinator [--port P] --edge HOST:PORT [--edge HOST:PORT ...]
//                  [--boundary-scale S] [--sync-interval-ms T]
//                  [--max-connections N] [--serve-seconds T]
//
// The --edge order is part of the deployment contract: it defines the
// global SVS id space (shard index in the high bits) and the merge order,
// so every coordinator of one deployment must list the same edges in the
// same order. --boundary-scale must match the edges'
// VideoZillaOptions::boundary_scale (vz_server uses 1.8) or fan-out
// pruning will disagree with edge hit tests.
//
//   vz_server --port 9401 --ingest --shard-index 0 --shard-count 2 &
//   vz_server --port 9402 --ingest --shard-index 1 --shard-count 2 &
//   vz_coordinator --port 9400 --edge 127.0.0.1:9401 --edge 127.0.0.1:9402
//   vz_cli --connect 127.0.0.1:9400 --query boat
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/coordinator.h"

namespace {

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

struct CoordinatorCliOptions {
  uint16_t port = 0;
  std::vector<vz::net::EdgeEndpoint> edges;
  double boundary_scale = 1.8;  // vz_server's default
  int64_t sync_interval_ms = 250;
  size_t max_connections = 8;
  // 0 = serve until SIGINT/SIGTERM; otherwise exit after this many seconds.
  int64_t serve_seconds = 0;
};

bool ParseEndpoint(const std::string& spec, vz::net::EdgeEndpoint* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  const int port = std::atoi(spec.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  out->host = spec.substr(0, colon);
  out->port = static_cast<uint16_t>(port);
  return true;
}

bool ParseArgs(int argc, char** argv, CoordinatorCliOptions* options) {
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--port" && (value = next_value(&i))) {
      options->port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--edge" && (value = next_value(&i))) {
      vz::net::EdgeEndpoint endpoint;
      if (!ParseEndpoint(value, &endpoint)) {
        std::fprintf(stderr, "--edge wants HOST:PORT, got %s\n", value);
        return false;
      }
      options->edges.push_back(endpoint);
    } else if (arg == "--boundary-scale" && (value = next_value(&i))) {
      options->boundary_scale = std::atof(value);
    } else if (arg == "--sync-interval-ms" && (value = next_value(&i))) {
      options->sync_interval_ms = std::atoll(value);
    } else if (arg == "--max-connections" && (value = next_value(&i))) {
      options->max_connections = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--serve-seconds" && (value = next_value(&i))) {
      options->serve_seconds = std::atoll(value);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->edges.empty();
}

const char* StateName(vz::net::ShardState state) {
  switch (state) {
    case vz::net::ShardState::kHealthy:
      return "healthy";
    case vz::net::ShardState::kDegraded:
      return "degraded";
    case vz::net::ShardState::kUnreachable:
      return "unreachable";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vz;
  CoordinatorCliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(stderr,
                 "usage: vz_coordinator [--port P] --edge HOST:PORT "
                 "[--edge HOST:PORT ...] [--boundary-scale S] "
                 "[--sync-interval-ms T] [--max-connections N] "
                 "[--serve-seconds T]\n");
    return 2;
  }

  net::CoordinatorOptions options;
  options.port = cli.port;
  options.edges = cli.edges;
  options.boundary_scale = cli.boundary_scale;
  options.sync_interval_ms = cli.sync_interval_ms;
  options.max_connections = cli.max_connections;
  net::Coordinator coordinator(options);
  if (Status s = coordinator.Start(); !s.ok()) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("vz_coordinator listening on 127.0.0.1:%u over %zu edges "
              "(protocol v%u)\n",
              coordinator.port(), cli.edges.size(), net::kProtocolVersion);
  for (const net::ShardHealthInfo& shard : coordinator.shard_health()) {
    std::printf("  shard %s:%u: %s, %llu rep entries, %llu cameras\n",
                shard.host.c_str(), shard.port, StateName(shard.state),
                static_cast<unsigned long long>(shard.rep_entries),
                static_cast<unsigned long long>(shard.cameras));
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (cli.serve_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(cli.serve_seconds)) {
      break;
    }
  }

  std::printf("shutting down\n");
  coordinator.Shutdown();
  const net::CoordinatorStats stats = coordinator.stats();
  std::printf("served %llu requests over %llu connections (%llu shed, "
              "%llu request errors)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_shed),
              static_cast<unsigned long long>(stats.request_errors));
  std::printf("fan-out: %llu legs (%llu failed, %llu pruned), %llu "
              "degraded answers\n",
              static_cast<unsigned long long>(stats.fanout_legs),
              static_cast<unsigned long long>(stats.fanout_failures),
              static_cast<unsigned long long>(stats.pruned_legs),
              static_cast<unsigned long long>(stats.degraded_answers));
  std::printf("rep-sync: %llu entries indexed, %llu update rounds, %llu "
              "probes\n",
              static_cast<unsigned long long>(stats.rep_entries),
              static_cast<unsigned long long>(stats.rep_sync_updates),
              static_cast<unsigned long long>(stats.probes_sent));
  return 0;
}
