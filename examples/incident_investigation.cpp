// Incident investigation across a city-scale deployment: an analyst is
// looking for a truck seen near a station during a time window. Shows
// constrained direct queries (camera subsets + time ranges, Sec. 5.4), the
// performance monitor wrapping the query stream (Sec. 5.3), and how pruning
// keeps the GPU bill sublinear in the number of cameras.
#include <cstdio>

#include "core/monitor.h"
#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"
#include "sim/verifier.h"

int main() {
  using namespace vz;

  sim::DeploymentOptions dep_options;
  dep_options.cities = 2;
  dep_options.downtown_per_city = 2;
  dep_options.highway_cameras = 4;
  dep_options.train_stations = 1;
  dep_options.harbors = 1;
  dep_options.feed_duration_ms = 5 * 60 * 1000;
  dep_options.fps = 1.0;
  sim::Deployment deployment(dep_options);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 75 * 1000;
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  core::VideoZilla vz(options);
  if (Status s = deployment.IngestAll(&vz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  // Wrap queries in the performance monitor: every 10th query is compared
  // against an exhaustive ground-truth pass, and the index degrades itself
  // if quality drops below the analyst's preference.
  core::MonitorOptions monitor_options;
  monitor_options.target_f1 = 0.5;
  monitor_options.ground_truth_interval = 10;
  core::PerformanceMonitor monitor(
      &vz, monitor_options, [&](const FeatureVector& feature) {
        const int cls = deployment.space().NearestPrototype(feature);
        return deployment.log().TrueSvsSet(vz.svs_store(), cls);
      });

  Rng rng(99);
  // Step 1: unconstrained sweep — where do trucks appear at all?
  const FeatureVector truck = deployment.MakeQueryFeature(sim::kTruck, &rng);
  auto broad = monitor.Query(truck);
  if (!broad.ok()) return 1;
  std::printf("city-wide truck query: %zu matching streams over %zu cameras "
              "(%.0f ms GPU; a full scan would cost %.0f ms)\n",
              broad->matched_svss.size(), broad->cameras_searched,
              broad->total_gpu_ms,
              35.0 * static_cast<double>(
                         deployment.observations().size()));

  // Step 2: the tip says "near the station, first two minutes". Constrain.
  core::QueryConstraints constraints;
  constraints.cameras = std::vector<core::CameraId>{"station-0",
                                                    "highway-0", "highway-1"};
  constraints.time_range_ms = {0, 2 * 60 * 1000};
  auto focused = monitor.Query(truck, constraints);
  if (!focused.ok()) return 1;
  std::printf("constrained query: %zu candidates -> %zu matches\n",
              focused->candidate_svss.size(), focused->matched_svss.size());
  for (core::SvsId id : focused->matched_svss) {
    auto meta = vz.GetMetaData(id);
    if (meta.ok()) {
      std::printf("  evidence: camera=%s window=%llds-%llds accesses=%llu\n",
                  meta->camera.c_str(),
                  static_cast<long long>(meta->start_ms / 1000),
                  static_cast<long long>(meta->end_ms / 1000),
                  static_cast<unsigned long long>(meta->access_count));
    }
  }

  // Step 3: run a batch of follow-up queries; the monitor keeps score.
  for (int i = 0; i < 20; ++i) {
    const int cls = (i % 2 == 0) ? sim::kBus : sim::kCar;
    (void)monitor.Query(deployment.MakeQueryFeature(cls, &rng));
  }
  std::printf("\nmonitor after %llu queries: state=%d, last ground-truth "
              "F1=%.2f (%llu checks)\n",
              static_cast<unsigned long long>(monitor.queries_run()),
              static_cast<int>(monitor.state()), monitor.last_f1(),
              static_cast<unsigned long long>(monitor.ground_truth_checks()));
  return 0;
}
