// Moving-camera segmentation (Sec. 5, "also useful for moving cameras like
// dashcams or drones capturing frequent changing scenes"): a drive that
// passes from downtown onto a highway is automatically split into SVSs whose
// boundaries track the scene changes, without any manual annotation.
#include <cstdio>
#include <map>

#include "core/videozilla.h"
#include "sim/dataset.h"
#include "sim/object_class.h"

int main() {
  using namespace vz;

  // One "drone/dashcam" feed whose schedule alternates terrains.
  sim::DeploymentOptions dep_options;
  dep_options.cities = 0;
  dep_options.downtown_per_city = 0;
  dep_options.highway_cameras = 0;
  dep_options.train_stations = 0;
  dep_options.harbors = 0;
  dep_options.combined_drives = 1;
  dep_options.feed_duration_ms = 8 * 60 * 1000;
  dep_options.fps = 1.0;
  sim::Deployment deployment(dep_options);

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms = 100 * 1000;
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.segmenter.min_novel_features = 4;
  options.segmenter.novelty_check_stride = 2;
  options.enable_keyframe_selection = false;
  core::VideoZilla vz(options);
  if (Status s = deployment.IngestAll(&vz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("the 8-minute drive (downtown -> highway at 4:00) was split "
              "into %zu SVSs:\n\n",
              vz.svs_store().size());
  std::printf("%-5s %-13s %-9s %s\n", "svs", "window", "objects",
              "dominant true content");
  for (core::SvsId id : vz.svs_store().AllIds()) {
    auto svs = vz.svs_store().Get(id);
    if (!svs.ok()) continue;
    // Dominant true classes from the oracle log, for illustration.
    std::map<int, size_t> histogram;
    size_t total = 0;
    for (int64_t frame : (*svs)->frame_ids()) {
      const sim::FrameTruth* truth = deployment.log().Lookup(frame);
      if (truth == nullptr) continue;
      for (int cls : truth->object_classes) {
        histogram[cls]++;
        ++total;
      }
    }
    std::printf("%-5lld %4llds-%-6llds %-9zu", static_cast<long long>(id),
                static_cast<long long>((*svs)->start_ms() / 1000),
                static_cast<long long>((*svs)->end_ms() / 1000), total);
    // Top-3 classes.
    for (int rank = 0; rank < 3; ++rank) {
      int best = -1;
      size_t best_count = 0;
      for (const auto& [cls, count] : histogram) {
        if (count > best_count) {
          best_count = count;
          best = cls;
        }
      }
      if (best < 0 || total == 0) break;
      std::printf(" %s(%zu%%)",
                  std::string(sim::ObjectClassName(best)).c_str(),
                  100 * best_count / total);
      histogram.erase(best);
    }
    std::printf("\n");
  }
  std::printf("\nSVS boundaries near the 4:00 mark delineate the terrain "
              "change — no labels, no shot detector, just the feature-drift "
              "rule of Algorithm 3.\n");
  return 0;
}
