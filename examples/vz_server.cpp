// vz_server — the networked serving front end: builds a simulated
// deployment (for the verifier's ground truth), wraps a VideoZilla instance
// in the binary RPC server, and serves ingestion and queries over TCP until
// interrupted.
//
//   vz_server [--port P] [--downtown N] [--highway N] [--stations N]
//             [--harbors N] [--minutes M] [--seed S] [--ingest]
//             [--shard-index I --shard-count N]
//             [--load PATH] [--max-connections N] [--max-inflight N]
//             [--serve-seconds T] [--io-timeout-ms T] [--idle-timeout-ms T]
//             [--dedup-window N] [--wal-dir PATH] [--wal-fsync-ms T]
//             [--sync-replication] [--standby-of HOST:PORT]
//
// The deployment flags must match the client's so both sides describe the
// same simulated world: the server needs it for verification ground truth,
// the client for query features and (without --ingest/--load) the frames it
// streams in. By default the index starts empty and is populated over the
// wire, e.g.:
//
//   vz_server --port 9400 --downtown 4 --harbors 2 &
//   vz_cli --connect 127.0.0.1:9400 --downtown 4 --harbors 2 --query boat
//
// Durability: --wal-dir makes every ingest ack durable (logged + fsynced,
// replayed on restart from the same directory). A warm standby tails a
// WAL-backed primary and promotes itself onto its own --port when the
// primary stays unreachable:
//
//   vz_server --port 9400 --wal-dir /tmp/vz-a --sync-replication &
//   vz_server --port 9400 --wal-dir /tmp/vz-b --standby-of 127.0.0.1:9400 &
//
// Sharding: with --ingest, --shard-index I --shard-count N pre-ingests only
// shard I of the deployment's round-robin camera split — one vz_server per
// shard plus a vz_coordinator over them is the sharded topology
// (scripts/run_cluster.sh boots it end to end).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/videozilla.h"
#include "io/svs_snapshot.h"
#include "net/server.h"
#include "sim/dataset.h"
#include "sim/verifier.h"

namespace {

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

struct ServerCliOptions {
  uint16_t port = 0;
  size_t downtown = 2;
  size_t highway = 2;
  size_t stations = 1;
  size_t harbors = 1;
  int64_t minutes = 5;
  uint64_t seed = 7;
  bool ingest = false;
  // With --ingest: pre-ingest only shard `shard_index` of the deployment's
  // round-robin camera split into `shard_count` shards (0 = unsharded).
  size_t shard_index = 0;
  size_t shard_count = 0;
  std::string load_path;
  size_t max_connections = 8;
  size_t max_inflight = 0;
  // 0 = serve until SIGINT/SIGTERM; otherwise exit after this many seconds.
  int64_t serve_seconds = 0;
  // Supervision knobs (0 keeps the ServerOptions default).
  int64_t io_timeout_ms = 0;    // read+write frame deadlines
  int64_t idle_timeout_ms = 0;  // idle eviction; clients Ping to stay alive
  size_t dedup_window = 0;      // exactly-once window per client session
  // Durability + replication.
  std::string wal_dir;          // empty = no WAL (acks are memory-only)
  int64_t wal_fsync_ms = -1;    // group-commit window; <0 keeps the default
  bool sync_replication = false;
  std::string standby_of;       // "host:port" of the primary to tail
};

bool ParseArgs(int argc, char** argv, ServerCliOptions* options) {
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--port" && (value = next_value(&i))) {
      options->port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--downtown" && (value = next_value(&i))) {
      options->downtown = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--highway" && (value = next_value(&i))) {
      options->highway = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--stations" && (value = next_value(&i))) {
      options->stations = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--harbors" && (value = next_value(&i))) {
      options->harbors = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--minutes" && (value = next_value(&i))) {
      options->minutes = std::atoll(value);
    } else if (arg == "--seed" && (value = next_value(&i))) {
      options->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--ingest") {
      options->ingest = true;
    } else if (arg == "--shard-index" && (value = next_value(&i))) {
      options->shard_index = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--shard-count" && (value = next_value(&i))) {
      options->shard_count = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--load" && (value = next_value(&i))) {
      options->load_path = value;
    } else if (arg == "--max-connections" && (value = next_value(&i))) {
      options->max_connections = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--max-inflight" && (value = next_value(&i))) {
      options->max_inflight = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--serve-seconds" && (value = next_value(&i))) {
      options->serve_seconds = std::atoll(value);
    } else if (arg == "--io-timeout-ms" && (value = next_value(&i))) {
      options->io_timeout_ms = std::atoll(value);
    } else if (arg == "--idle-timeout-ms" && (value = next_value(&i))) {
      options->idle_timeout_ms = std::atoll(value);
    } else if (arg == "--dedup-window" && (value = next_value(&i))) {
      options->dedup_window = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--wal-dir" && (value = next_value(&i))) {
      options->wal_dir = value;
    } else if (arg == "--wal-fsync-ms" && (value = next_value(&i))) {
      options->wal_fsync_ms = std::atoll(value);
    } else if (arg == "--sync-replication") {
      options->sync_replication = true;
    } else if (arg == "--standby-of" && (value = next_value(&i))) {
      options->standby_of = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vz;
  ServerCliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(stderr,
                 "usage: vz_server [--port P] [--downtown N] [--highway N] "
                 "[--stations N] [--harbors N] [--minutes M] [--seed S] "
                 "[--ingest] [--shard-index I --shard-count N] "
                 "[--load PATH] [--max-connections N] "
                 "[--max-inflight N] [--serve-seconds T] "
                 "[--io-timeout-ms T] [--idle-timeout-ms T] "
                 "[--dedup-window N]\n");
    return 2;
  }

  sim::DeploymentOptions dep_options;
  dep_options.cities = 1;
  dep_options.downtown_per_city = cli.downtown;
  dep_options.highway_cameras = cli.highway;
  dep_options.train_stations = cli.stations;
  dep_options.harbors = cli.harbors;
  dep_options.feed_duration_ms = cli.minutes * 60 * 1000;
  dep_options.fps = 1.0;
  dep_options.seed = cli.seed;
  sim::Deployment deployment(dep_options);
  // Materialize the world (and its ground-truth log) up front so the
  // verifier has the same view whether frames arrive locally or remotely.
  (void)deployment.observations();

  core::VideoZillaOptions options;
  options.segmenter.t_max_ms =
      std::max<int64_t>(30'000, cli.minutes * 60'000 / 5);
  options.segmenter.t_split_ms = options.segmenter.t_max_ms / 10;
  options.boundary_scale = 1.8;
  options.enable_keyframe_selection = false;
  if (cli.max_inflight > 0) {
    options.admission.max_in_flight = cli.max_inflight;
    options.admission.max_queue = 1;
  }
  core::VideoZilla vz(options);

  if (!cli.load_path.empty()) {
    core::SvsStore loaded;
    if (Status s = io::LoadSvsStore(cli.load_path, &loaded); !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = vz.RestoreFromSvsStore(loaded); !s.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("restored %zu SVSs from %s\n", vz.svs_store().size(),
                cli.load_path.c_str());
  } else if (cli.ingest) {
    if (cli.shard_count > 0) {
      if (cli.shard_index >= cli.shard_count) {
        std::fprintf(stderr, "--shard-index %zu out of range for "
                     "--shard-count %zu\n",
                     cli.shard_index, cli.shard_count);
        return 2;
      }
      const auto shards = deployment.PartitionCameras(cli.shard_count);
      if (Status s = deployment.IngestShard(&vz, shards[cli.shard_index]);
          !s.ok()) {
        std::fprintf(stderr, "shard ingest failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::printf("pre-ingested shard %zu/%zu: %zu SVSs across %zu "
                  "cameras\n",
                  cli.shard_index, cli.shard_count, vz.svs_store().size(),
                  vz.cameras().size());
    } else {
      if (Status s = deployment.IngestAll(&vz); !s.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("pre-ingested %zu SVSs across %zu cameras\n",
                  vz.svs_store().size(), vz.cameras().size());
    }
  }

  sim::HeavyModel heavy;
  sim::SimObjectVerifier verifier(&deployment.space(), &deployment.log(),
                                  &heavy);
  vz.SetVerifier(&verifier);

  net::ServerOptions server_options;
  server_options.port = cli.port;
  server_options.max_connections = cli.max_connections;
  if (cli.io_timeout_ms > 0) {
    server_options.read_timeout_ms = cli.io_timeout_ms;
    server_options.write_timeout_ms = cli.io_timeout_ms;
  }
  if (cli.idle_timeout_ms > 0) {
    server_options.idle_timeout_ms = cli.idle_timeout_ms;
  }
  if (cli.dedup_window > 0) server_options.dedup_window = cli.dedup_window;
  server_options.wal_dir = cli.wal_dir;
  if (cli.wal_fsync_ms >= 0) {
    server_options.wal_fsync_interval_ms = cli.wal_fsync_ms;
  }
  server_options.sync_replication = cli.sync_replication;
  if (!cli.standby_of.empty()) {
    const size_t colon = cli.standby_of.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--standby-of wants HOST:PORT, got %s\n",
                   cli.standby_of.c_str());
      return 2;
    }
    server_options.standby_of_host = cli.standby_of.substr(0, colon);
    server_options.standby_of_port = static_cast<uint16_t>(
        std::atoi(cli.standby_of.c_str() + colon + 1));
  }
  net::Server server(&vz, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (server.role() == net::ServerRole::kStandby) {
    std::printf("vz_server standby tailing %s (wal: %s); will promote onto "
                "port %u if the primary stays unreachable\n",
                cli.standby_of.c_str(), cli.wal_dir.c_str(), cli.port);
  } else {
    std::printf("vz_server listening on 127.0.0.1:%u (protocol v%u%s)\n",
                server.port(), net::kProtocolVersion,
                cli.wal_dir.empty() ? ""
                                    : (", wal: " + cli.wal_dir).c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  // Auto-promotion is driven from here, never from inside the replication
  // thread: consecutive 100ms polls that each saw new WalShip failures mean
  // the primary is gone (not one flaky exchange), so the standby takes over
  // its serving duties on the configured port.
  uint64_t last_replication_errors = 0;
  int failing_polls = 0;
  constexpr int kPromoteAfterFailingPolls = 20;  // ~2s of sustained failure
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (server.role() == net::ServerRole::kStandby) {
      const uint64_t errors = server.stats().replication_errors;
      failing_polls = errors > last_replication_errors ? failing_polls + 1 : 0;
      last_replication_errors = errors;
      if (failing_polls >= kPromoteAfterFailingPolls) {
        if (Status s = server.Promote(); s.ok()) {
          std::printf("primary unreachable for %d polls: promoted, now "
                      "listening on 127.0.0.1:%u\n",
                      failing_polls, server.port());
          std::fflush(stdout);
        } else {
          // Likely the old primary still holds the port (split-brain
          // guard): keep tailing and try again later.
          std::fprintf(stderr, "promotion failed: %s\n",
                       s.ToString().c_str());
          failing_polls = 0;
        }
      }
    }
    if (cli.serve_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(cli.serve_seconds)) {
      break;
    }
  }

  std::printf("shutting down (draining in-flight requests)\n");
  // Snapshot the registry before the drain empties it: on a live server
  // this is the operator's view of who is connected and how busy they are.
  const std::vector<net::ConnectionInfo> connections =
      server.connection_stats();
  server.Shutdown();
  const net::ServerStats stats = server.stats();
  std::printf("served %llu requests over %llu connections "
              "(%llu shed, %llu request errors)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_shed),
              static_cast<unsigned long long>(stats.request_errors));
  std::printf("supervision: %llu idle evictions, %llu slow evictions, "
              "%llu pings; exactly-once: %llu duplicates replayed across "
              "%llu sessions (%llu evicted)\n",
              static_cast<unsigned long long>(stats.connections_evicted_idle),
              static_cast<unsigned long long>(stats.connections_evicted_slow),
              static_cast<unsigned long long>(stats.pings_served),
              static_cast<unsigned long long>(stats.duplicates_replayed),
              static_cast<unsigned long long>(stats.sessions_active),
              static_cast<unsigned long long>(stats.sessions_evicted));
  if (!cli.wal_dir.empty()) {
    const char* role = stats.role == net::ServerRole::kPrimary ? "primary"
                       : stats.role == net::ServerRole::kStandby
                           ? "standby"
                           : "promoted";
    std::printf("durability (%s): %llu appends, %llu fsyncs, lsn %llu "
                "(%llu durable), %llu replayed on recovery, %llu B "
                "salvaged, %llu checkpoints\n",
                role, static_cast<unsigned long long>(stats.wal_appends),
                static_cast<unsigned long long>(stats.wal_fsyncs),
                static_cast<unsigned long long>(stats.wal_last_lsn),
                static_cast<unsigned long long>(stats.wal_durable_lsn),
                static_cast<unsigned long long>(stats.wal_replayed_records),
                static_cast<unsigned long long>(stats.wal_salvaged_bytes),
                static_cast<unsigned long long>(stats.wal_checkpoints));
    if (!cli.standby_of.empty()) {
      std::printf("replication: lag %llu records, %llu ship errors\n",
                  static_cast<unsigned long long>(
                      stats.replication_lag_records),
                  static_cast<unsigned long long>(stats.replication_errors));
    }
  }
  for (const net::ConnectionInfo& conn : connections) {
    std::printf("  conn #%llu: age %llds, idle %lldms, %llu rpcs, "
                "%llu B in / %llu B out\n",
                static_cast<unsigned long long>(conn.id),
                static_cast<long long>(conn.age_ms / 1000),
                static_cast<long long>(conn.idle_ms),
                static_cast<unsigned long long>(conn.rpcs),
                static_cast<unsigned long long>(conn.bytes_in),
                static_cast<unsigned long long>(conn.bytes_out));
  }
  return 0;
}
