#ifndef VZ_INDEX_MTREE_H_
#define VZ_INDEX_MTREE_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "index/item_metric.h"

namespace vz::index {

/// Parameters for the M-tree.
struct MTreeOptions {
  /// Maximum number of entries per node before it splits — the x-axis of
  /// Fig. 14 ("maximum node size").
  size_t max_node_size = 8;
};

/// M-tree (Ciaccia, Patella & Zezula, VLDB 1997): a dynamic, balanced access
/// method for similarity search in generic metric spaces. The paper compares
/// PERCH-OMD against it in Sec. 7.3 / Fig. 14.
///
/// Internal entries hold a routing object, a covering radius, and the
/// distance to their parent routing object; searches prune subtrees whose
/// covering ball cannot intersect the query ball, using the stored
/// parent distances to avoid metric evaluations where possible.
class MTree {
 public:
  /// `metric` must outlive the tree.
  MTree(ItemMetric* metric, const MTreeOptions& options);

  MTree(const MTree&) = delete;
  MTree& operator=(const MTree&) = delete;

  /// Inserts an item, splitting overflowing nodes with mM_RAD-style
  /// promotion (the pair of entries farthest apart) and generalized
  /// hyperplane partitioning.
  Status Insert(int item);

  /// The `k` stored items nearest to `target`, ascending by distance.
  StatusOr<std::vector<int>> KNearestNeighbors(int target, size_t k);

  /// All stored items within `radius` of `target` (unordered).
  StatusOr<std::vector<int>> RangeQuery(int target, double radius);

  /// Number of items stored.
  size_t size() const { return size_; }

  /// Height of the tree (leaf root = 1); 0 when empty.
  size_t Height() const;

  /// Checks covering-radius and parent-distance invariants.
  Status Validate();

 private:
  struct Entry {
    int item = -1;            // data object (leaf) or routing object
    double parent_dist = 0.0; // distance to the parent routing object
    double radius = 0.0;      // covering radius (internal entries only)
    int child = -1;           // child node id (internal entries only)
  };
  struct Node {
    bool is_leaf = true;
    int parent = -1;  // parent node id
    std::vector<Entry> entries;
  };

  int NewNode(bool is_leaf);
  // Index of the entry in `parent` whose child is `node_id`.
  int EntryIndexInParent(int node_id) const;
  void SplitNode(int node_id);

  ItemMetric* metric_;
  MTreeOptions options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t size_ = 0;
};

}  // namespace vz::index

#endif  // VZ_INDEX_MTREE_H_
