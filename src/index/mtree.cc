#include "index/mtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace vz::index {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

MTree::MTree(ItemMetric* metric, const MTreeOptions& options)
    : metric_(metric), options_(options) {
  if (options_.max_node_size < 2) options_.max_node_size = 2;
}

int MTree::NewNode(bool is_leaf) {
  Node node;
  node.is_leaf = is_leaf;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int MTree::EntryIndexInParent(int node_id) const {
  const int parent = nodes_[node_id].parent;
  if (parent < 0) return -1;
  const Node& p = nodes_[parent];
  for (size_t i = 0; i < p.entries.size(); ++i) {
    if (p.entries[i].child == node_id) return static_cast<int>(i);
  }
  return -1;
}

Status MTree::Insert(int item) {
  if (metric_ == nullptr) {
    return Status::FailedPrecondition("MTree has no metric");
  }
  ++size_;
  if (root_ < 0) {
    root_ = NewNode(/*is_leaf=*/true);
    Entry e;
    e.item = item;
    nodes_[root_].entries.push_back(e);
    return Status::OK();
  }

  // Descend, preferring subtrees that already cover the object; otherwise
  // minimize the required radius enlargement.
  int node_id = root_;
  double dist_to_parent_routing = 0.0;
  while (!nodes_[node_id].is_leaf) {
    Node& node = nodes_[node_id];
    int best_covering = -1;
    double best_covering_dist = kInf;
    int best_enlarge = -1;
    double best_enlarge_amount = kInf;
    double best_enlarge_dist = 0.0;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double d = metric_->Distance(item, node.entries[i].item);
      if (d <= node.entries[i].radius) {
        if (d < best_covering_dist) {
          best_covering_dist = d;
          best_covering = static_cast<int>(i);
        }
      } else {
        const double enlarge = d - node.entries[i].radius;
        if (enlarge < best_enlarge_amount) {
          best_enlarge_amount = enlarge;
          best_enlarge = static_cast<int>(i);
          best_enlarge_dist = d;
        }
      }
    }
    size_t chosen;
    if (best_covering >= 0) {
      chosen = static_cast<size_t>(best_covering);
      dist_to_parent_routing = best_covering_dist;
    } else {
      chosen = static_cast<size_t>(best_enlarge);
      nodes_[node_id].entries[chosen].radius = best_enlarge_dist;
      dist_to_parent_routing = best_enlarge_dist;
    }
    node_id = nodes_[node_id].entries[chosen].child;
  }

  Entry e;
  e.item = item;
  e.parent_dist = nodes_[node_id].parent < 0 ? 0.0 : dist_to_parent_routing;
  nodes_[node_id].entries.push_back(e);
  if (nodes_[node_id].entries.size() > options_.max_node_size) {
    SplitNode(node_id);
  }
  return Status::OK();
}

void MTree::SplitNode(int node_id) {
  // mM_RAD-flavored promotion: the two entries farthest apart.
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();
  const size_t m = entries.size();
  size_t p1 = 0;
  size_t p2 = 1;
  double best = -1.0;
  // Pairwise distances, reused for partitioning.
  std::vector<std::vector<double>> dist(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const double d = metric_->Distance(entries[i].item, entries[j].item);
      dist[i][j] = d;
      dist[j][i] = d;
      if (d > best) {
        best = d;
        p1 = i;
        p2 = j;
      }
    }
  }

  const int sibling_id = NewNode(nodes_[node_id].is_leaf);
  nodes_[sibling_id].parent = nodes_[node_id].parent;

  // Generalized hyperplane partitioning: each entry joins its nearer
  // promoted object; covering radii account for child radii when internal.
  double radius1 = 0.0;
  double radius2 = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double d1 = dist[i][p1];
    const double d2 = dist[i][p2];
    Entry e = entries[i];
    const double slack = nodes_[node_id].is_leaf ? 0.0 : e.radius;
    if (d1 <= d2) {
      e.parent_dist = d1;
      nodes_[node_id].entries.push_back(e);
      radius1 = std::max(radius1, d1 + slack);
      if (e.child >= 0) nodes_[e.child].parent = node_id;
    } else {
      e.parent_dist = d2;
      nodes_[sibling_id].entries.push_back(e);
      radius2 = std::max(radius2, d2 + slack);
      if (e.child >= 0) nodes_[e.child].parent = sibling_id;
    }
  }

  const int promoted1 = entries[p1].item;
  const int promoted2 = entries[p2].item;
  const int parent = nodes_[node_id].parent;
  if (parent < 0) {
    // Grow a new root above the two halves.
    const int new_root = NewNode(/*is_leaf=*/false);
    nodes_[node_id].parent = new_root;
    nodes_[sibling_id].parent = new_root;
    Entry e1;
    e1.item = promoted1;
    e1.radius = radius1;
    e1.child = node_id;
    Entry e2;
    e2.item = promoted2;
    e2.radius = radius2;
    e2.child = sibling_id;
    nodes_[new_root].entries = {e1, e2};
    root_ = new_root;
    return;
  }

  // Replace the parent's entry for this node and add one for the sibling.
  const int slot = EntryIndexInParent(node_id);
  // Distance of the promoted objects to the grandparent routing object.
  double pd1 = 0.0;
  double pd2 = 0.0;
  if (nodes_[parent].parent >= 0) {
    const int up_slot = EntryIndexInParent(parent);
    const int up_routing =
        nodes_[nodes_[parent].parent].entries[static_cast<size_t>(up_slot)].item;
    pd1 = metric_->Distance(promoted1, up_routing);
    pd2 = metric_->Distance(promoted2, up_routing);
  }
  Entry& replaced = nodes_[parent].entries[static_cast<size_t>(slot)];
  replaced.item = promoted1;
  replaced.radius = radius1;
  replaced.parent_dist = pd1;
  replaced.child = node_id;
  Entry added;
  added.item = promoted2;
  added.radius = radius2;
  added.parent_dist = pd2;
  added.child = sibling_id;
  nodes_[parent].entries.push_back(added);
  if (nodes_[parent].entries.size() > options_.max_node_size) {
    SplitNode(parent);
  }
}

StatusOr<std::vector<int>> MTree::KNearestNeighbors(int target, size_t k) {
  if (root_ < 0) return Status::NotFound("tree is empty");
  k = std::min(k, size_);

  // Branch-and-bound with a node priority queue keyed by the minimum
  // possible distance and a max-heap of the best k results so far.
  struct NodeEntry {
    double bound;
    int node;
    double dist_to_routing;  // d(target, routing object of this node)
    bool operator>(const NodeEntry& other) const {
      return bound > other.bound;
    }
  };
  std::priority_queue<NodeEntry, std::vector<NodeEntry>,
                      std::greater<NodeEntry>>
      frontier;
  frontier.push({0.0, root_, 0.0});

  std::priority_queue<std::pair<double, int>> best;  // max-heap of (d, item)
  auto kth_bound = [&]() {
    return best.size() < k ? kInf : best.top().first;
  };

  while (!frontier.empty()) {
    const NodeEntry ne = frontier.top();
    frontier.pop();
    if (ne.bound > kth_bound()) break;
    const Node& node = nodes_[ne.node];
    for (const Entry& e : node.entries) {
      // Parent-distance pruning: |d(target, parent) - d(entry, parent)| is a
      // lower bound on d(target, entry) by the triangle inequality.
      const double cheap_lb = std::fabs(ne.dist_to_routing - e.parent_dist);
      if (node.is_leaf) {
        if (cheap_lb > kth_bound()) continue;
        const double d = metric_->Distance(target, e.item);
        if (d < kth_bound()) {
          best.emplace(d, e.item);
          if (best.size() > k) best.pop();
        }
      } else {
        if (cheap_lb - e.radius > kth_bound()) continue;
        const double d = metric_->Distance(target, e.item);
        const double bound = std::max(0.0, d - e.radius);
        if (bound <= kth_bound()) {
          frontier.push({bound, e.child, d});
        }
      }
    }
  }

  std::vector<int> result(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top().second;
    best.pop();
  }
  return result;
}

StatusOr<std::vector<int>> MTree::RangeQuery(int target, double radius) {
  if (root_ < 0) return Status::NotFound("tree is empty");
  std::vector<int> result;
  struct Visit {
    int node;
    double dist_to_routing;
  };
  std::vector<Visit> stack = {{root_, 0.0}};
  while (!stack.empty()) {
    const Visit visit = stack.back();
    stack.pop_back();
    const Node& node = nodes_[visit.node];
    for (const Entry& e : node.entries) {
      const double cheap_lb = std::fabs(visit.dist_to_routing - e.parent_dist);
      if (node.is_leaf) {
        if (cheap_lb > radius) continue;
        if (metric_->Distance(target, e.item) <= radius) {
          result.push_back(e.item);
        }
      } else {
        if (cheap_lb > radius + e.radius) continue;
        const double d = metric_->Distance(target, e.item);
        if (d <= radius + e.radius) stack.push_back({e.child, d});
      }
    }
  }
  return result;
}

size_t MTree::Height() const {
  if (root_ < 0) return 0;
  size_t h = 1;
  int node = root_;
  while (!nodes_[node].is_leaf) {
    node = nodes_[node].entries.front().child;
    ++h;
  }
  return h;
}

Status MTree::Validate() {
  if (root_ < 0) return Status::OK();
  // Every object in a subtree must lie within the covering radius of the
  // subtree's routing entry.
  struct Frame {
    int node;
    int routing_item;  // -1 at the root
    double radius;
  };
  std::vector<Frame> stack = {{root_, -1, 0.0}};
  size_t leaf_entries = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    for (const Entry& e : node.entries) {
      if (f.routing_item >= 0) {
        const double d = metric_->Distance(e.item, f.routing_item);
        if (d > f.radius + 1e-6) {
          return Status::Internal("covering radius violated");
        }
        if (std::fabs(d - e.parent_dist) > 1e-6) {
          return Status::Internal("stored parent distance incorrect");
        }
      }
      if (node.is_leaf) {
        ++leaf_entries;
      } else {
        if (nodes_[e.child].parent != f.node) {
          return Status::Internal("parent link mismatch");
        }
        stack.push_back({e.child, e.item, e.radius});
      }
    }
  }
  if (leaf_entries != size_) {
    return Status::Internal("leaf entry count mismatch");
  }
  return Status::OK();
}

}  // namespace vz::index
