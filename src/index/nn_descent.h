#ifndef VZ_INDEX_NN_DESCENT_H_
#define VZ_INDEX_NN_DESCENT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "index/item_metric.h"

namespace vz::index {

/// Parameters for NN-descent graph construction and search.
struct NnDescentOptions {
  /// Neighbors kept per item in the k-NN graph.
  size_t graph_degree = 10;
  /// Maximum local-join iterations.
  size_t max_iterations = 12;
  /// Stop when fewer than `termination_fraction * n * degree` list updates
  /// happen in an iteration.
  double termination_fraction = 0.001;
  /// Beam width for greedy graph search (>= k of the query).
  size_t search_beam = 32;
  /// Random entry points per search. A stored query item additionally
  /// enters at its own node, so the search starts in the right component
  /// even when the k-NN graph is disconnected across far-apart clusters.
  size_t search_entries = 8;
  /// Seed for the initial random graph and entry-point choice.
  uint64_t seed = 42;
};

/// Approximate nearest-neighbor search via NN-descent (Dong, Moses & Li,
/// WWW 2011) — the ANN comparator of Sec. 7.3 ("we compare with a
/// state-of-the-art ANN algorithm [30] ... built-in support for the EMD
/// metric space" — PyNNDescent, which implements this algorithm).
///
/// Build constructs an approximate k-NN graph by iterated local joins;
/// queries run greedy best-first beam search over the graph. Results are
/// approximate: recall below 1.0 is expected and is exactly what the paper's
/// comparison measures.
class NnDescentGraph {
 public:
  /// `metric` must outlive the graph.
  NnDescentGraph(ItemMetric* metric, const NnDescentOptions& options);

  NnDescentGraph(const NnDescentGraph&) = delete;
  NnDescentGraph& operator=(const NnDescentGraph&) = delete;

  /// Builds the graph over `items`. May be called once.
  Status Build(const std::vector<int>& items);

  /// Approximate `k` nearest stored items to `target`, ascending by
  /// distance. `target` may be a stored item or a new one.
  StatusOr<std::vector<int>> KNearestNeighbors(int target, size_t k);

  /// Number of indexed items.
  size_t size() const { return items_.size(); }

  /// The neighbor list (item ids) of the stored item at `index`.
  std::vector<int> NeighborsOf(size_t index) const;

 private:
  struct Neighbor {
    double dist;
    size_t index;  // position in items_
    bool is_new;
  };

  // Inserts (dist, idx) into u's neighbor list if it improves it.
  bool TryInsert(size_t u, size_t idx, double dist);

  ItemMetric* metric_;
  NnDescentOptions options_;
  Rng rng_;
  std::vector<int> items_;
  std::unordered_map<int, size_t> index_of_item_;
  std::vector<std::vector<Neighbor>> graph_;
  bool built_ = false;
};

}  // namespace vz::index

#endif  // VZ_INDEX_NN_DESCENT_H_
