#ifndef VZ_INDEX_PERCH_TREE_H_
#define VZ_INDEX_PERCH_TREE_H_

#include <cstdint>
#include <vector>

#include "clustering/cluster_tree.h"
#include "common/statusor.h"
#include "index/item_metric.h"

namespace vz::index {

/// Tuning knobs for the incremental cluster tree of Sec. 4.
struct PerchOptions {
  /// Apply masking-triggered rotations (Sec. 4.1, Fig. 7). Disabling them is
  /// the ablation of `bench_ablation_rotations`.
  bool enable_masking_rotations = true;
  /// Apply balance-triggered rotations (Sec. 4.3).
  bool enable_balance_rotations = true;
  /// Use the OCD-lower-bound best-first nearest-neighbor search (Sec. 4.3).
  /// When false, insertion/search probes every leaf with the full metric —
  /// the unpruned baseline of Fig. 13.
  bool enable_pruned_nn = true;
  /// Leaves sampled per node for the approximate masking / cost heuristics.
  size_t samples_per_node = 3;
  /// Evaluate the masking predicate exhaustively over all leaves (exact but
  /// quadratic; for tests and small trees only).
  bool exact_masking_check = false;
  /// Relative margin the masking predicate must clear before a rotation
  /// fires: masked iff max-to-sibling > margin * min-to-aunt. The strict
  /// paper predicate (margin 1.0) triggers on near-ties inside a pure
  /// cluster, where noise alone decides and rotations only churn.
  double masking_margin = 1.1;
  /// Safety cap on rotation chains per insertion.
  size_t max_rotations_per_insert = 256;
};

/// Counters describing the work a `PerchTree` has performed.
struct PerchStats {
  uint64_t nn_searches = 0;
  uint64_t insertions = 0;
  uint64_t masking_rotations = 0;
  uint64_t balance_rotations = 0;
};

/// Incremental hierarchical cluster tree: greedy nearest-neighbor insertion
/// plus purity-enhancing (masking-triggered) and balance-triggered rotations,
/// after PERCH (Kobren et al. 2017), operating in an arbitrary metric space
/// through `ItemMetric` (Sec. 4: "Our incremental clustering algorithm
/// extends [47] to our OMD metric space").
///
/// Each leaf stores one item id. Internal nodes are strictly binary and
/// maintain summaries (leaf count, sampled leaves, an approximate *cost* =
/// max intra-node distance) used by the approximate masking check, the
/// balance heuristic, and cluster extraction (Sec. 4.2).
class PerchTree {
 public:
  /// `metric` must outlive the tree.
  PerchTree(ItemMetric* metric, const PerchOptions& options);

  PerchTree(const PerchTree&) = delete;
  PerchTree& operator=(const PerchTree&) = delete;

  /// Pre-sizes internal storage for `expected_items` leaves (a binary tree
  /// over n leaves has 2n-1 nodes). Bulk rebuilds — e.g. an
  /// `InterCameraIndex` re-indexing after a representative sync — insert
  /// one item at a time; reserving up front avoids the vector regrowth
  /// copies on that path. Never shrinks.
  void Reserve(size_t expected_items);

  /// Inserts an item: finds its nearest leaf, splits it, updates ancestor
  /// summaries, then runs masking- and balance-triggered rotations
  /// (Algorithm 2).
  Status Insert(int item);

  /// Nearest stored item to `target` under the full metric, or NotFound for
  /// an empty tree. `target` may or may not already be stored. Uses the
  /// OCD-pruned best-first search when enabled.
  StatusOr<int> NearestNeighbor(int target);

  /// The `count` stored items nearest to `target`, ascending by distance.
  StatusOr<std::vector<int>> KNearestNeighbors(int target, size_t count);

  /// Flat clustering with (up to) `k` clusters, derived by repeatedly
  /// splitting the highest-cost node in the frontier list (Sec. 4.2).
  /// Returns the items of each cluster.
  std::vector<std::vector<int>> ExtractClusters(size_t k) const;

  /// Number of items stored.
  size_t size() const { return leaves_.size(); }

  /// All stored item ids in insertion order.
  const std::vector<int>& items() const { return inserted_items_; }

  /// Depth of the deepest leaf (root = depth 0); 0 for empty trees.
  size_t Depth() const;

  /// Mean local balance over internal nodes (Sec. 4.3); 1.0 for empty trees.
  double AverageBalance() const;

  /// Exports the structure for dendrogram-purity evaluation.
  clustering::ClusterTree ToClusterTree() const;

  /// Checks the structural invariants (binary internal nodes, consistent
  /// parent links and leaf counts).
  Status Validate() const;

  const PerchStats& stats() const { return stats_; }

 private:
  struct Node {
    int parent = -1;
    int left = -1;
    int right = -1;
    int item = -1;  // >= 0 for leaves
    size_t leaf_count = 1;
    double cost = 0.0;            // approximate max intra-node distance
    std::vector<int> samples;     // sampled leaf items for approx checks

    bool is_leaf() const { return left < 0; }
  };

  int NewLeaf(int item);
  int Sibling(int v) const;
  int Aunt(int v) const;

  // Best-first (pruned) or exhaustive nearest-leaf search. Returns node id.
  int FindNearestLeafNode(int target);

  // Recomputes leaf_count / samples / cost of `v` from its children.
  void RefreshFromChildren(int v);
  // Refreshes summaries along the path from `v` to the root; stops early
  // when the cost stops changing (the bottom-up heuristic of Sec. 4.3).
  void RefreshUpwards(int v);

  // The masking predicate of Sec. 4.1 for node `v` (needs a grandparent).
  bool IsMasked(int v);
  // True if rotating `v` with its aunt improves the local balance.
  bool BalanceImproves(int v) const;
  // Swaps `v` with its aunt and refreshes the two affected ancestors.
  void RotateWithAunt(int v);

  // Algorithm 1 driver: walks from `v` toward the root applying `check`.
  enum class RotateKind { kMasking, kBalance };
  void RotateLoop(int v, RotateKind kind);

  ItemMetric* metric_;
  PerchOptions options_;
  std::vector<Node> nodes_;
  std::vector<int> leaves_;          // node ids of all leaves
  std::vector<int> inserted_items_;  // item ids in insertion order
  int root_ = -1;
  PerchStats stats_;
};

}  // namespace vz::index

#endif  // VZ_INDEX_PERCH_TREE_H_
