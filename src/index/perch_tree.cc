#include "index/perch_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace vz::index {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCostEps = 1e-12;
}  // namespace

PerchTree::PerchTree(ItemMetric* metric, const PerchOptions& options)
    : metric_(metric), options_(options) {}

void PerchTree::Reserve(size_t expected_items) {
  if (expected_items == 0) return;
  nodes_.reserve(std::max(nodes_.size(), 2 * expected_items - 1));
  leaves_.reserve(std::max(leaves_.size(), expected_items));
  inserted_items_.reserve(std::max(inserted_items_.size(), expected_items));
}

int PerchTree::NewLeaf(int item) {
  Node node;
  node.item = item;
  node.leaf_count = 1;
  node.samples = {item};
  nodes_.push_back(std::move(node));
  const int id = static_cast<int>(nodes_.size()) - 1;
  leaves_.push_back(id);
  return id;
}

int PerchTree::Sibling(int v) const {
  const int p = nodes_[v].parent;
  if (p < 0) return -1;
  return nodes_[p].left == v ? nodes_[p].right : nodes_[p].left;
}

int PerchTree::Aunt(int v) const {
  const int p = nodes_[v].parent;
  if (p < 0) return -1;
  return Sibling(p);
}

Status PerchTree::Insert(int item) {
  if (metric_ == nullptr) {
    return Status::FailedPrecondition("PerchTree has no metric");
  }
  ++stats_.insertions;
  inserted_items_.push_back(item);
  if (root_ < 0) {
    root_ = NewLeaf(item);
    return Status::OK();
  }

  // Greedy step: attach next to the nearest leaf (Sec. 4.1).
  const int nn_node = FindNearestLeafNode(item);
  const int new_leaf = NewLeaf(item);

  // Split: a fresh internal node adopts {nn_node, new_leaf} in nn's place.
  Node internal;
  internal.parent = nodes_[nn_node].parent;
  internal.left = nn_node;
  internal.right = new_leaf;
  nodes_.push_back(std::move(internal));
  const int internal_id = static_cast<int>(nodes_.size()) - 1;
  const int old_parent = nodes_[nn_node].parent;
  nodes_[nn_node].parent = internal_id;
  nodes_[new_leaf].parent = internal_id;
  if (old_parent < 0) {
    root_ = internal_id;
  } else if (nodes_[old_parent].left == nn_node) {
    nodes_[old_parent].left = internal_id;
  } else {
    nodes_[old_parent].right = internal_id;
  }
  RefreshFromChildren(internal_id);
  RefreshUpwards(old_parent);

  // Purity-enhancing and balance rotations (Algorithm 2) start from the new
  // leaf's sibling.
  if (options_.enable_masking_rotations) {
    RotateLoop(nn_node, RotateKind::kMasking);
  }
  if (options_.enable_balance_rotations) {
    RotateLoop(nn_node, RotateKind::kBalance);
  }
  return Status::OK();
}

int PerchTree::FindNearestLeafNode(int target) {
  ++stats_.nn_searches;
  if (!options_.enable_pruned_nn) {
    // Unpruned baseline: probe every leaf with the full metric (Fig. 13's
    // "w/o pruning" series).
    double best = kInf;
    int best_node = leaves_.front();
    for (int leaf : leaves_) {
      const double d = metric_->Distance(target, nodes_[leaf].item);
      if (d < best) {
        best = d;
        best_node = leaf;
      }
    }
    return best_node;
  }
  // OCD-pruned best-first search (Sec. 4.3): leaves enter a priority queue
  // keyed by the cheap lower bound; popping a leaf whose exact distance has
  // already been computed proves it is the nearest neighbor because the
  // lower bound under-estimates every unexplored leaf.
  struct Entry {
    double key;
    int node;
    bool exact;
    bool operator>(const Entry& other) const { return key > other.key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int leaf : leaves_) {
    heap.push({metric_->LowerBound(target, nodes_[leaf].item), leaf, false});
  }
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    if (top.exact) return top.node;
    const double d = metric_->Distance(target, nodes_[top.node].item);
    heap.push({d, top.node, true});
  }
  return leaves_.front();  // unreachable for non-empty trees
}

StatusOr<int> PerchTree::NearestNeighbor(int target) {
  if (root_ < 0) return Status::NotFound("tree is empty");
  return nodes_[FindNearestLeafNode(target)].item;
}

StatusOr<std::vector<int>> PerchTree::KNearestNeighbors(int target,
                                                        size_t count) {
  if (root_ < 0) return Status::NotFound("tree is empty");
  count = std::min(count, leaves_.size());
  std::vector<int> result;
  result.reserve(count);
  if (!options_.enable_pruned_nn) {
    std::vector<std::pair<double, int>> all;
    all.reserve(leaves_.size());
    for (int leaf : leaves_) {
      all.emplace_back(metric_->Distance(target, nodes_[leaf].item),
                       nodes_[leaf].item);
    }
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(count),
                      all.end());
    for (size_t i = 0; i < count; ++i) result.push_back(all[i].second);
    return result;
  }
  struct Entry {
    double key;
    int node;
    bool exact;
    bool operator>(const Entry& other) const { return key > other.key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int leaf : leaves_) {
    heap.push({metric_->LowerBound(target, nodes_[leaf].item), leaf, false});
  }
  while (!heap.empty() && result.size() < count) {
    const Entry top = heap.top();
    heap.pop();
    if (top.exact) {
      result.push_back(nodes_[top.node].item);
      continue;
    }
    const double d = metric_->Distance(target, nodes_[top.node].item);
    heap.push({d, top.node, true});
  }
  return result;
}

void PerchTree::RefreshFromChildren(int v) {
  Node& node = nodes_[v];
  if (node.is_leaf()) return;
  const Node& l = nodes_[node.left];
  const Node& r = nodes_[node.right];
  node.leaf_count = l.leaf_count + r.leaf_count;
  // Interleave child samples up to the cap so both subtrees stay visible.
  node.samples.clear();
  const size_t cap = std::max<size_t>(1, options_.samples_per_node);
  for (size_t i = 0; node.samples.size() < cap; ++i) {
    bool took = false;
    if (i < l.samples.size()) {
      node.samples.push_back(l.samples[i]);
      took = true;
    }
    if (node.samples.size() < cap && i < r.samples.size()) {
      node.samples.push_back(r.samples[i]);
      took = true;
    }
    if (!took) break;
  }
  // Approximate cost (max intra-node distance): children costs plus the
  // largest cross-child sample distance.
  double cost = std::max(l.cost, r.cost);
  for (int x : l.samples) {
    for (int y : r.samples) {
      cost = std::max(cost, metric_->Distance(x, y));
    }
  }
  node.cost = cost;
}

void PerchTree::RefreshUpwards(int v) {
  bool cost_live = true;
  while (v >= 0) {
    Node& node = nodes_[v];
    const Node& l = nodes_[node.left];
    const Node& r = nodes_[node.right];
    if (cost_live) {
      const double old_cost = node.cost;
      RefreshFromChildren(v);
      // Bottom-up cost heuristic (Sec. 4.3): stop recomputing the expensive
      // cost once it stops changing along the path.
      if (std::fabs(node.cost - old_cost) <= kCostEps) cost_live = false;
    } else {
      // Structural summaries stay exact all the way to the root.
      node.leaf_count = l.leaf_count + r.leaf_count;
      node.samples.clear();
      const size_t cap = std::max<size_t>(1, options_.samples_per_node);
      for (size_t i = 0; node.samples.size() < cap; ++i) {
        bool took = false;
        if (i < l.samples.size()) {
          node.samples.push_back(l.samples[i]);
          took = true;
        }
        if (node.samples.size() < cap && i < r.samples.size()) {
          node.samples.push_back(r.samples[i]);
          took = true;
        }
        if (!took) break;
      }
    }
    v = node.parent;
  }
}

bool PerchTree::IsMasked(int v) {
  const int sibling = Sibling(v);
  const int aunt = Aunt(v);
  if (sibling < 0 || aunt < 0) return false;

  auto leaf_items_of = [this](int node) {
    std::vector<int> items;
    std::vector<int> stack = {node};
    while (!stack.empty()) {
      const int x = stack.back();
      stack.pop_back();
      if (nodes_[x].is_leaf()) {
        items.push_back(nodes_[x].item);
      } else {
        stack.push_back(nodes_[x].left);
        stack.push_back(nodes_[x].right);
      }
    }
    return items;
  };

  const std::vector<int> xs = options_.exact_masking_check
                                  ? leaf_items_of(v)
                                  : nodes_[v].samples;
  const std::vector<int> ys = options_.exact_masking_check
                                  ? leaf_items_of(sibling)
                                  : nodes_[sibling].samples;
  const std::vector<int> zs = options_.exact_masking_check
                                  ? leaf_items_of(aunt)
                                  : nodes_[aunt].samples;
  // Sec. 4.1: v is masked if some x in lvs(v) is farther from its worst
  // sibling leaf than from its best aunt leaf (by the configured margin).
  const double margin = std::max(1.0, options_.masking_margin);
  for (int x : xs) {
    double max_to_sibling = 0.0;
    for (int y : ys) {
      max_to_sibling = std::max(max_to_sibling, metric_->Distance(x, y));
    }
    double min_to_aunt = kInf;
    for (int z : zs) {
      min_to_aunt = std::min(min_to_aunt, metric_->Distance(x, z));
    }
    if (max_to_sibling > margin * min_to_aunt) return true;
  }
  return false;
}

bool PerchTree::BalanceImproves(int v) const {
  const int p = nodes_[v].parent;
  if (p < 0) return false;
  const int g = nodes_[p].parent;
  if (g < 0) return false;
  const int sibling = Sibling(v);
  const int aunt = Aunt(v);
  auto bal = [](size_t a, size_t b) {
    return static_cast<double>(std::min(a, b)) /
           static_cast<double>(std::max<size_t>(1, std::max(a, b)));
  };
  const size_t nv = nodes_[v].leaf_count;
  const size_t ns = nodes_[sibling].leaf_count;
  const size_t na = nodes_[aunt].leaf_count;
  // Before: p = {v, sibling}, g = {p, aunt}. After the rotation:
  // p' = {sibling, aunt}, g' = {p', v}.
  const double before = bal(nv, ns) + bal(nv + ns, na);
  const double after = bal(ns, na) + bal(ns + na, nv);
  return after > before + 1e-12;
}

void PerchTree::RotateWithAunt(int v) {
  const int p = nodes_[v].parent;
  const int g = nodes_[p].parent;
  const int a = Aunt(v);
  // Detach-and-swap: v takes a's slot under g, a takes v's slot under p.
  if (nodes_[p].left == v) {
    nodes_[p].left = a;
  } else {
    nodes_[p].right = a;
  }
  if (nodes_[g].left == a) {
    nodes_[g].left = v;
  } else {
    nodes_[g].right = v;
  }
  nodes_[v].parent = g;
  nodes_[a].parent = p;
  RefreshFromChildren(p);
  RefreshUpwards(nodes_[p].parent);
}

void PerchTree::RotateLoop(int v, RotateKind kind) {
  size_t rotations = 0;
  while (v >= 0 && rotations < options_.max_rotations_per_insert) {
    if (Aunt(v) < 0) break;  // rotation needs a grandparent
    bool should_rotate = false;
    if (kind == RotateKind::kMasking) {
      if (IsMasked(v)) {
        // v is masked: its sibling does not represent it (Fig. 7 — C0 masks
        // T0). The repair swaps the ill-fitting *sibling* with the aunt, so
        // the outlier moves up toward the root while v is re-paired with
        // the aunt it is actually close to.
        RotateWithAunt(Sibling(v));
        ++stats_.masking_rotations;
        ++rotations;
        continue;  // v keeps its depth but has a new sibling/aunt; re-check
      }
      const int sibling = Sibling(v);
      if (sibling >= 0 && IsMasked(sibling)) {
        // The sibling is masked *by v*: v (e.g. a foreign subtree nested in
        // the sibling's cluster region) must move up instead.
        RotateWithAunt(v);
        ++stats_.masking_rotations;
        ++rotations;
        continue;  // v moved one level up; re-examine at the new level
      }
      // Neither side masked here; keep walking toward the root — masking
      // one level up is still possible (Algorithm 1 recurses on Parent).
      v = nodes_[v].parent;
      continue;
    } else {
      should_rotate = BalanceImproves(v);
      if (!should_rotate) break;
      const int old_aunt = Aunt(v);
      RotateWithAunt(v);
      // Sec. 4.3: keep the rotation only if it does not cause masking.
      // After the swap the old aunt occupies v's former slot and its aunt is
      // v, so rotating the old aunt with *its* aunt restores the old shape.
      if (options_.enable_masking_rotations &&
          (IsMasked(v) || IsMasked(old_aunt))) {
        RotateWithAunt(old_aunt);
        break;
      }
      ++stats_.balance_rotations;
      ++rotations;
      v = nodes_[v].parent;
    }
  }
}

size_t PerchTree::Depth() const {
  if (root_ < 0) return 0;
  size_t max_depth = 0;
  std::vector<std::pair<int, size_t>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto [v, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[v].is_leaf()) {
      stack.push_back({nodes_[v].left, d + 1});
      stack.push_back({nodes_[v].right, d + 1});
    }
  }
  return max_depth;
}

double PerchTree::AverageBalance() const {
  double total = 0.0;
  size_t internal = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) continue;
    // Skip detached nodes (none are produced currently, but be safe).
    const size_t a = nodes_[node.left].leaf_count;
    const size_t b = nodes_[node.right].leaf_count;
    total += static_cast<double>(std::min(a, b)) /
             static_cast<double>(std::max<size_t>(1, std::max(a, b)));
    ++internal;
  }
  return internal == 0 ? 1.0 : total / static_cast<double>(internal);
}

std::vector<std::vector<int>> PerchTree::ExtractClusters(size_t k) const {
  std::vector<std::vector<int>> clusters;
  if (root_ < 0) return clusters;
  k = std::max<size_t>(1, k);
  // Frontier refinement (Sec. 4.2). The paper's text says to pop the node
  // with the smallest cost; splitting the *loosest* (largest-cost) node is
  // the standard reading that actually tightens clusters, and is what we do.
  std::vector<int> frontier = {root_};
  while (frontier.size() < k) {
    int best = -1;
    double best_cost = -kInf;
    for (size_t i = 0; i < frontier.size(); ++i) {
      const Node& node = nodes_[frontier[i]];
      if (node.is_leaf()) continue;
      const double c = node.cost + 1e-9 * static_cast<double>(node.leaf_count);
      if (c > best_cost) {
        best_cost = c;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // all frontier nodes are leaves
    const int node_id = frontier[static_cast<size_t>(best)];
    frontier[static_cast<size_t>(best)] = nodes_[node_id].left;
    frontier.push_back(nodes_[node_id].right);
  }
  clusters.reserve(frontier.size());
  for (int f : frontier) {
    std::vector<int> items;
    std::vector<int> stack = {f};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      if (nodes_[v].is_leaf()) {
        items.push_back(nodes_[v].item);
      } else {
        stack.push_back(nodes_[v].left);
        stack.push_back(nodes_[v].right);
      }
    }
    clusters.push_back(std::move(items));
  }
  return clusters;
}

clustering::ClusterTree PerchTree::ToClusterTree() const {
  clustering::ClusterTree tree;
  if (root_ < 0) return tree;
  // Post-order construction so children exist before their parent.
  std::vector<int> mapped(nodes_.size(), -1);
  std::vector<std::pair<int, bool>> stack = {{root_, false}};
  while (!stack.empty()) {
    auto [v, processed] = stack.back();
    stack.pop_back();
    if (!processed) {
      stack.push_back({v, true});
      if (!nodes_[v].is_leaf()) {
        stack.push_back({nodes_[v].left, false});
        stack.push_back({nodes_[v].right, false});
      }
      continue;
    }
    if (nodes_[v].is_leaf()) {
      mapped[v] = tree.AddLeaf(nodes_[v].item);
    } else {
      mapped[v] =
          tree.AddInternal({mapped[nodes_[v].left], mapped[nodes_[v].right]});
    }
  }
  tree.SetRoot(mapped[root_]);
  return tree;
}

Status PerchTree::Validate() const {
  if (root_ < 0) return Status::OK();
  size_t leaf_total = 0;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const Node& node = nodes_[v];
    if (node.is_leaf()) {
      if (node.item < 0) return Status::Internal("leaf without item");
      if (node.leaf_count != 1) return Status::Internal("leaf count != 1");
      ++leaf_total;
      continue;
    }
    if (node.right < 0) return Status::Internal("internal node not binary");
    if (nodes_[node.left].parent != v || nodes_[node.right].parent != v) {
      return Status::Internal("parent link mismatch");
    }
    if (node.leaf_count !=
        nodes_[node.left].leaf_count + nodes_[node.right].leaf_count) {
      return Status::Internal("leaf count mismatch");
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  if (leaf_total != leaves_.size()) {
    return Status::Internal("reachable leaves != stored leaves");
  }
  return Status::OK();
}

}  // namespace vz::index
