#ifndef VZ_INDEX_ITEM_METRIC_H_
#define VZ_INDEX_ITEM_METRIC_H_

#include <cstdint>

namespace vz::index {

/// Metric over integer item ids, with a cheap lower bound for pruning.
///
/// The index structures (PERCH tree, M-tree, NN-descent) are written against
/// this interface so they work for any metric space. Video-zilla binds it to
/// OMD over SVSs with the OCD lower bound (`vz::core::SvsMetric`); tests bind
/// it to plain Euclidean points.
class ItemMetric {
 public:
  virtual ~ItemMetric() = default;

  /// The full metric d(a, b). Must satisfy the metric axioms; the pruning
  /// correctness argument of Sec. 4.3 depends on the triangle inequality.
  virtual double Distance(int a, int b) = 0;

  /// A cheap lower bound on `Distance(a, b)` (OCD in the paper). The default
  /// returns 0, which disables pruning but stays correct.
  virtual double LowerBound(int a, int b) {
    (void)a;
    (void)b;
    return 0.0;
  }

  /// Number of full-metric evaluations performed so far (cache misses only,
  /// if the implementation memoizes). This is the cost axis of Figs. 13-14.
  virtual uint64_t num_distance_evals() const = 0;
};

}  // namespace vz::index

#endif  // VZ_INDEX_ITEM_METRIC_H_
