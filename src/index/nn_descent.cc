#include "index/nn_descent.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

namespace vz::index {

NnDescentGraph::NnDescentGraph(ItemMetric* metric,
                               const NnDescentOptions& options)
    : metric_(metric), options_(options), rng_(options.seed) {
  if (options_.graph_degree < 1) options_.graph_degree = 1;
}

bool NnDescentGraph::TryInsert(size_t u, size_t idx, double dist) {
  if (u == idx) return false;
  auto& list = graph_[u];
  for (const Neighbor& nb : list) {
    if (nb.index == idx) return false;
  }
  if (list.size() < options_.graph_degree) {
    list.push_back({dist, idx, true});
    std::push_heap(list.begin(), list.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.dist < b.dist;  // max-heap by distance
                   });
    return true;
  }
  if (dist >= list.front().dist) return false;
  std::pop_heap(list.begin(), list.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.dist < b.dist;
                });
  list.back() = {dist, idx, true};
  std::push_heap(list.begin(), list.end(),
                 [](const Neighbor& a, const Neighbor& b) {
                   return a.dist < b.dist;
                 });
  return true;
}

Status NnDescentGraph::Build(const std::vector<int>& items) {
  if (built_) return Status::FailedPrecondition("Build called twice");
  if (items.empty()) return Status::InvalidArgument("no items to index");
  built_ = true;
  items_ = items;
  const size_t n = items_.size();
  for (size_t i = 0; i < n; ++i) index_of_item_[items_[i]] = i;
  graph_.assign(n, {});

  // Random initialization.
  for (size_t u = 0; u < n; ++u) {
    while (graph_[u].size() < std::min(options_.graph_degree, n - 1)) {
      const size_t v = static_cast<size_t>(rng_.UniformUint64(n));
      if (v == u) continue;
      bool duplicate = false;
      for (const Neighbor& nb : graph_[u]) duplicate |= (nb.index == v);
      if (duplicate) continue;
      TryInsert(u, v, metric_->Distance(items_[u], items_[v]));
    }
  }

  // Local joins: new neighbors (and their reverse edges) are compared
  // against each other and against old neighbors.
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<std::vector<size_t>> new_of(n);
    std::vector<std::vector<size_t>> old_of(n);
    for (size_t u = 0; u < n; ++u) {
      for (Neighbor& nb : graph_[u]) {
        if (nb.is_new) {
          new_of[u].push_back(nb.index);
          new_of[nb.index].push_back(u);  // reverse edge
          nb.is_new = false;
        } else {
          old_of[u].push_back(nb.index);
          old_of[nb.index].push_back(u);
        }
      }
    }
    size_t updates = 0;
    for (size_t u = 0; u < n; ++u) {
      auto& news = new_of[u];
      auto& olds = old_of[u];
      std::sort(news.begin(), news.end());
      news.erase(std::unique(news.begin(), news.end()), news.end());
      std::sort(olds.begin(), olds.end());
      olds.erase(std::unique(olds.begin(), olds.end()), olds.end());
      for (size_t i = 0; i < news.size(); ++i) {
        for (size_t j = i + 1; j < news.size(); ++j) {
          const double d =
              metric_->Distance(items_[news[i]], items_[news[j]]);
          updates += TryInsert(news[i], news[j], d);
          updates += TryInsert(news[j], news[i], d);
        }
        for (size_t o : olds) {
          if (o == news[i]) continue;
          const double d = metric_->Distance(items_[news[i]], items_[o]);
          updates += TryInsert(news[i], o, d);
          updates += TryInsert(o, news[i], d);
        }
      }
    }
    if (static_cast<double>(updates) <
        options_.termination_fraction * static_cast<double>(n) *
            static_cast<double>(options_.graph_degree)) {
      break;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int>> NnDescentGraph::KNearestNeighbors(int target,
                                                             size_t k) {
  if (!built_) return Status::FailedPrecondition("graph not built");
  const size_t n = items_.size();
  k = std::min(k, n);
  const size_t beam = std::max(k, options_.search_beam);

  // Greedy best-first beam search from random entry points.
  struct Candidate {
    double dist;
    size_t index;
    bool operator>(const Candidate& other) const {
      return dist > other.dist;
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      frontier;
  std::priority_queue<std::pair<double, size_t>> best;  // max-heap, size beam
  std::unordered_set<size_t> visited;

  // A stored query enters at its own node, guaranteeing the search starts
  // in the correct graph component.
  auto self = index_of_item_.find(target);
  if (self != index_of_item_.end()) {
    visited.insert(self->second);
    frontier.push({0.0, self->second});
    best.emplace(0.0, self->second);
  }
  for (size_t e = 0; e < std::min(options_.search_entries, n); ++e) {
    const size_t start = static_cast<size_t>(rng_.UniformUint64(n));
    if (!visited.insert(start).second) continue;
    const double d = metric_->Distance(target, items_[start]);
    frontier.push({d, start});
    best.emplace(d, start);
  }
  while (!frontier.empty()) {
    const Candidate c = frontier.top();
    frontier.pop();
    if (best.size() >= beam && c.dist > best.top().first) break;
    for (const Neighbor& nb : graph_[c.index]) {
      if (!visited.insert(nb.index).second) continue;
      const double d = metric_->Distance(target, items_[nb.index]);
      if (best.size() < beam || d < best.top().first) {
        best.emplace(d, nb.index);
        if (best.size() > beam) best.pop();
        frontier.push({d, nb.index});
      }
    }
  }

  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(best.size());
  while (!best.empty()) {
    ranked.push_back(best.top());
    best.pop();
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> result;
  result.reserve(k);
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    result.push_back(items_[ranked[i].second]);
  }
  return result;
}

std::vector<int> NnDescentGraph::NeighborsOf(size_t index) const {
  std::vector<int> out;
  if (index >= graph_.size()) return out;
  for (const Neighbor& nb : graph_[index]) out.push_back(items_[nb.index]);
  return out;
}

}  // namespace vz::index
