#ifndef VZ_CLUSTERING_KMEANS_H_
#define VZ_CLUSTERING_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "vector/feature_vector.h"

namespace vz::clustering {

/// Parameters for Lloyd's algorithm with k-means++ seeding.
struct KMeansOptions {
  /// Number of clusters. Clamped to the number of points.
  size_t k = 2;
  /// Maximum Lloyd iterations.
  size_t max_iterations = 50;
  /// Convergence threshold on total centroid movement.
  double tolerance = 1e-6;
  /// Independent k-means++ restarts; the run with the lowest inertia wins.
  /// Restarts protect decision boundaries from the fat merged clusters a
  /// single unlucky seeding produces.
  size_t restarts = 2;
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster centers, `k` of them (possibly fewer if points < k).
  std::vector<FeatureVector> centroids;
  /// Cluster index per input point.
  std::vector<size_t> assignments;
  /// Number of members per cluster.
  std::vector<size_t> cluster_sizes;
  /// Sum of squared distances of points to their assigned centroid.
  double inertia = 0.0;
};

/// Runs weighted k-means++ / Lloyd over `points`.
///
/// `weights` may be empty (uniform) or one non-negative weight per point.
/// Deterministic given `rng`'s state. Errors on empty input or mismatched
/// weights.
StatusOr<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                              const std::vector<double>& weights,
                              const KMeansOptions& options, Rng* rng);

/// Unweighted convenience overload.
StatusOr<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                              const KMeansOptions& options, Rng* rng);

}  // namespace vz::clustering

#endif  // VZ_CLUSTERING_KMEANS_H_
