#ifndef VZ_CLUSTERING_CLUSTER_TREE_H_
#define VZ_CLUSTERING_CLUSTER_TREE_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"

namespace vz::clustering {

/// One node of a `ClusterTree`.
struct ClusterTreeNode {
  /// Parent node id, -1 for the root.
  int parent = -1;
  /// Child node ids; empty for leaves.
  std::vector<int> children;
  /// The item this leaf represents (>= 0), or -1 for internal nodes.
  int item = -1;
};

/// A rooted tree whose leaves are items — the common output shape of both
/// hierarchical agglomerative clustering and the PERCH index (Sec. 4.1:
/// "we organize SVSs with a tree"). Used by dendrogram-purity evaluation.
class ClusterTree {
 public:
  ClusterTree() = default;

  /// Adds a leaf for `item` (caller-chosen non-negative id). Returns node id.
  int AddLeaf(int item);

  /// Adds an internal node adopting `children` (their parents are updated).
  /// Returns node id.
  int AddInternal(const std::vector<int>& children);

  /// Declares `id` the root.
  void SetRoot(int id) { root_ = id; }

  /// The root node id, or -1 when unset.
  int root() const { return root_; }

  /// Total node count.
  size_t size() const { return nodes_.size(); }

  const ClusterTreeNode& node(int id) const { return nodes_[id]; }

  /// Items at the leaves under `id`, in DFS order.
  std::vector<int> LeafItemsUnder(int id) const;

  /// Number of leaves in the whole tree.
  size_t num_leaves() const { return num_leaves_; }

  /// Validates structural invariants: a single root, parent/child links
  /// consistent, every leaf has an item, no cycles.
  Status Validate() const;

 private:
  std::vector<ClusterTreeNode> nodes_;
  int root_ = -1;
  size_t num_leaves_ = 0;
};

}  // namespace vz::clustering

#endif  // VZ_CLUSTERING_CLUSTER_TREE_H_
