#include "clustering/hac.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace vz::clustering {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

StatusOr<HacResult> Hac(size_t n,
                        const std::function<double(size_t, size_t)>& distance,
                        Linkage linkage) {
  if (n == 0) return Status::InvalidArgument("HAC requires at least one item");
  HacResult result;

  // Leaves.
  std::vector<int> node_of(n);  // active-cluster slot -> ClusterTree node id
  for (size_t i = 0; i < n; ++i) {
    node_of[i] = result.tree.AddLeaf(static_cast<int>(i));
  }
  if (n == 1) {
    result.tree.SetRoot(node_of[0]);
    return result;
  }

  // Full distance matrix: the quadratic cost the paper's Fig. 12 measures.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = distance(i, j);
      dist[i][j] = d;
      dist[j][i] = d;
      ++result.num_distance_evals;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<double> cluster_size(n, 1.0);

  // Nearest-neighbor cache per active cluster.
  std::vector<size_t> nn(n, 0);
  std::vector<double> nn_dist(n, kInf);
  auto rescan_nn = [&](size_t i) {
    nn_dist[i] = kInf;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      if (dist[i][j] < nn_dist[i]) {
        nn_dist[i] = dist[i][j];
        nn[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) rescan_nn(i);

  for (size_t merge_round = 0; merge_round + 1 < n; ++merge_round) {
    // Global closest pair via the NN cache.
    size_t a = n;
    double best = kInf;
    for (size_t i = 0; i < n; ++i) {
      if (active[i] && nn_dist[i] < best) {
        best = nn_dist[i];
        a = i;
      }
    }
    const size_t b = nn[a];

    // Record the merge in the tree; merged cluster reuses slot `a`.
    const int merged_node =
        result.tree.AddInternal({node_of[a], node_of[b]});
    result.merges.push_back(
        {node_of[a], node_of[b], merged_node, best});
    node_of[a] = merged_node;

    // Lance-Williams row update.
    for (size_t x = 0; x < n; ++x) {
      if (!active[x] || x == a || x == b) continue;
      double d = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          d = std::min(dist[a][x], dist[b][x]);
          break;
        case Linkage::kComplete:
          d = std::max(dist[a][x], dist[b][x]);
          break;
        case Linkage::kAverage:
          d = (cluster_size[a] * dist[a][x] + cluster_size[b] * dist[b][x]) /
              (cluster_size[a] + cluster_size[b]);
          break;
      }
      dist[a][x] = d;
      dist[x][a] = d;
    }
    cluster_size[a] += cluster_size[b];
    active[b] = false;

    // Refresh NN caches invalidated by the merge.
    rescan_nn(a);
    for (size_t x = 0; x < n; ++x) {
      if (!active[x] || x == a) continue;
      if (nn[x] == a || nn[x] == b) {
        rescan_nn(x);
      } else if (dist[x][a] < nn_dist[x]) {
        nn[x] = a;
        nn_dist[x] = dist[x][a];
      }
    }
  }

  // Root is the final merged node.
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) {
      result.tree.SetRoot(node_of[i]);
      break;
    }
  }
  return result;
}

std::vector<size_t> HacFlatClusters(const HacResult& result, size_t n,
                                    size_t k) {
  k = std::max<size_t>(1, std::min(k, n));
  // Apply the first n-k merges with union-find over items.
  std::vector<size_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  const size_t merges_to_apply = n >= k ? n - k : 0;
  for (size_t m = 0; m < merges_to_apply && m < result.merges.size(); ++m) {
    // Union the leaf sets of the two merged subtrees: representative items.
    const auto left_items = result.tree.LeafItemsUnder(result.merges[m].left_node);
    const auto right_items =
        result.tree.LeafItemsUnder(result.merges[m].right_node);
    if (left_items.empty() || right_items.empty()) continue;
    uf[find(static_cast<size_t>(right_items[0]))] =
        find(static_cast<size_t>(left_items[0]));
  }
  // Compact representatives into 0..k-1.
  std::vector<size_t> labels(n);
  std::vector<long long> remap(n, -1);
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = find(i);
    if (remap[r] < 0) remap[r] = static_cast<long long>(next++);
    labels[i] = static_cast<size_t>(remap[r]);
  }
  return labels;
}

}  // namespace vz::clustering
