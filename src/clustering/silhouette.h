#ifndef VZ_CLUSTERING_SILHOUETTE_H_
#define VZ_CLUSTERING_SILHOUETTE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "vector/feature_vector.h"

namespace vz::clustering {

/// Pairwise distance between items `i` and `j`.
using ItemDistanceFn = std::function<double(size_t i, size_t j)>;

/// Mean silhouette value of a flat clustering (Rousseeuw 1987; adopted by the
/// paper in Sec. 3.3 to choose k).
///
/// For item i in cluster C_i: a(i) is the mean distance to other members of
/// C_i, b(i) the minimum over other clusters of the mean distance to that
/// cluster, and s(i) = (b - a) / max(a, b). Items in singleton clusters
/// contribute 0. Returns 0 when fewer than two clusters are populated.
StatusOr<double> SilhouetteScore(size_t num_items,
                                 const std::vector<size_t>& assignments,
                                 const ItemDistanceFn& distance);

/// Euclidean-space convenience overload.
StatusOr<double> SilhouetteScore(const std::vector<FeatureVector>& points,
                                 const std::vector<size_t>& assignments);

/// Result of a silhouette sweep over candidate k values.
struct SilhouetteSweepResult {
  /// The k maximizing the mean silhouette.
  size_t best_k = 0;
  /// Mean silhouette at `best_k`.
  double best_score = 0.0;
  /// (k, score) for every candidate evaluated, in ascending k.
  std::vector<std::pair<size_t, double>> scores;
};

/// Chooses k for k-means over `points` by maximizing the mean silhouette over
/// k in [min_k, max_k] (the silhouette method of Sec. 3.3). `max_k` is
/// clamped to `points.size() - 1`. Errors on fewer than 2 points.
StatusOr<SilhouetteSweepResult> ChooseKBySilhouette(
    const std::vector<FeatureVector>& points, size_t min_k, size_t max_k,
    Rng* rng);

}  // namespace vz::clustering

#endif  // VZ_CLUSTERING_SILHOUETTE_H_
