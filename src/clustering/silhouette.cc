#include "clustering/silhouette.h"

#include <algorithm>
#include <limits>

#include "clustering/kmeans.h"

namespace vz::clustering {

StatusOr<double> SilhouetteScore(size_t num_items,
                                 const std::vector<size_t>& assignments,
                                 const ItemDistanceFn& distance) {
  if (assignments.size() != num_items) {
    return Status::InvalidArgument("assignments size mismatch");
  }
  if (num_items == 0) return Status::InvalidArgument("no items");
  size_t num_clusters = 0;
  for (size_t a : assignments) num_clusters = std::max(num_clusters, a + 1);
  std::vector<size_t> sizes(num_clusters, 0);
  for (size_t a : assignments) sizes[a]++;
  size_t populated = 0;
  for (size_t s : sizes) populated += (s > 0);
  if (populated < 2) return 0.0;

  double total = 0.0;
  for (size_t i = 0; i < num_items; ++i) {
    const size_t ci = assignments[i];
    if (sizes[ci] <= 1) continue;  // singleton contributes s(i) = 0
    // Mean distance from i to every cluster.
    std::vector<double> sum_to(num_clusters, 0.0);
    for (size_t j = 0; j < num_items; ++j) {
      if (j == i) continue;
      sum_to[assignments[j]] += distance(i, j);
    }
    const double a = sum_to[ci] / static_cast<double>(sizes[ci] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < num_clusters; ++c) {
      if (c == ci || sizes[c] == 0) continue;
      b = std::min(b, sum_to[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(num_items);
}

StatusOr<double> SilhouetteScore(const std::vector<FeatureVector>& points,
                                 const std::vector<size_t>& assignments) {
  return SilhouetteScore(points.size(), assignments,
                         [&points](size_t i, size_t j) {
                           return EuclideanDistance(points[i], points[j]);
                         });
}

StatusOr<SilhouetteSweepResult> ChooseKBySilhouette(
    const std::vector<FeatureVector>& points, size_t min_k, size_t max_k,
    Rng* rng) {
  if (points.size() < 2) {
    return Status::InvalidArgument("silhouette sweep needs >= 2 points");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("silhouette sweep requires an Rng");
  }
  min_k = std::max<size_t>(2, min_k);
  max_k = std::min(max_k, points.size() - 1);
  if (min_k > max_k) max_k = min_k;

  SilhouetteSweepResult sweep;
  sweep.best_score = -std::numeric_limits<double>::infinity();
  for (size_t k = min_k; k <= max_k; ++k) {
    KMeansOptions options;
    options.k = k;
    VZ_ASSIGN_OR_RETURN(KMeansResult km, KMeans(points, options, rng));
    VZ_ASSIGN_OR_RETURN(double score,
                        SilhouetteScore(points, km.assignments));
    sweep.scores.emplace_back(k, score);
    if (score > sweep.best_score) {
      sweep.best_score = score;
      sweep.best_k = k;
    }
  }
  return sweep;
}

}  // namespace vz::clustering
