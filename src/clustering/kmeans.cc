#include "clustering/kmeans.h"

#include <algorithm>
#include <limits>

namespace vz::clustering {

namespace {

// k-means++ seeding: first center uniform (by weight), subsequent centers
// sampled proportionally to weighted squared distance to the nearest chosen
// center.
std::vector<size_t> SeedPlusPlus(const std::vector<FeatureVector>& points,
                                 const std::vector<double>& weights, size_t k,
                                 Rng* rng) {
  std::vector<size_t> centers;
  centers.reserve(k);
  centers.push_back(rng->WeightedIndex(weights));
  std::vector<double> min_sq(points.size(),
                             std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    const FeatureVector& last = points[centers.back()];
    std::vector<double> sampling(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      min_sq[i] = std::min(min_sq[i], SquaredDistance(points[i], last));
      sampling[i] = min_sq[i] * weights[i];
    }
    double total = 0.0;
    for (double s : sampling) total += s;
    if (total <= 0.0) {
      // All remaining points coincide with a chosen center; pick arbitrarily.
      centers.push_back(rng->WeightedIndex(weights));
    } else {
      centers.push_back(rng->WeightedIndex(sampling));
    }
  }
  return centers;
}

}  // namespace

namespace {
StatusOr<KMeansResult> KMeansOnce(const std::vector<FeatureVector>& points,
                                  const std::vector<double>& weights,
                                  const KMeansOptions& options, Rng* rng);
}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                              const std::vector<double>& weights,
                              const KMeansOptions& options, Rng* rng) {
  const size_t restarts = std::max<size_t>(1, options.restarts);
  StatusOr<KMeansResult> best = Status::Internal("no k-means run");
  for (size_t r = 0; r < restarts; ++r) {
    auto run = KMeansOnce(points, weights, options, rng);
    if (!run.ok()) return run;
    if (!best.ok() || run->inertia < best->inertia) best = std::move(run);
  }
  return best;
}

namespace {
StatusOr<KMeansResult> KMeansOnce(const std::vector<FeatureVector>& points,
                                  const std::vector<double>& weights,
                                  const KMeansOptions& options, Rng* rng) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means requires at least one point");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("k-means requires an Rng");
  }
  std::vector<double> w = weights;
  if (w.empty()) {
    w.assign(points.size(), 1.0);
  } else if (w.size() != points.size()) {
    return Status::InvalidArgument("weights size must match points size");
  }
  for (double x : w) {
    if (x < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }

  const size_t k = std::max<size_t>(1, std::min(options.k, points.size()));
  const size_t dim = points[0].dim();

  KMeansResult result;
  const std::vector<size_t> seeds = SeedPlusPlus(points, w, k, rng);
  result.centroids.reserve(k);
  for (size_t s : seeds) result.centroids.push_back(points[s]);
  result.assignments.assign(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
    }
    // Update step (weighted means).
    std::vector<FeatureVector> next(k, FeatureVector(dim));
    std::vector<double> mass(k, 0.0);
    for (size_t i = 0; i < points.size(); ++i) {
      next[result.assignments[i]].Axpy(w[i], points[i]);
      mass[result.assignments[i]] += w[i];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (mass[c] > 0.0) {
        next[c].Scale(1.0 / mass[c]);
      } else {
        next[c] = result.centroids[c];  // empty cluster keeps its center
      }
      movement += EuclideanDistance(next[c], result.centroids[c]);
    }
    result.centroids = std::move(next);
    if (movement <= options.tolerance) break;
  }

  // Final assignment, sizes and inertia.
  result.cluster_sizes.assign(k, 0);
  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const double d = SquaredDistance(points[i], result.centroids[c]);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    result.assignments[i] = best_c;
    result.cluster_sizes[best_c]++;
    result.inertia += best * w[i];
  }
  return result;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<FeatureVector>& points,
                              const KMeansOptions& options, Rng* rng) {
  return KMeans(points, {}, options, rng);
}

}  // namespace vz::clustering
