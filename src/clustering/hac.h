#ifndef VZ_CLUSTERING_HAC_H_
#define VZ_CLUSTERING_HAC_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "clustering/cluster_tree.h"
#include "common/statusor.h"

namespace vz::clustering {

/// Linkage criterion for hierarchical agglomerative clustering. The paper
/// compares Video-zilla against all three (Fig. 12, "HAC algorithms with
/// differing linkage choices").
enum class Linkage { kSingle, kComplete, kAverage };

/// Output of one HAC run.
struct HacResult {
  /// Binary merge tree: leaves are items 0..n-1, root covers everything.
  ClusterTree tree;
  /// One record per merge, in merge order.
  struct Merge {
    int left_node = 0;   // ClusterTree node id
    int right_node = 0;  // ClusterTree node id
    int merged_node = 0;
    double height = 0.0;  // linkage distance at which the merge happened
  };
  std::vector<Merge> merges;
  /// Number of calls made to the pairwise distance function — the dominant
  /// cost when the metric is OMD (quadratic in n; Fig. 12's overhead axis).
  uint64_t num_distance_evals = 0;
};

/// Runs bottom-up agglomerative clustering over items 0..n-1 with the given
/// linkage, using Lance-Williams updates on a full distance matrix.
///
/// Calls `distance(i, j)` exactly n(n-1)/2 times. Errors on n == 0.
StatusOr<HacResult> Hac(size_t n,
                        const std::function<double(size_t, size_t)>& distance,
                        Linkage linkage);

/// Flat clustering with `k` clusters obtained by undoing the last k-1 merges.
/// Returns one cluster index (0..k-1) per item. `k` is clamped to [1, n].
std::vector<size_t> HacFlatClusters(const HacResult& result, size_t n,
                                    size_t k);

}  // namespace vz::clustering

#endif  // VZ_CLUSTERING_HAC_H_
