#ifndef VZ_CLUSTERING_DENDROGRAM_PURITY_H_
#define VZ_CLUSTERING_DENDROGRAM_PURITY_H_

#include <vector>

#include "clustering/cluster_tree.h"
#include "common/statusor.h"

namespace vz::clustering {

/// Exact dendrogram purity (Heller & Ghahramani 2005; Sec. 4.1 of the paper)
/// of `tree` with respect to ground-truth `labels`.
///
/// `labels[item]` is the ground-truth cluster of the item stored at each
/// leaf. The purity is the expectation, over pairs of same-label items, of
/// the fraction of their least-common-ancestor's leaves sharing that label.
/// Computed exactly in O(nodes x classes) by aggregating per-class leaf
/// counts bottom-up. Returns 1.0 when no label has two items (no pairs).
StatusOr<double> DendrogramPurity(const ClusterTree& tree,
                                  const std::vector<int>& labels);

}  // namespace vz::clustering

#endif  // VZ_CLUSTERING_DENDROGRAM_PURITY_H_
