#include "clustering/cluster_tree.h"

#include <string>

namespace vz::clustering {

int ClusterTree::AddLeaf(int item) {
  ClusterTreeNode node;
  node.item = item;
  nodes_.push_back(node);
  ++num_leaves_;
  return static_cast<int>(nodes_.size()) - 1;
}

int ClusterTree::AddInternal(const std::vector<int>& children) {
  const int id = static_cast<int>(nodes_.size());
  ClusterTreeNode node;
  node.children = children;
  nodes_.push_back(node);
  for (int c : children) nodes_[c].parent = id;
  return id;
}

std::vector<int> ClusterTree::LeafItemsUnder(int id) const {
  std::vector<int> items;
  std::vector<int> stack = {id};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const ClusterTreeNode& n = nodes_[v];
    if (n.children.empty()) {
      if (n.item >= 0) items.push_back(n.item);
    } else {
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return items;
}

Status ClusterTree::Validate() const {
  if (nodes_.empty()) return Status::OK();
  if (root_ < 0 || root_ >= static_cast<int>(nodes_.size())) {
    return Status::FailedPrecondition("root unset or out of range");
  }
  if (nodes_[root_].parent != -1) {
    return Status::FailedPrecondition("root has a parent");
  }
  size_t reachable = 0;
  std::vector<int> stack = {root_};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (seen[v]) return Status::FailedPrecondition("cycle detected");
    seen[v] = true;
    ++reachable;
    const ClusterTreeNode& n = nodes_[v];
    if (n.children.empty() && n.item < 0) {
      return Status::FailedPrecondition("leaf without item: node " +
                                        std::to_string(v));
    }
    for (int c : n.children) {
      if (c < 0 || c >= static_cast<int>(nodes_.size())) {
        return Status::FailedPrecondition("child id out of range");
      }
      if (nodes_[c].parent != v) {
        return Status::FailedPrecondition("parent link mismatch at node " +
                                          std::to_string(c));
      }
      stack.push_back(c);
    }
  }
  // Nodes not reachable from the root are allowed only if they are the root
  // of nothing (e.g. detached during rotations); for a finished tree all
  // nodes should be reachable.
  if (reachable != nodes_.size()) {
    return Status::FailedPrecondition("unreachable nodes present");
  }
  return Status::OK();
}

}  // namespace vz::clustering
