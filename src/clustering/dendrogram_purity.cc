#include "clustering/dendrogram_purity.h"

#include <algorithm>

namespace vz::clustering {

StatusOr<double> DendrogramPurity(const ClusterTree& tree,
                                  const std::vector<int>& labels) {
  VZ_RETURN_IF_ERROR(tree.Validate());
  if (tree.size() == 0) return 1.0;

  int num_classes = 0;
  for (int label : labels) {
    if (label < 0) return Status::InvalidArgument("labels must be >= 0");
    num_classes = std::max(num_classes, label + 1);
  }

  const size_t n = tree.size();
  // Per-node per-class leaf counts and per-node leaf totals.
  std::vector<std::vector<double>> count(
      n, std::vector<double>(static_cast<size_t>(num_classes), 0.0));
  std::vector<double> leaves(n, 0.0);

  // Iterative post-order: push node twice, process on second visit.
  double numerator = 0.0;
  std::vector<std::pair<int, bool>> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    auto [v, processed] = stack.back();
    stack.pop_back();
    const ClusterTreeNode& node = tree.node(v);
    if (!processed) {
      stack.emplace_back(v, true);
      for (int c : node.children) stack.emplace_back(c, false);
      continue;
    }
    if (node.children.empty()) {
      if (node.item < 0 || node.item >= static_cast<int>(labels.size())) {
        return Status::InvalidArgument("leaf item has no label");
      }
      count[v][static_cast<size_t>(labels[node.item])] = 1.0;
      leaves[v] = 1.0;
      continue;
    }
    for (int c : node.children) {
      leaves[v] += leaves[c];
      for (int cls = 0; cls < num_classes; ++cls) {
        count[v][cls] += count[c][cls];
      }
    }
    // Same-class pairs whose LCA is v: total pairs within v minus pairs
    // already internal to one child.
    for (int cls = 0; cls < num_classes; ++cls) {
      double pairs_here = count[v][cls] * count[v][cls];
      for (int c : node.children) {
        pairs_here -= count[c][cls] * count[c][cls];
      }
      pairs_here /= 2.0;
      if (pairs_here > 0.0 && leaves[v] > 0.0) {
        numerator += pairs_here * (count[v][cls] / leaves[v]);
      }
    }
  }

  // Total same-class pairs across the whole tree.
  double denominator = 0.0;
  const int root = tree.root();
  for (int cls = 0; cls < num_classes; ++cls) {
    const double c = count[root][cls];
    denominator += c * (c - 1.0) / 2.0;
  }
  if (denominator <= 0.0) return 1.0;
  return numerator / denominator;
}

}  // namespace vz::clustering
