#ifndef VZ_NET_WIRE_H_
#define VZ_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/frame.h"
#include "core/inter_camera_index.h"
#include "core/query.h"
#include "core/representative.h"
#include "core/svs.h"
#include "core/videozilla.h"
#include "io/binary_format.h"
#include "io/wal.h"
#include "vector/feature_map.h"
#include "vector/feature_vector.h"

namespace vz::net {

/// Wire protocol of the Video-zilla serving layer (see DESIGN.md, "Network
/// service"). Every message travels as one length-prefixed, CRC32-framed
/// frame:
///
///   u32 magic ("VZRP") | u32 type | u64+bytes payload (length-prefixed) |
///   u32 crc
///
/// The CRC covers type, payload length and payload bytes, so a bit flip
/// anywhere in a frame (including in the framing fields themselves) is
/// detected. Payloads are encoded with `io::BinaryWriter` — the same
/// little-endian primitives as the snapshot format — and decoded by
/// overflow-safe `io::BinaryReader` accessors, so a corrupted length can
/// never turn into a wild read or a giant allocation.
///
/// Decode failure taxonomy (relied on by the frame fuzzer):
///   kDataLoss        — the bytes are torn or corrupted (truncated frame,
///                      CRC mismatch, connection closed mid-frame)
///   kInvalidArgument — the bytes are whole but not a frame we understand
///                      (bad magic, unknown type, oversized length,
///                      malformed payload)
/// Neither case may crash, hang, or desync subsequent frames sharing the
/// buffer: a successful decode always consumes exactly one frame.

inline constexpr uint32_t kWireMagic = 0x565A5250;  // "VZRP"

/// Magic of the v5 multiplexed frame layout (see below). A distinct magic
/// keeps the two layouts unambiguous at the byte level: a buffer can never
/// parse as both, so the fuzzer and any frame-level tooling need no
/// out-of-band framing hint.
inline constexpr uint32_t kWireMagicV5 = 0x565A5235;  // "VZR5"

/// Protocol version, negotiated by the Hello exchange: the client announces
/// its version, the server accepts only an exact match and always reports
/// its own version in the HelloAck so mismatched clients can print a useful
/// error.
///
/// v2: mutating request payloads start with an idempotency token
/// (session id + sequence number), the Monitor reply carries the serving
/// layer's connection registry, and `kPing` exists as a keepalive.
///
/// v3: `kWalShip` exists (warm standbys tail the primary's write-ahead log),
/// and the Monitor reply's serving stats carry the durability counters
/// (WAL appends/fsyncs/replays/salvage, checkpoint count, LSN frontiers,
/// replication lag, server role).
///
/// v4: sharded deployment. `kRepSync` ships an edge's inter-camera
/// representative entries to a coordinator, `kSvsFeatureMap` fetches one
/// stored SVS's feature map (cross-shard clustering queries), and
/// `kCheckpointFetch` ships the newest checkpoint pair (standby re-seed
/// after compaction outran its cursor). `kWalShip` carries a promotion
/// epoch in both directions — the fencing token that refuses a demoted
/// primary — and the Monitor reply's serving stats carry a coordinator's
/// per-shard health table.
///
/// v5: multiplexed framing and server push. After a v5 Hello (which still
/// travels in the legacy layout, so negotiation itself is
/// version-independent) both sides switch to the v5 frame layout:
///
///   u32 magic ("VZR5") | u32 type | u64 correlation | u64+bytes payload |
///   u32 crc
///
/// The correlation id ties a response to its request, so one connection can
/// carry concurrent in-flight RPCs; `kPushEvent` frames arrive
/// asynchronously, tagged with the correlation id of the `kSubscribe` call
/// that registered the standing query. New RPCs: `kSubscribe` /
/// `kUnsubscribe` (standing queries with server-push match and stats
/// delivery), `kIngestBatch` (N frames per RPC), and `kAdminTune` (live
/// index-mode administration). A server accepts v4 *or* v5 Hellos and keeps
/// the legacy one-frame-at-a-time layout for v4 peers.
inline constexpr uint32_t kProtocolVersion = 5;

/// The oldest client protocol version a v5 server still serves.
inline constexpr uint32_t kMinProtocolVersion = 4;

/// Upper bound on a frame payload; a length field beyond this is rejected
/// before any allocation (it is either corruption the CRC would also catch
/// or a hostile peer).
inline constexpr uint64_t kMaxPayloadBytes = 64ull << 20;

/// Request message types. A response reuses its request's type value with
/// `kResponseFlag` set. Values are wire-stable: append, never renumber.
enum class MsgType : uint32_t {
  kHello = 1,
  kCameraStart = 2,
  kCameraTerminate = 3,
  kIngestFrame = 4,
  kFlush = 5,
  kDirectQuery = 6,
  kClusteringQueryById = 7,
  kClusteringQueryByMap = 8,
  kGetMetaData = 9,
  kMonitorStats = 10,
  kCameraHealth = 11,
  kQueryLoadStats = 12,
  kSnapshotSave = 13,
  kSnapshotLoad = 14,
  /// Keepalive: an empty request answered with an OK status. Resets the
  /// server's idle clock without touching any state, so a client that is
  /// between requests can fend off idle eviction.
  kPing = 15,
  /// Log shipping (v3): a standby asks for WAL records starting after a
  /// given LSN. The `from` LSN doubles as a windowed ack — everything at or
  /// below it is durably applied on the standby, which lets a semi-sync
  /// primary release acks waiting on replication. Token-free: re-reading a
  /// log window is harmless.
  kWalShip = 16,
  /// Representative sync (v4): a coordinator asks an edge for its
  /// inter-camera representative entries. The request carries the index
  /// version of the last sync; an unchanged index answers with a small
  /// "unchanged" reply instead of re-shipping every entry. Token-free.
  kRepSync = 17,
  /// Fetch one stored SVS's feature map by id (v4) — how a coordinator
  /// resolves the target of a by-id clustering query that lives on another
  /// shard. Token-free.
  kSvsFeatureMap = 18,
  /// Fetch the newest valid checkpoint pair (snapshot + manifest bytes) of
  /// a WAL-backed server (v4) — the standby re-seed path once compaction
  /// has outrun its replication cursor. Token-free.
  kCheckpointFetch = 19,
  /// Register a standing query (v5): the server pushes `kPushEvent` frames
  /// — tagged with this request's correlation id — as ingestion finalizes
  /// matching segments. Token-free: subscription state is connection-scoped
  /// and dies with the connection, so a retry after reconnect re-registers
  /// rather than duplicating.
  kSubscribe = 20,
  /// Cancel a standing query by subscription id (v5). Token-free (cancelling
  /// twice is harmless).
  kUnsubscribe = 21,
  /// Batched ingest (v5): N frame observations in one RPC, acknowledged with
  /// per-batch accept/reject counts. Mutating and tokened — the batch is the
  /// exactly-once unit, and it rides the WAL like `kIngestFrame`.
  kIngestBatch = 22,
  /// Live administration (v5): apply the performance monitor's adjustment
  /// ladder (OMD mode, boundary scale, keyframe toggles, clustering counts)
  /// over the wire. Mutating and tokened, but NOT WAL-logged: tuning knobs
  /// are operator state, not corpus state, and must not replay into a
  /// recovered server that the operator never retuned.
  kAdminTune = 23,
  /// Asynchronous server→client push (v5 only): a match, stats update, or
  /// gap marker for one subscription. Never a request; never acknowledged.
  kPushEvent = 24,
};

inline constexpr uint32_t kResponseFlag = 0x80000000u;

/// True when `type` (with or without the response flag) names a known
/// message type.
bool IsKnownMessageType(uint32_t type);

/// True for RPCs that change server state (camera lifecycle, ingest, flush,
/// snapshot save/load). Exactly these carry an idempotency token at the
/// start of their request payload; queries and stats reads stay token-free
/// (re-executing them is harmless).
bool IsMutatingType(uint32_t type);

/// Idempotency token stamped by `net::Client` on every mutating request:
/// a session id unique to the client instance plus a sequence number that
/// increases by one per logical call (retries of the same call re-send the
/// same sequence). The server deduplicates on (session, sequence) within a
/// bounded window and replays the cached response for duplicates, making
/// reconnect-retries exactly-once.
struct IdempotencyToken {
  uint64_t session_id = 0;
  uint64_t sequence = 0;
};

void EncodeIdempotencyToken(io::BinaryWriter* writer,
                            const IdempotencyToken& token);
StatusOr<IdempotencyToken> DecodeIdempotencyToken(io::BinaryReader* reader);

/// Stable numeric mapping of `StatusCode` for the wire. The in-memory enum
/// is free to reorder; these values are part of the protocol and must not
/// change. Unknown incoming values map to `kInternal`.
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

/// Status as carried in every response payload: the code (wire-mapped), the
/// message, and — for `kResourceExhausted` sheds — the server's retry-after
/// hint, which clients feed into their capped exponential backoff.
struct WireStatus {
  Status status;
  int64_t retry_after_ms = 0;
};

void EncodeWireStatus(io::BinaryWriter* writer, const WireStatus& status);
StatusOr<WireStatus> DecodeWireStatus(io::BinaryReader* reader);

/// One decoded frame.
struct WireFrame {
  uint32_t type = 0;
  std::string payload;
};

/// Encodes one frame (header, length-prefixed payload, CRC).
std::string EncodeFrame(uint32_t type, const std::string& payload);

/// Decodes exactly one frame from `reader` (which may hold a whole stream of
/// concatenated frames). See the failure taxonomy above.
StatusOr<WireFrame> DecodeFrame(io::BinaryReader* reader);

/// Socket-level frame I/O (blocking). `ReadFrame` returns `kNotFound` when
/// the peer closed cleanly between frames and `kDataLoss` when it closed
/// mid-frame. With `timeout_ms >= 0` the whole frame must be written/read
/// within that budget (measured from entry); expiry yields `kUnavailable` —
/// the supervision signal for slow, stalled or blackholed peers. A trickled
/// header counts against the same budget as the payload, so a slow-loris
/// sender cannot hold a connection open indefinitely.
Status WriteFrame(int fd, uint32_t type, const std::string& payload,
                  int64_t timeout_ms = -1);
StatusOr<WireFrame> ReadFrame(int fd, int64_t timeout_ms = -1);

/// Bytes `EncodeFrame` produces for a payload of `payload_bytes`: magic,
/// type, length prefix, payload, CRC. Used by the serving layer's
/// per-connection byte accounting.
inline constexpr uint64_t WireFrameBytes(uint64_t payload_bytes) {
  return sizeof(uint32_t) * 2 + sizeof(uint64_t) + payload_bytes +
         sizeof(uint32_t);
}

// --- v5 multiplexed framing. ---

/// One decoded v5 frame: type, correlation id, payload. For responses the
/// correlation id echoes the request's; for `kPushEvent` it names the
/// subscription's originating `kSubscribe` call.
struct WireFrameV5 {
  uint32_t type = 0;
  uint64_t correlation = 0;
  std::string payload;
};

/// Encodes one v5 frame (magic "VZR5", type, correlation, length-prefixed
/// payload, CRC over everything after the magic).
std::string EncodeFrameV5(uint32_t type, uint64_t correlation,
                          const std::string& payload);

/// Decodes exactly one v5 frame from `reader`. Same failure taxonomy as
/// `DecodeFrame`; a legacy "VZRP" magic is `kInvalidArgument` (whole but
/// alien), not data loss.
StatusOr<WireFrameV5> DecodeFrameV5(io::BinaryReader* reader);

/// Socket-level v5 frame I/O, with the same deadline and error semantics as
/// `WriteFrame`/`ReadFrame`.
Status WriteFrameV5(int fd, uint32_t type, uint64_t correlation,
                    const std::string& payload, int64_t timeout_ms = -1);
StatusOr<WireFrameV5> ReadFrameV5(int fd, int64_t timeout_ms = -1);

/// Gathered write of pre-encoded frames (v4 or v5 — the bytes already carry
/// their layout): one sendmsg-backed burst instead of one syscall per frame.
/// The push-delivery path drains a subscriber's queue through this.
Status WriteEncodedFrames(int fd, const std::vector<std::string>& frames,
                          int64_t timeout_ms = -1);

/// Bytes `EncodeFrameV5` produces for a payload of `payload_bytes`.
inline constexpr uint64_t WireFrameBytesV5(uint64_t payload_bytes) {
  return WireFrameBytes(payload_bytes) + sizeof(uint64_t);
}

// --- Payload codecs. Every request/response body used by the RPCs. ---

void EncodeFeatureVector(io::BinaryWriter* writer, const FeatureVector& v);
StatusOr<FeatureVector> DecodeFeatureVector(io::BinaryReader* reader);

void EncodeFeatureMap(io::BinaryWriter* writer, const FeatureMap& map);
StatusOr<FeatureMap> DecodeFeatureMap(io::BinaryReader* reader);

void EncodeFrameObservation(io::BinaryWriter* writer,
                            const core::FrameObservation& frame);
StatusOr<core::FrameObservation> DecodeFrameObservation(
    io::BinaryReader* reader);

/// Camera/time/deadline qualifiers travel on the wire; the external
/// `cancel` token does not (a remote caller cancels by deadline or by
/// dropping the connection).
void EncodeQueryConstraints(io::BinaryWriter* writer,
                            const core::QueryConstraints& constraints);
StatusOr<core::QueryConstraints> DecodeQueryConstraints(
    io::BinaryReader* reader);

void EncodeDirectQueryResult(io::BinaryWriter* writer,
                             const core::DirectQueryResult& result);
StatusOr<core::DirectQueryResult> DecodeDirectQueryResult(
    io::BinaryReader* reader);

void EncodeClusteringQueryResult(io::BinaryWriter* writer,
                                 const core::ClusteringQueryResult& result);
StatusOr<core::ClusteringQueryResult> DecodeClusteringQueryResult(
    io::BinaryReader* reader);

void EncodeSvsMetadata(io::BinaryWriter* writer,
                       const core::SvsMetadata& meta);
StatusOr<core::SvsMetadata> DecodeSvsMetadata(io::BinaryReader* reader);

void EncodeQueryLoadStats(io::BinaryWriter* writer,
                          const core::QueryLoadStats& stats);
StatusOr<core::QueryLoadStats> DecodeQueryLoadStats(io::BinaryReader* reader);

/// One live connection as reported by the serving layer's registry: its
/// lifetime, recency and traffic counters, for operator dashboards and the
/// supervision tests.
struct ConnectionInfo {
  uint64_t id = 0;
  int64_t age_ms = 0;
  int64_t idle_ms = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t rpcs = 0;
};

/// Shard health ladder (v4), as maintained by a coordinator's EdgeRegistry
/// and surfaced through its Monitor reply. Values are wire-stable.
enum class ShardState : uint32_t {
  /// Answering RPCs, representatives fresh: full fan-out member.
  kHealthy = 0,
  /// Answering RPCs but representatives stale past the staleness bound
  /// (or first errors seen): still fanned out, flagged for operators.
  kDegraded = 1,
  /// Consecutive failures crossed the threshold: evicted from fan-out,
  /// probed with seeded backoff until it answers again.
  kUnreachable = 2,
};

/// One edge shard's row in the coordinator's Monitor reply.
struct ShardHealthInfo {
  std::string host;
  uint32_t port = 0;
  ShardState state = ShardState::kHealthy;
  /// Consecutive RPC failures (resets on any success).
  uint64_t consecutive_failures = 0;
  /// Milliseconds since the last successful rep-sync; -1 = never synced.
  int64_t rep_staleness_ms = -1;
  /// Representative entries currently held for this shard.
  uint64_t rep_entries = 0;
  /// Cameras known to live on this shard (from its CameraHealth report).
  uint64_t cameras = 0;
};

/// The serving role a server reports in its Monitor reply (v3).
enum class ServerRole : uint32_t {
  /// Accepting client traffic; the authority for its WAL.
  kPrimary = 0,
  /// Tailing a primary's WAL; not listening for clients.
  kStandby = 1,
  /// A standby that took over the primary's port after a failover.
  kPromoted = 2,
};

/// Serving-layer counters carried in the Monitor reply (v2): connection
/// lifecycle totals, supervision evictions, exactly-once replays, and the
/// per-connection registry snapshot. v3 appends the durability counters;
/// they are all zero when the server runs without a WAL.
struct ServingStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;
  uint64_t connections_evicted_idle = 0;
  uint64_t connections_evicted_slow = 0;
  uint64_t duplicates_replayed = 0;
  uint64_t pings_served = 0;
  uint64_t sessions_active = 0;
  uint64_t sessions_evicted = 0;
  // v3 durability counters.
  ServerRole role = ServerRole::kPrimary;
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  /// Records re-applied from the log during crash recovery.
  uint64_t wal_replayed_records = 0;
  /// Bytes of torn/corrupt log tail discarded during recovery.
  uint64_t wal_salvaged_bytes = 0;
  /// Checkpoints (snapshot + manifest) taken since start.
  uint64_t wal_checkpoints = 0;
  uint64_t wal_last_lsn = 0;
  uint64_t wal_durable_lsn = 0;
  /// Standby only: durable primary records not yet applied locally.
  uint64_t replication_lag_records = 0;
  /// Standby only (v4): automatic checkpoint re-seeds after compaction
  /// outran the replication cursor.
  uint64_t replication_reseeds = 0;
  std::vector<ConnectionInfo> connections;
  /// Coordinator only (v4): the per-shard health table (empty on edges).
  std::vector<ShardHealthInfo> shards;
  // v5 subscription counters (appended at the end of the encoding so v4
  // decoders that stop after `shards` still parse the prefix).
  uint64_t subscriptions_active = 0;
  uint64_t subscriptions_total = 0;
  /// Push frames written to subscribers.
  uint64_t pushes_sent = 0;
  /// Events dropped from full subscriber queues (each run of drops is
  /// summarized by one gap marker).
  uint64_t push_drops = 0;
  uint64_t push_gaps_sent = 0;
  /// kIngestBatch requests served.
  uint64_t ingest_batches = 0;
};

/// Body of the Monitor RPC: the system-wide gauges an operator dashboard
/// polls (ingestion counters, OMD cache effectiveness, corpus size) plus
/// the serving layer's supervision stats.
struct MonitorStatsReply {
  core::IngestStats ingest;
  core::OmdCacheStats cache;
  uint64_t svs_count = 0;
  uint64_t camera_count = 0;
  int64_t now_ms = 0;
  ServingStats serving;
};

void EncodeMonitorStats(io::BinaryWriter* writer,
                        const MonitorStatsReply& stats);
StatusOr<MonitorStatsReply> DecodeMonitorStats(io::BinaryReader* reader);

/// Body of the CameraHealth RPC.
struct CameraHealthEntry {
  core::CameraId camera;
  core::CameraHealth health = core::CameraHealth::kHealthy;
};

void EncodeCameraHealthReport(io::BinaryWriter* writer,
                              const std::vector<CameraHealthEntry>& report);
StatusOr<std::vector<CameraHealthEntry>> DecodeCameraHealthReport(
    io::BinaryReader* reader);

/// Body of the WalShip RPC (v3). The request is `from_lsn` (records strictly
/// after it are returned, and everything at or below it is acknowledged as
/// durably applied by the caller), `max_records`, and `wait_ms` — a long-poll
/// budget: when no records are available past `from_lsn` the server may hold
/// the request until new ones become durable or the budget expires.
struct WalShipRequest {
  uint64_t from_lsn = 0;
  uint32_t max_records = 0;
  uint32_t wait_ms = 0;
  /// The caller's promotion epoch (v4). A primary refuses requests from a
  /// caller with a *newer* epoch (`kFailedPrecondition`): it has been
  /// demoted by a failover it never saw, and acking the request would
  /// double-apply history the new primary already owns. 0 = unknown (a
  /// fresh standby that has not yet learned an epoch) and always passes.
  uint64_t epoch = 0;
};

void EncodeWalShipRequest(io::BinaryWriter* writer,
                          const WalShipRequest& request);
StatusOr<WalShipRequest> DecodeWalShipRequest(io::BinaryReader* reader);

/// The reply: the primary's durable frontier (so a caught-up standby can
/// report zero lag) plus the shipped records in LSN order.
struct WalShipReply {
  uint64_t durable_lsn = 0;
  /// The server's promotion epoch (v4); a standby adopts the max of its own
  /// and every reply's, so fencing survives standby restarts.
  uint64_t epoch = 0;
  std::vector<io::WalRecord> records;
};

void EncodeWalShipReply(io::BinaryWriter* writer, const WalShipReply& reply);
StatusOr<WalShipReply> DecodeWalShipReply(io::BinaryReader* reader);

// --- Sharded deployment (v4). See DESIGN.md, "Sharded deployment". ---

void EncodeWeightedCenter(io::BinaryWriter* writer,
                          const core::WeightedCenter& center);
StatusOr<core::WeightedCenter> DecodeWeightedCenter(io::BinaryReader* reader);

void EncodeRepresentative(io::BinaryWriter* writer,
                          const core::Representative& rep);
StatusOr<core::Representative> DecodeRepresentative(io::BinaryReader* reader);

void EncodeRepEntry(io::BinaryWriter* writer,
                    const core::InterCameraIndex::RepEntry& entry);
StatusOr<core::InterCameraIndex::RepEntry> DecodeRepEntry(
    io::BinaryReader* reader);

/// Body of the RepSync RPC (v4). `since_version` is the edge's
/// `index_version()` at the caller's last successful sync (0 = never
/// synced: always ship).
struct RepSyncRequest {
  uint64_t since_version = 0;
};

void EncodeRepSyncRequest(io::BinaryWriter* writer,
                          const RepSyncRequest& request);
StatusOr<RepSyncRequest> DecodeRepSyncRequest(io::BinaryReader* reader);

/// The reply: the edge's current index version and — unless the version
/// still equals `since_version` — the full representative entry set (edges
/// ship state, not deltas: replacement is idempotent and self-healing).
struct RepSyncReply {
  uint64_t version = 0;
  bool unchanged = false;
  std::vector<core::InterCameraIndex::RepEntry> entries;
};

void EncodeRepSyncReply(io::BinaryWriter* writer, const RepSyncReply& reply);
StatusOr<RepSyncReply> DecodeRepSyncReply(io::BinaryReader* reader);

/// Body of the CheckpointFetch RPC (v4): the newest valid checkpoint pair,
/// shipped as raw file bytes (the caller writes them into its own WAL
/// directory and restores through the normal recovery path).
struct CheckpointFetchReply {
  uint64_t lsn = 0;
  uint64_t epoch = 0;
  std::string snapshot_bytes;  // checkpoint-<lsn>.vzss
  std::string meta_bytes;      // checkpoint-<lsn>.meta
};

void EncodeCheckpointFetchReply(io::BinaryWriter* writer,
                                const CheckpointFetchReply& reply);
StatusOr<CheckpointFetchReply> DecodeCheckpointFetchReply(
    io::BinaryReader* reader);

// --- Standing queries and server push (v5). See DESIGN.md, "Standing
// queries and multiplexing". ---

/// Body of the Subscribe RPC: the standing query. A subscriber may ask for
/// match pushes (query vector + distance threshold, optional camera filter),
/// stats pushes (index-version updates as ingestion advances), or both.
struct SubscribeRequest {
  /// The query feature vector; may be empty for a stats-only subscription.
  FeatureVector query;
  /// Match when the minimum Euclidean distance from `query` to any row of a
  /// finalized segment's feature map is <= threshold.
  double threshold = 0.0;
  /// Restrict match evaluation to these cameras (empty + has_camera_filter
  /// false = all cameras).
  bool has_camera_filter = false;
  std::vector<std::string> cameras;
  bool want_matches = true;
  bool want_stats = false;
};

void EncodeSubscribeRequest(io::BinaryWriter* writer,
                            const SubscribeRequest& request);
StatusOr<SubscribeRequest> DecodeSubscribeRequest(io::BinaryReader* reader);

/// What one push frame announces.
enum class PushKind : uint32_t {
  /// A finalized segment matched the standing query.
  kMatch = 0,
  /// The server's index version advanced (stats subscription).
  kIndexUpdate = 1,
  /// `dropped` events were discarded from this subscription's queue while
  /// the subscriber was slow — the at-most-once delivery contract's honest
  /// marker. Sequence numbers stay dense as delivered; the gap marker is
  /// the only record of the loss.
  kGap = 2,
};

/// Body of a `kPushEvent` frame. `sequence` increases by one per event
/// actually delivered on the subscription (gap markers included), so a
/// subscriber can assert it never silently missed a push.
struct PushEvent {
  uint64_t subscription_id = 0;
  uint64_t sequence = 0;
  PushKind kind = PushKind::kMatch;
  // kMatch fields.
  core::SvsId svs_id = 0;
  std::string camera;
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  /// Minimum distance from the standing query to the segment's feature map.
  double distance = 0.0;
  // kIndexUpdate fields.
  uint64_t index_version = 0;
  // kGap fields.
  uint64_t dropped = 0;
};

void EncodePushEvent(io::BinaryWriter* writer, const PushEvent& event);
StatusOr<PushEvent> DecodePushEvent(io::BinaryReader* reader);

/// Reply body of `kIngestBatch` (after the WireStatus): deterministic
/// accept/reject counts, so replaying the batch from the WAL or the dedup
/// window reproduces the identical response bytes.
struct IngestBatchReply {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
};

void EncodeIngestBatchReply(io::BinaryWriter* writer,
                            const IngestBatchReply& reply);
StatusOr<IngestBatchReply> DecodeIngestBatchReply(io::BinaryReader* reader);

/// Body of the AdminTune RPC: each knob optional, applied atomically in
/// declaration order. The reply echoes the server's post-apply settings.
struct AdminTuneRequest {
  std::optional<uint32_t> index_mode;       // core::IndexMode wire value
  std::optional<double> boundary_scale;
  std::optional<double> omd_alpha;
  std::optional<bool> keyframe_selection;
  std::optional<uint64_t> inter_group_count;   // 0 = auto (sqrt heuristic)
  std::optional<uint64_t> intra_cluster_count; // 0 = auto
};

void EncodeAdminTuneRequest(io::BinaryWriter* writer,
                            const AdminTuneRequest& request);
StatusOr<AdminTuneRequest> DecodeAdminTuneRequest(io::BinaryReader* reader);

/// The server's settings after applying an AdminTune request.
struct AdminTuneReply {
  uint32_t index_mode = 0;
  double boundary_scale = 1.0;
  double omd_alpha = 0.0;
  bool keyframe_selection = true;
  uint64_t inter_group_count = 0;
  uint64_t intra_cluster_count = 0;
};

void EncodeAdminTuneReply(io::BinaryWriter* writer,
                          const AdminTuneReply& reply);
StatusOr<AdminTuneReply> DecodeAdminTuneReply(io::BinaryReader* reader);

}  // namespace vz::net

#endif  // VZ_NET_WIRE_H_
