#ifndef VZ_NET_CLIENT_H_
#define VZ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/wire.h"

namespace vz::net {

/// Connection and retry behaviour of `Client`.
struct ClientOptions {
  int64_t connect_timeout_ms = 5'000;
  /// Attempts per request when the server sheds with `kResourceExhausted`
  /// (connection- or admission-level). 0 disables retrying.
  size_t max_shed_retries = 4;
  /// Backoff between shed retries: the server's retry-after hint (or this
  /// floor when absent), doubled per attempt, capped below.
  int64_t backoff_floor_ms = 10;
  int64_t backoff_cap_ms = 2'000;
  /// Reconnect attempts when the transport drops mid-conversation (server
  /// restart, graceful-shutdown close). 0 disables reconnecting.
  size_t max_reconnects = 1;
};

/// Per-client counters, mostly for tests and diagnostics.
struct ClientCallStats {
  uint64_t requests_sent = 0;
  /// Requests that were shed at least once and retried with backoff.
  uint64_t shed_retries = 0;
  uint64_t reconnects = 0;
  /// Total milliseconds slept honoring retry-after backoff.
  int64_t backoff_ms_total = 0;
};

/// Synchronous RPC client for the Video-zilla serving layer: one TCP
/// connection, one in-flight request at a time (run several clients for
/// concurrency — the protocol has no interleaving). `Connect` performs the
/// version handshake; every RPC mirrors the corresponding `VideoZilla`
/// method, so call sites can swap between in-process and remote execution.
///
/// Overload handling: a `kResourceExhausted` response (a shed query or a
/// shed connection) is retried up to `max_shed_retries` times with capped
/// exponential backoff seeded by the server's retry-after hint. All other
/// errors are returned as-is.
class Client {
 public:
  /// Connects, negotiates the protocol version, and returns a ready client.
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  const ClientOptions& options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // --- Ingestion (mirrors VideoZilla). ---
  Status CameraStart(const core::CameraId& camera);
  Status CameraTerminate(const core::CameraId& camera);
  Status IngestFrame(const core::FrameObservation& frame);
  Status Flush();

  // --- Queries. Deadlines in `constraints` travel on the wire and bound
  // --- the server-side query via its cancellation checkpoints.
  StatusOr<core::DirectQueryResult> DirectQuery(
      const FeatureVector& feature,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      core::SvsId target_id, const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      const FeatureMap& target,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::SvsMetadata> GetMetaData(core::SvsId id);

  // --- Stats / health. ---
  StatusOr<MonitorStatsReply> MonitorStats();
  StatusOr<std::vector<CameraHealthEntry>> CameraHealthReport();
  StatusOr<core::QueryLoadStats> QueryLoadStats();

  // --- Snapshot triggers (paths are server-local). ---
  Status SaveSnapshot(const std::string& path);
  /// Returns the number of SVSs restored on the server.
  StatusOr<uint64_t> LoadSnapshot(const std::string& path);

  /// Protocol version the server reported in the handshake.
  uint32_t server_protocol_version() const {
    return server_protocol_version_;
  }

  const ClientCallStats& call_stats() const { return call_stats_; }

  /// Closes the connection (also done by the destructor).
  void Close() { fd_.Reset(); }

 private:
  Client(std::string host, uint16_t port, const ClientOptions& options)
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Opens the TCP connection and runs the Hello exchange.
  Status Handshake();
  /// Sends one request and returns the response payload with its wire
  /// status decoded; handles shed-backoff and reconnects.
  StatusOr<std::string> Call(MsgType type, const std::string& payload);
  /// One send/receive without retry logic.
  StatusOr<std::string> CallOnce(MsgType type, const std::string& payload,
                                 WireStatus* wire_status);

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  UniqueFd fd_;
  uint32_t server_protocol_version_ = 0;
  /// Retry-after hint from the most recent connection-level shed; seeds the
  /// reconnect backoff.
  int64_t last_shed_hint_ms_ = 0;
  ClientCallStats call_stats_;
};

}  // namespace vz::net

#endif  // VZ_NET_CLIENT_H_
