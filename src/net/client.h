#ifndef VZ_NET_CLIENT_H_
#define VZ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/wire.h"

namespace vz::net {

/// Connection and retry behaviour of `Client`.
struct ClientOptions {
  int64_t connect_timeout_ms = 5'000;
  /// Per-frame I/O deadline: every request write and response read must
  /// complete within this budget, so a stalled or blackholed server surfaces
  /// as `kUnavailable` (and a reconnect-retry) instead of a hang. <= 0
  /// blocks indefinitely.
  int64_t io_timeout_ms = 10'000;
  /// Attempts per request when the server sheds with `kResourceExhausted`
  /// (connection- or admission-level). 0 disables retrying.
  size_t max_shed_retries = 4;
  /// Backoff between shed retries: the server's retry-after hint (or this
  /// floor when absent), doubled per attempt, capped below.
  int64_t backoff_floor_ms = 10;
  int64_t backoff_cap_ms = 2'000;
  /// Fraction of each backoff delay randomised away (subtractive jitter):
  /// the actual sleep is uniform in [delay * (1 - jitter), delay], which
  /// de-synchronises a herd of clients all shed at the same instant while
  /// never exceeding the cap. 0 disables jitter.
  double backoff_jitter = 0.25;
  /// Seed of the jitter stream; 0 derives one from the session id so two
  /// clients never share a jitter sequence. Pin it in tests.
  uint64_t backoff_seed = 0;
  /// Reconnect attempts PER CALL when the transport drops mid-conversation
  /// (server restart, graceful-shutdown close, I/O deadline expiry). The
  /// budget resets at the start of every RPC; 0 disables reconnecting.
  /// Reconnect-retries of mutating RPCs are exactly-once: the retry carries
  /// the same idempotency token, so a server that already applied the first
  /// attempt replays its cached response instead of re-applying.
  size_t max_reconnects = 1;
  /// Session id stamped into idempotency tokens; 0 auto-generates a
  /// process-unique id. Pin it in tests (or to resume a session's dedup
  /// window across client restarts).
  uint64_t session_id = 0;
};

/// Per-client counters, mostly for tests and diagnostics.
struct ClientCallStats {
  uint64_t requests_sent = 0;
  /// Requests that were shed at least once and retried with backoff.
  uint64_t shed_retries = 0;
  /// Transport drops observed mid-call (connection reset, torn frame, I/O
  /// deadline expiry) — each one either consumes reconnect budget or fails
  /// the call.
  uint64_t transport_failures = 0;
  /// Successful re-handshakes after a transport drop.
  uint64_t reconnects = 0;
  /// Total milliseconds slept honoring retry-after backoff (post-jitter).
  int64_t backoff_ms_total = 0;
  /// Keepalive pings answered by the server.
  uint64_t pings_sent = 0;
};

/// Backoff delay for retry `attempt` (0-based): the server's retry-after
/// hint (or the options floor) doubled per attempt and capped, then jittered
/// subtractively by up to `options.backoff_jitter` of itself using `rng`
/// (`nullptr` disables jitter). Exposed for the backoff unit tests.
int64_t BackoffDelayMs(const ClientOptions& options, int64_t hint_ms,
                       size_t attempt, Rng* rng);

/// Synchronous RPC client for the Video-zilla serving layer: one TCP
/// connection, one in-flight request at a time (run several clients for
/// concurrency — the protocol has no interleaving). `Connect` performs the
/// version handshake; every RPC mirrors the corresponding `VideoZilla`
/// method, so call sites can swap between in-process and remote execution.
///
/// Overload handling: a `kResourceExhausted` response (a shed query or a
/// shed connection) is retried up to `max_shed_retries` times with capped,
/// jittered exponential backoff seeded by the server's retry-after hint.
///
/// Transport failures (`kUnavailable`, `kDataLoss`, a server that closed
/// the connection) trigger reconnect-retries within the per-call
/// `max_reconnects` budget. Mutating RPCs stamp an idempotency token
/// (session id + per-call sequence) so those retries are exactly-once: the
/// server deduplicates and replays instead of re-applying. All other errors
/// are returned as-is.
class Client {
 public:
  /// Connects, negotiates the protocol version, and returns a ready client.
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  const ClientOptions& options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // --- Ingestion (mirrors VideoZilla). ---
  Status CameraStart(const core::CameraId& camera);
  Status CameraTerminate(const core::CameraId& camera);
  Status IngestFrame(const core::FrameObservation& frame);
  Status Flush();

  // --- Queries. Deadlines in `constraints` travel on the wire and bound
  // --- the server-side query via its cancellation checkpoints.
  StatusOr<core::DirectQueryResult> DirectQuery(
      const FeatureVector& feature,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      core::SvsId target_id, const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      const FeatureMap& target,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::SvsMetadata> GetMetaData(core::SvsId id);

  // --- Stats / health. ---
  StatusOr<MonitorStatsReply> MonitorStats();
  StatusOr<std::vector<CameraHealthEntry>> CameraHealthReport();
  StatusOr<core::QueryLoadStats> QueryLoadStats();

  /// Log shipping (standby side): fetches up to `max_records` WAL records
  /// with LSNs strictly above `from_lsn`, acknowledging everything at or
  /// below it as durably applied. `wait_ms` long-polls when the log has
  /// nothing new (must fit inside `io_timeout_ms`). `epoch` is the caller's
  /// promotion epoch (v4): a server at an older epoch answers
  /// `kFailedPrecondition` — it was demoted by a failover the caller
  /// already knows about. 0 = unknown, always passes.
  StatusOr<WalShipReply> WalShip(uint64_t from_lsn, uint32_t max_records,
                                 uint32_t wait_ms, uint64_t epoch = 0);

  /// Representative sync (v4, coordinator side): the edge's inter-camera
  /// representative entries, or a small "unchanged" reply when its index
  /// version still equals `since_version` (0 = never synced: always ships).
  StatusOr<RepSyncReply> RepSync(uint64_t since_version);

  /// One stored SVS's feature map by id (v4) — how a coordinator resolves
  /// the target of a by-id clustering query owned by another shard.
  StatusOr<FeatureMap> SvsFeatureMap(core::SvsId id);

  /// The newest valid checkpoint pair as raw file bytes (v4) — the standby
  /// re-seed path once compaction outran its replication cursor.
  StatusOr<CheckpointFetchReply> CheckpointFetch();

  /// Keepalive: resets the server's idle clock. Cheap (empty payload, no
  /// state touched); call between requests to fend off idle eviction.
  Status Ping();

  // --- Snapshot triggers (paths are server-local). ---
  Status SaveSnapshot(const std::string& path);
  /// Returns the number of SVSs restored on the server.
  StatusOr<uint64_t> LoadSnapshot(const std::string& path);

  /// Protocol version the server reported in the handshake.
  uint32_t server_protocol_version() const {
    return server_protocol_version_;
  }

  /// Session id stamped into idempotency tokens (auto-generated unless
  /// pinned via options).
  uint64_t session_id() const { return session_id_; }

  const ClientCallStats& call_stats() const { return call_stats_; }

  /// Closes the connection (also done by the destructor).
  void Close() { fd_.Reset(); }

 private:
  Client(std::string host, uint16_t port, const ClientOptions& options);

  /// Opens the TCP connection and runs the Hello exchange.
  Status Handshake();
  /// Sends one request and returns the response payload with its wire
  /// status decoded; handles shed-backoff and reconnects. Mutating requests
  /// get an idempotency token prepended (the same token across retries of
  /// one call).
  StatusOr<std::string> Call(MsgType type, const std::string& payload);
  /// One send/receive without retry logic.
  StatusOr<std::string> CallOnce(MsgType type, const std::string& payload,
                                 WireStatus* wire_status);
  void SleepBackoff(int64_t hint_ms, size_t attempt);

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  UniqueFd fd_;
  uint32_t server_protocol_version_ = 0;
  /// Retry-after hint from the most recent connection-level shed; seeds the
  /// reconnect backoff.
  int64_t last_shed_hint_ms_ = 0;
  uint64_t session_id_ = 0;
  /// Sequence of the next mutating call. Bumped once per logical call;
  /// retries re-send the same value.
  uint64_t next_sequence_ = 1;
  Rng backoff_rng_;
  ClientCallStats call_stats_;
};

}  // namespace vz::net

#endif  // VZ_NET_CLIENT_H_
