#ifndef VZ_NET_CLIENT_H_
#define VZ_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/wire.h"

namespace vz::net {

/// Connection and retry behaviour of `Client`.
struct ClientOptions {
  int64_t connect_timeout_ms = 5'000;
  /// Per-frame I/O deadline: every request write and response read must
  /// complete within this budget, so a stalled or blackholed server surfaces
  /// as `kUnavailable` (and a reconnect-retry) instead of a hang. <= 0
  /// blocks indefinitely.
  int64_t io_timeout_ms = 10'000;
  /// Attempts per request when the server sheds with `kResourceExhausted`
  /// (connection- or admission-level). 0 disables retrying.
  size_t max_shed_retries = 4;
  /// Backoff between shed retries: the server's retry-after hint (or this
  /// floor when absent), doubled per attempt, capped below.
  int64_t backoff_floor_ms = 10;
  int64_t backoff_cap_ms = 2'000;
  /// Fraction of each backoff delay randomised away (subtractive jitter):
  /// the actual sleep is uniform in [delay * (1 - jitter), delay], which
  /// de-synchronises a herd of clients all shed at the same instant while
  /// never exceeding the cap. 0 disables jitter.
  double backoff_jitter = 0.25;
  /// Seed of the jitter stream; 0 derives one from the session id so two
  /// clients never share a jitter sequence. Pin it in tests.
  uint64_t backoff_seed = 0;
  /// Reconnect attempts PER CALL when the transport drops mid-conversation
  /// (server restart, graceful-shutdown close, I/O deadline expiry). The
  /// budget resets at the start of every RPC; 0 disables reconnecting.
  /// Reconnect-retries of mutating RPCs are exactly-once: the retry carries
  /// the same idempotency token, so a server that already applied the first
  /// attempt replays its cached response instead of re-applying.
  size_t max_reconnects = 1;
  /// Session id stamped into idempotency tokens; 0 auto-generates a
  /// process-unique id. Pin it in tests (or to resume a session's dedup
  /// window across client restarts).
  uint64_t session_id = 0;
  /// Protocol version announced in the Hello (v5 by default). Pin to 4 to
  /// interoperate with a v4-only server: the connection then uses the
  /// legacy framing and the strictly synchronous call path — no correlation
  /// ids, no reader thread, and `Subscribe` is refused.
  uint32_t protocol_version = kProtocolVersion;
};

/// Per-client counters, mostly for tests and diagnostics.
struct ClientCallStats {
  uint64_t requests_sent = 0;
  /// Requests that were shed at least once and retried with backoff.
  uint64_t shed_retries = 0;
  /// Transport drops observed mid-call (connection reset, torn frame, I/O
  /// deadline expiry) — each one either consumes reconnect budget or fails
  /// the call.
  uint64_t transport_failures = 0;
  /// Successful re-handshakes after a transport drop.
  uint64_t reconnects = 0;
  /// Total milliseconds slept honoring retry-after backoff (post-jitter).
  int64_t backoff_ms_total = 0;
  /// Keepalive pings answered by the server.
  uint64_t pings_sent = 0;
};

/// Backoff delay for retry `attempt` (0-based): the server's retry-after
/// hint (or the options floor) doubled per attempt and capped, then jittered
/// subtractively by up to `options.backoff_jitter` of itself using `rng`
/// (`nullptr` disables jitter). Exposed for the backoff unit tests.
int64_t BackoffDelayMs(const ClientOptions& options, int64_t hint_ms,
                       size_t attempt, Rng* rng);

/// Invoked by the client's reader thread for every push frame delivered on
/// a subscription (see `Client::Subscribe`). Runs on the reader thread, so
/// it must not block for long — a stalled callback stalls response demux
/// for the whole connection — and must not call `Close` or any RPC method
/// that could tear down the connection (it would join its own thread).
/// Read-only RPCs issued from a callback are safe.
using PushCallback = std::function<void(const PushEvent&)>;

/// RPC client for the Video-zilla serving layer. One TCP connection; on a
/// v5 connection a background reader demultiplexes responses by correlation
/// id, so multiple threads may issue RPCs concurrently over the same
/// connection, and server-pushed `kPushEvent` frames are dispatched to the
/// callbacks registered by `Subscribe`. With `protocol_version` pinned to 4
/// the client behaves exactly like the legacy synchronous client (one
/// in-flight request, no pushes). `Connect` performs the version handshake;
/// every RPC mirrors the corresponding `VideoZilla` method, so call sites
/// can swap between in-process and remote execution.
///
/// Overload handling: a `kResourceExhausted` response (a shed query or a
/// shed connection) is retried up to `max_shed_retries` times with capped,
/// jittered exponential backoff seeded by the server's retry-after hint.
///
/// Transport failures (`kUnavailable`, `kDataLoss`, a server that closed
/// the connection) trigger reconnect-retries within the per-call
/// `max_reconnects` budget. Mutating RPCs stamp an idempotency token
/// (session id + per-call sequence) so those retries are exactly-once: the
/// server deduplicates and replays instead of re-applying. All other errors
/// are returned as-is.
///
/// Subscriptions are connection-scoped and do NOT survive reconnects: a
/// transport drop silently ends every standing query (the server reclaims
/// them on disconnect). A subscriber that needs continuity re-subscribes
/// after a drop and treats the discontinuity like a gap marker.
class Client {
 public:
  /// Connects, negotiates the protocol version, and returns a ready client.
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  const ClientOptions& options = {});

  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  // --- Ingestion (mirrors VideoZilla). ---
  Status CameraStart(const core::CameraId& camera);
  Status CameraTerminate(const core::CameraId& camera);
  Status IngestFrame(const core::FrameObservation& frame);
  /// N frames in one RPC under one idempotency token (v5): one round trip,
  /// one WAL record. Per-frame rejections (unknown camera, stale frame id)
  /// are counted in the reply, not errors — the batch as a whole succeeds.
  StatusOr<IngestBatchReply> IngestBatch(
      const std::vector<core::FrameObservation>& frames);
  Status Flush();

  // --- Queries. Deadlines in `constraints` travel on the wire and bound
  // --- the server-side query via its cancellation checkpoints.
  StatusOr<core::DirectQueryResult> DirectQuery(
      const FeatureVector& feature,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      core::SvsId target_id, const core::QueryConstraints& constraints = {});
  StatusOr<core::ClusteringQueryResult> ClusteringQuery(
      const FeatureMap& target,
      const core::QueryConstraints& constraints = {});
  StatusOr<core::SvsMetadata> GetMetaData(core::SvsId id);

  // --- Standing queries (v5). ---

  /// Registers a standing query; the server pushes `PushEvent`s for it as
  /// ingestion finalizes matching segments — no polling. `callback` runs on
  /// the reader thread for every push (see `PushCallback` for its
  /// contract). Returns the subscription id. Requires a v5 connection; does
  /// not retry or reconnect (a lost connection voids the subscription
  /// anyway).
  StatusOr<uint64_t> Subscribe(const SubscribeRequest& request,
                               PushCallback callback);
  /// Cancels a standing query registered on this connection. Pushes already
  /// in flight may still arrive briefly after this returns.
  Status Unsubscribe(uint64_t subscription_id);

  // --- Stats / health. ---
  StatusOr<MonitorStatsReply> MonitorStats();
  StatusOr<std::vector<CameraHealthEntry>> CameraHealthReport();
  StatusOr<core::QueryLoadStats> QueryLoadStats();

  /// Live index tuning (v5): applies the knobs of the performance monitor's
  /// adjustment ladder (index mode, boundary scale, OMD alpha, keyframe
  /// selection, forced group/cluster counts) and returns the server's
  /// post-apply settings. Carries an idempotency token (exactly-once) but
  /// is never WAL-logged — operator state does not replay.
  StatusOr<AdminTuneReply> AdminTune(const AdminTuneRequest& request);

  /// Log shipping (standby side): fetches up to `max_records` WAL records
  /// with LSNs strictly above `from_lsn`, acknowledging everything at or
  /// below it as durably applied. `wait_ms` long-polls when the log has
  /// nothing new (must fit inside `io_timeout_ms`). `epoch` is the caller's
  /// promotion epoch (v4): a server at an older epoch answers
  /// `kFailedPrecondition` — it was demoted by a failover the caller
  /// already knows about. 0 = unknown, always passes.
  StatusOr<WalShipReply> WalShip(uint64_t from_lsn, uint32_t max_records,
                                 uint32_t wait_ms, uint64_t epoch = 0);

  /// Representative sync (v4, coordinator side): the edge's inter-camera
  /// representative entries, or a small "unchanged" reply when its index
  /// version still equals `since_version` (0 = never synced: always ships).
  StatusOr<RepSyncReply> RepSync(uint64_t since_version);

  /// One stored SVS's feature map by id (v4) — how a coordinator resolves
  /// the target of a by-id clustering query owned by another shard.
  StatusOr<FeatureMap> SvsFeatureMap(core::SvsId id);

  /// The newest valid checkpoint pair as raw file bytes (v4) — the standby
  /// re-seed path once compaction outran its replication cursor.
  StatusOr<CheckpointFetchReply> CheckpointFetch();

  /// Keepalive: resets the server's idle clock. Cheap (empty payload, no
  /// state touched); call between requests to fend off idle eviction.
  Status Ping();

  // --- Snapshot triggers (paths are server-local). ---
  Status SaveSnapshot(const std::string& path);
  /// Returns the number of SVSs restored on the server.
  StatusOr<uint64_t> LoadSnapshot(const std::string& path);

  /// Protocol version the server reported in the handshake.
  uint32_t server_protocol_version() const {
    return server_protocol_version_;
  }

  /// Session id stamped into idempotency tokens (auto-generated unless
  /// pinned via options).
  uint64_t session_id() const { return session_id_; }

  /// Snapshot of the per-client counters (copied under the stats lock, so
  /// safe against concurrent calls).
  ClientCallStats call_stats() const;

  /// Closes the connection (also done by the destructor): shuts the socket
  /// down, joins the reader thread, and voids every subscription. Must not
  /// be called from a push callback.
  void Close();

 private:
  /// Per-connection state, shared with the v5 reader thread. Lives behind a
  /// `shared_ptr` so the reader can outlive a `Close` racing a call, and so
  /// the Client object itself stays movable while the thread runs.
  struct ConnCore;
  /// One in-flight v5 call's completion slot.
  struct PendingCall;
  /// Client-lifetime mutable state (token sequence, stats, jitter stream)
  /// behind a pointer so concurrent calls synchronize on stable addresses
  /// and the Client stays movable.
  struct Shared;

  Client(std::string host, uint16_t port, const ClientOptions& options);

  /// Opens the TCP connection and runs the Hello exchange (always in legacy
  /// framing); on a successful v5 handshake, switches the new connection to
  /// v5 framing and starts its reader thread. Installs the connection.
  Status Handshake();
  /// The current connection (null when disconnected).
  std::shared_ptr<ConnCore> conn() const;
  /// Retires `core` if it is still the current connection: socket shutdown,
  /// reader joined, pending calls failed.
  void DropConn(const std::shared_ptr<ConnCore>& core);
  /// The v5 reader thread: demultiplexes response frames to their pending
  /// calls by correlation id and dispatches push frames to subscription
  /// callbacks.
  static void ReaderLoop(std::shared_ptr<ConnCore> core);
  /// The current connection, handshaking first if disconnected (one
  /// attempt, no retry loop).
  StatusOr<std::shared_ptr<ConnCore>> EnsureConn();
  /// Sends one request and returns the response payload with its wire
  /// status decoded; handles shed-backoff and reconnects. Mutating requests
  /// get an idempotency token prepended (the same token across retries of
  /// one call).
  StatusOr<std::string> Call(MsgType type, const std::string& payload);
  /// One synchronous send/receive on a legacy (v4) connection.
  StatusOr<std::string> CallOnce(const std::shared_ptr<ConnCore>& core,
                                 MsgType type, const std::string& payload,
                                 WireStatus* wire_status);
  /// One multiplexed send/await on a v5 connection. When `push_callback` is
  /// non-null it is registered under the call's correlation id BEFORE the
  /// request is sent (so no push can outrun the registration); the caller
  /// unregisters it if the call fails. `correlation_out` reports the
  /// correlation id used.
  StatusOr<std::string> CallOnceV5(const std::shared_ptr<ConnCore>& core,
                                   MsgType type, const std::string& payload,
                                   WireStatus* wire_status,
                                   const PushCallback* push_callback = nullptr,
                                   uint64_t* correlation_out = nullptr);
  void SleepBackoff(int64_t hint_ms, size_t attempt);

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  uint32_t server_protocol_version_ = 0;
  uint64_t session_id_ = 0;
  std::unique_ptr<Shared> shared_;
  std::shared_ptr<ConnCore> core_;  // guarded by shared_->mu
};

}  // namespace vz::net

#endif  // VZ_NET_CLIENT_H_
