#ifndef VZ_NET_CHAOS_PROXY_H_
#define VZ_NET_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "sim/wire_fault_injector.h"

namespace vz::net {

/// Configuration of the chaos proxy.
struct ChaosProxyOptions {
  std::string listen_address = "127.0.0.1";
  /// 0 lets the kernel pick; read back with `port()`.
  uint16_t listen_port = 0;
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;
  int64_t upstream_connect_timeout_ms = 5'000;
  /// Largest slice of the stream read (and fault-rolled) at a time. Smaller
  /// chunks mean more fault opportunities per RPC.
  size_t chunk_bytes = 4'096;
  /// Cadence at which relay threads re-check the shutdown flag while idle.
  int64_t idle_poll_ms = 50;
  /// Fault mix. `faults.seed` is the master seed: every relayed connection
  /// forks two child injectors off it (one per direction), so a chaos run is
  /// deterministic per (connection index, direction) no matter how threads
  /// interleave.
  sim::WireFaultInjectorOptions faults;
};

/// In-process TCP chaos relay: listens like a server, forwards every
/// accepted connection to the upstream address byte-for-byte — except when
/// the seeded `sim::WireFaultInjector` says otherwise. Point a `net::Client`
/// at `port()` instead of the real server and the full retry/exactly-once
/// machinery gets exercised against delayed, segmented, truncated,
/// bit-flipped, blackholed and reset traffic, deterministically per seed.
///
/// The proxy is transport-agnostic: it never parses frames, so it also
/// stresses the framing layer's reassembly (splits) and its CRC (flips).
class ChaosProxy {
 public:
  /// Aggregate over all relayed connections.
  struct Stats {
    uint64_t connections_relayed = 0;
    sim::WireFaultInjector::Ledger ledger;
  };

  explicit ChaosProxy(const ChaosProxyOptions& options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen socket and starts accepting.
  Status Start();

  /// Closes the listener and every live relay; joins all threads.
  /// Idempotent.
  void Shutdown();

  /// The bound listen port (valid after a successful `Start`).
  uint16_t port() const { return port_; }

  /// Aggregated fault ledger. Live relays fold their counts in when their
  /// direction ends, so totals are complete once clients disconnected.
  Stats stats() const;

 private:
  /// One relayed connection: the downstream (client-side) and upstream
  /// (server-side) sockets shared by the two pump threads.
  struct Relay {
    UniqueFd downstream;
    UniqueFd upstream;
    /// Hard-closes both sockets (thread-safe, idempotent enough: shutdown
    /// on a closed fd is a harmless error).
    void Kill();
  };

  void AcceptLoop();
  /// Pumps bytes `src` -> `dst`, applying the injector to every chunk.
  void Pump(std::shared_ptr<Relay> relay, int src, int dst,
            sim::WireFaultInjector injector);
  void MergeLedger(const sim::WireFaultInjector::Ledger& ledger);

  const ChaosProxyOptions options_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex mu_;  // guards everything below
  sim::WireFaultInjector master_injector_;
  std::vector<std::thread> pump_threads_;
  std::vector<std::shared_ptr<Relay>> relays_;
  uint64_t connections_relayed_ = 0;
  sim::WireFaultInjector::Ledger ledger_;
};

}  // namespace vz::net

#endif  // VZ_NET_CHAOS_PROXY_H_
