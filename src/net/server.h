#ifndef VZ_NET_SERVER_H_
#define VZ_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/videozilla.h"
#include "net/wire.h"

namespace vz::net {

/// Configuration of the TCP serving front end.
struct ServerOptions {
  /// Port to listen on; 0 lets the kernel pick (read back with `port()`).
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// Concurrent connections served; arrivals beyond this are answered with a
  /// wire-level `kResourceExhausted` (retry-after attached) and closed —
  /// connection-level shedding mirroring the admission controller's
  /// query-level shedding. Also capped by the worker count of the pool the
  /// server runs on (a connection handler needs a worker for its lifetime).
  size_t max_connections = 8;
  /// Retry-after hint attached to connection-level sheds.
  int64_t shed_retry_after_ms = 50;
  /// Cadence at which idle connection handlers re-check the shutdown flag.
  int64_t idle_poll_ms = 50;
  /// Budget `Shutdown` grants in-flight requests before force-closing the
  /// remaining sockets.
  int64_t drain_timeout_ms = 10'000;
};

/// Counters of the serving layer (all lifetime totals except the gauge).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;
  size_t connections_active = 0;  // gauge
  uint64_t requests_served = 0;
  uint64_t request_errors = 0;
};

/// TCP front end over one `VideoZilla` instance: an accept loop plus
/// per-connection handlers running on the shared `ThreadPool` (the system's
/// query pool when it has workers, otherwise a pool owned by the server).
///
/// Request handling preserves the library's concurrency contract: queries
/// and stats reads from different connections run concurrently (shared
/// lock), while ingestion, flush, camera lifecycle and snapshot restore are
/// exclusive (unique lock) — the documented single-caller ingestion
/// contract, enforced at the service boundary instead of trusted per
/// client.
///
/// Overload and deadlines compose end to end: a client deadline travels in
/// the query constraints and becomes the per-query `CancelToken` budget
/// inside `VideoZilla`; admission-controller sheds surface as wire-level
/// `kResourceExhausted` carrying the configured retry-after hint.
///
/// `Shutdown` is graceful: stop accepting, let every handler finish the
/// request it is serving (responses are written before sockets close), then
/// force-close whatever is still open after `drain_timeout_ms`.
class Server {
 public:
  /// `system` is borrowed and must outlive the server.
  Server(core::VideoZilla* system, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the accept loop. Fails if the port is taken.
  Status Start();

  /// Graceful stop; idempotent. Safe to call concurrently with traffic.
  void Shutdown();

  /// The bound port (valid after a successful `Start`).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(UniqueFd fd);
  /// Serves one already-readable request; false when the connection should
  /// close (clean disconnect, torn frame, or protocol violation).
  bool ServeOneRequest(int fd, bool* hello_done);
  /// Builds the response payload for one decoded request.
  std::string DispatchRequest(const WireFrame& request, bool* hello_done,
                              Status* failure);

  core::VideoZilla* system_;
  const ServerOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  // when the system runs serial
  ThreadPool* pool_ = nullptr;
  size_t connection_cap_ = 0;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Serializes mutating RPCs against concurrent queries (see class
  /// comment).
  std::shared_mutex state_mu_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable drained_cv_;
  std::vector<std::future<void>> connection_futures_;
  std::unordered_set<int> active_fds_;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_shed_ = 0;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> request_errors_{0};
};

}  // namespace vz::net

#endif  // VZ_NET_SERVER_H_
