#ifndef VZ_NET_SERVER_H_
#define VZ_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/videozilla.h"
#include "io/wal.h"
#include "net/subscription.h"
#include "net/wire.h"

namespace vz::net {

class Client;

/// Configuration of the TCP serving front end.
struct ServerOptions {
  /// Port to listen on; 0 lets the kernel pick (read back with `port()`).
  uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// Concurrent connections served; arrivals beyond this are answered with a
  /// wire-level `kResourceExhausted` (retry-after attached) and closed —
  /// connection-level shedding mirroring the admission controller's
  /// query-level shedding. Also capped by the worker count of the pool the
  /// server runs on (a connection handler needs a worker for its lifetime).
  size_t max_connections = 8;
  /// Retry-after hint attached to connection-level sheds.
  int64_t shed_retry_after_ms = 50;
  /// Cadence at which idle connection handlers re-check the shutdown flag.
  int64_t idle_poll_ms = 50;
  /// Budget `Shutdown` grants in-flight requests before force-closing the
  /// remaining sockets.
  int64_t drain_timeout_ms = 10'000;

  // --- Connection supervision (see DESIGN.md, "Exactly-once and connection
  // --- supervision"). ---

  /// Once the first byte of a request frame is readable, the whole frame
  /// must arrive within this budget; a sender trickling bytes past it is
  /// evicted as a slow client. <= 0 disables the read deadline.
  int64_t read_timeout_ms = 10'000;
  /// A response must be accepted by the peer's receive window within this
  /// budget; a reader that stops draining is evicted as a slow client.
  /// <= 0 disables the write deadline.
  int64_t write_timeout_ms = 10'000;
  /// A connection with no completed request for longer than
  /// `idle_timeout_ms + eviction_grace_ms` is evicted. `kPing` resets the
  /// idle clock without touching any state. <= 0 disables idle eviction.
  int64_t idle_timeout_ms = 0;
  /// Grace granted past the idle deadline before the connection is closed.
  int64_t eviction_grace_ms = 100;

  // --- Standing-query push delivery (protocol v5; see DESIGN.md, "Standing
  // --- queries and multiplexing"). ---

  /// Bounded per-subscription event queue; when full the oldest event is
  /// dropped and counted into the next `PushKind::kGap` marker. A slow
  /// subscriber therefore loses events, never stalls ingest.
  size_t subscription_queue_capacity = 256;
  /// Events delivered per subscription per delivery round.
  size_t subscription_max_drain = 64;
  /// Delivery-thread wakeup cadence when idle (it is also woken eagerly by
  /// enqueues).
  int64_t push_poll_ms = 50;

  // --- Exactly-once dedup (idempotency tokens). ---

  /// Cached responses retained per client session. A mutating RPC re-sent
  /// after an ambiguous transport failure is answered from this window
  /// instead of being re-applied; a duplicate older than the window is
  /// refused with `kFailedPrecondition` (exactly-once can no longer be
  /// proven). One in-flight request per client means even a window of 1 is
  /// safe; the default leaves room for future pipelining.
  size_t dedup_window = 64;
  /// Bound on distinct client sessions tracked; least-recently-used
  /// sessions are evicted beyond it.
  size_t max_sessions = 1024;

  // --- Durability (write-ahead log; see DESIGN.md, "Durability and
  // --- replication"). ---

  /// Directory of the write-ahead log. Non-empty enables durability: every
  /// successful mutating RPC is acked only after its WAL record (with its
  /// idempotency token) is fsynced, and `Start` replays the newest valid
  /// checkpoint plus the log tail. Empty = in-memory only (the pre-WAL
  /// behaviour).
  std::string wal_dir;
  /// Group-commit gather window (see `io::WalOptions::fsync_interval_ms`).
  int64_t wal_fsync_interval_ms = 2;
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 4ull << 20;
  /// Live log bytes that trigger a checkpoint (snapshot + manifest, then
  /// log compaction) at the next Flush. 0 disables checkpointing — the log
  /// grows without bound and recovery replays from the beginning.
  uint64_t wal_compact_bytes = 8ull << 20;
  /// When true, a mutating ack additionally waits until a standby has
  /// acknowledged (via its WalShip `from_lsn`) everything up to the
  /// record's LSN — semi-synchronous replication: an acked write survives
  /// the loss of the whole primary, not just a crash.
  bool sync_replication = false;

  // --- Warm standby. ---

  /// Non-empty makes this server a warm standby: it does not listen for
  /// clients; instead it tails `standby_of_host:standby_of_port`'s WAL via
  /// the WalShip RPC, applying records as they arrive. `Promote` turns it
  /// into a primary listening on `port`. A standby requires its own
  /// `wal_dir` (it mirrors the primary's log, preserving LSN numbering).
  std::string standby_of_host;
  uint16_t standby_of_port = 0;
  /// Long-poll budget per WalShip request (also the reconnect backoff when
  /// the primary is unreachable).
  int64_t replication_poll_ms = 50;
  /// Records fetched per WalShip request.
  uint32_t replication_batch = 256;
};

/// Counters of the serving layer (all lifetime totals except the gauges).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;
  size_t connections_active = 0;  // gauge
  uint64_t requests_served = 0;
  uint64_t request_errors = 0;
  /// Supervision evictions: no completed request past the idle deadline
  /// plus grace / a frame read or write that overran its deadline.
  uint64_t connections_evicted_idle = 0;
  uint64_t connections_evicted_slow = 0;
  /// Mutating RPCs answered from a session's dedup window instead of being
  /// re-applied (exactly-once in action).
  uint64_t duplicates_replayed = 0;
  uint64_t pings_served = 0;
  size_t sessions_active = 0;  // gauge
  uint64_t sessions_evicted = 0;
  /// Durability counters (all zero without a WAL).
  ServerRole role = ServerRole::kPrimary;
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_replayed_records = 0;
  uint64_t wal_salvaged_bytes = 0;
  uint64_t wal_checkpoints = 0;
  uint64_t wal_last_lsn = 0;
  uint64_t wal_durable_lsn = 0;  // gauge
  /// Standby gauge: durable primary records not yet applied locally.
  uint64_t replication_lag_records = 0;
  /// WalShip errors observed by the standby's replication loop (reconnects).
  uint64_t replication_errors = 0;
  /// Standby: automatic checkpoint re-seeds after the primary's compaction
  /// outran the replication cursor (each one re-fetches the newest
  /// checkpoint pair and resumes tailing from its LSN).
  uint64_t replication_reseeds = 0;
  /// The promotion epoch this server serves under (1 = never failed over).
  uint64_t wal_epoch = 0;
  /// Standing-query subscriptions (protocol v5 push path).
  uint64_t subscriptions_active = 0;  // gauge
  uint64_t subscriptions_total = 0;
  uint64_t pushes_sent = 0;
  /// Events lost to drop-oldest backpressure (each run of losses surfaces
  /// to the subscriber as one gap marker).
  uint64_t push_drops = 0;
  uint64_t push_gaps_sent = 0;
  uint64_t ingest_batches = 0;
};

/// TCP front end over one `VideoZilla` instance: an accept loop plus
/// per-connection handlers running on the shared `ThreadPool` (the system's
/// query pool when it has workers, otherwise a pool owned by the server).
///
/// Request handling preserves the library's concurrency contract: queries
/// and stats reads from different connections run concurrently (shared
/// lock), while ingestion, flush, camera lifecycle and snapshot restore are
/// exclusive (unique lock) — the documented single-caller ingestion
/// contract, enforced at the service boundary instead of trusted per
/// client.
///
/// Exactly-once: every mutating request carries an idempotency token
/// (session id + sequence). The server keeps a bounded per-session window of
/// cached responses; a duplicate sequence is answered byte-identically from
/// the window without re-executing, and a sequence already executing (the
/// client timed out and retried while the original is still running) waits
/// for the original instead of racing it.
///
/// Supervision: per-connection read/write deadlines plus idle eviction with
/// a grace period bound every connection's lifetime; `kPing` is the
/// keepalive. A registry tracks per-connection bytes/RPCs/age, surfaced
/// through `stats()`, the Monitor RPC and `vz_server`.
///
/// Overload and deadlines compose end to end: a client deadline travels in
/// the query constraints and becomes the per-query `CancelToken` budget
/// inside `VideoZilla`; admission-controller sheds surface as wire-level
/// `kResourceExhausted` carrying the configured retry-after hint.
///
/// `Shutdown` is graceful: stop accepting, let every handler finish the
/// request it is serving (responses are written before sockets close), then
/// force-close whatever is still open after `drain_timeout_ms`.
///
/// Durability (opt-in via `wal_dir`): the commit rule is apply -> log (the
/// verbatim post-token request bytes, inside the state lock) -> ack only
/// after the record is fsynced. Recovery restores the newest valid
/// checkpoint, replays the log tail through the same dispatch that served
/// the originals, and rebuilds the dedup windows from the logged tokens —
/// so a retry that straddles a crash is still replayed, not re-applied. A
/// warm standby tails the log over WalShip and can take over the primary's
/// port via `Promote`. See DESIGN.md, "Durability and replication".
class Server {
 public:
  /// `system` is borrowed and must outlive the server.
  Server(core::VideoZilla* system, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the accept loop (after WAL recovery when `wal_dir`
  /// is set). A standby (`standby_of_host` set) instead starts the
  /// replication loop and does not listen until `Promote`. Fails if the
  /// port is taken, or if recovery finds an unreplayable log.
  Status Start();

  /// Graceful stop; idempotent. Safe to call concurrently with traffic.
  void Shutdown();

  /// Abrupt stop: no drain, no responses, in-flight requests dropped on the
  /// floor — the in-process stand-in for `kill -9` in failover drills.
  /// Everything fsynced (i.e. everything acked) survives; nothing else is
  /// guaranteed to.
  void Kill();

  /// Turns a standby into a primary: stops tailing the old primary, makes
  /// the mirrored log durable, and starts listening on `options().port`.
  /// Binding fails while the old primary still holds the port — the
  /// split-brain guard.
  Status Promote();

  /// The serving role (primary / standby / promoted standby).
  ServerRole role() const;

  /// The bound port (valid after a successful `Start`).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// Snapshot of the per-connection registry (age/idle/bytes/RPCs).
  std::vector<ConnectionInfo> connection_stats() const;

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// State shared between a connection's handler thread and the delivery
  /// thread (protocol v5 push path). Held by `shared_ptr` so the delivery
  /// thread can outlive the registry entry safely: the handler marks
  /// `closed` under `write_mu` before its socket is destroyed, and every
  /// delivery write re-checks `closed` under the same lock — a push can
  /// never land on a recycled fd number.
  struct ConnShared {
    uint64_t id = 0;
    int fd = -1;
    /// Serializes response writes (handler) against push writes (delivery
    /// thread). Never held while blocking on anything but the socket.
    std::mutex write_mu;
    /// Set once the v5 Hello response has been written; all subsequent
    /// frames on this connection use v5 framing.
    std::atomic<bool> v5{false};
    /// Set by the Hello dispatch; ServeOneRequest flips `v5` after writing
    /// the Hello response (which itself always uses legacy framing).
    bool negotiated_v5 = false;
    std::atomic<bool> closed{false};
  };

  /// Registry entry of one live connection.
  struct ConnState {
    uint64_t id = 0;
    SteadyClock::time_point connected_at;
    SteadyClock::time_point last_activity;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t rpcs = 0;
    std::shared_ptr<ConnShared> shared;
  };

  /// A cached mutating response plus the WAL LSN that made it durable (0
  /// when the server runs without a WAL, or when the entry was rebuilt
  /// during recovery — then the log already holds it). A duplicate replayed
  /// from the window must wait out the same durability its original ack
  /// waited for.
  struct CachedResponse {
    std::string bytes;
    uint64_t lsn = 0;
  };

  /// Exactly-once state of one client session. Sessions are shared across
  /// reconnects (the token's session id, not the connection, is the key),
  /// so entries hold their own lock independent of the registry map.
  struct Session {
    std::mutex mu;
    std::condition_variable cv;
    /// Sequences currently executing. A duplicate of one waits on `cv` for
    /// the cached response instead of double-applying (the client timed out
    /// and retried over a new connection while the original still runs).
    std::set<uint64_t> executing;
    /// Completed sequence -> cached response, trimmed to the window.
    std::map<uint64_t, CachedResponse> done;
    /// Highest sequence trimmed out of `done`; duplicates at or below it
    /// can no longer be replayed and are refused.
    uint64_t evicted_up_to = 0;
    uint64_t last_used_tick = 0;
  };

  /// Binds `options().port` and spawns the accept thread.
  Status StartListener();
  void AcceptLoop();
  void HandleConnection(UniqueFd fd, std::shared_ptr<ConnShared> conn);
  /// Serves one already-readable request; false when the connection should
  /// close (clean disconnect, torn frame, protocol violation, eviction).
  bool ServeOneRequest(const std::shared_ptr<ConnShared>& conn,
                       bool* hello_done);
  /// Builds the response payload for one decoded request. `correlation` is
  /// the v5 request's correlation id (0 on v4 connections); Subscribe
  /// registers it as the push-routing key.
  std::string DispatchRequest(const WireFrame& request, ConnShared* conn,
                              uint64_t correlation, bool* hello_done,
                              Status* failure);
  /// The delivery thread: waits on the subscription engine, probes each
  /// pending connection for writability (a non-writable socket is simply
  /// skipped — its queues drop oldest), and writes drained pushes as
  /// gathered v5 frames. A write that overruns `write_timeout_ms` evicts
  /// the subscriber as a slow client.
  void DeliveryLoop();
  /// Runs a tokened mutating request exactly once: replays from the session
  /// window, waits out a concurrent execution of the same sequence, or
  /// executes, logs, caches the response, and waits for durability (and,
  /// under sync replication, the standby's ack) before returning. `reader`
  /// is positioned past the token.
  std::string DispatchMutating(MsgType type, const IdempotencyToken& token,
                               io::BinaryReader* reader, Status* failure);
  /// The RPC switch for token-free requests (queries, stats, ping, ship).
  std::string ExecuteRequest(MsgType type, io::BinaryReader* reader,
                             Status* failure);
  /// The mutating RPC switch proper. Caller holds `state_mu_` exclusively;
  /// shared by the client path, WAL replay and replication apply — the one
  /// dispatch that regenerates byte-identical state from logged bytes.
  std::string ExecuteMutating(MsgType type, io::BinaryReader* reader,
                              Status* failure);
  /// The session for `id`, creating it (and LRU-evicting beyond
  /// `max_sessions`) as needed.
  std::shared_ptr<Session> GetSession(uint64_t id);
  /// Completes `sequence`: caches the response (window-trimmed) and wakes
  /// duplicate waiters.
  void CacheSessionResponse(Session* session, uint64_t sequence,
                            const std::string& response, uint64_t lsn);
  void TouchConnection(int fd, uint64_t bytes_in, uint64_t bytes_out,
                       bool completed_rpc);

  // --- Durability. ---

  /// Restores the newest fully-valid checkpoint (snapshot + manifest),
  /// rebuilds the per-session dedup windows it recorded, opens the WAL
  /// (salvaging any torn tail), and replays the tail through
  /// `ApplyWalRecord`.
  Status RecoverFromWal();
  /// Installs one already-validated checkpoint: restores the store into
  /// `system_`, reconciles started cameras and their guard state against
  /// the manifest, and rebuilds the dedup windows (replacing any existing
  /// sessions). Shared by crash recovery and the standby re-seed path; the
  /// re-seed caller holds `state_mu_` exclusively.
  Status RestoreCheckpointState(const io::WalCheckpoint& checkpoint,
                                const core::SvsStore& store);
  /// The standby re-seed path, entered when the primary compacted past our
  /// replication cursor (`WalShip` -> `kOutOfRange`): fetches the newest
  /// checkpoint pair over `client`, writes it into our own `wal_dir` first
  /// (crash-safe — recovery validates pairs), resets `system_`, restores
  /// through `RestoreCheckpointState`, and reopens the mirrored log at the
  /// checkpoint's LSN so tailing resumes from there.
  Status ReseedFromPrimary(Client* client);
  /// Raises `wal_epoch_` to `epoch` if newer (never lowers it).
  void AdoptEpoch(uint64_t epoch);
  /// Re-applies one logged op through `ExecuteMutating` and rebuilds its
  /// dedup-window entry. With `from_replication` the record is also
  /// mirrored into this server's own WAL under the primary's LSN.
  Status ApplyWalRecord(const io::WalRecord& record, bool from_replication);
  /// Takes a checkpoint at `lsn` (snapshot, then manifest, then log
  /// compaction — crash-safe in that order) and prunes older checkpoints.
  /// Caller holds `state_mu_` exclusively. Failures are non-fatal: the WAL
  /// still covers everything.
  void CheckpointLocked(uint64_t lsn);
  /// Blocks until a standby has acknowledged `lsn` (sync replication) or
  /// the server is stopping.
  Status WaitShipped(uint64_t lsn);
  /// The standby's tailing loop: WalShip long-polls against the primary,
  /// applying and mirroring each batch.
  void ReplicationLoop();
  void StopReplication();

  core::VideoZilla* system_;
  const ServerOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  // when the system runs serial
  ThreadPool* pool_ = nullptr;
  size_t connection_cap_ = 0;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Serializes mutating RPCs against concurrent queries (see class
  /// comment).
  std::shared_mutex state_mu_;

  /// Guards the session registry. Never held while executing an RPC — the
  /// per-session lock takes over.
  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t session_tick_ = 0;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable drained_cv_;
  std::vector<std::future<void>> connection_futures_;
  std::unordered_map<int, ConnState> active_conns_;
  /// Connection id -> shared state, for the delivery thread (which routes
  /// by the engine's connection ids, not fds).
  std::unordered_map<uint64_t, std::shared_ptr<ConnShared>> conns_by_id_;
  uint64_t next_connection_id_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_shed_ = 0;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> request_errors_{0};
  std::atomic<uint64_t> evicted_idle_{0};
  std::atomic<uint64_t> evicted_slow_{0};
  std::atomic<uint64_t> duplicates_replayed_{0};
  std::atomic<uint64_t> pings_served_{0};
  std::atomic<uint64_t> sessions_evicted_{0};

  // --- Standing-query push state (protocol v5). ---

  SubscriptionEngine engine_;
  std::thread delivery_thread_;
  std::atomic<uint64_t> pushes_sent_{0};
  std::atomic<uint64_t> push_gaps_sent_{0};
  std::atomic<uint64_t> ingest_batches_{0};

  // --- Durability state. ---

  /// The write-ahead log (null without `wal_dir`). Internally synchronized.
  std::unique_ptr<io::Wal> wal_;
  /// True while `RecoverFromWal` replays the tail — checkpointing is
  /// suppressed (compaction would delete segments mid-replay).
  bool in_recovery_ = false;
  std::atomic<uint64_t> wal_replayed_records_{0};
  std::atomic<uint64_t> wal_checkpoints_{0};

  /// Highest LSN a standby has acknowledged as durably applied (via its
  /// WalShip `from_lsn`). Sync-replication acks wait on this frontier.
  std::mutex ship_mu_;
  std::condition_variable ship_cv_;
  uint64_t shipped_acked_ = 0;

  // --- Standby state. ---

  bool standby_ = false;
  std::atomic<bool> promoted_{false};
  std::thread replication_thread_;
  std::atomic<bool> replication_stop_{false};
  /// The primary's durable frontier as of the last WalShip reply (lag
  /// gauge numerator).
  std::atomic<uint64_t> replication_primary_durable_{0};
  std::atomic<uint64_t> replication_errors_{0};
  std::atomic<uint64_t> replication_reseeds_{0};
  /// Promotion epoch (fencing; see DESIGN.md, "Durability and
  /// replication"). Starts
  /// at 1, raised by recovery/replication to the max epoch ever seen, and
  /// bumped by `Promote` (which also appends a durable epoch-marker record).
  /// A WalShip caller announcing a *newer* epoch proves this server was
  /// demoted by a failover it never saw: the request is refused instead of
  /// acked.
  std::atomic<uint64_t> wal_epoch_{1};
};

}  // namespace vz::net

#endif  // VZ_NET_SERVER_H_
