#include "net/chaos_proxy.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sys/socket.h>
#include <utility>

namespace vz::net {

void ChaosProxy::Relay::Kill() {
  if (downstream.valid()) ::shutdown(downstream.get(), SHUT_RDWR);
  if (upstream.valid()) ::shutdown(upstream.get(), SHUT_RDWR);
}

ChaosProxy::ChaosProxy(const ChaosProxyOptions& options)
    : options_(options), master_injector_(options.faults) {}

ChaosProxy::~ChaosProxy() { Shutdown(); }

Status ChaosProxy::Start() {
  if (started_) return Status::FailedPrecondition("proxy already started");
  VZ_ASSIGN_OR_RETURN(
      listen_fd_, TcpListen(options_.listen_address, options_.listen_port));
  VZ_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void ChaosProxy::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& relay : relays_) relay->Kill();
    threads.swap(pump_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  started_ = false;
}

ChaosProxy::Stats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.connections_relayed = connections_relayed_;
  stats.ledger = ledger_;
  return stats;
}

void ChaosProxy::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = TcpAccept(listen_fd_.get());
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;
    }
    auto upstream = TcpConnect(options_.upstream_host, options_.upstream_port,
                               options_.upstream_connect_timeout_ms);
    if (!upstream.ok()) {
      // Upstream down (e.g. the restart drill's dead window): dropping the
      // accepted socket is exactly what a dead server looks like.
      continue;
    }
    (void)SetTcpNoDelay(accepted->get());
    auto relay = std::make_shared<Relay>();
    relay->downstream = std::move(*accepted);
    relay->upstream = std::move(*upstream);

    std::lock_guard<std::mutex> lock(mu_);
    ++connections_relayed_;
    // Each direction gets its own deterministic fault stream, forked off
    // the master in accept order.
    sim::WireFaultInjector down_to_up = master_injector_.Fork();
    sim::WireFaultInjector up_to_down = master_injector_.Fork();
    const int down_fd = relay->downstream.get();
    const int up_fd = relay->upstream.get();
    relays_.push_back(relay);
    pump_threads_.emplace_back(
        [this, relay, down_fd, up_fd, injector = std::move(down_to_up)]() mutable {
          Pump(relay, down_fd, up_fd, std::move(injector));
        });
    pump_threads_.emplace_back(
        [this, relay, down_fd, up_fd, injector = std::move(up_to_down)]() mutable {
          Pump(relay, up_fd, down_fd, std::move(injector));
        });
  }
}

void ChaosProxy::Pump(std::shared_ptr<Relay> relay, int src, int dst,
                      sim::WireFaultInjector injector) {
  std::string buffer(std::max<size_t>(options_.chunk_bytes, 1), '\0');
  bool killed = false;
  while (!stopping_.load()) {
    auto readable = WaitReadable(src, options_.idle_poll_ms);
    if (!readable.ok()) break;
    if (!*readable) continue;  // idle; re-check the stop flag
    ssize_t n;
    do {
      n = ::recv(src, buffer.data(), buffer.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;  // EOF or error: tear the relay down

    std::string chunk = buffer.substr(0, static_cast<size_t>(n));
    const sim::WireFaultInjector::Action action = injector.Apply(&chunk);
    if (action.blackhole) {
      // Swallow but keep draining `src`, so the sender stays unblocked and
      // only its response deadline can save it.
      continue;
    }
    if (action.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
    }
    bool write_failed = false;
    if (!chunk.empty()) {
      if (action.split_at > 0 && action.split_at < chunk.size()) {
        write_failed =
            !SendAll(dst, chunk.data(), action.split_at).ok() ||
            !SendAll(dst, chunk.data() + action.split_at,
                     chunk.size() - action.split_at)
                 .ok();
      } else {
        write_failed = !SendAll(dst, chunk.data(), chunk.size()).ok();
      }
    }
    if (action.reset) {
      relay->Kill();
      killed = true;
      break;
    }
    if (write_failed) break;
  }
  if (!killed) relay->Kill();  // propagate the close to the other side
  std::lock_guard<std::mutex> lock(mu_);
  ledger_ += injector.ledger();
  relays_.erase(std::remove(relays_.begin(), relays_.end(), relay),
                relays_.end());
}

}  // namespace vz::net
