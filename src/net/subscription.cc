#include "net/subscription.h"

#include <algorithm>
#include <chrono>

#include "vector/feature_vector.h"

namespace vz::net {

SubscriptionEngine::SubscriptionEngine() : SubscriptionEngine(Options{}) {}

SubscriptionEngine::SubscriptionEngine(Options options)
    : options_(options) {}

uint64_t SubscriptionEngine::Subscribe(uint64_t conn_id, uint64_t correlation,
                                       SubscribeRequest spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  Subscription sub;
  sub.id = id;
  sub.conn_id = conn_id;
  sub.correlation = correlation;
  sub.spec = std::move(spec);
  subscriptions_.emplace(id, std::move(sub));
  by_conn_[conn_id].push_back(id);
  ++stats_.subscriptions_total;
  stats_.subscriptions_active = subscriptions_.size();
  return id;
}

Status SubscriptionEngine::Unsubscribe(uint64_t conn_id,
                                       uint64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscriptions_.find(subscription_id);
  if (it == subscriptions_.end() || it->second.conn_id != conn_id) {
    return Status::NotFound("unknown subscription id " +
                            std::to_string(subscription_id));
  }
  auto conn_it = by_conn_.find(conn_id);
  if (conn_it != by_conn_.end()) {
    auto& ids = conn_it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), subscription_id),
              ids.end());
    if (ids.empty()) by_conn_.erase(conn_it);
  }
  subscriptions_.erase(it);
  stats_.subscriptions_active = subscriptions_.size();
  return Status::OK();
}

void SubscriptionEngine::DropConnection(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto conn_it = by_conn_.find(conn_id);
  if (conn_it == by_conn_.end()) return;
  for (uint64_t id : conn_it->second) subscriptions_.erase(id);
  by_conn_.erase(conn_it);
  stats_.subscriptions_active = subscriptions_.size();
}

void SubscriptionEngine::EnqueueLocked(Subscription* sub, PushEvent event) {
  if (sub->queue.size() >= options_.queue_capacity) {
    // Drop-oldest, never drop-newest: the subscriber's view stays as close
    // to the live edge as its drain rate allows, and the loss is recorded
    // for the next gap marker. A dropped gap marker folds its own count in.
    const PushEvent& oldest = sub->queue.front();
    sub->dropped_pending +=
        oldest.kind == PushKind::kGap ? oldest.dropped : 1;
    sub->queue.pop_front();
    ++stats_.events_dropped;
  }
  sub->queue.push_back(std::move(event));
  ++stats_.events_enqueued;
}

void SubscriptionEngine::OnSegment(const core::Svs& svs) {
  const FeatureMap& map = svs.features();
  // The row-pointer table is built lazily: most segments match no
  // subscription filter, and many engines have no match subscriptions at
  // all.
  std::vector<const float*> rows;
  std::vector<double> distances;
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, sub] : subscriptions_) {
      if (!sub.spec.want_matches) continue;
      if (sub.spec.has_camera_filter &&
          std::find(sub.spec.cameras.begin(), sub.spec.cameras.end(),
                    svs.camera()) == sub.spec.cameras.end()) {
        continue;
      }
      // A dimension mismatch is a non-match, not an error: cameras with
      // differing feature dimensionality can coexist under one engine.
      if (sub.spec.query.dim() != map.dim() || map.size() == 0) continue;
      if (rows.empty()) {
        rows.reserve(map.size());
        for (size_t i = 0; i < map.size(); ++i) rows.push_back(map.row(i));
        distances.resize(map.size());
      }
      EuclideanDistancesTo(sub.spec.query.data(), rows.data(), rows.size(),
                           map.dim(), distances.data());
      ++stats_.matches_evaluated;
      const double best =
          *std::min_element(distances.begin(), distances.end());
      if (best > sub.spec.threshold) continue;
      PushEvent event;
      event.subscription_id = sub.id;
      event.kind = PushKind::kMatch;
      event.svs_id = svs.id();
      event.camera = svs.camera();
      event.start_ms = svs.start_ms();
      event.end_ms = svs.end_ms();
      event.distance = best;
      EnqueueLocked(&sub, std::move(event));
      enqueued = true;
    }
  }
  if (enqueued) work_cv_.notify_all();
}

void SubscriptionEngine::OnIndexVersion(uint64_t version) {
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, sub] : subscriptions_) {
      if (!sub.spec.want_stats) continue;
      if (version <= sub.seen_index_version) continue;
      sub.seen_index_version = version;
      // Coalesce: a pending index update is overwritten in place — the
      // subscriber only ever cares about the newest version, and a slow
      // stats subscriber must not burn queue slots on stale ones.
      if (!sub.queue.empty() &&
          sub.queue.back().kind == PushKind::kIndexUpdate) {
        sub.queue.back().index_version = version;
      } else {
        PushEvent event;
        event.subscription_id = sub.id;
        event.kind = PushKind::kIndexUpdate;
        event.index_version = version;
        EnqueueLocked(&sub, std::move(event));
      }
      enqueued = true;
    }
  }
  if (enqueued) work_cv_.notify_all();
}

bool SubscriptionEngine::WaitForWork(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto has_work = [this] {
    for (const auto& [id, sub] : subscriptions_) {
      if (!sub.queue.empty() || sub.dropped_pending > 0) return true;
    }
    return false;
  };
  if (timeout_ms <= 0) return has_work();
  work_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), has_work);
  return has_work();
}

std::vector<uint64_t> SubscriptionEngine::ConnectionsWithPending() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> conns;
  for (const auto& [conn_id, ids] : by_conn_) {
    for (uint64_t id : ids) {
      auto it = subscriptions_.find(id);
      if (it != subscriptions_.end() &&
          (!it->second.queue.empty() || it->second.dropped_pending > 0)) {
        conns.push_back(conn_id);
        break;
      }
    }
  }
  // Deterministic delivery order across rounds.
  std::sort(conns.begin(), conns.end());
  return conns;
}

std::vector<SubscriptionEngine::Delivery> SubscriptionEngine::Drain(
    uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Delivery> out;
  auto conn_it = by_conn_.find(conn_id);
  if (conn_it == by_conn_.end()) return out;
  for (uint64_t id : conn_it->second) {
    auto it = subscriptions_.find(id);
    if (it == subscriptions_.end()) continue;
    Subscription& sub = it->second;
    size_t budget = options_.max_drain_per_subscription;
    // Loss first: the gap marker precedes the events that survived it, so
    // the subscriber knows the discontinuity's position in the stream.
    if (sub.dropped_pending > 0 && budget > 0) {
      PushEvent gap;
      gap.subscription_id = sub.id;
      gap.kind = PushKind::kGap;
      gap.dropped = sub.dropped_pending;
      gap.sequence = sub.next_sequence++;
      sub.dropped_pending = 0;
      ++stats_.gaps_recorded;
      out.push_back(Delivery{sub.correlation, std::move(gap)});
      --budget;
    }
    while (!sub.queue.empty() && budget > 0) {
      PushEvent event = std::move(sub.queue.front());
      sub.queue.pop_front();
      event.sequence = sub.next_sequence++;
      out.push_back(Delivery{sub.correlation, std::move(event)});
      --budget;
    }
  }
  return out;
}

SubscriptionEngine::Stats SubscriptionEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vz::net
