#include "net/edge_registry.h"

#include <algorithm>
#include <utility>

namespace vz::net {

EdgeRegistry::EdgeRegistry(std::vector<EdgeEndpoint> edges,
                           const EdgeRegistryOptions& options)
    : options_(options) {
  edges_.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    Edge edge;
    edge.endpoint = std::move(edges[i]);
    edge.rng = Rng(options_.seed ^ static_cast<uint64_t>(i));
    edges_.push_back(std::move(edge));
  }
}

EdgeEndpoint EdgeRegistry::endpoint(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_[index].endpoint;
}

void EdgeRegistry::RecordSuccess(size_t index, int64_t now_ms) {
  (void)now_ms;
  std::lock_guard<std::mutex> lock(mu_);
  Edge& edge = edges_[index];
  edge.consecutive_failures = 0;
  edge.unreachable = false;
  edge.probe_attempt = 0;
  edge.next_probe_ms = 0;
}

void EdgeRegistry::RecordFailure(size_t index, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Edge& edge = edges_[index];
  ++edge.consecutive_failures;
  if (edge.unreachable) {
    // A failed probe: back off further before the next one.
    ++edge.probe_attempt;
    ScheduleProbeLocked(&edge, now_ms);
    return;
  }
  if (edge.consecutive_failures >= options_.unreachable_after) {
    edge.unreachable = true;
    edge.probe_attempt = 0;
    ScheduleProbeLocked(&edge, now_ms);
  }
}

void EdgeRegistry::RecordRepSync(size_t index, uint64_t version,
                                 uint64_t entries, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Edge& edge = edges_[index];
  edge.consecutive_failures = 0;
  edge.unreachable = false;
  edge.probe_attempt = 0;
  edge.next_probe_ms = 0;
  edge.synced_version = version;
  edge.rep_entries = entries;
  edge.last_sync_ms = now_ms;
}

void EdgeRegistry::RecordCameras(size_t index,
                                 std::vector<core::CameraId> cameras) {
  std::sort(cameras.begin(), cameras.end());
  std::lock_guard<std::mutex> lock(mu_);
  edges_[index].cameras = std::move(cameras);
}

uint64_t EdgeRegistry::synced_version(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_[index].synced_version;
}

bool EdgeRegistry::Eligible(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !edges_[index].unreachable;
}

bool EdgeRegistry::ProbeDue(size_t index, int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Edge& edge = edges_[index];
  return edge.unreachable && now_ms >= edge.next_probe_ms;
}

ShardState EdgeRegistry::StateAtLocked(const Edge& edge,
                                       int64_t now_ms) const {
  if (edge.unreachable) return ShardState::kUnreachable;
  if (edge.consecutive_failures > 0) return ShardState::kDegraded;
  if (edge.last_sync_ms < 0) return ShardState::kDegraded;
  if (options_.rep_staleness_bound_ms > 0 &&
      now_ms - edge.last_sync_ms > options_.rep_staleness_bound_ms) {
    return ShardState::kDegraded;
  }
  return ShardState::kHealthy;
}

ShardState EdgeRegistry::StateAt(size_t index, int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateAtLocked(edges_[index], now_ms);
}

std::vector<core::CameraId> EdgeRegistry::CamerasOf(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_[index].cameras;
}

EdgeRegistry::EdgeSnapshot EdgeRegistry::Snapshot(size_t index,
                                                  int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Edge& edge = edges_[index];
  EdgeSnapshot snapshot;
  snapshot.endpoint = edge.endpoint;
  snapshot.index = index;
  snapshot.state = StateAtLocked(edge, now_ms);
  snapshot.consecutive_failures = edge.consecutive_failures;
  snapshot.rep_staleness_ms =
      edge.last_sync_ms < 0 ? -1 : now_ms - edge.last_sync_ms;
  snapshot.synced_version = edge.synced_version;
  snapshot.rep_entries = edge.rep_entries;
  snapshot.cameras = edge.cameras;
  return snapshot;
}

std::vector<ShardHealthInfo> EdgeRegistry::HealthTable(int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardHealthInfo> table;
  table.reserve(edges_.size());
  for (const Edge& edge : edges_) {
    ShardHealthInfo info;
    info.host = edge.endpoint.host;
    info.port = edge.endpoint.port;
    info.state = StateAtLocked(edge, now_ms);
    info.consecutive_failures = edge.consecutive_failures;
    info.rep_staleness_ms =
        edge.last_sync_ms < 0 ? -1 : now_ms - edge.last_sync_ms;
    info.rep_entries = edge.rep_entries;
    info.cameras = edge.cameras.size();
    table.push_back(std::move(info));
  }
  return table;
}

void EdgeRegistry::ScheduleProbeLocked(Edge* edge, int64_t now_ms) {
  int64_t delay = options_.probe_backoff_floor_ms;
  for (uint64_t i = 0; i < edge->probe_attempt && i < 32; ++i) {
    delay *= 2;
    if (delay >= options_.probe_backoff_cap_ms) break;
  }
  delay = std::min(delay, options_.probe_backoff_cap_ms);
  delay = std::max<int64_t>(delay, 1);
  // Subtractive jitter, like the client's shed backoff: never exceeds the
  // cap, de-synchronises coordinators (and edges) probing in lockstep.
  if (options_.probe_backoff_jitter > 0.0) {
    const double jitter =
        std::min(1.0, std::max(0.0, options_.probe_backoff_jitter));
    delay -= static_cast<int64_t>(edge->rng.UniformDouble() * jitter *
                                  static_cast<double>(delay));
  }
  edge->next_probe_ms = now_ms + delay;
}

}  // namespace vz::net
