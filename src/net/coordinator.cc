#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <sys/socket.h>
#include <thread>
#include <utility>

#include "net/client.h"

namespace vz::net {

namespace {

/// Response payload: a wire status followed by nothing.
std::string StatusOnlyResponse(const Status& status, int64_t retry_after_ms) {
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {status, retry_after_ms});
  return writer.buffer();
}

/// True for statuses that mean the edge could not be talked to, as opposed
/// to an edge that answered with an error. Mirrors the client's reconnect
/// classification: `kInternal` is included because a refused connect (edge
/// dead or mid-restart) surfaces as such once the reconnect budget runs out.
/// RPC-level answers (kNotFound, kInvalidArgument...) never count against
/// shard health — the shard is alive and responding.
bool IsEdgeTransportFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss ||
         code == StatusCode::kInternal;
}

/// Sorts and dedups a merged `excluded_cameras` list so the answer does not
/// depend on which legs contributed exclusions in which order.
void CanonicalizeExcluded(std::vector<core::CameraId>* excluded) {
  std::sort(excluded->begin(), excluded->end());
  excluded->erase(std::unique(excluded->begin(), excluded->end()),
                  excluded->end());
}

}  // namespace

int64_t Coordinator::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Coordinator::Coordinator(const CoordinatorOptions& options)
    : options_(options),
      registry_(options.edges, options.registry),
      omd_(options.omd),
      inter_(&omd_, options.inter, Rng(options.seed ^ 0x1357)),
      edge_entries_(options.edges.size()),
      idle_clients_(options.edges.size()),
      watch_clients_(options.edges.size()) {}

Coordinator::~Coordinator() { Shutdown(); }

Status Coordinator::Start() {
  if (started_) {
    return Status::FailedPrecondition("coordinator already started");
  }
  if (options_.edges.empty()) {
    return Status::InvalidArgument("a coordinator needs at least one edge");
  }
  // One worker per connection plus the accept loop's headroom, like Server's
  // owned-pool fallback.
  pool_ = std::make_unique<ThreadPool>(options_.max_connections + 1);
  VZ_ASSIGN_OR_RETURN(listen_fd_,
                      TcpListen(options_.bind_address, options_.port));
  VZ_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  forward_thread_ = std::thread([this] { ForwardLoop(); });
  // Prime the registry and the representative index before the first query
  // can arrive; edges that are down simply start their ladder early.
  (void)SyncPass(/*respect_backoff=*/false);
  if (options_.sync_interval_ms > 0) {
    sync_thread_ = std::thread([this] { SyncLoop(); });
  }
  started_ = true;
  return Status::OK();
}

void Coordinator::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
  }
  sync_cv_.notify_all();
  if (sync_thread_.joinable()) sync_thread_.join();
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_.Reset();
  std::vector<std::future<void>> futures;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool drained = drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return active_connections_ == 0; });
    if (!drained) {
      for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    futures.swap(connection_futures_);
  }
  for (std::future<void>& f : futures) {
    if (f.valid()) f.wait();
  }
  push_cv_.notify_all();
  if (forward_thread_.joinable()) forward_thread_.join();
  // Connection handlers tore their own subscriptions down on exit; anything
  // left (a handler killed past the drain deadline) is reclaimed here.
  std::vector<std::shared_ptr<ClientSub>> leftovers;
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    for (auto& [id, sub] : subs_by_id_) leftovers.push_back(sub);
    subs_by_id_.clear();
    subs_by_conn_.clear();
  }
  for (const auto& sub : leftovers) TeardownSub(sub);
  {
    // Dropping a watcher joins its reader thread and voids its edge-side
    // stats subscription.
    std::lock_guard<std::mutex> lock(pass_mu_);
    watch_clients_ =
        std::vector<std::unique_ptr<Client>>(options_.edges.size());
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (auto& pool : idle_clients_) pool.clear();
  }
  started_ = false;
}

std::vector<ShardHealthInfo> Coordinator::shard_health() const {
  return registry_.HealthTable(NowMs());
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.connections_accepted = connections_accepted_;
    stats.connections_shed = connections_shed_;
    stats.connections_active = active_connections_;
  }
  stats.requests_served = requests_served_.load();
  stats.request_errors = request_errors_.load();
  stats.fanout_legs = fanout_legs_.load();
  stats.fanout_failures = fanout_failures_.load();
  stats.degraded_answers = degraded_answers_.load();
  stats.pruned_legs = pruned_legs_.load();
  stats.rep_sync_updates = rep_sync_updates_.load();
  stats.probes_sent = probes_sent_.load();
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    stats.rep_entries = inter_.size();
  }
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    stats.subscriptions_active = subs_by_id_.size();
  }
  stats.subscriptions_total = subscriptions_total_.load();
  stats.pushes_forwarded = pushes_forwarded_.load();
  stats.push_gaps_forwarded = push_gaps_forwarded_.load();
  stats.rep_push_wakeups = rep_push_wakeups_.load();
  return stats;
}

// --- Client-facing front end (a read-only sibling of Server's loop). ---

void Coordinator::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = TcpAccept(listen_fd_.get());
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;
    }
    UniqueFd fd = std::move(*accepted);
    (void)SetTcpNoDelay(fd.get());

    std::lock_guard<std::mutex> lock(mu_);
    ++connections_accepted_;
    if (stopping_.load() || active_connections_ >= options_.max_connections) {
      ++connections_shed_;
      const Status shed = Status::ResourceExhausted(
          "coordinator at connection capacity (" +
          std::to_string(options_.max_connections) + "); retry later");
      (void)WriteFrame(
          fd.get(), static_cast<uint32_t>(MsgType::kHello) | kResponseFlag,
          StatusOnlyResponse(shed, options_.shed_retry_after_ms),
          options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1);
      continue;  // fd closes on scope exit
    }
    ++active_connections_;
    active_fds_.push_back(fd.get());
    auto shared = std::make_shared<ConnShared>();
    shared->id = next_conn_id_++;
    shared->fd = fd.get();
    conns_by_id_.emplace(shared->id, shared);
    std::erase_if(connection_futures_, [](std::future<void>& f) {
      return !f.valid() ||
             f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    connection_futures_.push_back(
        pool_->Submit([this, raw = fd.Release(), shared]() mutable {
          HandleConnection(UniqueFd(raw), std::move(shared));
        }));
  }
}

void Coordinator::HandleConnection(UniqueFd fd,
                                   std::shared_ptr<ConnShared> conn) {
  bool hello_done = false;
  while (!stopping_.load()) {
    auto readable = WaitReadable(fd.get(), options_.idle_poll_ms);
    if (!readable.ok()) break;
    if (!*readable) continue;  // idle; re-check the stop flag
    if (!ServeOneRequest(conn, &hello_done)) break;
  }
  // Push teardown BEFORE the socket closes: `closed` flips under
  // `write_mu`, and the forwarder re-checks it under the same lock, so no
  // forwarded push can land on a recycled fd number.
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    conn->closed.store(true);
  }
  DropSubscriptionsOf(conn->id);
  std::lock_guard<std::mutex> lock(mu_);
  conns_by_id_.erase(conn->id);
  std::erase(active_fds_, fd.get());
  if (active_connections_ > 0) --active_connections_;
  if (active_connections_ == 0) drained_cv_.notify_all();
}

bool Coordinator::ServeOneRequest(const std::shared_ptr<ConnShared>& conn,
                                  bool* hello_done) {
  const int fd = conn->fd;
  const int64_t read_timeout =
      options_.read_timeout_ms > 0 ? options_.read_timeout_ms : -1;
  const int64_t write_timeout =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
  // The framing is fixed per exchange: a v5 Hello's own response still
  // travels in legacy framing (the flag flips after it is written).
  const bool v5 = conn->v5.load(std::memory_order_acquire);

  auto write_response = [&](uint32_t type, uint64_t correlation,
                            const std::string& payload) {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    return v5 ? WriteFrameV5(fd, type, correlation, payload, write_timeout)
              : WriteFrame(fd, type, payload, write_timeout);
  };

  uint64_t correlation = 0;
  WireFrame request;
  Status read_status;
  if (v5) {
    auto framed = ReadFrameV5(fd, read_timeout);
    if (framed.ok()) {
      correlation = framed->correlation;
      request.type = framed->type;
      request.payload = std::move(framed->payload);
    } else {
      read_status = framed.status();
    }
  } else {
    auto framed = ReadFrame(fd, read_timeout);
    if (framed.ok()) {
      request = std::move(*framed);
    } else {
      read_status = framed.status();
    }
  }
  if (!read_status.ok()) {
    if (read_status.code() != StatusCode::kNotFound &&
        read_status.code() != StatusCode::kUnavailable) {
      request_errors_.fetch_add(1);
      // On a v5 connection the request's correlation never arrived intact,
      // so the error rides correlation 0 — connection-fatal for the client.
      (void)write_response(
          static_cast<uint32_t>(MsgType::kHello) | kResponseFlag, 0,
          StatusOnlyResponse(read_status, 0));
    }
    return false;
  }
  if ((request.type & kResponseFlag) != 0 ||
      request.type == static_cast<uint32_t>(MsgType::kPushEvent)) {
    request_errors_.fetch_add(1);
    (void)write_response(request.type | kResponseFlag, correlation,
                         StatusOnlyResponse(
                             Status::InvalidArgument(
                                 "response or push frame sent as request"),
                             0));
    return false;
  }

  Status failure;
  const std::string response = DispatchRequest(request, conn.get(),
                                               correlation, hello_done,
                                               &failure);
  if (failure.ok()) {
    requests_served_.fetch_add(1);
  } else {
    request_errors_.fetch_add(1);
  }
  if (!write_response(request.type | kResponseFlag, correlation, response)
           .ok()) {
    return false;
  }
  // A successful v5 Hello switches the framing from here on.
  if (!v5 && conn->negotiated_v5) {
    conn->v5.store(true, std::memory_order_release);
  }
  // Like Server: a protocol-ordering violation closes the connection after
  // the error response; RPC-level failures keep it open.
  if (!failure.ok() && failure.code() == StatusCode::kFailedPrecondition &&
      !*hello_done) {
    return false;
  }
  return true;
}

std::string Coordinator::DispatchRequest(const WireFrame& request,
                                         ConnShared* conn,
                                         uint64_t correlation,
                                         bool* hello_done, Status* failure) {
  io::BinaryReader reader(request.payload);
  const MsgType type = static_cast<MsgType>(request.type);

  if (type == MsgType::kHello) {
    auto version = reader.ReadU32();
    if (!version.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         version.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    io::BinaryWriter writer;
    if (*version < kMinProtocolVersion || *version > kProtocolVersion) {
      *failure = Status::FailedPrecondition(
          "protocol version mismatch: client speaks v" +
          std::to_string(*version) + ", coordinator speaks v" +
          std::to_string(kMinProtocolVersion) + "-v" +
          std::to_string(kProtocolVersion));
      EncodeWireStatus(&writer, {*failure, 0});
    } else {
      *hello_done = true;
      // A v4 client keeps legacy framing for the whole connection; a v5
      // client switches after this response is written.
      conn->negotiated_v5 = *version >= 5;
      EncodeWireStatus(&writer, {Status::OK(), 0});
    }
    writer.WriteU32(kProtocolVersion);
    return writer.buffer();
  }
  if (!*hello_done) {
    *failure = Status::FailedPrecondition("first message must be Hello");
    return StatusOnlyResponse(*failure, 0);
  }
  if (type == MsgType::kSubscribe) {
    return HandleSubscribe(conn, correlation, &reader, failure);
  }
  if (type == MsgType::kUnsubscribe) {
    return HandleUnsubscribe(conn, &reader, failure);
  }
  if (type == MsgType::kAdminTune) {
    // The one mutating RPC the coordinator forwards: index tuning is
    // fleet-wide operator state, so it fans out to every eligible shard.
    return HandleAdminTune(&reader, failure);
  }
  if (IsMutatingType(request.type)) {
    // The coordinator holds no video state: ingest, camera lifecycle and
    // snapshots belong to the edges.
    *failure = Status::FailedPrecondition(
        "coordinator is read-only: send mutating RPCs to an edge server");
    return StatusOnlyResponse(*failure, 0);
  }
  return ExecuteRequest(type, &reader, failure);
}

std::string Coordinator::ExecuteRequest(MsgType type,
                                        io::BinaryReader* reader,
                                        Status* failure) {
  switch (type) {
    case MsgType::kPing:
      return StatusOnlyResponse(Status::OK(), 0);
    case MsgType::kDirectQuery:
      return HandleDirectQuery(reader, failure);
    case MsgType::kClusteringQueryById:
    case MsgType::kClusteringQueryByMap:
      return HandleClusteringQuery(type, reader, failure);
    case MsgType::kGetMetaData:
      return HandleGetMetaData(reader, failure);
    case MsgType::kSvsFeatureMap:
      return HandleSvsFeatureMap(reader, failure);
    case MsgType::kMonitorStats:
      return HandleMonitorStats(failure);
    case MsgType::kCameraHealth:
      return HandleCameraHealth(failure);
    case MsgType::kQueryLoadStats:
      return HandleQueryLoadStats(failure);
    case MsgType::kWalShip:
    case MsgType::kRepSync:
    case MsgType::kCheckpointFetch:
      *failure = Status::FailedPrecondition(
          "replication RPCs are edge-to-edge; the coordinator serves none");
      return StatusOnlyResponse(*failure, 0);
    default:
      break;
  }
  *failure = Status::Unimplemented(
      "unhandled message type " +
      std::to_string(static_cast<uint32_t>(type)));
  return StatusOnlyResponse(*failure, 0);
}

// --- Standing-query fan-out. ---

std::string Coordinator::HandleSubscribe(ConnShared* conn,
                                         uint64_t correlation,
                                         io::BinaryReader* reader,
                                         Status* failure) {
  auto spec = DecodeSubscribeRequest(reader);
  if (!spec.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       spec.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  if (!conn->v5.load(std::memory_order_acquire)) {
    *failure = Status::FailedPrecondition(
        "Subscribe requires protocol v5: push frames are multiplexed by "
        "correlation id, which v4 framing cannot carry");
    return StatusOnlyResponse(*failure, 0);
  }

  auto sub = std::make_shared<ClientSub>();
  {
    // The id is assigned BEFORE any edge subscription goes live, so the
    // first push (which can race this handler) already remaps to it.
    std::lock_guard<std::mutex> lock(push_mu_);
    sub->id = next_sub_id_++;
  }
  sub->correlation = correlation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_by_id_.find(conn->id);
    if (it != conns_by_id_.end()) sub->conn = it->second;
  }
  sub->edge_clients.resize(registry_.size());

  // One dedicated v5 connection per eligible edge: pushes arrive on the
  // connection that subscribed, so pooled (shared) clients cannot carry
  // them. Zero reconnect budget — a silently reconnected client would have
  // silently lost its subscription.
  size_t subscribed = 0;
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (!registry_.Eligible(i)) continue;
    const EdgeEndpoint endpoint = registry_.endpoint(i);
    ClientOptions client_options;
    client_options.connect_timeout_ms = options_.edge_connect_timeout_ms;
    client_options.io_timeout_ms = options_.edge_io_timeout_ms;
    client_options.max_shed_retries = 1;
    client_options.max_reconnects = 0;
    auto connected =
        Client::Connect(endpoint.host, endpoint.port, client_options);
    if (!connected.ok()) {
      registry_.RecordFailure(i, NowMs());
      continue;
    }
    auto client = std::make_unique<Client>(std::move(*connected));
    std::weak_ptr<ClientSub> weak = sub;
    auto result = client->Subscribe(
        *spec, [this, weak, shard = i](const PushEvent& event) {
          OnEdgePush(weak, shard, event);
        });
    if (!result.ok()) {
      if (IsEdgeTransportFailure(result.status().code())) {
        registry_.RecordFailure(i, NowMs());
      }
      continue;  // the client closes on scope exit
    }
    registry_.RecordSuccess(i, NowMs());
    sub->edge_clients[i] = std::move(client);
    ++subscribed;
  }
  if (subscribed == 0) {
    TeardownSub(sub);
    *failure = Status::Unavailable(
        "no eligible shard accepted the subscription");
    return StatusOnlyResponse(*failure, 0);
  }
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    subs_by_id_.emplace(sub->id, sub);
    subs_by_conn_[conn->id].push_back(sub->id);
  }
  subscriptions_total_.fetch_add(1);
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  writer.WriteU64(sub->id);
  return writer.buffer();
}

std::string Coordinator::HandleUnsubscribe(ConnShared* conn,
                                           io::BinaryReader* reader,
                                           Status* failure) {
  auto id = reader->ReadU64();
  if (!id.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       id.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  std::shared_ptr<ClientSub> victim;
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    auto it = subs_by_id_.find(*id);
    // A connection may only cancel its own subscriptions.
    if (it == subs_by_id_.end() || it->second->conn == nullptr ||
        it->second->conn->id != conn->id) {
      *failure = Status::NotFound("unknown subscription id " +
                                  std::to_string(*id));
      return StatusOnlyResponse(*failure, 0);
    }
    victim = it->second;
    subs_by_id_.erase(it);
    auto conn_it = subs_by_conn_.find(conn->id);
    if (conn_it != subs_by_conn_.end()) {
      std::erase(conn_it->second, *id);
      if (conn_it->second.empty()) subs_by_conn_.erase(conn_it);
    }
  }
  // Outside push_mu_: closing the edge clients joins their reader threads.
  TeardownSub(victim);
  return StatusOnlyResponse(Status::OK(), 0);
}

std::string Coordinator::HandleAdminTune(io::BinaryReader* reader,
                                         Status* failure) {
  // The client stamped an idempotency token (kAdminTune is mutating); the
  // coordinator keeps no dedup state of its own — each fan-out leg below
  // carries its own token, and the edges deduplicate those.
  auto token = DecodeIdempotencyToken(reader);
  if (!token.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       token.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  auto request = DecodeAdminTuneRequest(reader);
  if (!request.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       request.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  auto legs = FanOut<AdminTuneReply>(
      EligibleSet(),
      [&](Client* client) { return client->AdminTune(*request); });
  // Every shard gets the same knobs, so any echo serves; a shard that
  // refused (invalid knob) surfaces its error rather than being papered
  // over by a quieter sibling.
  const AdminTuneReply* echo = nullptr;
  Status first_error = Status::OK();
  for (const auto& leg : legs) {
    if (!leg.consulted) continue;
    if (leg.status.ok()) {
      if (echo == nullptr) echo = &leg.result;
    } else if (first_error.ok() &&
               !IsEdgeTransportFailure(leg.status.code())) {
      first_error = leg.status;
    }
  }
  if (!first_error.ok()) {
    *failure = first_error;
    return StatusOnlyResponse(*failure, 0);
  }
  if (echo == nullptr) {
    *failure = Status::Unavailable("no eligible shard applied the tuning");
    return StatusOnlyResponse(*failure, 0);
  }
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeAdminTuneReply(&writer, *echo);
  return writer.buffer();
}

void Coordinator::TeardownSub(const std::shared_ptr<ClientSub>& sub) {
  // Closing a dedicated edge client joins its reader thread and voids the
  // edge-side subscription (the edge reclaims it on disconnect).
  for (auto& client : sub->edge_clients) {
    if (client != nullptr) client->Close();
  }
  sub->edge_clients.clear();
}

void Coordinator::DropSubscriptionsOf(uint64_t conn_id) {
  std::vector<std::shared_ptr<ClientSub>> victims;
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    auto it = subs_by_conn_.find(conn_id);
    if (it == subs_by_conn_.end()) return;
    for (uint64_t id : it->second) {
      auto sit = subs_by_id_.find(id);
      if (sit != subs_by_id_.end()) {
        victims.push_back(sit->second);
        subs_by_id_.erase(sit);
      }
    }
    subs_by_conn_.erase(it);
  }
  for (const auto& sub : victims) TeardownSub(sub);
}

void Coordinator::OnEdgePush(const std::weak_ptr<ClientSub>& weak,
                             size_t shard, const PushEvent& event) {
  // Runs on the edge client's reader thread; must stay non-blocking.
  std::shared_ptr<ClientSub> sub = weak.lock();
  if (sub == nullptr) return;
  ClientSub::Buffered buffered;
  buffered.shard = shard;
  buffered.edge_sequence = event.sequence;
  buffered.event = event;
  buffered.event.subscription_id = sub->id;
  if (event.kind == PushKind::kMatch) {
    buffered.event.svs_id = GlobalSvsId(shard, event.svs_id);
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    if (sub->buffer.size() >= options_.subscription_queue_capacity) {
      // Drop-oldest with gap accounting, exactly like the edge engine; a
      // dropped gap marker folds its own count in.
      const PushEvent& oldest = sub->buffer.front().event;
      sub->dropped_pending +=
          oldest.kind == PushKind::kGap ? oldest.dropped : 1;
      sub->buffer.pop_front();
    }
    sub->buffer.push_back(std::move(buffered));
  }
  push_cv_.notify_all();
}

void Coordinator::DeliverPending(const std::shared_ptr<ClientSub>& sub,
                                 int64_t write_timeout) {
  const std::shared_ptr<ConnShared> conn = sub->conn;
  if (conn == nullptr || !conn->v5.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    if (sub->buffer.empty() && sub->dropped_pending == 0) return;
  }
  // Zero-timeout writability probe: a slow client is skipped this round,
  // its buffer keeps absorbing (drop-oldest) — backpressure stays on it
  // alone, never on the edge connections or other subscribers.
  auto writable = WaitWritable(conn->fd, 0);
  if (!writable.ok() || !*writable) return;
  std::vector<PushEvent> events;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    size_t budget = options_.subscription_max_drain;
    if (sub->dropped_pending > 0 && budget > 0) {
      PushEvent gap;
      gap.subscription_id = sub->id;
      gap.kind = PushKind::kGap;
      gap.dropped = sub->dropped_pending;
      sub->dropped_pending = 0;
      events.push_back(std::move(gap));
      --budget;
    }
    // Merge order is (shard index, edge sequence) — a pure function of the
    // per-edge streams, never of callback arrival interleaving.
    std::stable_sort(sub->buffer.begin(), sub->buffer.end(),
                     [](const ClientSub::Buffered& a,
                        const ClientSub::Buffered& b) {
                       return a.shard != b.shard
                                  ? a.shard < b.shard
                                  : a.edge_sequence < b.edge_sequence;
                     });
    while (!sub->buffer.empty() && budget > 0) {
      events.push_back(std::move(sub->buffer.front().event));
      sub->buffer.pop_front();
      --budget;
    }
    // Coordinator-level sequences are dense as delivered, so a subscriber
    // can prove it saw every frame the coordinator sent.
    for (PushEvent& event : events) event.sequence = sub->next_sequence++;
  }
  if (events.empty()) return;
  std::vector<std::string> frames;
  frames.reserve(events.size());
  uint64_t gaps = 0;
  for (const PushEvent& event : events) {
    io::BinaryWriter writer;
    EncodePushEvent(&writer, event);
    if (event.kind == PushKind::kGap) ++gaps;
    frames.push_back(EncodeFrameV5(static_cast<uint32_t>(MsgType::kPushEvent),
                                   sub->correlation, writer.buffer()));
  }
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    if (conn->closed.load()) return;  // events die with the connection
    Status written = WriteEncodedFrames(conn->fd, frames, write_timeout);
    if (!written.ok()) {
      ::shutdown(conn->fd, SHUT_RDWR);  // the handler tears down
      return;
    }
  }
  pushes_forwarded_.fetch_add(events.size());
  push_gaps_forwarded_.fetch_add(gaps);
}

void Coordinator::ForwardLoop() {
  const int64_t write_timeout =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : -1;
  const int64_t poll_ms = options_.push_poll_ms > 0 ? options_.push_poll_ms
                                                    : 50;
  std::unique_lock<std::mutex> lock(push_mu_);
  while (!stopping_.load()) {
    push_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms));
    if (stopping_.load()) return;
    std::vector<std::shared_ptr<ClientSub>> subs;
    subs.reserve(subs_by_id_.size());
    for (const auto& [id, sub] : subs_by_id_) subs.push_back(sub);
    lock.unlock();
    for (const auto& sub : subs) DeliverPending(sub, write_timeout);
    lock.lock();
  }
}

// --- Edge connection pool. ---

StatusOr<std::unique_ptr<Client>> Coordinator::CheckoutClient(size_t edge) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!idle_clients_[edge].empty()) {
      std::unique_ptr<Client> client =
          std::move(idle_clients_[edge].back());
      idle_clients_[edge].pop_back();
      return client;
    }
  }
  const EdgeEndpoint endpoint = registry_.endpoint(edge);
  ClientOptions client_options;
  client_options.connect_timeout_ms = options_.edge_connect_timeout_ms;
  client_options.io_timeout_ms = options_.edge_io_timeout_ms;
  client_options.max_shed_retries = 1;
  client_options.max_reconnects = 1;
  auto connected = Client::Connect(endpoint.host, endpoint.port,
                                   client_options);
  VZ_RETURN_IF_ERROR(connected.status());
  return std::make_unique<Client>(std::move(*connected));
}

void Coordinator::CheckinClient(size_t edge, std::unique_ptr<Client> client) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Bound the pool to a handful per edge; extras just close.
  if (idle_clients_[edge].size() < 4) {
    idle_clients_[edge].push_back(std::move(client));
  }
}

// --- Fan-out plumbing. ---

core::QueryConstraints Coordinator::ShardConstraints(
    const core::QueryConstraints& constraints) const {
  core::QueryConstraints shard = constraints;
  shard.cancel = nullptr;  // does not travel
  if (shard.deadline_ms.has_value()) {
    shard.deadline_ms =
        std::max<int64_t>(1, *shard.deadline_ms - options_.merge_reserve_ms);
  }
  return shard;
}

template <typename Result>
std::vector<Coordinator::Leg<Result>> Coordinator::FanOut(
    const std::vector<bool>& consult,
    const std::function<StatusOr<Result>(Client*)>& call) {
  const size_t n = registry_.size();
  std::vector<Leg<Result>> legs(n);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < n; ++i) {
    if (!consult[i]) continue;
    legs[i].consulted = true;
    threads.emplace_back([this, i, &legs, &call] {
      fanout_legs_.fetch_add(1);
      auto checkout = CheckoutClient(i);
      if (!checkout.ok()) {
        fanout_failures_.fetch_add(1);
        registry_.RecordFailure(i, NowMs());
        legs[i].status = checkout.status();
        return;
      }
      std::unique_ptr<Client> client = std::move(*checkout);
      auto result = call(client.get());
      if (!result.ok()) {
        if (IsEdgeTransportFailure(result.status().code())) {
          fanout_failures_.fetch_add(1);
          registry_.RecordFailure(i, NowMs());
        } else {
          registry_.RecordSuccess(i, NowMs());
          CheckinClient(i, std::move(client));
        }
        legs[i].status = result.status();
        return;
      }
      registry_.RecordSuccess(i, NowMs());
      legs[i].status = Status::OK();
      legs[i].result = std::move(*result);
      CheckinClient(i, std::move(client));
    });
  }
  for (std::thread& t : threads) t.join();
  return legs;
}

std::vector<bool> Coordinator::EligibleSet() const {
  std::vector<bool> consult(registry_.size(), false);
  for (size_t i = 0; i < registry_.size(); ++i) {
    consult[i] = registry_.Eligible(i);
  }
  return consult;
}

std::vector<bool> Coordinator::DirectQueryConsultSet(
    const FeatureVector& feature) {
  std::vector<bool> consult = EligibleSet();
  if (!options_.prune_direct_fanout) return consult;
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (inter_.size() == 0) return consult;  // nothing synced yet anywhere
  // Shards with at least one representative passing the hit test stay in;
  // a synced shard with zero hits is pruned (its own edge index would
  // reject the same representatives). A never-synced shard must stay in:
  // there is nothing to prune with.
  std::vector<bool> has_hit(registry_.size(), false);
  const core::InterCameraIndex::RepEntry* base = inter_.entries().data();
  for (const core::InterCameraIndex::RepEntry* entry :
       inter_.FeatureSearch(feature, options_.boundary_scale)) {
    has_hit[entry_owner_[static_cast<size_t>(entry - base)]] = true;
  }
  for (size_t i = 0; i < consult.size(); ++i) {
    if (!consult[i]) continue;
    if (registry_.synced_version(i) == 0) continue;  // never synced
    if (!has_hit[i]) {
      consult[i] = false;
      pruned_legs_.fetch_add(1);
    }
  }
  return consult;
}

void Coordinator::ExcludeShard(size_t edge,
                               const core::QueryConstraints& constraints,
                               bool* degraded,
                               std::vector<core::CameraId>* excluded) const {
  *degraded = true;
  for (core::CameraId& camera : registry_.CamerasOf(edge)) {
    if (constraints.AllowsCamera(camera)) {
      excluded->push_back(std::move(camera));
    }
  }
}

// --- Query handlers. ---

std::string Coordinator::HandleDirectQuery(io::BinaryReader* reader,
                                           Status* failure) {
  auto feature = DecodeFeatureVector(reader);
  if (!feature.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       feature.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  auto constraints = DecodeQueryConstraints(reader);
  if (!constraints.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       constraints.status().message());
    return StatusOnlyResponse(*failure, 0);
  }

  const std::vector<bool> consult = DirectQueryConsultSet(*feature);
  const core::QueryConstraints shard_constraints =
      ShardConstraints(*constraints);
  auto legs = FanOut<core::DirectQueryResult>(
      consult, [&](Client* client) {
        return client->DirectQuery(*feature, shard_constraints);
      });

  // Merge strictly in shard-index order: the answer is a pure function of
  // the per-shard results, never of their completion order.
  core::DirectQueryResult merged;
  merged.completed_fraction = 0.0;
  size_t consulted = 0;
  double fraction_sum = 0.0;
  for (size_t i = 0; i < legs.size(); ++i) {
    if (!legs[i].consulted) {
      // Evicted shards degrade the answer (their cameras went unsearched);
      // pruned shards do not (no representative could have matched).
      if (registry_.Eligible(i)) continue;
      ExcludeShard(i, *constraints, &merged.degraded,
                   &merged.excluded_cameras);
      continue;
    }
    ++consulted;
    if (!legs[i].status.ok()) {
      // Best-effort partial: the failed shard contributes nothing and zero
      // completed fraction, never an error.
      ExcludeShard(i, *constraints, &merged.degraded,
                   &merged.excluded_cameras);
      continue;
    }
    const core::DirectQueryResult& leg = legs[i].result;
    for (core::SvsId id : leg.candidate_svss) {
      merged.candidate_svss.push_back(GlobalSvsId(i, id));
    }
    for (core::SvsId id : leg.matched_svss) {
      merged.matched_svss.push_back(GlobalSvsId(i, id));
    }
    merged.total_gpu_ms += leg.total_gpu_ms;
    merged.bottleneck_camera_gpu_ms = std::max(
        merged.bottleneck_camera_gpu_ms, leg.bottleneck_camera_gpu_ms);
    merged.per_camera_gpu_ms.insert(merged.per_camera_gpu_ms.end(),
                                    leg.per_camera_gpu_ms.begin(),
                                    leg.per_camera_gpu_ms.end());
    merged.frames_processed += leg.frames_processed;
    merged.cameras_searched += leg.cameras_searched;
    merged.degraded = merged.degraded || leg.degraded;
    merged.timed_out = merged.timed_out || leg.timed_out;
    merged.excluded_cameras.insert(merged.excluded_cameras.end(),
                                   leg.excluded_cameras.begin(),
                                   leg.excluded_cameras.end());
    fraction_sum += leg.completed_fraction;
  }
  merged.completed_fraction =
      consulted == 0 ? (merged.degraded ? 0.0 : 1.0)
                     : fraction_sum / static_cast<double>(consulted);
  CanonicalizeExcluded(&merged.excluded_cameras);
  if (merged.degraded) degraded_answers_.fetch_add(1);

  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeDirectQueryResult(&writer, merged);
  return writer.buffer();
}

std::string Coordinator::HandleClusteringQuery(MsgType type,
                                               io::BinaryReader* reader,
                                               Status* failure) {
  core::QueryConstraints constraints;
  FeatureMap target;
  bool target_shard_down = false;
  size_t owner = 0;
  if (type == MsgType::kClusteringQueryById) {
    auto id = reader->ReadI64();
    if (!id.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         id.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    auto decoded = DecodeQueryConstraints(reader);
    if (!decoded.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         decoded.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    constraints = *decoded;
    owner = ShardOfSvsId(*id);
    if (owner >= registry_.size()) {
      *failure = Status::NotFound("SVS " + std::to_string(*id) +
                                  " names shard " + std::to_string(owner) +
                                  " which does not exist");
      return StatusOnlyResponse(*failure, 0);
    }
    // Resolve the target's feature map on its owning shard, then run the
    // same by-map query everywhere (the owner included) — which is also
    // exactly what a fault-free control does, so answers stay comparable.
    if (!registry_.Eligible(owner)) {
      target_shard_down = true;
    } else {
      auto checkout = CheckoutClient(owner);
      if (!checkout.ok()) {
        registry_.RecordFailure(owner, NowMs());
        target_shard_down = true;
      } else {
        std::unique_ptr<Client> client = std::move(*checkout);
        auto map = client->SvsFeatureMap(LocalSvsId(*id));
        if (map.ok()) {
          registry_.RecordSuccess(owner, NowMs());
          CheckinClient(owner, std::move(client));
          target = std::move(*map);
        } else if (IsEdgeTransportFailure(map.status().code())) {
          registry_.RecordFailure(owner, NowMs());
          target_shard_down = true;
        } else {
          // The shard answered: the id genuinely does not resolve.
          registry_.RecordSuccess(owner, NowMs());
          CheckinClient(owner, std::move(client));
          *failure = map.status();
          return StatusOnlyResponse(*failure, 0);
        }
      }
    }
  } else {
    auto decoded_target = DecodeFeatureMap(reader);
    if (!decoded_target.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         decoded_target.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    auto decoded = DecodeQueryConstraints(reader);
    if (!decoded.ok()) {
      *failure = Status::InvalidArgument("malformed payload: " +
                                         decoded.status().message());
      return StatusOnlyResponse(*failure, 0);
    }
    target = std::move(*decoded_target);
    constraints = *decoded;
  }

  core::ClusteringQueryResult merged;
  if (target_shard_down) {
    // The query target itself is unreachable: the best best-effort answer is
    // an empty, fully degraded partial — still not an error, matching the
    // stalled-camera contract.
    merged.degraded = true;
    merged.completed_fraction = 0.0;
    ExcludeShard(owner, constraints, &merged.degraded,
                 &merged.excluded_cameras);
    for (size_t i = 0; i < registry_.size(); ++i) {
      if (i != owner && !registry_.Eligible(i)) {
        ExcludeShard(i, constraints, &merged.degraded,
                     &merged.excluded_cameras);
      }
    }
    CanonicalizeExcluded(&merged.excluded_cameras);
    degraded_answers_.fetch_add(1);
    io::BinaryWriter writer;
    EncodeWireStatus(&writer, {Status::OK(), 0});
    EncodeClusteringQueryResult(&writer, merged);
    return writer.buffer();
  }

  const std::vector<bool> consult = EligibleSet();
  const core::QueryConstraints shard_constraints =
      ShardConstraints(constraints);
  auto legs = FanOut<core::ClusteringQueryResult>(
      consult, [&](Client* client) {
        return client->ClusteringQuery(target, shard_constraints);
      });

  merged.completed_fraction = 0.0;
  size_t consulted = 0;
  double fraction_sum = 0.0;
  for (size_t i = 0; i < legs.size(); ++i) {
    if (!legs[i].consulted) {
      ExcludeShard(i, constraints, &merged.degraded,
                   &merged.excluded_cameras);
      continue;
    }
    ++consulted;
    if (!legs[i].status.ok()) {
      ExcludeShard(i, constraints, &merged.degraded,
                   &merged.excluded_cameras);
      continue;
    }
    const core::ClusteringQueryResult& leg = legs[i].result;
    for (core::SvsId id : leg.similar_svss) {
      merged.similar_svss.push_back(GlobalSvsId(i, id));
    }
    merged.cameras_contributing += leg.cameras_contributing;
    merged.degraded = merged.degraded || leg.degraded;
    merged.timed_out = merged.timed_out || leg.timed_out;
    merged.fast_omd_routed = merged.fast_omd_routed || leg.fast_omd_routed;
    merged.excluded_cameras.insert(merged.excluded_cameras.end(),
                                   leg.excluded_cameras.begin(),
                                   leg.excluded_cameras.end());
    fraction_sum += leg.completed_fraction;
  }
  merged.completed_fraction =
      consulted == 0 ? (merged.degraded ? 0.0 : 1.0)
                     : fraction_sum / static_cast<double>(consulted);
  CanonicalizeExcluded(&merged.excluded_cameras);
  if (merged.degraded) degraded_answers_.fetch_add(1);

  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeClusteringQueryResult(&writer, merged);
  return writer.buffer();
}

std::string Coordinator::HandleGetMetaData(io::BinaryReader* reader,
                                           Status* failure) {
  auto id = reader->ReadI64();
  if (!id.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       id.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  const size_t owner = ShardOfSvsId(*id);
  if (owner >= registry_.size()) {
    *failure = Status::NotFound("SVS " + std::to_string(*id) +
                                " names shard " + std::to_string(owner) +
                                " which does not exist");
    return StatusOnlyResponse(*failure, 0);
  }
  if (!registry_.Eligible(owner)) {
    *failure = Status::Unavailable("shard " + std::to_string(owner) +
                                   " owning SVS " + std::to_string(*id) +
                                   " is unreachable");
    return StatusOnlyResponse(*failure, 0);
  }
  auto checkout = CheckoutClient(owner);
  if (!checkout.ok()) {
    registry_.RecordFailure(owner, NowMs());
    *failure = checkout.status();
    return StatusOnlyResponse(*failure, 0);
  }
  std::unique_ptr<Client> client = std::move(*checkout);
  auto meta = client->GetMetaData(LocalSvsId(*id));
  if (!meta.ok()) {
    if (IsEdgeTransportFailure(meta.status().code())) {
      registry_.RecordFailure(owner, NowMs());
    } else {
      registry_.RecordSuccess(owner, NowMs());
      CheckinClient(owner, std::move(client));
    }
    *failure = meta.status();
    return StatusOnlyResponse(*failure, 0);
  }
  registry_.RecordSuccess(owner, NowMs());
  CheckinClient(owner, std::move(client));
  meta->id = *id;  // back to the global id space
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeSvsMetadata(&writer, *meta);
  return writer.buffer();
}

std::string Coordinator::HandleSvsFeatureMap(io::BinaryReader* reader,
                                             Status* failure) {
  auto id = reader->ReadI64();
  if (!id.ok()) {
    *failure = Status::InvalidArgument("malformed payload: " +
                                       id.status().message());
    return StatusOnlyResponse(*failure, 0);
  }
  const size_t owner = ShardOfSvsId(*id);
  if (owner >= registry_.size() || !registry_.Eligible(owner)) {
    *failure = Status::Unavailable("shard " + std::to_string(owner) +
                                   " owning SVS " + std::to_string(*id) +
                                   " is unreachable");
    return StatusOnlyResponse(*failure, 0);
  }
  auto checkout = CheckoutClient(owner);
  if (!checkout.ok()) {
    registry_.RecordFailure(owner, NowMs());
    *failure = checkout.status();
    return StatusOnlyResponse(*failure, 0);
  }
  std::unique_ptr<Client> client = std::move(*checkout);
  auto map = client->SvsFeatureMap(LocalSvsId(*id));
  if (!map.ok()) {
    if (IsEdgeTransportFailure(map.status().code())) {
      registry_.RecordFailure(owner, NowMs());
    } else {
      registry_.RecordSuccess(owner, NowMs());
      CheckinClient(owner, std::move(client));
    }
    *failure = map.status();
    return StatusOnlyResponse(*failure, 0);
  }
  registry_.RecordSuccess(owner, NowMs());
  CheckinClient(owner, std::move(client));
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeFeatureMap(&writer, *map);
  return writer.buffer();
}

std::string Coordinator::HandleMonitorStats(Status* failure) {
  (void)failure;
  auto legs = FanOut<MonitorStatsReply>(
      EligibleSet(), [](Client* client) { return client->MonitorStats(); });

  MonitorStatsReply merged;
  for (const auto& leg : legs) {
    if (!leg.consulted || !leg.status.ok()) continue;
    const MonitorStatsReply& edge = leg.result;
    merged.ingest.frames_offered += edge.ingest.frames_offered;
    merged.ingest.keyframes_selected += edge.ingest.keyframes_selected;
    merged.ingest.features_extracted += edge.ingest.features_extracted;
    merged.ingest.svs_created += edge.ingest.svs_created;
    merged.ingest.raw_feature_bytes += edge.ingest.raw_feature_bytes;
    merged.ingest.frames_rejected += edge.ingest.frames_rejected;
    merged.ingest.out_of_order_dropped += edge.ingest.out_of_order_dropped;
    merged.ingest.duplicates_dropped += edge.ingest.duplicates_dropped;
    merged.ingest.objects_quarantined += edge.ingest.objects_quarantined;
    merged.cache.hits += edge.cache.hits;
    merged.cache.misses += edge.cache.misses;
    merged.cache.insertions += edge.cache.insertions;
    merged.cache.invalidations += edge.cache.invalidations;
    merged.cache.rejected_inserts += edge.cache.rejected_inserts;
    merged.cache.entries += edge.cache.entries;
    merged.cache.capacity += edge.cache.capacity;
    merged.svs_count += edge.svs_count;
    merged.camera_count += edge.camera_count;
    merged.now_ms = std::max(merged.now_ms, edge.now_ms);
  }
  const CoordinatorStats own = stats();
  merged.serving.connections_accepted = own.connections_accepted;
  merged.serving.connections_shed = own.connections_shed;
  merged.serving.pings_served = 0;
  merged.serving.shards = registry_.HealthTable(NowMs());
  merged.serving.subscriptions_active = own.subscriptions_active;
  merged.serving.subscriptions_total = own.subscriptions_total;
  merged.serving.pushes_sent = own.pushes_forwarded;
  merged.serving.push_gaps_sent = own.push_gaps_forwarded;
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeMonitorStats(&writer, merged);
  return writer.buffer();
}

std::string Coordinator::HandleCameraHealth(Status* failure) {
  (void)failure;
  auto legs = FanOut<std::vector<CameraHealthEntry>>(
      EligibleSet(),
      [](Client* client) { return client->CameraHealthReport(); });
  std::vector<CameraHealthEntry> merged;
  for (const auto& leg : legs) {
    if (!leg.consulted || !leg.status.ok()) continue;
    merged.insert(merged.end(), leg.result.begin(), leg.result.end());
  }
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeCameraHealthReport(&writer, merged);
  return writer.buffer();
}

std::string Coordinator::HandleQueryLoadStats(Status* failure) {
  (void)failure;
  auto legs = FanOut<core::QueryLoadStats>(
      EligibleSet(), [](Client* client) { return client->QueryLoadStats(); });
  core::QueryLoadStats merged;
  for (const auto& leg : legs) {
    if (!leg.consulted || !leg.status.ok()) continue;
    const core::QueryLoadStats& edge = leg.result;
    merged.in_flight += edge.in_flight;
    merged.waiting += edge.waiting;
    merged.admitted += edge.admitted;
    merged.shed += edge.shed;
    merged.timed_out += edge.timed_out;
    merged.fast_omd_routed += edge.fast_omd_routed;
    merged.timeout_overshoot_ms_total += edge.timeout_overshoot_ms_total;
    merged.max_in_flight += edge.max_in_flight;
    merged.max_queue += edge.max_queue;
    merged.omd_failures += edge.omd_failures;
  }
  io::BinaryWriter writer;
  EncodeWireStatus(&writer, {Status::OK(), 0});
  EncodeQueryLoadStats(&writer, merged);
  return writer.buffer();
}

// --- Representative sync and probing. ---

size_t Coordinator::PollEdgesNow() { return SyncPass(false); }

void Coordinator::SyncLoop() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (!stopping_.load()) {
    // Wake early when a rep-push watcher reports an edge's index moved;
    // the interval remains as the fallback for edges without a watcher.
    sync_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.sync_interval_ms),
                      [this] { return stopping_.load() || rep_dirty_.load(); });
    if (stopping_.load()) return;
    if (rep_dirty_.exchange(false)) rep_push_wakeups_.fetch_add(1);
    lock.unlock();
    (void)SyncPass(/*respect_backoff=*/true);
    lock.lock();
  }
}

size_t Coordinator::SyncPass(bool respect_backoff) {
  // One pass at a time: the background thread and PollEdgesNow must not
  // interleave their registry updates and index rebuilds.
  std::lock_guard<std::mutex> pass_lock(pass_mu_);
  bool changed = false;
  for (size_t i = 0; i < registry_.size(); ++i) {
    const int64_t now = NowMs();
    const bool probing = !registry_.Eligible(i);
    if (probing) {
      if (respect_backoff && !registry_.ProbeDue(i, now)) continue;
      probes_sent_.fetch_add(1);
    }
    auto checkout = CheckoutClient(i);
    if (!checkout.ok()) {
      registry_.RecordFailure(i, NowMs());
      continue;
    }
    std::unique_ptr<Client> client = std::move(*checkout);
    auto reply = client->RepSync(registry_.synced_version(i));
    if (!reply.ok()) {
      registry_.RecordFailure(i, NowMs());
      continue;
    }
    uint64_t entry_count = 0;
    if (reply->unchanged) {
      std::shared_lock<std::shared_mutex> lock(index_mu_);
      entry_count = edge_entries_[i].size();
    } else {
      entry_count = reply->entries.size();
      std::unique_lock<std::shared_mutex> lock(index_mu_);
      edge_entries_[i] = std::move(reply->entries);
      changed = true;
      rep_sync_updates_.fetch_add(1);
    }
    registry_.RecordRepSync(i, reply->version, entry_count, NowMs());
    // Refresh the shard's camera inventory while the connection is warm —
    // this is what a degraded answer lists as excluded when the shard dies.
    auto report = client->CameraHealthReport();
    if (report.ok()) {
      std::vector<core::CameraId> cameras;
      cameras.reserve(report->size());
      for (CameraHealthEntry& entry : *report) {
        cameras.push_back(std::move(entry.camera));
      }
      registry_.RecordCameras(i, std::move(cameras));
    }
    CheckinClient(i, std::move(client));
    // Rep-push: keep a dedicated stats subscription on this edge so the
    // next index advance wakes the sync thread instead of waiting out the
    // interval. A dead watcher is detected by its failed ping (its
    // reconnect budget is zero, so the failure is honest — a silently
    // reconnected watcher would have silently lost its subscription) and
    // re-established here.
    if (options_.rep_push) {
      if (watch_clients_[i] != nullptr && !watch_clients_[i]->Ping().ok()) {
        watch_clients_[i].reset();
      }
      if (watch_clients_[i] == nullptr) {
        const EdgeEndpoint endpoint = registry_.endpoint(i);
        ClientOptions watch_options;
        watch_options.connect_timeout_ms = options_.edge_connect_timeout_ms;
        watch_options.io_timeout_ms = options_.edge_io_timeout_ms;
        watch_options.max_shed_retries = 0;
        watch_options.max_reconnects = 0;
        auto watch_conn = Client::Connect(endpoint.host, endpoint.port,
                                          watch_options);
        if (watch_conn.ok()) {
          auto watcher = std::make_unique<Client>(std::move(*watch_conn));
          SubscribeRequest watch_spec;
          watch_spec.want_matches = false;
          watch_spec.want_stats = true;
          auto subscribed =
              watcher->Subscribe(watch_spec, [this](const PushEvent&) {
                rep_dirty_.store(true);
                sync_cv_.notify_all();
              });
          if (subscribed.ok()) watch_clients_[i] = std::move(watcher);
        }
      }
    }
  }
  if (changed) {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    RebuildIndexLocked();
  }
  size_t eligible = 0;
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (registry_.Eligible(i)) ++eligible;
  }
  return eligible;
}

void Coordinator::RebuildIndexLocked() {
  std::vector<core::InterCameraIndex::RepEntry> combined;
  entry_owner_.clear();
  for (size_t i = 0; i < edge_entries_.size(); ++i) {
    for (const auto& entry : edge_entries_[i]) {
      combined.push_back(entry);
      entry_owner_.push_back(i);
    }
  }
  // SetEntries installs the entry list before rebuilding tree and groups,
  // so `entry_owner_` stays aligned with `entries()` even if the rebuild
  // fails (poisoned distances) — and pruning only needs the entry list.
  (void)inter_.SetEntries(std::move(combined));
}

}  // namespace vz::net
